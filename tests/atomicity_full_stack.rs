//! Full-stack atomicity tests: MPI ranks → datatypes/views → ADIO
//! drivers → storage backends, checked by the serializability verifier.
//!
//! This is the core correctness claim of the reproduction: every
//! atomic-mode backend produces serializable final states under heavily
//! overlapping concurrent non-contiguous writes, and the no-atomicity
//! configuration demonstrably does not.

use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::stamp::WriteStamp;
use atomio::types::{ByteRange, ClientId, ExtentList};
use atomio::workloads::verify::{check_serializable, Violation, WriteRecord};
use atomio::workloads::{run_write_round, OverlapWorkload};
use atomio_bench::{Backend, BenchConfig};
use atomio_simgrid::CostModel;
use std::time::Duration;

fn paper_cfg() -> BenchConfig {
    BenchConfig {
        servers: 8,
        chunk_size: 64 * 1024,
        ..BenchConfig::default()
    }
}

#[test]
fn all_atomic_backends_serialize_overlapping_writes() {
    let cfg = paper_cfg();
    let workload = OverlapWorkload::new(8, 16, 32 * 1024, 1, 2);
    let extents: Vec<ExtentList> = (0..8).map(|c| workload.extents_for(c)).collect();
    for backend in Backend::ATOMIC {
        let (driver, _) = cfg.build(backend);
        let clock = SimClock::new();
        let out = run_write_round(&clock, &driver, &extents, true, 7, true);
        assert!(
            out.is_atomic_ok(),
            "{} violated atomicity: {:?}",
            backend.label(),
            out.violation
        );
        assert_eq!(out.witness.as_ref().map(Vec::len), Some(8));
    }
}

#[test]
fn repeated_rounds_stay_atomic() {
    let cfg = paper_cfg();
    let workload = OverlapWorkload::new(6, 8, 16 * 1024, 3, 4);
    let extents: Vec<ExtentList> = (0..6).map(|c| workload.extents_for(c)).collect();
    for backend in [Backend::Versioning, Backend::LustreLock] {
        let (driver, _) = cfg.build(backend);
        let clock = SimClock::new();
        for round in 1..=5u64 {
            let out = run_write_round(&clock, &driver, &extents, true, round, true);
            assert!(
                out.is_atomic_ok(),
                "{} round {round}: {:?}",
                backend.label(),
                out.violation
            );
        }
    }
}

/// The PVFS-style configuration (no locks, no versioning) performs the
/// regions of a non-contiguous write one at a time; with two writers
/// ordering their regions oppositely in time, the final state holds
/// writer A's bytes in one region and writer B's in the other — provably
/// not serializable, and the verifier must say so.
#[test]
fn no_atomicity_configuration_tears_and_is_detected() {
    let cfg = BenchConfig {
        cost: CostModel::grid5000(),
        ..paper_cfg()
    };
    let (driver, _) = cfg.build(Backend::NoLock);
    let clock = SimClock::new();

    let region0 = ByteRange::new(0, 128 * 1024);
    let region1 = ByteRange::new(256 * 1024, 128 * 1024);
    let both = ExtentList::from_ranges([region0, region1]);
    let stamps = [
        WriteStamp::new(ClientId::new(0), 1),
        WriteStamp::new(ClientId::new(1), 1),
    ];

    run_actors_on(&clock, 2, |i, p| {
        let stamp = stamps[i];
        // Writer 0 goes region0 → region1; writer 1 goes region1 →
        // region0, with a gap that guarantees interleaving.
        let order = if i == 0 {
            [region0, region1]
        } else {
            [region1, region0]
        };
        for (k, r) in order.into_iter().enumerate() {
            let payload = stamp.payload_for(&ExtentList::single(r));
            driver
                .write_extents(
                    p,
                    ClientId::new(i as u64),
                    &ExtentList::single(r),
                    bytes::Bytes::from(payload),
                    false,
                )
                .unwrap();
            if k == 0 {
                p.sleep(Duration::from_millis(200));
            }
        }
    });

    let state = run_actors_on(&clock, 1, |_, p| {
        driver
            .read_extents(
                p,
                ClientId::new(9),
                &ExtentList::single(ByteRange::new(0, both.covering_range().end())),
                false,
            )
            .unwrap()
    })
    .pop()
    .unwrap();

    let writes = vec![
        WriteRecord::new(stamps[0], both.clone()),
        WriteRecord::new(stamps[1], both.clone()),
    ];
    match check_serializable(&state, &writes) {
        Err(Violation::CyclicOrder { writes }) => {
            assert_eq!(writes.len(), 2, "both writers in the cycle");
        }
        other => panic!("expected a detected atomicity violation, got {other:?}"),
    }
}

/// The same interleaving under the versioning backend is atomic: each
/// write_list is one snapshot regardless of the region count.
#[test]
fn versioning_backend_cannot_tear_under_the_same_schedule() {
    let cfg = BenchConfig {
        cost: CostModel::grid5000(),
        ..paper_cfg()
    };
    let (driver, _) = cfg.build(Backend::Versioning);
    let clock = SimClock::new();

    let both = ExtentList::from_pairs([(0u64, 128 * 1024u64), (256 * 1024, 128 * 1024)]);
    let stamps = [
        WriteStamp::new(ClientId::new(0), 1),
        WriteStamp::new(ClientId::new(1), 1),
    ];
    run_actors_on(&clock, 2, |i, p| {
        // Stagger starts so the transfers interleave in time.
        p.sleep(Duration::from_millis(i as u64 * 50));
        let payload = stamps[i].payload_for(&both);
        driver
            .write_extents(
                p,
                ClientId::new(i as u64),
                &both,
                bytes::Bytes::from(payload),
                true,
            )
            .unwrap();
    });
    let state = run_actors_on(&clock, 1, |_, p| {
        driver
            .read_extents(
                p,
                ClientId::new(9),
                &ExtentList::single(ByteRange::new(0, both.covering_range().end())),
                false,
            )
            .unwrap()
    })
    .pop()
    .unwrap();
    let writes = vec![
        WriteRecord::new(stamps[0], both.clone()),
        WriteRecord::new(stamps[1], both.clone()),
    ];
    let order = check_serializable(&state, &writes).expect("serializable");
    assert_eq!(order.len(), 2);
}

#[test]
fn verifier_spots_planted_corruption_end_to_end() {
    // Write through the versioning backend, then corrupt the read-back
    // buffer: the verifier must reject it. Guards against the verifier
    // degenerating into always-pass.
    let cfg = paper_cfg();
    let (driver, _) = cfg.build(Backend::Versioning);
    let clock = SimClock::new();
    let ext = ExtentList::from_pairs([(0u64, 4096u64)]);
    let stamp = WriteStamp::new(ClientId::new(0), 1);
    run_actors_on(&clock, 1, |_, p| {
        driver
            .write_extents(
                p,
                ClientId::new(0),
                &ext,
                bytes::Bytes::from(stamp.payload_for(&ext)),
                true,
            )
            .unwrap();
    });
    let mut state = run_actors_on(&clock, 1, |_, p| {
        driver
            .read_extents(p, ClientId::new(9), &ext, false)
            .unwrap()
    })
    .pop()
    .unwrap();
    state[100] ^= 0xA5;
    let writes = vec![WriteRecord::new(stamp, ext)];
    assert!(matches!(
        check_serializable(&state, &writes),
        Err(Violation::TornSegment { .. })
    ));
}
