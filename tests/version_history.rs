//! Versioning semantics across iterations: historical snapshots stay
//! readable and bit-exact while new iterations land, and garbage
//! collection retires exactly what it promises.

use atomio::core::gc::collect_below;
use atomio::core::{Store, StoreConfig};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::stamp::WriteStamp;
use atomio::types::{ClientId, Error, ExtentList, VersionId};
use atomio::workloads::CheckpointWorkload;
use bytes::Bytes;

fn store() -> Store {
    Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(4096)
            .with_data_providers(4),
    )
}

#[test]
fn historical_checkpoints_remain_bit_exact() {
    let s = store();
    let blob = s.create_blob();
    let workload = CheckpointWorkload::new(4, 1024, 8, 64);
    let clock = SimClock::new();
    const ITERS: u64 = 5;

    // Each iteration: all ranks dump concurrently; record version order.
    let mut iteration_versions: Vec<Vec<VersionId>> = Vec::new();
    for iter in 0..ITERS {
        let versions = run_actors_on(&clock, workload.ranks, |rank, p| {
            let ext = workload.extents_for(rank);
            let stamp = WriteStamp::new(ClientId::new(rank as u64), iter);
            blob.write_list(p, &ext, Bytes::from(stamp.payload_for(&ext)))
                .unwrap()
        });
        iteration_versions.push(versions);
    }

    // After everything is written, every iteration's final snapshot must
    // equal replaying that iteration's writes (over the previous state)
    // in version order — spot-check: the *interior* of each rank's slab
    // (outside every halo) must carry that iteration's stamp at the
    // iteration's last version.
    run_actors_on(&clock, 1, |_, p| {
        for (iter, versions) in iteration_versions.iter().enumerate() {
            let last = *versions.iter().max().unwrap();
            for rank in 0..workload.ranks {
                let interior_lo =
                    (rank as u64 * workload.cells_per_rank + workload.halo) * workload.cell_size;
                let interior_hi = ((rank as u64 + 1) * workload.cells_per_rank - workload.halo)
                    * workload.cell_size;
                let ext = ExtentList::from_pairs([(interior_lo, interior_hi - interior_lo)]);
                let got = blob.read_at(p, last, &ext).unwrap();
                let stamp = WriteStamp::new(ClientId::new(rank as u64), iter as u64);
                assert!(
                    stamp.matches(interior_lo, &got),
                    "iteration {iter} rank {rank} interior wrong at {last}"
                );
            }
        }
    });
}

#[test]
fn gc_retires_old_iterations_only() {
    let s = store();
    let blob = s.create_blob();
    let clock = SimClock::new();

    // Three full overwrites of the same leaf-aligned region.
    let ext = ExtentList::from_pairs([(0u64, 8192u64)]);
    let versions = run_actors_on(&clock, 1, |_, p| {
        (0..3u64)
            .map(|i| {
                let stamp = WriteStamp::new(ClientId::new(0), i);
                blob.write_list(p, &ext, Bytes::from(stamp.payload_for(&ext)))
                    .unwrap()
            })
            .collect::<Vec<_>>()
    })
    .pop()
    .unwrap();

    run_actors_on(&clock, 1, |_, p| {
        let report = collect_below(p, &blob, versions[2]).unwrap();
        assert_eq!(report.versions_retired, 2);
        assert_eq!(report.bytes_reclaimed, 2 * 8192);

        // v3 readable, v1/v2 gone.
        let got = blob.read_at(p, versions[2], &ext).unwrap();
        assert!(WriteStamp::new(ClientId::new(0), 2).matches(0, &got));
        for &old in &versions[..2] {
            assert!(matches!(
                blob.read_at(p, old, &ext),
                Err(Error::MetadataNodeMissing(_))
            ));
        }
    });
}

#[test]
fn snapshot_reads_are_stable_under_later_writes() {
    let s = store();
    let blob = s.create_blob();
    let clock = SimClock::new();
    let ext = ExtentList::from_pairs([(0u64, 4096u64), (16384, 4096)]);

    run_actors_on(&clock, 1, |_, p| {
        let s0 = WriteStamp::new(ClientId::new(0), 0);
        let v1 = blob
            .write_list(p, &ext, Bytes::from(s0.payload_for(&ext)))
            .unwrap();
        let before = blob.read_at(p, v1, &ext).unwrap();

        // Pile on 10 more overlapping writes.
        for i in 1..=10u64 {
            let s = WriteStamp::new(ClientId::new(0), i);
            blob.write_list(p, &ext, Bytes::from(s.payload_for(&ext)))
                .unwrap();
        }
        let after = blob.read_at(p, v1, &ext).unwrap();
        assert_eq!(before, after, "snapshot v1 changed under later writes");
        assert!(s0.matches(0, &after[..4096]));
    });
}

#[test]
fn blob_size_grows_monotonically_across_versions() {
    let s = store();
    let blob = s.create_blob();
    let clock = SimClock::new();
    run_actors_on(&clock, 1, |_, p| {
        let v1 = blob.write(p, 0, Bytes::from(vec![1u8; 100])).unwrap();
        let v2 = blob
            .write(p, 1_000_000, Bytes::from(vec![2u8; 50]))
            .unwrap();
        let v3 = blob.write(p, 10, Bytes::from(vec![3u8; 10])).unwrap();
        assert_eq!(blob.size_at(p, v1).unwrap(), 100);
        assert_eq!(blob.size_at(p, v2).unwrap(), 1_000_050);
        assert_eq!(
            blob.size_at(p, v3).unwrap(),
            1_000_050,
            "size never shrinks"
        );
    });
}
