//! Distributed lease-based reclamation: the collector must run
//! *concurrently* with live overlapping writers — on the in-process
//! Loopback transport and on the full three-service TCP deployment —
//! without ever reclaiming a chunk reachable from a retained or leased
//! snapshot, and the lease/retention state must be as durable as the
//! publish decisions it guards.
//!
//! Three scenarios:
//!
//! 1. **GC beside the 9-writer stress**: while nine ranks atomically
//!    write overlapping ghost-extended tiles, a collector actor runs
//!    capped passes under `KeepLast(2)` with a reader's lease pinning an
//!    early snapshot. The leased snapshot reads back bit-exact during
//!    and after collection, the final dataset stays serializable, and
//!    only unpinned sub-floor versions lose their state.
//! 2. **Lease expiry mid-read**: a reader whose lease lapses while the
//!    collector takes its snapshot gets the typed
//!    [`Error::LeaseExpired`] — never torn bytes.
//! 3. **Crash durability**: killing the version server and rebuilding it
//!    fresh from the Disk backend preserves both the blob's retention
//!    policy and the live lease — the recovered floor is identical.

use atomio::core::{GcCoordinator, ReadVersion, Store, StoreConfig, TransportMode};
use atomio::provider::{chunk_store_for, ChunkStore, ProviderManager};
use atomio::rpc::{
    dial, MetaService, ProviderService, RemoteMetaStore, RemoteProvider, RemoteVersionManager,
    RpcConfig, RpcMode, RpcServer, Service, VersionService,
};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::{CostModel, FaultInjector, SimClock};
use atomio::types::stamp::WriteStamp;
use atomio::types::tempdir::TempDir;
use atomio::types::{
    BackendConfig, ByteRange, ClientId, Error, ExtentList, ProviderId, RetentionPolicy, VersionId,
};
use atomio::workloads::verify::{check_serializable_from, WriteRecord};
use atomio::workloads::TileWorkload;
use bytes::Bytes;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const CHUNK: u64 = 4096;
const SEED: u64 = 0x6C0A;
const LEASE_TTL_MS: u64 = 60_000;

fn base_config(providers: usize) -> StoreConfig {
    StoreConfig::default()
        .with_zero_cost()
        .with_chunk_size(CHUNK)
        .with_data_providers(providers)
        .with_meta_shards(2)
        .with_seed(SEED)
        .with_retention(RetentionPolicy::KeepLast(2))
}

fn hosted_store(i: usize, backend: &BackendConfig) -> Arc<dyn ChunkStore> {
    chunk_store_for(
        backend,
        ProviderId::new(i as u64),
        CostModel::zero(),
        &Arc::new(FaultInjector::new(0)),
    )
    .expect("open hosted chunk store")
}

/// A three-service TCP deployment (subset of the harness in
/// `distributed_atomicity.rs`), keeping the version endpoint so the
/// crash test can rebuild a fresh service from the backend directory.
struct Deployment {
    _provider_servers: Vec<RpcServer>,
    _meta_server: RpcServer,
    version_server: RpcServer,
    version_addr: SocketAddr,
    backend: BackendConfig,
    _tmp: TempDir,
    store: Store,
}

fn three_service_store(providers: usize, mode: RpcMode, backend_of: BackendConfig) -> Deployment {
    let tmp = TempDir::new("atomio-gc-dist");
    let backend = match backend_of {
        BackendConfig::Disk { .. } => BackendConfig::disk(tmp.path()),
        BackendConfig::Memory => BackendConfig::Memory,
    };
    let config = base_config(providers).with_transport_mode(TransportMode::Tcp);

    let mut provider_servers = Vec::new();
    let mut stores: Vec<Arc<dyn ChunkStore>> = Vec::new();
    for i in 0..providers {
        let server = RpcServer::start(
            "127.0.0.1:0",
            Arc::new(ProviderService::from_stores(vec![hosted_store(
                i, &backend,
            )])),
        )
        .expect("bind provider server");
        let transport = dial(server.local_addr(), mode, RpcConfig::default(), None);
        stores.push(Arc::new(RemoteProvider::new(
            ProviderId::new(i as u64),
            transport,
        )));
        provider_servers.push(server);
    }

    let meta_server = RpcServer::start(
        "127.0.0.1:0",
        Arc::new(
            MetaService::with_backend(config.meta_shards, CHUNK, &backend)
                .expect("open meta service"),
        ),
    )
    .expect("bind meta server");
    let meta_transport = dial(meta_server.local_addr(), mode, RpcConfig::default(), None);

    // The server carries the deployment-default retention, exactly as
    // `atomio-version-server --retention keep-last:2` would.
    let version_service: Arc<dyn Service> = Arc::new(
        VersionService::with_backend(CHUNK, backend.clone())
            .with_retention(RetentionPolicy::KeepLast(2)),
    );
    let version_server =
        RpcServer::start("127.0.0.1:0", version_service).expect("bind version server");
    let version_addr = version_server.local_addr();
    let version_transport = dial(version_addr, mode, RpcConfig::default(), None);

    let manager = Arc::new(ProviderManager::from_stores(
        stores,
        config.allocation,
        Arc::new(FaultInjector::new(config.seed ^ 0xFA17)),
        config.seed,
    ));
    let meta = Arc::new(RemoteMetaStore::new(meta_transport));
    let store = Store::with_substrates(config, manager, meta).with_version_oracles(move |blob| {
        Arc::new(RemoteVersionManager::new(
            blob.raw(),
            Arc::clone(&version_transport),
        ))
    });

    Deployment {
        _provider_servers: provider_servers,
        _meta_server: meta_server,
        version_server,
        version_addr,
        backend,
        _tmp: tmp,
        store,
    }
}

/// The shared stress: two base snapshots, a lease pinning the second,
/// then nine overlapping tile writers racing a concurrent collector.
fn gc_beside_nine_writers(store: &Store) {
    let workload = TileWorkload::new(3, 3, 8, 8, 16, 2, 2);
    assert!(workload.has_overlap());
    let ranks = workload.processes();
    let total = workload.dataset_bytes();
    let full = ExtentList::single(ByteRange::new(0, total));

    let blob = store.create_blob();
    let clock = SimClock::new();
    let blob_ref = &blob;
    let full_ref = &full;

    // Two base snapshots so the collector has sub-floor work; a lease
    // pins v2 below the KeepLast(2) floor for the whole stress.
    let (grant, pinned_state) = run_actors_on(&clock, 1, move |_, p| {
        blob_ref
            .write(p, 0, Bytes::from(vec![0x11u8; total as usize]))
            .unwrap();
        blob_ref
            .write(p, 0, Bytes::from(vec![0x22u8; total as usize]))
            .unwrap();
        let grant = blob_ref.lease_latest(p, LEASE_TTL_MS).unwrap();
        assert_eq!(grant.version, VersionId::new(2));
        let state = blob_ref.read_at(p, grant.version, full_ref).unwrap();
        (grant, state)
    })
    .pop()
    .unwrap();

    // Nine overlapping atomic writers + one collector actor running
    // capped passes the whole time.
    let stamps: Vec<WriteStamp> = (0..ranks)
        .map(|r| WriteStamp::new(ClientId::new(r as u64), 1))
        .collect();
    let extents: Vec<ExtentList> = (0..ranks).map(|r| workload.extents_for(r)).collect();
    let writers_done = Arc::new(AtomicUsize::new(0));
    let stamps_ref = &stamps;
    let extents_ref = &extents;
    let writers_done_ref = &writers_done;
    let pinned_ref = &pinned_state;
    let concurrent_retired = run_actors_on(&clock, ranks + 1, move |i, p| {
        if i == ranks {
            let mut gc = GcCoordinator::new(blob_ref.clone()).with_pass_cap(2);
            let mut retired = 0u64;
            loop {
                let done = writers_done_ref.load(Ordering::Acquire) == ranks;
                let pass = gc.run_pass(p).expect("concurrent GC pass failed");
                assert_eq!(pass.leases_active, 1, "the reader's lease is live");
                retired += pass.report.versions_retired;
                if done && pass.report.versions_retired == 0 {
                    break;
                }
                p.sleep(std::time::Duration::from_micros(50));
            }
            // Mid-stress reclamation: the leased snapshot still reads
            // back bit-exact straight after the collector's last pass.
            let leased = blob_ref
                .read_leased(p, &grant, LEASE_TTL_MS, full_ref)
                .expect("leased snapshot must survive collection");
            assert_eq!(&leased, pinned_ref, "leased v2 is bit-exact after GC");
            return retired;
        }
        let payload = Bytes::from(stamps_ref[i].payload_for(&extents_ref[i]));
        blob_ref.write_list(p, &extents_ref[i], payload).unwrap();
        writers_done_ref.fetch_add(1, Ordering::Release);
        0
    })
    .pop()
    .unwrap();
    // The lease clamps the floor to v2, so exactly v1 was collectable
    // during the stress — and it was collected *while* writers wrote.
    assert_eq!(concurrent_retired, 1, "v1 retired concurrently");

    // The final dataset is one serial order of the nine writers applied
    // over the v2 base: collection never tore an overlapped byte.
    let writes: Vec<WriteRecord> = (0..ranks)
        .map(|r| WriteRecord::new(stamps[r], extents[r].clone()))
        .collect();
    let (latest, final_state) = run_actors_on(&clock, 1, move |_, p| {
        (
            blob_ref.latest(p).unwrap().version,
            blob_ref
                .read_list(p, ReadVersion::Latest, full_ref)
                .unwrap(),
        )
    })
    .pop()
    .unwrap();
    assert_eq!(latest, VersionId::new(2 + ranks as u64));
    check_serializable_from(Some(&pinned_state), &final_state, &writes)
        .unwrap_or_else(|v| panic!("GC-concurrent run violates atomicity: {v:?}"));

    // Release the lease and drain to the floor: KeepLast(2) now governs
    // alone, the retained pair reads whole, the retired tail does not.
    run_actors_on(&clock, 1, move |_, p| {
        blob_ref.lease_release(p, grant.lease).unwrap();
        let mut gc = GcCoordinator::new(blob_ref.clone());
        let merged = gc.run_to_floor(p).expect("post-release drain failed");
        assert_eq!(merged.leases_active, 0);
        assert!(
            merged.report.versions_retired >= (ranks as u64) - 1,
            "the unpinned tail is reclaimed once the lease goes: {merged:?}"
        );
        assert_eq!(
            blob_ref
                .read_list(p, ReadVersion::Latest, full_ref)
                .unwrap(),
            final_state,
            "latest still bit-exact after the drain"
        );
        assert!(
            blob_ref
                .read_at(p, VersionId::new(latest.raw() - 1), full_ref)
                .is_ok(),
            "KeepLast(2) retains latest-1"
        );
        let err = blob_ref.read_at(p, grant.version, full_ref).unwrap_err();
        assert!(
            matches!(
                err,
                Error::ChunkNotFound { .. } | Error::MetadataNodeMissing(_)
            ),
            "released v2's exclusive state is gone, typed: {err:?}"
        );
    });
}

#[test]
fn gc_runs_beside_nine_overlapping_writers_loopback() {
    gc_beside_nine_writers(&Store::new(base_config(4)));
}

#[test]
fn gc_runs_beside_nine_overlapping_writers_tcp_mux() {
    let d = three_service_store(4, RpcMode::Mux, BackendConfig::Memory);
    gc_beside_nine_writers(&d.store);
}

#[test]
fn lease_expiry_mid_read_is_a_typed_error_over_tcp() {
    // Server-clock leases: a 20 ms TTL lapses in wall time while the
    // collector (correctly) treats the pin as gone and reclaims.
    let d = three_service_store(2, RpcMode::PerCall, BackendConfig::Memory);
    let blob = d.store.create_blob();
    let clock = SimClock::new();
    let blob_ref = &blob;
    run_actors_on(&clock, 1, move |_, p| {
        for fill in [0x31u8, 0x32, 0x33, 0x34] {
            blob_ref
                .write(p, 0, Bytes::from(vec![fill; 2 * CHUNK as usize]))
                .unwrap();
        }
        let grant = blob_ref.lease_acquire(p, VersionId::new(1), 20).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        let mut gc = GcCoordinator::new(blob_ref.clone());
        let merged = gc.run_to_floor(p).unwrap();
        assert_eq!(merged.leases_active, 0, "the lapsed lease no longer pins");
        assert!(merged.report.versions_retired >= 1);
        assert_eq!(merged.lease_expirations, 1);
        let err = blob_ref
            .read_leased(
                p,
                &grant,
                LEASE_TTL_MS,
                &ExtentList::single(ByteRange::new(0, 2 * CHUNK)),
            )
            .unwrap_err();
        assert_eq!(
            err,
            Error::LeaseExpired {
                lease: grant.lease,
                version: grant.version
            },
            "expiry surfaces typed, never as torn bytes"
        );
    });
}

#[test]
fn version_server_restart_preserves_leases_and_retention_on_disk() {
    let mut d = three_service_store(2, RpcMode::PerCall, BackendConfig::disk("unused"));
    let blob = d.store.create_blob();
    let clock = SimClock::new();
    let blob_ref = &blob;

    // A per-blob policy *override* (KeepLast(3), not the server default)
    // plus a long-lived lease on v1: both must come back from the
    // publish log, not from server memory.
    let grant = run_actors_on(&clock, 1, move |_, p| {
        blob_ref
            .set_retention(p, RetentionPolicy::KeepLast(3))
            .unwrap();
        blob_ref
            .write(p, 0, Bytes::from(vec![0xA1; CHUNK as usize]))
            .unwrap();
        let grant = blob_ref
            .lease_acquire(p, VersionId::new(1), LEASE_TTL_MS)
            .unwrap();
        for fill in [0xA2u8, 0xA3, 0xA4, 0xA5, 0xA6] {
            blob_ref
                .write(p, 0, Bytes::from(vec![fill; CHUNK as usize]))
                .unwrap();
        }
        grant
    })
    .pop()
    .unwrap();

    // Hard-stop the version server and rebuild a FRESH service from the
    // on-disk publish log — deliberately without the deployment-default
    // retention flag, so anything that survives came off the disk.
    d.version_server.stop();
    run_actors_on(&clock, 1, move |_, p| {
        // Down means typed transport errors, never stale answers.
        assert!(matches!(
            blob_ref.latest(p).unwrap_err(),
            Error::Transport { .. }
        ));
    });
    d.version_server = RpcServer::start(
        d.version_addr,
        Arc::new(VersionService::with_backend(CHUNK, d.backend.clone())) as Arc<dyn Service>,
    )
    .expect("rebind version server");

    run_actors_on(&clock, 1, move |_, p| {
        // The recovered floor: KeepLast(3) would allow up to v4, the
        // recovered lease clamps to v1 — so a full drain retires nothing.
        let mut gc = GcCoordinator::new(blob_ref.clone());
        let merged = gc.run_to_floor(p).unwrap();
        assert_eq!(merged.leases_active, 1, "lease survived the crash");
        assert_eq!(merged.report.versions_retired, 0, "recovered lease pins v1");
        let leased = blob_ref
            .read_leased(
                p,
                &grant,
                LEASE_TTL_MS,
                &ExtentList::single(ByteRange::new(0, CHUNK)),
            )
            .unwrap();
        assert!(
            leased.iter().all(|&b| b == 0xA1),
            "v1 bit-exact via the lease"
        );

        // Releasing the recovered lease (by its pre-crash id!) hands the
        // floor to the recovered KeepLast(3): v1..v3 become collectable.
        blob_ref.lease_release(p, grant.lease).unwrap();
        let merged = gc.run_to_floor(p).unwrap();
        assert_eq!(
            merged.report.versions_retired, 3,
            "recovered KeepLast(3) governs the floor: {merged:?}"
        );
        assert!(blob_ref
            .read(p, 0, CHUNK)
            .unwrap()
            .iter()
            .all(|&b| b == 0xA6));
    });
}
