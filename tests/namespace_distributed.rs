//! Namespace-scale distribution: hash-slot routing across a sharded
//! version-service fleet must be invisible to every observable the
//! single-oracle deployment defines.
//!
//! Three arms:
//!
//! 1. **Randomized multi-tenant property test** — N tenants each drive a
//!    seeded create/write/read/delete interleaving over their own
//!    checkpoint files, concurrently. The surviving namespace, every
//!    file's version chain, and every byte must be identical whether the
//!    version service is one oracle or four `--shard i/4` shards, and
//!    whether the shard transports are in-process Loopback or real TCP
//!    mux sockets.
//! 2. **Shard-kill fault injection** — killing one shard mid-commit
//!    fails exactly the blobs in its slots with typed transport errors;
//!    the other shards keep serving; a fresh process on the same port
//!    recovers that shard's published prefix from its publish logs
//!    (Disk backend) and the granted-but-unpublished ticket stays
//!    invisible.
//! 3. **SlotMap edge cases** — a stale client map self-heals through
//!    `WrongShard` redirect-and-retry; a fully drained shard (empty slot
//!    range) keeps answering typed refusals without serving; an online
//!    handoff drains in-flight grants, and replaying the export twice is
//!    idempotent.

use atomio::core::{slot_for_blob, ReadVersion, SlotMap, Store, StoreConfig};
use atomio::meta::NodeKey;
use atomio::rpc::{
    dial, handoff_slots, handoff_slots_with_budget, Loopback, RemoteVersionManager, RpcConfig,
    RpcMode, RpcServer, Service, SlotRoutedTransport, Transport, VersionService,
};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::tempdir::TempDir;
use atomio::types::{BackendConfig, BlobId, ByteRange, Error, ExtentList, VersionId};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::sync::Arc;

const CHUNK: u64 = 512;
const SEED: u64 = 0x5EED_CAFE;
const TENANTS: usize = 4;
const FILES_PER_TENANT: u64 = 10;
const OPS_PER_TENANT: usize = 60;

/// Deterministic splitmix64 stream for the workload generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A version-service fleet of `n` shards plus the client transport that
/// routes across it: plain for one shard, slot-routed for several. TCP
/// fleets keep their servers alive in `_servers`.
struct VersionFleet {
    services: Vec<Arc<VersionService>>,
    servers: Vec<RpcServer>,
    transport: Arc<dyn Transport>,
}

fn loopback_fleet(n: usize) -> VersionFleet {
    let services: Vec<Arc<VersionService>> = (0..n)
        .map(|i| {
            let mut s = VersionService::new(CHUNK);
            if n > 1 {
                s = s.with_shard(i, n);
            }
            Arc::new(s)
        })
        .collect();
    let transports: Vec<Arc<dyn Transport>> = services
        .iter()
        .map(|s| Arc::new(Loopback::new(Arc::clone(s) as Arc<dyn Service>)) as Arc<dyn Transport>)
        .collect();
    let transport = routed_over(transports);
    VersionFleet {
        services,
        servers: Vec::new(),
        transport,
    }
}

fn tcp_fleet(n: usize, mode: RpcMode, backend: &BackendConfig) -> VersionFleet {
    let services: Vec<Arc<VersionService>> = (0..n)
        .map(|i| {
            let mut s = VersionService::with_backend(CHUNK, backend.clone());
            if n > 1 {
                s = s.with_shard(i, n);
            }
            Arc::new(s)
        })
        .collect();
    let servers: Vec<RpcServer> = services
        .iter()
        .map(|s| {
            RpcServer::start("127.0.0.1:0", Arc::clone(s) as Arc<dyn Service>)
                .expect("bind version shard")
        })
        .collect();
    let transports: Vec<Arc<dyn Transport>> = servers
        .iter()
        .map(|srv| dial(srv.local_addr(), mode, RpcConfig::default(), None))
        .collect();
    let transport = routed_over(transports);
    VersionFleet {
        services,
        servers,
        transport,
    }
}

fn routed_over(transports: Vec<Arc<dyn Transport>>) -> Arc<dyn Transport> {
    if transports.len() == 1 {
        transports.into_iter().next().unwrap()
    } else {
        Arc::new(SlotRoutedTransport::new(transports))
    }
}

/// A store whose data/metadata paths are in-process but whose version
/// oracle is the fleet's (possibly slot-routed) transport — the seam
/// under test, everything else held constant.
fn store_over(fleet: &VersionFleet) -> Store {
    let transport = Arc::clone(&fleet.transport);
    Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(CHUNK)
            .with_data_providers(2)
            .with_meta_shards(2)
            .with_seed(SEED),
    )
    .with_version_oracles(move |blob| {
        Arc::new(RemoteVersionManager::new(
            blob.raw(),
            Arc::clone(&transport),
        ))
    })
}

/// Drives the seeded multi-tenant interleaving and returns the final
/// namespace observation: every surviving path with its published
/// version count and full contents.
fn run_multi_tenant(store: &Store) -> Vec<(String, u64, Vec<u8>)> {
    let clock = SimClock::new();
    run_actors_on(&clock, TENANTS, |tenant, p| {
        let mut rng = Rng(SEED ^ (tenant as u64) << 32);
        // Local model of this tenant's files: contents + publish count.
        let mut mirror: BTreeMap<String, (Vec<u8>, u64)> = BTreeMap::new();
        for _ in 0..OPS_PER_TENANT {
            let file = rng.below(FILES_PER_TENANT);
            let path = format!("/tenant{tenant}/ckpt/{file:03}.dat");
            match rng.below(10) {
                // Delete: the name goes away; a later op may recreate it
                // with a fresh blob whose chain restarts at v1.
                0 if mirror.contains_key(&path) => {
                    store.unlink(&path).unwrap();
                    mirror.remove(&path);
                }
                // Read-back: the store must agree with the local model.
                1 | 2 if mirror.contains_key(&path) => {
                    let (bytes, _) = &mirror[&path];
                    let blob = store.open_file(&path).unwrap();
                    let got = blob.read(p, 0, bytes.len() as u64).unwrap();
                    assert_eq!(&got, bytes, "{path} diverged from the model");
                }
                // Write (creating if absent): contiguous-or-overlapping
                // extents so the model needs no hole semantics.
                _ => {
                    let blob = store.open_or_create_file(&path).unwrap();
                    let entry = mirror.entry(path).or_insert_with(|| (Vec::new(), 0));
                    let offset = rng.below(entry.0.len() as u64 + 1);
                    let len = 1 + rng.below(3 * CHUNK);
                    let fill = (rng.next() & 0xFF) as u8;
                    blob.write(p, offset, Bytes::from(vec![fill; len as usize]))
                        .unwrap();
                    let end = (offset + len) as usize;
                    if entry.0.len() < end {
                        entry.0.resize(end, 0);
                    }
                    entry.0[offset as usize..end].fill(fill);
                    entry.1 += 1;
                }
            }
        }
        mirror
    });

    // Final sweep: one reader walks the whole namespace.
    let paths = store.list("/");
    let paths_ref = &paths;
    run_actors_on(&clock, 1, move |_, p| {
        paths_ref
            .iter()
            .map(|path| {
                let blob = store.open_file(path).unwrap();
                let latest = blob.latest(p).unwrap();
                let bytes = blob.read_list(
                    p,
                    ReadVersion::Latest,
                    &ExtentList::single(ByteRange::new(0, latest.size)),
                );
                (path.clone(), latest.version.raw(), bytes.unwrap())
            })
            .collect()
    })
    .pop()
    .unwrap()
}

#[test]
fn multi_tenant_namespace_is_bit_identical_across_shard_counts_and_transports() {
    // Reference: the single-oracle loopback fleet — behaviorally the
    // deployment every earlier test in this repo pinned down.
    let reference = run_multi_tenant(&store_over(&loopback_fleet(1)));
    assert!(
        !reference.is_empty(),
        "the seeded workload must leave files behind"
    );
    // Version chains actually grew (multiple publishes per file).
    assert!(reference.iter().any(|(_, v, _)| *v > 1));

    for (label, fleet) in [
        ("loopback/4-shard", loopback_fleet(4)),
        (
            "tcp-mux/1-shard",
            tcp_fleet(1, RpcMode::Mux, &BackendConfig::Memory),
        ),
        (
            "tcp-mux/4-shard",
            tcp_fleet(4, RpcMode::Mux, &BackendConfig::Memory),
        ),
    ] {
        let got = run_multi_tenant(&store_over(&fleet));
        assert_eq!(
            got, reference,
            "{label}: namespace, version chains, or bytes diverged"
        );
    }
}

/// Grants one published version on blob `b` through `vm`, rooted at a
/// deterministic node key.
fn publish_once(vm: &RemoteVersionManager, blob: u64) -> VersionId {
    let (ticket, _) = vm.ticket_append(CHUNK).unwrap();
    let version = ticket.version;
    let root = NodeKey::new(
        BlobId::new(blob),
        version,
        ByteRange::new(0, ticket.capacity),
    );
    vm.publish(ticket, root).unwrap();
    version
}

#[test]
fn killing_one_shard_fails_only_its_slots_and_recovers_on_the_same_port() {
    let tmp = TempDir::new("atomio-shard-kill");
    let backend = BackendConfig::disk(tmp.path());
    let mut fleet = tcp_fleet(4, RpcMode::PerCall, &backend);
    let map = SlotMap::uniform(4);

    // Two published versions on each of 32 blobs, slot-routed.
    let blobs: Vec<u64> = (0..32).collect();
    for &b in &blobs {
        let vm = RemoteVersionManager::new(b, Arc::clone(&fleet.transport));
        publish_once(&vm, b);
        publish_once(&vm, b);
    }
    let on_victim = |b: u64| map.group_of(slot_for_blob(b)) == Some(1);
    let victims: Vec<u64> = blobs.iter().copied().filter(|b| on_victim(*b)).collect();
    let survivors: Vec<u64> = blobs.iter().copied().filter(|b| !on_victim(*b)).collect();
    assert!(
        !victims.is_empty() && !survivors.is_empty(),
        "32 hashed blobs cover shard 1 and its complement"
    );

    // Mid-commit crash: a writer on a victim blob holds a granted
    // ticket when its shard dies; the publish fails typed.
    let doomed_blob = victims[0];
    let doomed = RemoteVersionManager::new(doomed_blob, Arc::clone(&fleet.transport));
    let (t3, _) = doomed.ticket_append(CHUNK).unwrap();
    assert_eq!(t3.version, VersionId::new(3));
    let addr = fleet.servers[1].local_addr();
    fleet.servers[1].stop();
    let err = doomed
        .publish(
            t3,
            NodeKey::new(
                BlobId::new(doomed_blob),
                t3.version,
                ByteRange::new(0, t3.capacity),
            ),
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::Transport { .. }),
        "mid-commit shard death is a typed transport error, got {err:?}"
    );

    // Blast radius is exactly shard 1's slots: victims fail typed,
    // survivors keep granting and publishing.
    for &b in &victims {
        let vm = RemoteVersionManager::new(b, Arc::clone(&fleet.transport));
        assert!(
            matches!(vm.latest(), Err(Error::Transport { .. })),
            "blob {b} lives on the dead shard"
        );
    }
    for &b in &survivors {
        let vm = RemoteVersionManager::new(b, Arc::clone(&fleet.transport));
        assert_eq!(vm.latest().unwrap().version, VersionId::new(2));
        assert_eq!(publish_once(&vm, b), VersionId::new(3));
    }

    // Fresh process on the same port: the shard's publish logs bring
    // back every published version; the torn v3 grant never surfaces.
    let recovered = Arc::new(VersionService::with_backend(CHUNK, backend.clone()).with_shard(1, 4));
    fleet.servers[1] =
        RpcServer::start(addr, Arc::clone(&recovered) as Arc<dyn Service>).expect("rebind shard 1");
    fleet.services[1] = recovered;
    for &b in &victims {
        let vm = RemoteVersionManager::new(b, Arc::clone(&fleet.transport));
        assert_eq!(
            vm.latest().unwrap().version,
            VersionId::new(2),
            "blob {b}: published prefix recovered"
        );
        assert!(!vm.is_published(VersionId::new(3)).unwrap());
    }
    // The recovered shard reissues the rolled-back number and the
    // pipeline is healthy again.
    assert_eq!(publish_once(&doomed, doomed_blob), VersionId::new(3));
}

#[test]
fn stale_client_maps_self_heal_through_wrong_shard_redirects() {
    let fleet = loopback_fleet(2);
    let map = SlotMap::uniform(2);
    let routed = Arc::new(SlotRoutedTransport::new(vec![
        Arc::new(Loopback::new(
            Arc::clone(&fleet.services[0]) as Arc<dyn Service>
        )) as Arc<dyn Transport>,
        Arc::new(Loopback::new(
            Arc::clone(&fleet.services[1]) as Arc<dyn Service>
        )) as Arc<dyn Transport>,
    ]));

    // A blob owned by shard 1 under the uniform map.
    let blob = (0..u64::MAX)
        .find(|b| map.group_of(slot_for_blob(*b)) == Some(1))
        .unwrap();

    // Membership change behind the client's back: every slot of shard 1
    // moves to shard 0, installed on both servers at epoch 2.
    let next = map.reassign(&map.slots_of(1), 0);
    for service in &fleet.services {
        let (resp, _) = Loopback::new(Arc::clone(service) as Arc<dyn Service>)
            .call(
                &atomio::rpc::Request::SlotMapInstall { map: next.clone() },
                &[],
            )
            .unwrap();
        assert!(matches!(resp, atomio::rpc::Response::Unit));
    }

    // The router still believes the uniform map, so its first attempt
    // lands on shard 1, draws `WrongShard { epoch: 2 }`, refreshes, and
    // retries against shard 0 — invisible to the caller.
    let vm = RemoteVersionManager::new(blob, routed.clone() as Arc<dyn Transport>);
    assert_eq!(publish_once(&vm, blob), VersionId::new(1));
    assert_eq!(routed.slot_map().epoch, 2, "redirect refreshed the map");

    // Shard 1 now owns the empty slot range: it answers — with typed
    // refusals — rather than serving stale state.
    assert!(next.slots_of(1).is_empty());
    let direct = RemoteVersionManager::new(
        blob,
        Arc::new(Loopback::new(
            Arc::clone(&fleet.services[1]) as Arc<dyn Service>
        )) as Arc<dyn Transport>,
    );
    assert!(
        matches!(direct.latest(), Err(Error::WrongShard { epoch: 2, .. })),
        "a drained shard refuses with its installed epoch"
    );
}

#[test]
fn online_handoff_drains_grants_and_double_replay_is_idempotent() {
    let fleet = loopback_fleet(2);
    let transports: Vec<Arc<dyn Transport>> = fleet
        .services
        .iter()
        .map(|s| Arc::new(Loopback::new(Arc::clone(s) as Arc<dyn Service>)) as Arc<dyn Transport>)
        .collect();
    let map = SlotMap::uniform(2);

    // Three blobs on shard 1, two published versions each, plus one
    // ticket still in flight when the handoff starts.
    let moving_blobs: Vec<u64> = (0..u64::MAX)
        .filter(|b| map.group_of(slot_for_blob(*b)) == Some(1))
        .take(3)
        .collect();
    for &b in &moving_blobs {
        let vm = RemoteVersionManager::new(b, Arc::clone(&fleet.transport));
        publish_once(&vm, b);
        publish_once(&vm, b);
    }
    let straggler_blob = moving_blobs[0];
    let straggler = RemoteVersionManager::new(straggler_blob, Arc::clone(&fleet.transport));
    let (t3, _) = straggler.ticket_append(CHUNK).unwrap();

    // The in-flight writer publishes while the coordinator is freezing
    // and draining — the freeze blocks new tickets, not this publish.
    let publisher = std::thread::spawn({
        let root = NodeKey::new(
            BlobId::new(straggler_blob),
            t3.version,
            ByteRange::new(0, t3.capacity),
        );
        move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            straggler.publish(t3, root).unwrap();
        }
    });
    let moving = map.slots_of(1);
    let next = handoff_slots(&transports, &map, &moving, 0).expect("handoff");
    publisher.join().unwrap();
    assert_eq!(next.epoch, 2);
    assert!(next.slots_of(1).is_empty());

    // The drained publish migrated with the rest of the prefix: the new
    // owner serves v3 of the straggler and v2 of the others.
    for &b in &moving_blobs {
        let vm = RemoteVersionManager::new(b, Arc::clone(&fleet.transport));
        let want = if b == straggler_blob { 3 } else { 2 };
        assert_eq!(vm.latest().unwrap().version, VersionId::new(want));
        // And the chain keeps growing on the new owner.
        assert_eq!(publish_once(&vm, b), VersionId::new(want + 1));
    }

    // Double replay: exporting the (now thawed-and-empty) source again
    // and re-importing applies nothing — the import skips versions at
    // or below the destination's published head.
    let export = transports[1]
        .call(
            &atomio::rpc::Request::VmExportSlots {
                slots: moving.clone(),
            },
            &[],
        )
        .unwrap();
    let atomio::rpc::Response::SlotExport { blobs } = export.0 else {
        panic!("expected SlotExport, got {:?}", export.0);
    };
    let replayed = transports[0]
        .call(&atomio::rpc::Request::VmImportBlobs { blobs }, &[])
        .unwrap();
    match replayed.0 {
        atomio::rpc::Response::Count { value } => {
            assert_eq!(value, 0, "double replay applies no versions")
        }
        other => panic!("expected Count, got {other:?}"),
    }
    drop(fleet.servers);
}

/// A writer that holds its ticket past the drain budget cannot be
/// silently dropped by the handoff: the moving slots are sealed before
/// the export, so the straggler's publish is *refused* (typed) and the
/// version is absent everywhere — never acked-then-vanished.
#[test]
fn handoff_seals_slots_so_an_abandoned_straggler_fails_typed_not_silently() {
    let fleet = loopback_fleet(2);
    let transports: Vec<Arc<dyn Transport>> = fleet
        .services
        .iter()
        .map(|s| Arc::new(Loopback::new(Arc::clone(s) as Arc<dyn Service>)) as Arc<dyn Transport>)
        .collect();
    let map = SlotMap::uniform(2);

    let blob = (0..u64::MAX)
        .find(|b| map.group_of(slot_for_blob(*b)) == Some(1))
        .unwrap();
    let vm = RemoteVersionManager::new(blob, Arc::clone(&fleet.transport));
    publish_once(&vm, blob);
    publish_once(&vm, blob);
    // The straggler: granted before the handoff, never published while
    // it runs, held far past the (tiny) drain budget.
    let (t3, _) = vm.ticket_append(CHUNK).unwrap();

    let moving = map.slots_of(1);
    let next = handoff_slots_with_budget(
        &transports,
        &map,
        &moving,
        0,
        std::time::Duration::from_millis(30),
    )
    .expect("handoff proceeds past an undrained ticket");
    assert_eq!(next.epoch, 2);

    // The abandoned ticket's publish is refused — the new owner never
    // granted it — and v3 exists nowhere.
    let err = vm
        .publish(
            t3,
            NodeKey::new(
                BlobId::new(blob),
                t3.version,
                ByteRange::new(0, t3.capacity),
            ),
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::Internal(_)),
        "abandoned straggler fails typed, got {err:?}"
    );
    assert_eq!(vm.latest().unwrap().version, VersionId::new(2));
    assert!(!vm.is_published(VersionId::new(3)).unwrap());
    // The chain resumes cleanly on the new owner, reissuing v3.
    assert_eq!(publish_once(&vm, blob), VersionId::new(3));
}

/// `VmSealSlots` escalates a freeze: publishes in the sealed slots are
/// refused with `WrongShard`, so the post-seal export is a consistent
/// final snapshot of the moving slots.
#[test]
fn sealed_slots_refuse_publishes_with_wrong_shard() {
    let fleet = loopback_fleet(2);
    let shard1: Arc<dyn Transport> = Arc::new(Loopback::new(
        Arc::clone(&fleet.services[1]) as Arc<dyn Service>
    ));
    let map = SlotMap::uniform(2);
    let blob = (0..u64::MAX)
        .find(|b| map.group_of(slot_for_blob(*b)) == Some(1))
        .unwrap();
    let vm = RemoteVersionManager::new(blob, Arc::clone(&fleet.transport));
    publish_once(&vm, blob);
    let (t2, _) = vm.ticket_append(CHUNK).unwrap();

    let slot = slot_for_blob(blob);
    let sealed = shard1
        .call(
            &atomio::rpc::Request::VmSealSlots {
                slots: vec![slot],
                epoch: 2,
            },
            &[],
        )
        .unwrap();
    match sealed.0 {
        atomio::rpc::Response::Count { value } => {
            assert_eq!(value, 1, "the in-flight grant is reported as abandoned")
        }
        other => panic!("expected Count, got {other:?}"),
    }

    // Both the held ticket's publish and fresh tickets are refused
    // typed on the sealed shard.
    let direct = RemoteVersionManager::new(blob, Arc::clone(&shard1));
    let err = direct
        .publish(
            t2,
            NodeKey::new(
                BlobId::new(blob),
                t2.version,
                ByteRange::new(0, t2.capacity),
            ),
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::WrongShard { epoch: 2, .. }),
        "publish into a sealed slot draws WrongShard, got {err:?}"
    );
    assert!(matches!(
        direct.ticket_append(CHUNK),
        Err(Error::WrongShard { epoch: 2, .. })
    ));
    // Reads still serve (the seal freezes mutation, not visibility) and
    // the sealed state exports exactly the published prefix.
    assert_eq!(direct.latest().unwrap().version, VersionId::new(1));

    // Installing the reassigned map thaws the seal.
    let next = map.reassign(&[slot], 0);
    let (resp, _) = shard1
        .call(&atomio::rpc::Request::SlotMapInstall { map: next }, &[])
        .unwrap();
    assert!(matches!(resp, atomio::rpc::Response::Unit));
    drop(fleet.servers);
}

/// Freezes merge per slot: a second handoff freezing a *disjoint* slot
/// set off the same shard must not thaw the first one's slots mid-drain
/// (the old all-or-nothing freeze state clobbered them).
#[test]
fn disjoint_concurrent_freezes_merge_instead_of_clobbering() {
    let fleet = loopback_fleet(2);
    let shard1: Arc<dyn Transport> = Arc::new(Loopback::new(
        Arc::clone(&fleet.services[1]) as Arc<dyn Service>
    ));
    let map = SlotMap::uniform(2);
    let mut owned = map.slots_of(1).into_iter();
    let slot_a = owned.next().unwrap();
    let slot_b = owned.next().unwrap();

    for (slots, epoch) in [(vec![slot_a], 2u64), (vec![slot_b], 2u64)] {
        let (resp, _) = shard1
            .call(&atomio::rpc::Request::VmFreezeSlots { slots, epoch }, &[])
            .unwrap();
        assert!(matches!(resp, atomio::rpc::Response::Count { .. }));
    }

    // Both handoffs' slots stay frozen: tickets in slot_a are still
    // refused after slot_b's freeze landed.
    for slot in [slot_a, slot_b] {
        let blob = (0..u64::MAX).find(|b| slot_for_blob(*b) == slot).unwrap();
        let direct = RemoteVersionManager::new(blob, Arc::clone(&shard1));
        assert!(
            matches!(
                direct.ticket_append(CHUNK),
                Err(Error::WrongShard { epoch: 2, .. })
            ),
            "slot {slot} must remain frozen"
        );
    }

    // A map install at the freeze epoch thaws both entries.
    let (resp, _) = shard1
        .call(
            &atomio::rpc::Request::SlotMapInstall {
                map: map.bump_epoch(),
            },
            &[],
        )
        .unwrap();
    assert!(matches!(resp, atomio::rpc::Response::Unit));
    let blob_a = (0..u64::MAX).find(|b| slot_for_blob(*b) == slot_a).unwrap();
    let direct = RemoteVersionManager::new(blob_a, Arc::clone(&shard1));
    direct
        .ticket_append(CHUNK)
        .expect("thawed slot grants again");
    drop(fleet.servers);
}

/// A map that routes a slot to a shard the router has no transport for
/// is a permanent configuration mismatch: the router fails fast with an
/// error naming the missing shard instead of burning its full
/// redirect-retry budget on a misleading "unassigned" message.
#[test]
fn slot_routed_to_an_undialed_shard_fails_fast_with_a_named_shard() {
    let fleet = loopback_fleet(2);
    let routed = Arc::new(SlotRoutedTransport::new(
        fleet
            .services
            .iter()
            .map(|s| {
                Arc::new(Loopback::new(Arc::clone(s) as Arc<dyn Service>)) as Arc<dyn Transport>
            })
            .collect(),
    ));
    let map = SlotMap::uniform(2);
    let blob = 7u64;
    let slot = slot_for_blob(blob);
    routed.install(map.reassign(&[slot], 5));

    let vm = RemoteVersionManager::new(blob, routed.clone() as Arc<dyn Transport>);
    let started = std::time::Instant::now();
    let err = vm.latest().unwrap_err();
    let Error::Internal(msg) = &err else {
        panic!("expected a typed Internal error, got {err:?}");
    };
    assert!(
        msg.contains("shard 5"),
        "the error names the missing shard: {msg}"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_millis(100),
        "fail-fast must not burn the 100-retry redirect budget"
    );
    drop(fleet.servers);
}
