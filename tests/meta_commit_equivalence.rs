//! Equivalence of the two metadata commit engines: the batched
//! shard-parallel path must be an optimization, not a behavior change.
//! Every test runs the same scenario under `MetaCommitMode::Serial` and
//! `MetaCommitMode::Batched` and demands the same observable outcome —
//! bytes, version counts, node sets, verifier verdicts, and fault
//! semantics — plus run-to-run bit-reproducibility of the virtual clock.

use atomio::core::{Blob, MetaCommitMode, ReadVersion, Store, StoreConfig};
use atomio::mpiio::adio::AdioDriver;
use atomio::mpiio::drivers::VersioningDriver;
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::{Error, ExtentList, ProviderId};
use atomio::workloads::{run_write_round, OverlapWorkload};
use bytes::Bytes;
use std::sync::Arc;

const MODES: [MetaCommitMode; 2] = [MetaCommitMode::Serial, MetaCommitMode::Batched];

fn store_with(mode: MetaCommitMode) -> Store {
    Store::new(
        StoreConfig::default()
            .with_chunk_size(4 * 1024)
            .with_data_providers(8)
            .with_meta_commit_mode(mode)
            .with_seed(0xD1CE),
    )
}

/// A deterministic single-writer history: overlapping extent lists,
/// partial chunks, a hole, and an append-ish tail write.
fn apply_history(blob: &Blob, p: &atomio::simgrid::Participant) {
    let w = |pairs: &[(u64, u64)], fill: u8| {
        let ext = ExtentList::from_pairs(pairs.iter().copied());
        let payload = Bytes::from(vec![fill; ext.total_len() as usize]);
        blob.write_list(p, &ext, payload).unwrap();
    };
    w(&[(0, 64 * 1024)], 0x11); // base
    w(&[(10_000, 5_000), (40_000, 12_345)], 0x22); // partial chunks
    w(&[(3_000, 1), (8_191, 2), (16_384, 4_096)], 0x33); // tiny + aligned
    w(&[(96 * 1024, 8 * 1024)], 0x44); // leaves a hole after 64 KiB
    w(&[(0, 30_000), (20_000, 30_000)], 0x55); // self-overlapping list
}

#[test]
fn modes_produce_byte_identical_contents_and_node_sets() {
    let full = ExtentList::from_pairs([(0u64, 104 * 1024u64)]);
    let mut images = Vec::new();
    for mode in MODES {
        let store = store_with(mode);
        let blob = store.create_blob();
        let clock = SimClock::new();
        let full = &full;
        let blob_ref = &blob;
        let mut out = run_actors_on(&clock, 1, move |_, p| {
            apply_history(blob_ref, p);
            let latest = blob_ref.latest(p).unwrap();
            (
                latest.version,
                blob_ref.read_list(p, ReadVersion::Latest, full).unwrap(),
            )
        });
        let (version, bytes) = out.pop().unwrap();
        images.push((version, bytes, store.meta().node_count()));
    }
    let (serial_version, serial_bytes, serial_nodes) = &images[0];
    let (batched_version, batched_bytes, batched_nodes) = &images[1];
    assert_eq!(serial_version, batched_version, "version histories differ");
    assert_eq!(serial_bytes, batched_bytes, "blob contents differ");
    assert_eq!(serial_nodes, batched_nodes, "stored node sets differ");
}

#[test]
fn every_published_version_matches_across_modes() {
    // Not just the final state: each intermediate snapshot must agree.
    // The base write makes every version at least 64 KiB, so that
    // prefix is readable at each snapshot.
    let full = ExtentList::from_pairs([(0u64, 64 * 1024u64)]);
    let mut per_mode = Vec::new();
    for mode in MODES {
        let store = store_with(mode);
        let blob = store.create_blob();
        let clock = SimClock::new();
        let full = &full;
        let blob_ref = &blob;
        let mut out = run_actors_on(&clock, 1, move |_, p| {
            apply_history(blob_ref, p);
            let last = blob_ref.latest(p).unwrap().version;
            (1..=last.raw())
                .map(|v| {
                    blob_ref
                        .read_at(p, atomio::types::VersionId::new(v), full)
                        .unwrap()
                })
                .collect::<Vec<_>>()
        });
        per_mode.push(out.pop().unwrap());
    }
    assert_eq!(per_mode[0].len(), per_mode[1].len());
    for (v, (s, b)) in per_mode[0].iter().zip(&per_mode[1]).enumerate() {
        assert_eq!(s, b, "snapshot {} differs between modes", v + 1);
    }
}

#[test]
fn concurrent_atomic_writes_serialize_in_both_modes() {
    let workload = OverlapWorkload::new(6, 8, 16 * 1024, 1, 2);
    let extents: Vec<ExtentList> = (0..6).map(|c| workload.extents_for(c)).collect();
    for mode in MODES {
        let store = Store::new(
            StoreConfig::default()
                .with_chunk_size(16 * 1024)
                .with_data_providers(8)
                .with_meta_commit_mode(mode)
                .with_seed(0xD1CE),
        );
        let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(store.create_blob()));
        let clock = SimClock::new();
        let out = run_write_round(&clock, &driver, &extents, true, 9, true);
        assert!(
            out.is_atomic_ok(),
            "{mode:?} violated atomicity: {:?}",
            out.violation
        );
    }
}

#[test]
fn concurrent_rounds_are_bit_reproducible_per_mode() {
    // The deterministic clock sequencer releases same-instant wake-ups
    // in participant-id order, so two identical concurrent runs must
    // agree on virtual time to the nanosecond — in either commit mode.
    let workload = OverlapWorkload::new(6, 8, 16 * 1024, 1, 2);
    let extents: Vec<ExtentList> = (0..6).map(|c| workload.extents_for(c)).collect();
    for mode in MODES {
        let run = || {
            let store = Store::new(
                StoreConfig::default()
                    .with_chunk_size(16 * 1024)
                    .with_data_providers(8)
                    .with_meta_commit_mode(mode)
                    .with_seed(0xD1CE),
            );
            let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(store.create_blob()));
            let clock = SimClock::new();
            let out = run_write_round(&clock, &driver, &extents, true, 9, false);
            (out.elapsed, out.total_bytes, store.meta().node_count())
        };
        assert_eq!(run(), run(), "{mode:?}: runs diverged");
    }
}

#[test]
fn under_quorum_writes_tombstone_identically_in_both_modes() {
    for mode in MODES {
        let s = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(1024)
                .with_data_providers(2)
                .with_replication(2, 2)
                .with_meta_commit_mode(mode),
        );
        let blob = s.create_blob();
        let clock = SimClock::new();
        run_actors_on(&clock, 1, |_, p| {
            s.faults().fail_provider(ProviderId::new(0));
            let err = blob.write(p, 0, Bytes::from(vec![1u8; 512])).unwrap_err();
            assert!(
                matches!(err, Error::InsufficientReplicas { .. }),
                "{mode:?}: got {err}"
            );
            // The failed write must publish an invisible tombstone and
            // leave the pipeline retryable — same contract as serial.
            let latest = blob.latest(p).unwrap().version;
            let zeros = blob
                .read_at(p, latest, &ExtentList::from_pairs([(0u64, 512u64)]))
                .unwrap();
            assert_eq!(zeros, vec![0u8; 512], "{mode:?}: failed write visible");
            s.faults().heal_provider(ProviderId::new(0));
            let v = blob.write(p, 0, Bytes::from(vec![1u8; 512])).unwrap();
            let got = blob
                .read_at(p, v, &ExtentList::from_pairs([(0u64, 512u64)]))
                .unwrap();
            assert_eq!(got, vec![1u8; 512], "{mode:?}: retry lost data");
        });
    }
}
