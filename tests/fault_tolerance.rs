//! Fault-injection tests across the stack: replication masking provider
//! failures, clean failures without replication, and OST failures in the
//! baseline file system.

use atomio::core::{ReadVersion, Store, StoreConfig};
use atomio::pfs::ParallelFs;
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::{CostModel, Metrics, SimClock};
use atomio::types::{ByteRange, Error, ExtentList, ProviderId};
use bytes::Bytes;

fn run_latest(
    blob: &atomio::core::Blob,
    p: &atomio::simgrid::Participant,
) -> atomio::types::VersionId {
    blob.latest(p).unwrap().version
}

#[test]
fn replicated_store_survives_any_single_provider_loss() {
    let s = Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(1024)
            .with_data_providers(5)
            .with_replication(2, 2),
    );
    let blob = s.create_blob();
    let clock = SimClock::new();
    let ext = ExtentList::from_pairs([(0u64, 10_240u64)]); // 10 chunks
    run_actors_on(&clock, 1, |_, p| {
        blob.write_list(p, &ext, Bytes::from(vec![0x42u8; 10_240]))
            .unwrap();
        // Kill each provider in turn (healing in between): every byte
        // must stay readable through the surviving replica.
        for victim in 0..5u64 {
            s.faults().fail_provider(ProviderId::new(victim));
            let got = blob
                .read_list(p, ReadVersion::Latest, &ext)
                .unwrap_or_else(|e| panic!("lost data when provider {victim} died: {e}"));
            assert_eq!(got, vec![0x42u8; 10_240]);
            s.faults().heal_provider(ProviderId::new(victim));
        }
    });
}

#[test]
fn unreplicated_store_fails_cleanly_not_corruptly() {
    let s = Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(1024)
            .with_data_providers(4)
            .with_replication(1, 1),
    );
    let blob = s.create_blob();
    let clock = SimClock::new();
    run_actors_on(&clock, 1, |_, p| {
        blob.write(p, 0, Bytes::from(vec![7u8; 4096])).unwrap();
        s.faults().fail_provider(ProviderId::new(0));
        // Some chunk lived on provider 0 (round-robin): the read must
        // error, never return wrong bytes.
        match blob.read(p, 0, 4096) {
            Err(Error::ProviderFailed(_)) | Err(Error::ChunkNotFound { .. }) => {}
            Ok(data) => assert_eq!(data, vec![7u8; 4096], "if it answers, it must be right"),
            Err(e) => panic!("unexpected error {e}"),
        }
    });
}

#[test]
fn writes_fail_when_quorum_is_unreachable() {
    let s = Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(1024)
            .with_data_providers(2)
            .with_replication(2, 2),
    );
    let blob = s.create_blob();
    let clock = SimClock::new();
    run_actors_on(&clock, 1, |_, p| {
        s.faults().fail_provider(ProviderId::new(0));
        // Only one live provider but two replicas required.
        let err = blob.write(p, 0, Bytes::from(vec![1u8; 512])).unwrap_err();
        assert!(
            matches!(err, Error::InsufficientReplicas { .. }),
            "got {err}"
        );
        // The failed write publishes a tombstone: the pipeline is not
        // wedged, the failed data is invisible, and a retry succeeds.
        let latest = run_latest(&blob, p);
        let zeros = blob
            .read_at(p, latest, &ExtentList::from_pairs([(0u64, 512u64)]))
            .unwrap();
        assert_eq!(zeros, vec![0u8; 512], "failed write must be invisible");
        s.faults().heal_provider(ProviderId::new(0));
        let v = blob.write(p, 0, Bytes::from(vec![1u8; 512])).unwrap();
        let got = blob
            .read_at(p, v, &ExtentList::from_pairs([(0u64, 512u64)]))
            .unwrap();
        assert_eq!(got, vec![1u8; 512]);
    });
}

#[test]
fn pfs_ost_failure_surfaces_as_error() {
    let fs = ParallelFs::new(3, CostModel::zero(), Metrics::new());
    let f = fs.create_file(1024);
    let clock = SimClock::new();
    run_actors_on(&clock, 1, |_, p| {
        f.pwrite(p, 0, &vec![9u8; 3072]).unwrap();
        fs.faults().fail_provider(ProviderId::new(1));
        // Stripe 1 lives on OST 1: reads and writes touching it fail.
        assert!(matches!(f.pread(p, 0, 3072), Err(Error::ProviderFailed(_))));
        assert!(matches!(
            f.pwrite(p, 1024, &[0u8; 10]),
            Err(Error::ProviderFailed(_))
        ));
        // Untouched stripes still work.
        assert_eq!(f.pread(p, 0, 1024).unwrap(), vec![9u8; 1024]);
        fs.faults().heal_provider(ProviderId::new(1));
        assert_eq!(f.pread(p, 0, 3072).unwrap(), vec![9u8; 3072]);
    });
}

#[test]
fn failure_during_concurrent_round_does_not_corrupt_survivors() {
    // 4 writers to a replicated store; provider 2 dies mid-round. All
    // writes that report success must be fully readable afterwards.
    let s = Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(1024)
            .with_data_providers(4)
            .with_replication(2, 1),
    );
    let blob = s.create_blob();
    let clock = SimClock::new();
    let results = run_actors_on(&clock, 4, |i, p| {
        if i == 3 {
            s.faults().fail_provider(ProviderId::new(2));
            return None;
        }
        let off = i as u64 * 8192;
        blob.write(p, off, Bytes::from(vec![i as u8 + 1; 8192]))
            .ok()
            .map(|v| (off, v))
    });
    run_actors_on(&clock, 1, |_, p| {
        for r in results.iter().flatten() {
            let (off, v) = *r;
            let got = blob
                .read_at(p, v, &ExtentList::single(ByteRange::new(off, 8192)))
                .unwrap();
            let expected = (off / 8192) as u8 + 1;
            assert_eq!(got, vec![expected; 8192]);
        }
    });
}

#[test]
fn end_to_end_scrub_heals_bit_rot() {
    use atomio::types::ChunkId;
    let s = Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(1024)
            .with_data_providers(4)
            .with_replication(2, 2)
            .with_meta_cache(0),
    );
    let blob = s.create_blob();
    let clock = SimClock::new();
    run_actors_on(&clock, 1, |_, p| {
        blob.write(p, 0, Bytes::from(vec![0xABu8; 8192])).unwrap();
        // Rot one byte of one replica of some chunk.
        let victim = s
            .providers()
            .providers()
            .iter()
            .find(|pr| pr.chunk_count() > 0)
            .expect("data landed somewhere");
        // Find an actual chunk id on that provider by probing.
        let chunk = (0..64)
            .map(ChunkId::new)
            .find(|&c| victim.has_chunk(c))
            .expect("probed a chunk id");
        victim.corrupt_chunk(chunk, 3);
        let (found, repaired) = s.scrub_and_repair(p).unwrap();
        assert_eq!((found, repaired), (1, 1));
        // Data is intact afterwards.
        assert_eq!(blob.read(p, 0, 8192).unwrap(), vec![0xABu8; 8192]);
        // Second sweep is clean.
        assert_eq!(s.scrub_and_repair(p).unwrap(), (0, 0));
    });
}
