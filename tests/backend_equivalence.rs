//! Cross-backend equivalence: for deterministic (conflict-free or
//! single-writer) workloads, every backend must produce byte-identical
//! file contents — the concurrency-control strategy may change *when*
//! things happen, never *what* the file ends up holding.
//!
//! The same contract holds one layer down for *storage* backends: the
//! in-memory and disk substrates behind [`BackendConfig`] must yield
//! identical version chains, bytes, and metadata — see the last test.

use atomio::core::{ReadVersion, Store, StoreConfig};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::stamp::WriteStamp;
use atomio::types::tempdir::TempDir;
use atomio::types::{BackendConfig, ByteRange, ClientId, ExtentList, VersionId};
use atomio::workloads::{CheckpointWorkload, OverlapWorkload, TileWorkload};
use atomio_bench::{Backend, BenchConfig};
use atomio_simgrid::CostModel;

fn final_state(backend: Backend, extents: &[ExtentList], sequential: bool) -> Vec<u8> {
    let cfg = BenchConfig {
        servers: 4,
        chunk_size: 4096,
        cost: CostModel::zero(),
        ..BenchConfig::default()
    };
    let (driver, _) = cfg.build(backend);
    let clock = SimClock::new();
    let n = extents.len();
    if sequential {
        run_actors_on(&clock, 1, |_, p| {
            for (i, e) in extents.iter().enumerate() {
                let stamp = WriteStamp::new(ClientId::new(i as u64), 1);
                driver
                    .write_extents(
                        p,
                        ClientId::new(i as u64),
                        e,
                        bytes::Bytes::from(stamp.payload_for(e)),
                        backend.atomic_flag(),
                    )
                    .unwrap();
            }
        });
    } else {
        run_actors_on(&clock, n, |i, p| {
            let stamp = WriteStamp::new(ClientId::new(i as u64), 1);
            driver
                .write_extents(
                    p,
                    ClientId::new(i as u64),
                    &extents[i],
                    bytes::Bytes::from(stamp.payload_for(&extents[i])),
                    backend.atomic_flag(),
                )
                .unwrap();
        });
    }
    let end = extents
        .iter()
        .map(|e| e.covering_range().end())
        .max()
        .unwrap();
    run_actors_on(&clock, 1, |_, p| {
        driver
            .read_extents(
                p,
                ClientId::new(99),
                &ExtentList::single(ByteRange::new(0, end)),
                false,
            )
            .unwrap()
    })
    .pop()
    .unwrap()
}

#[test]
fn concurrent_disjoint_workload_is_backend_independent() {
    let w = OverlapWorkload::new(6, 8, 2048, 0, 2); // zero overlap
    let extents: Vec<ExtentList> = (0..6).map(|c| w.extents_for(c)).collect();
    let reference = final_state(Backend::Versioning, &extents, false);
    for backend in [
        Backend::LustreLock,
        Backend::WholeFileLock,
        Backend::ConflictDetect,
        Backend::NoLock,
    ] {
        let got = final_state(backend, &extents, false);
        assert_eq!(got, reference, "{} differs", backend.label());
    }
}

#[test]
fn sequential_overlapping_workload_is_backend_independent() {
    // Sequential writes make the outcome deterministic even with
    // overlap: last writer wins everywhere in program order.
    let w = OverlapWorkload::new(4, 6, 1024, 1, 2);
    let extents: Vec<ExtentList> = (0..4).map(|c| w.extents_for(c)).collect();
    let reference = final_state(Backend::Versioning, &extents, true);
    for backend in [
        Backend::LustreLock,
        Backend::WholeFileLock,
        Backend::ConflictDetect,
        Backend::NoLock,
    ] {
        let got = final_state(backend, &extents, true);
        assert_eq!(got, reference, "{} differs", backend.label());
    }
}

#[test]
fn tile_without_ghosts_is_backend_independent() {
    let w = TileWorkload::new(2, 2, 8, 8, 4, 0, 0);
    let extents: Vec<ExtentList> = (0..w.processes()).map(|r| w.extents_for(r)).collect();
    let reference = final_state(Backend::Versioning, &extents, false);
    let got = final_state(Backend::LustreLock, &extents, false);
    assert_eq!(got, reference);
}

#[test]
fn checkpoint_without_halo_is_backend_independent() {
    let w = CheckpointWorkload::new(4, 256, 8, 0);
    let extents: Vec<ExtentList> = (0..w.ranks).map(|r| w.extents_for(r)).collect();
    let reference = final_state(Backend::Versioning, &extents, false);
    for backend in [Backend::LustreLock, Backend::NoLock] {
        assert_eq!(final_state(backend, &extents, false), reference);
    }
}

/// Runs a sequential tile workload through a full `Store` on the given
/// storage backend and images every committed version plus the final
/// metadata shape.
fn storage_backend_history(backend: BackendConfig) -> (VersionId, Vec<Vec<u8>>, usize) {
    let w = TileWorkload::new(2, 2, 16, 16, 8, 2, 0);
    let store = Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(512)
            .with_data_providers(4)
            .with_meta_shards(2)
            .with_backend(backend)
            .with_seed(42),
    );
    let blob = store.create_blob();
    let clock = SimClock::new();
    let blob_ref = &blob;
    let w_ref = &w;
    // Sequential so both backends commit the same version chain; the
    // concurrent case is covered above per lock strategy, and via
    // `ATOMIO_DISK=1` reruns of the distributed suites.
    run_actors_on(&clock, 1, move |_, p| {
        for rank in 0..w_ref.processes() {
            let ext = w_ref.extents_for(rank);
            let stamp = WriteStamp::new(ClientId::new(rank as u64), 1);
            blob_ref
                .write_list(p, &ext, bytes::Bytes::from(stamp.payload_for(&ext)))
                .unwrap();
        }
    });
    let (latest, images) = run_actors_on(&clock, 1, move |_, p| {
        let latest = blob_ref.latest(p).unwrap().version;
        let images = (1..=latest.raw())
            .map(|v| {
                // Each version is imaged at its own snapshot size: early
                // tiles don't reach the end of the dataset yet.
                let size = blob_ref
                    .version_manager()
                    .snapshot(p, VersionId::new(v))
                    .unwrap()
                    .size;
                let full = ExtentList::single(ByteRange::new(0, size));
                blob_ref
                    .read_list(p, ReadVersion::At(VersionId::new(v)), &full)
                    .unwrap()
            })
            .collect::<Vec<_>>();
        (latest, images)
    })
    .pop()
    .unwrap();
    (latest, images, store.meta().node_count())
}

#[test]
fn memory_and_disk_storage_backends_produce_identical_version_chains() {
    let tmp = TempDir::new("atomio-backend-equiv");
    let (mem_latest, mem_images, mem_nodes) = storage_backend_history(BackendConfig::Memory);
    let (disk_latest, disk_images, disk_nodes) =
        storage_backend_history(BackendConfig::disk(tmp.path()));
    assert_eq!(disk_latest, mem_latest, "same number of committed versions");
    assert_eq!(
        disk_images, mem_images,
        "every version in the chain is byte-identical across substrates"
    );
    assert_eq!(disk_nodes, mem_nodes, "same metadata tree shape");
    assert!(mem_latest >= VersionId::new(4), "workload actually ran");
}
