//! Cross-backend equivalence: for deterministic (conflict-free or
//! single-writer) workloads, every backend must produce byte-identical
//! file contents — the concurrency-control strategy may change *when*
//! things happen, never *what* the file ends up holding.

use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::stamp::WriteStamp;
use atomio::types::{ByteRange, ClientId, ExtentList};
use atomio::workloads::{CheckpointWorkload, OverlapWorkload, TileWorkload};
use atomio_bench::{Backend, BenchConfig};
use atomio_simgrid::CostModel;

fn final_state(backend: Backend, extents: &[ExtentList], sequential: bool) -> Vec<u8> {
    let cfg = BenchConfig {
        servers: 4,
        chunk_size: 4096,
        cost: CostModel::zero(),
        ..BenchConfig::default()
    };
    let (driver, _) = cfg.build(backend);
    let clock = SimClock::new();
    let n = extents.len();
    if sequential {
        run_actors_on(&clock, 1, |_, p| {
            for (i, e) in extents.iter().enumerate() {
                let stamp = WriteStamp::new(ClientId::new(i as u64), 1);
                driver
                    .write_extents(
                        p,
                        ClientId::new(i as u64),
                        e,
                        bytes::Bytes::from(stamp.payload_for(e)),
                        backend.atomic_flag(),
                    )
                    .unwrap();
            }
        });
    } else {
        run_actors_on(&clock, n, |i, p| {
            let stamp = WriteStamp::new(ClientId::new(i as u64), 1);
            driver
                .write_extents(
                    p,
                    ClientId::new(i as u64),
                    &extents[i],
                    bytes::Bytes::from(stamp.payload_for(&extents[i])),
                    backend.atomic_flag(),
                )
                .unwrap();
        });
    }
    let end = extents
        .iter()
        .map(|e| e.covering_range().end())
        .max()
        .unwrap();
    run_actors_on(&clock, 1, |_, p| {
        driver
            .read_extents(
                p,
                ClientId::new(99),
                &ExtentList::single(ByteRange::new(0, end)),
                false,
            )
            .unwrap()
    })
    .pop()
    .unwrap()
}

#[test]
fn concurrent_disjoint_workload_is_backend_independent() {
    let w = OverlapWorkload::new(6, 8, 2048, 0, 2); // zero overlap
    let extents: Vec<ExtentList> = (0..6).map(|c| w.extents_for(c)).collect();
    let reference = final_state(Backend::Versioning, &extents, false);
    for backend in [
        Backend::LustreLock,
        Backend::WholeFileLock,
        Backend::ConflictDetect,
        Backend::NoLock,
    ] {
        let got = final_state(backend, &extents, false);
        assert_eq!(got, reference, "{} differs", backend.label());
    }
}

#[test]
fn sequential_overlapping_workload_is_backend_independent() {
    // Sequential writes make the outcome deterministic even with
    // overlap: last writer wins everywhere in program order.
    let w = OverlapWorkload::new(4, 6, 1024, 1, 2);
    let extents: Vec<ExtentList> = (0..4).map(|c| w.extents_for(c)).collect();
    let reference = final_state(Backend::Versioning, &extents, true);
    for backend in [
        Backend::LustreLock,
        Backend::WholeFileLock,
        Backend::ConflictDetect,
        Backend::NoLock,
    ] {
        let got = final_state(backend, &extents, true);
        assert_eq!(got, reference, "{} differs", backend.label());
    }
}

#[test]
fn tile_without_ghosts_is_backend_independent() {
    let w = TileWorkload::new(2, 2, 8, 8, 4, 0, 0);
    let extents: Vec<ExtentList> = (0..w.processes()).map(|r| w.extents_for(r)).collect();
    let reference = final_state(Backend::Versioning, &extents, false);
    let got = final_state(Backend::LustreLock, &extents, false);
    assert_eq!(got, reference);
}

#[test]
fn checkpoint_without_halo_is_backend_independent() {
    let w = CheckpointWorkload::new(4, 256, 8, 0);
    let extents: Vec<ExtentList> = (0..w.ranks).map(|r| w.extents_for(r)).collect();
    let reference = final_state(Backend::Versioning, &extents, false);
    for backend in [Backend::LustreLock, Backend::NoLock] {
        assert_eq!(final_state(backend, &extents, false), reference);
    }
}
