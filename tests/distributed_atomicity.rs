//! Three-service distributed atomicity: the full deployment the paper's
//! architecture calls for — data providers, metadata shards, and the
//! version manager each behind their own RPC server — must give N
//! concurrent overlapping non-contiguous writers exactly the atomic
//! semantics the in-process store gives them.
//!
//! The harness boots all three server roles in process (the same API
//! the `atomio-provider-server` / `atomio-meta-server` /
//! `atomio-version-server` binaries wrap) on ephemeral localhost ports,
//! assembles the store from `RemoteProvider` / `RemoteMetaStore` /
//! `RemoteVersionManager` proxies, and checks three things:
//!
//! 1. **Serializability**: every overlapped byte of the final dataset is
//!    consistent with ONE serial order of the writers (the
//!    `check_serializable` witness), and replaying that order reproduces
//!    the dataset bit for bit.
//! 2. **Deployment equivalence**: version sequence, stored bytes, and
//!    the metadata node-key set are bit-identical to the Loopback run.
//! 3. **Fault atomicity**: killing the version server mid-commit or
//!    severing a mux pool member yields *typed* transport errors, and a
//!    granted-but-unpublished version is never readable — before or
//!    after the server restarts (snapshot isolation across a crash).

use atomio::core::{ReadVersion, Store, StoreConfig, TransportMode};
use atomio::meta::NodeKey;
use atomio::provider::{chunk_store_for, ChunkStore, ProviderManager};
use atomio::rpc::{
    dial, MetaService, MuxTransport, ProviderService, RemoteMetaStore, RemoteProvider,
    RemoteVersionManager, Request, Response, RpcConfig, RpcMode, RpcServer, Service,
    SlotRoutedTransport, Transport, VersionService,
};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::{CostModel, FaultInjector, SimClock};
use atomio::types::stamp::WriteStamp;
use atomio::types::tempdir::TempDir;
use atomio::types::{
    BackendConfig, BlobId, ByteRange, ClientId, Error, ExtentList, ProviderId, TransportErrorKind,
    VersionId,
};
use atomio::workloads::verify::{check_serializable, replay, WriteRecord};
use atomio::workloads::TileWorkload;
use bytes::Bytes;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const CHUNK: u64 = 4096;
const SEED: u64 = 0xD157;

fn base_config(providers: usize) -> StoreConfig {
    StoreConfig::default()
        .with_zero_cost()
        .with_chunk_size(CHUNK)
        .with_data_providers(providers)
        .with_meta_shards(2)
        .with_replication(2, 1)
        .with_seed(SEED)
}

/// The storage backend the hosted services run on: in-memory by
/// default, or the durable disk backend rooted in `tmp` when
/// `ATOMIO_DISK=1` (the `VERIFY_DISK=1` rerun in `scripts/verify.sh`),
/// proving deployment equivalence holds over real part files too.
fn env_backend(tmp: &TempDir) -> BackendConfig {
    if std::env::var("ATOMIO_DISK").ok().as_deref() == Some("1") {
        BackendConfig::disk(tmp.path())
    } else {
        BackendConfig::Memory
    }
}

/// How many version-service shards the deployment runs: 1 by default
/// (the single-oracle deployment this suite has always tested), or N
/// under `ATOMIO_SHARDS=N` (the `VERIFY_SHARDS=1` rerun in
/// `scripts/verify.sh`) — every assertion must hold bit for bit when
/// version traffic is hash-slot-routed across N `--shard i/N` servers.
fn env_shards() -> usize {
    std::env::var("ATOMIO_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(1)
}

/// One server-hosted chunk store over the deployment's backend.
fn hosted_store(i: usize, backend: &BackendConfig) -> Arc<dyn ChunkStore> {
    chunk_store_for(
        backend,
        ProviderId::new(i as u64),
        CostModel::zero(),
        &Arc::new(FaultInjector::new(0)),
    )
    .expect("open hosted chunk store")
}

/// The full three-service deployment plus the live servers backing it.
/// The version service `Arc` is kept so crash tests can restart the
/// server shell around the surviving state; the backend and listen
/// addresses are kept so disk crash tests can rebuild *fresh* services
/// from the on-disk state at the same endpoints.
struct ThreeServiceDeployment {
    provider_servers: Vec<RpcServer>,
    meta_server: RpcServer,
    version_servers: Vec<RpcServer>,
    version_services: Vec<Arc<VersionService>>,
    provider_addrs: Vec<SocketAddr>,
    meta_addr: SocketAddr,
    version_addrs: Vec<SocketAddr>,
    backend: BackendConfig,
    _tmp: TempDir,
    store: Store,
}

/// One version-service shard over the deployment's backend:
/// ownership-checked under a sharded deployment, unchecked when the
/// fleet is a single server. Shards share the backend directory — each
/// blob's publish log is only ever touched by the shard owning its slot.
fn hosted_version_service(i: usize, of: usize, backend: &BackendConfig) -> Arc<VersionService> {
    let mut service = VersionService::with_backend(CHUNK, backend.clone());
    if of > 1 {
        service = service.with_shard(i, of);
    }
    Arc::new(service)
}

/// The client-side version transport for a shard fleet: the plain
/// transport for one server, a slot-routed fan-out for several.
fn version_transport_for(addrs: &[SocketAddr], mode: RpcMode) -> Arc<dyn Transport> {
    if addrs.len() == 1 {
        dial(addrs[0], mode, RpcConfig::default(), None)
    } else {
        Arc::new(SlotRoutedTransport::new(
            addrs
                .iter()
                .map(|a| dial(*a, mode, RpcConfig::default(), None))
                .collect(),
        ))
    }
}

impl ThreeServiceDeployment {
    /// Hard-drops every server of all three roles: sockets sever,
    /// in-flight calls die typed, and (on a disk backend) only what the
    /// fsync policy made durable survives.
    fn kill_all(&mut self) {
        for s in &mut self.provider_servers {
            s.stop();
        }
        self.meta_server.stop();
        self.stop_version_servers();
    }

    /// Hard-drops every version-service shard.
    fn stop_version_servers(&mut self) {
        for s in &mut self.version_servers {
            s.stop();
        }
    }

    /// Rebinds each shard's server shell on its original port around the
    /// surviving service state (std listeners set SO_REUSEADDR, so the
    /// rebind does not race lingering TIME_WAIT connections).
    fn rebind_version_servers(&mut self) {
        for (i, addr) in self.version_addrs.clone().into_iter().enumerate() {
            self.version_servers[i] = RpcServer::start(
                addr,
                Arc::clone(&self.version_services[i]) as Arc<dyn Service>,
            )
            .expect("rebind version server");
        }
    }

    /// A fresh client transport to the version fleet (slot-routed when
    /// the deployment is sharded), for tests that talk to the version
    /// service outside the store's oracle seam.
    fn dial_version(&self, mode: RpcMode) -> Arc<dyn Transport> {
        version_transport_for(&self.version_addrs, mode)
    }

    /// Rebuilds *fresh* service instances from the backend's directories
    /// — the crash-recovery path, not a warm restart around surviving
    /// in-memory `Arc`s — and rebinds them on the original addresses so
    /// the still-alive client store reconnects transparently.
    fn restart_fresh(&mut self) {
        let shards = self.store.config().meta_shards;
        for (i, addr) in self.provider_addrs.clone().into_iter().enumerate() {
            let service = Arc::new(ProviderService::from_stores(vec![hosted_store(
                i,
                &self.backend,
            )]));
            self.provider_servers[i] =
                RpcServer::start(addr, service).expect("rebind provider server");
        }
        self.meta_server = RpcServer::start(
            self.meta_addr,
            Arc::new(
                MetaService::with_backend(shards, CHUNK, &self.backend)
                    .expect("recover meta service"),
            ),
        )
        .expect("rebind meta server");
        let fleet = self.version_services.len();
        for (i, addr) in self.version_addrs.clone().into_iter().enumerate() {
            self.version_services[i] = hosted_version_service(i, fleet, &self.backend);
            self.version_servers[i] = RpcServer::start(
                addr,
                Arc::clone(&self.version_services[i]) as Arc<dyn Service>,
            )
            .expect("rebind version server");
        }
    }
}

fn three_service_store(providers: usize, mode: RpcMode) -> ThreeServiceDeployment {
    let tmp = TempDir::new("atomio-dist");
    let backend = env_backend(&tmp);
    three_service_store_on(providers, mode, backend, tmp)
}

fn three_service_store_on(
    providers: usize,
    mode: RpcMode,
    backend: BackendConfig,
    tmp: TempDir,
) -> ThreeServiceDeployment {
    let config = base_config(providers).with_transport_mode(TransportMode::Tcp);

    let mut provider_servers = Vec::new();
    let mut provider_addrs = Vec::new();
    let mut stores: Vec<Arc<dyn ChunkStore>> = Vec::new();
    for i in 0..providers {
        let server = RpcServer::start(
            "127.0.0.1:0",
            Arc::new(ProviderService::from_stores(vec![hosted_store(
                i, &backend,
            )])),
        )
        .expect("bind provider server");
        let transport = dial(server.local_addr(), mode, RpcConfig::default(), None);
        stores.push(Arc::new(RemoteProvider::new(
            ProviderId::new(i as u64),
            transport,
        )));
        provider_addrs.push(server.local_addr());
        provider_servers.push(server);
    }

    let meta_server = RpcServer::start(
        "127.0.0.1:0",
        Arc::new(
            MetaService::with_backend(config.meta_shards, CHUNK, &backend)
                .expect("open meta service"),
        ),
    )
    .expect("bind meta server");
    let meta_addr = meta_server.local_addr();
    let meta_transport = dial(meta_addr, mode, RpcConfig::default(), None);

    let fleet = env_shards();
    let mut version_services = Vec::new();
    let mut version_servers = Vec::new();
    let mut version_addrs = Vec::new();
    for i in 0..fleet {
        let service = hosted_version_service(i, fleet, &backend);
        let server = RpcServer::start("127.0.0.1:0", Arc::clone(&service) as Arc<dyn Service>)
            .expect("bind version server");
        version_addrs.push(server.local_addr());
        version_services.push(service);
        version_servers.push(server);
    }
    let version_transport = version_transport_for(&version_addrs, mode);

    let manager = Arc::new(ProviderManager::from_stores(
        stores,
        config.allocation,
        Arc::new(FaultInjector::new(config.seed ^ 0xFA17)),
        config.seed,
    ));
    let meta = Arc::new(RemoteMetaStore::new(meta_transport));
    let store = Store::with_substrates(config, manager, meta).with_version_oracles(move |blob| {
        Arc::new(RemoteVersionManager::new(
            blob.raw(),
            Arc::clone(&version_transport),
        ))
    });

    ThreeServiceDeployment {
        provider_servers,
        meta_server,
        version_servers,
        version_services,
        provider_addrs,
        meta_addr,
        version_addrs,
        backend,
        _tmp: tmp,
        store,
    }
}

fn sorted_keys(keys: Vec<NodeKey>) -> Vec<NodeKey> {
    let mut keys = keys;
    keys.sort_by_key(|k| (k.blob, k.version, k.range.offset, k.range.len));
    keys
}

/// Drives one tile round: every rank writes its ghost-extended tile —
/// a non-contiguous extent list overlapping its neighbours' — as one
/// atomic list-write, then the final dataset is read out along with the
/// equivalence observables.
fn run_overlapping_writers(
    store: &Store,
    workload: &TileWorkload,
) -> (VersionId, Vec<u8>, Vec<NodeKey>, usize, Vec<WriteRecord>) {
    let blob = store.create_blob();
    let clock = SimClock::new();
    let ranks = workload.processes();
    let stamps: Vec<WriteStamp> = (0..ranks)
        .map(|r| WriteStamp::new(ClientId::new(r as u64), 1))
        .collect();
    let extents: Vec<ExtentList> = (0..ranks).map(|r| workload.extents_for(r)).collect();

    let blob_ref = &blob;
    let stamps_ref = &stamps;
    let extents_ref = &extents;
    run_actors_on(&clock, ranks, move |rank, p| {
        let payload = Bytes::from(stamps_ref[rank].payload_for(&extents_ref[rank]));
        blob_ref.write_list(p, &extents_ref[rank], payload).unwrap();
    });

    let full = ExtentList::single(ByteRange::new(0, workload.dataset_bytes()));
    let full_ref = &full;
    let (version, state) = run_actors_on(&clock, 1, move |_, p| {
        (
            blob_ref.latest(p).unwrap().version,
            blob_ref
                .read_list(p, ReadVersion::Latest, full_ref)
                .unwrap(),
        )
    })
    .pop()
    .unwrap();

    let writes = (0..ranks)
        .map(|r| WriteRecord::new(stamps[r], extents[r].clone()))
        .collect();
    (
        version,
        state,
        sorted_keys(store.meta().list_keys()),
        store.meta().node_count(),
        writes,
    )
}

#[test]
fn overlapping_writers_serialize_identically_across_deployments() {
    // 9 writers, each an 8x8 tile of 16-byte elements with a 2-element
    // ghost border: every rank's extent list is non-contiguous (one
    // segment per tile row) and overlaps its 4-neighbourhood.
    let workload = TileWorkload::new(3, 3, 8, 8, 16, 2, 2);
    assert!(workload.has_overlap());

    let loopback = Store::new(base_config(4));
    let (v_loop, state_loop, keys_loop, count_loop, writes) =
        run_overlapping_writers(&loopback, &workload);

    // Atomicity witness: the dataset equals a serial replay of the
    // writers in SOME single order.
    let order = check_serializable(&state_loop, &writes)
        .unwrap_or_else(|v| panic!("loopback violates atomicity: {v:?}"));
    assert_eq!(
        replay(state_loop.len(), &writes, &order),
        state_loop,
        "witness replay reproduces the loopback dataset"
    );
    assert_eq!(v_loop, VersionId::new(workload.processes() as u64));

    for mode in [RpcMode::PerCall, RpcMode::Mux] {
        let remote = three_service_store(4, mode);
        let (v_tcp, state_tcp, keys_tcp, count_tcp, writes_tcp) =
            run_overlapping_writers(&remote.store, &workload);

        let order = check_serializable(&state_tcp, &writes_tcp)
            .unwrap_or_else(|v| panic!("{mode:?} three-service run violates atomicity: {v:?}"));
        assert_eq!(replay(state_tcp.len(), &writes_tcp, &order), state_tcp);

        assert_eq!(v_loop, v_tcp, "{mode:?}: same version sequence");
        assert_eq!(state_loop, state_tcp, "{mode:?}: bit-identical dataset");
        assert_eq!(
            keys_loop, keys_tcp,
            "{mode:?}: identical metadata node sets"
        );
        assert_eq!(count_loop, count_tcp);
        drop(remote);
    }
}

#[test]
fn killing_the_version_server_fails_writes_typed_then_recovers_on_restart() {
    let mut d = three_service_store(2, RpcMode::PerCall);
    let blob = d.store.create_blob();
    let clock = SimClock::new();
    let blob_ref = &blob;

    run_actors_on(&clock, 1, move |_, p| {
        blob_ref.write(p, 0, Bytes::from(vec![0xAB; 8192])).unwrap();
    });

    // Crash the version fleet. The commit pipeline's first leg is the
    // ticket grant, so the write dies typed before any data moves and
    // no version hole is left behind.
    d.stop_version_servers();
    run_actors_on(&clock, 1, move |_, p| {
        let err = blob_ref
            .write(p, 0, Bytes::from(vec![0xCD; 8192]))
            .unwrap_err();
        match err {
            Error::Transport { kind, .. } => {
                use TransportErrorKind::*;
                assert!(matches!(
                    kind,
                    ConnectionRefused | ConnectionReset | Timeout
                ));
            }
            other => panic!("expected Error::Transport, got {other:?}"),
        }
        // Latest-reads consult the oracle too: they fail typed rather
        // than ever serving torn state.
        assert!(matches!(
            blob_ref.latest(p).unwrap_err(),
            Error::Transport { .. }
        ));
    });

    // Restart the server shells on the same ports around the surviving
    // service state.
    d.rebind_version_servers();

    run_actors_on(&clock, 1, move |_, p| {
        // v1 survived the crash bit for bit; the failed write left no trace.
        assert_eq!(blob_ref.latest(p).unwrap().version, VersionId::new(1));
        let back = blob_ref.read(p, 0, 8192).unwrap();
        assert!(
            back.iter().all(|&b| b == 0xAB),
            "v1 intact across the crash"
        );
        // And the pipeline is healthy again: the next commit is v2.
        blob_ref.write(p, 0, Bytes::from(vec![0xEF; 8192])).unwrap();
        assert_eq!(blob_ref.latest(p).unwrap().version, VersionId::new(2));
        assert!(blob_ref
            .read(p, 0, 8192)
            .unwrap()
            .iter()
            .all(|&b| b == 0xEF));
    });
}

#[test]
fn a_granted_but_unpublished_ticket_is_never_readable_across_restart() {
    let service = Arc::new(VersionService::new(CHUNK));
    let mut server = RpcServer::start("127.0.0.1:0", Arc::clone(&service) as Arc<dyn Service>)
        .expect("bind version server");
    let writer = RemoteVersionManager::new(
        7,
        dial(
            server.local_addr(),
            RpcMode::PerCall,
            RpcConfig::default(),
            None,
        ),
    );
    let root_for =
        |v: VersionId, capacity: u64| NodeKey::new(BlobId::new(7), v, ByteRange::new(0, capacity));

    // v1 commits normally.
    let (t1, _) = writer.ticket_append(CHUNK).unwrap();
    let r1 = root_for(t1.version, t1.capacity);
    writer.publish(t1, r1).unwrap();
    assert_eq!(writer.latest().unwrap().version, VersionId::new(1));

    // v2 is granted — then the server dies before the writer publishes.
    let (t2, _) = writer.ticket_append(CHUNK).unwrap();
    server.stop();
    let err = writer
        .publish(t2, root_for(t2.version, t2.capacity))
        .unwrap_err();
    assert!(
        matches!(err, Error::Transport { .. }),
        "publish against a dead server is a typed transport error, got {err:?}"
    );

    // Restart around the surviving state. Snapshot isolation must hold:
    // the granted-but-unpublished v2 is invisible in EVERY read path.
    let server2 = RpcServer::start("127.0.0.1:0", Arc::clone(&service) as Arc<dyn Service>)
        .expect("restart version server");
    let reader = RemoteVersionManager::new(
        7,
        dial(
            server2.local_addr(),
            RpcMode::PerCall,
            RpcConfig::default(),
            None,
        ),
    );
    assert_eq!(
        reader.latest().unwrap().version,
        VersionId::new(1),
        "latest never advances past the torn version"
    );
    assert!(!reader.is_published(t2.version).unwrap());
    assert!(
        matches!(
            reader.snapshot(t2.version).unwrap_err(),
            Error::VersionNotFound { .. }
        ),
        "pinned read of the torn version is a typed VersionNotFound"
    );
    // v1 still reads back exactly as published.
    let snap = reader.snapshot(t1.version).unwrap();
    assert_eq!(snap.root, Some(r1));
    assert_eq!(snap.size, CHUNK);
}

#[test]
fn disk_backed_deployment_recovers_fresh_services_with_published_versions_intact() {
    // The hard crash arm the durable backend exists for: every service
    // of all three roles is killed and rebuilt FRESH from its data
    // directory — part files, node logs, publish logs — while the
    // client store stays alive and keeps its connections. Published
    // versions must read back bit for bit; a granted-but-unpublished
    // ticket must be invisible after recovery.
    let tmp = TempDir::new("atomio-dist-disk");
    let backend = BackendConfig::disk(tmp.path());
    let mut d = three_service_store_on(2, RpcMode::Mux, backend, tmp);

    let blob = d.store.create_blob();
    let clock = SimClock::new();
    let blob_ref = &blob;

    // Two committed versions: v1 spans two chunks, v2 overwrites the
    // second — so recovery must get both chunk payloads AND the version
    // order right for the final dataset to come back.
    run_actors_on(&clock, 1, move |_, p| {
        blob_ref
            .write(p, 0, Bytes::from(vec![0x11; 2 * CHUNK as usize]))
            .unwrap();
        blob_ref
            .write(p, CHUNK, Bytes::from(vec![0x22; CHUNK as usize]))
            .unwrap();
    });
    let pre_crash = run_actors_on(&clock, 1, move |_, p| {
        blob_ref.read(p, 0, 2 * CHUNK).unwrap()
    })
    .pop()
    .unwrap();
    let nodes_pre = d.store.meta().node_count();
    assert!(nodes_pre > 0);

    // A doomed writer grabs v3 and dies before publishing. Nothing
    // reaches the publish log until publication, so the grant must not
    // survive the crash.
    let doomed = RemoteVersionManager::new(blob.id().raw(), d.dial_version(RpcMode::PerCall));
    let (t3, _) = doomed.ticket_append(CHUNK).unwrap();
    assert_eq!(t3.version, VersionId::new(3));

    d.kill_all();
    d.restart_fresh();

    // The same client store keeps serving against the recovered fleet.
    let expected = pre_crash.clone();
    run_actors_on(&clock, 1, move |_, p| {
        assert_eq!(
            blob_ref.latest(p).unwrap().version,
            VersionId::new(2),
            "every published version survived, nothing more"
        );
        assert_eq!(
            blob_ref.read(p, 0, 2 * CHUNK).unwrap(),
            expected,
            "recovered dataset is bit-identical"
        );
    });
    assert_eq!(
        d.store.meta().node_count(),
        nodes_pre,
        "fresh meta shards recovered every tree node from their logs"
    );

    // Snapshot isolation across the crash: the torn v3 is invisible in
    // every read path of the recovered version service.
    let reader = RemoteVersionManager::new(blob.id().raw(), d.dial_version(RpcMode::PerCall));
    assert_eq!(reader.latest().unwrap().version, VersionId::new(2));
    assert!(!reader.is_published(t3.version).unwrap());
    assert!(matches!(
        reader.snapshot(t3.version).unwrap_err(),
        Error::VersionNotFound { .. }
    ));

    // The pipeline is healthy: the rolled-back number is reissued and
    // the next commit lands as v3.
    run_actors_on(&clock, 1, move |_, p| {
        blob_ref
            .write(p, 0, Bytes::from(vec![0x33; CHUNK as usize]))
            .unwrap();
        assert_eq!(blob_ref.latest(p).unwrap().version, VersionId::new(3));
        assert!(blob_ref
            .read(p, 0, CHUNK)
            .unwrap()
            .iter()
            .all(|&b| b == 0x33));
    });
}

/// A version service that answers slowly, guaranteeing grants are in
/// flight when the fault test severs a pool connection.
#[derive(Debug)]
struct SlowVersionService {
    inner: VersionService,
    delay: Duration,
}

impl Service for SlowVersionService {
    fn handle(&self, request: Request, payload: Bytes) -> (Response, Bytes) {
        std::thread::sleep(self.delay);
        self.inner.handle(request, payload)
    }
}

#[test]
fn severing_a_pool_member_loses_one_grant_and_publication_stops_at_the_hole() {
    let service = Arc::new(SlowVersionService {
        inner: VersionService::new(CHUNK),
        delay: Duration::from_millis(120),
    });
    let mut server = RpcServer::start("127.0.0.1:0", Arc::clone(&service) as Arc<dyn Service>)
        .expect("bind version server");
    // One stream per pool member: four concurrent grants land on four
    // distinct connections, so severing one kills exactly one call.
    let cfg = RpcConfig {
        mux_streams_per_conn: 1,
        ..RpcConfig::default()
    };
    let mux = Arc::new(MuxTransport::with_config(server.local_addr(), cfg));
    let vm = RemoteVersionManager::new(1, Arc::clone(&mux) as Arc<dyn atomio::rpc::Transport>);

    let results: Vec<Result<_, Error>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mux = Arc::clone(&mux);
                s.spawn(move || {
                    RemoteVersionManager::new(1, mux as Arc<dyn atomio::rpc::Transport>)
                        .ticket_append(64)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(40)); // all four in flight
        mux.sever_conn(0);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let granted: Vec<_> = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .map(|(t, _)| *t)
        .collect();
    let failed: Vec<&Error> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert_eq!(
        failed.len(),
        1,
        "exactly the severed grant fails: {results:?}"
    );
    assert!(
        matches!(
            failed[0],
            Error::Transport {
                kind: TransportErrorKind::ConnectionReset | TransportErrorKind::Timeout,
                ..
            }
        ),
        "typed transport error, got {:?}",
        failed[0]
    );

    // The server granted all four versions (the reply, not the grant,
    // was lost): exactly one version in 1..=4 has no surviving ticket.
    let lost: Vec<u64> = (1..=4)
        .filter(|v| !granted.iter().any(|t| t.version.raw() == *v))
        .collect();
    assert_eq!(lost.len(), 1);

    // The surviving writers publish through the self-healing pool (the
    // severed slot redials transparently)...
    for t in &granted {
        vm.publish(
            *t,
            NodeKey::new(BlobId::new(1), t.version, ByteRange::new(0, t.capacity)),
        )
        .unwrap();
    }
    // ...and ordered publication stops exactly at the hole the severed
    // grant left: readers never observe a version past it, torn or not.
    assert_eq!(vm.latest().unwrap().version.raw(), lost[0] - 1);
    assert!(!vm.is_published(VersionId::new(lost[0])).unwrap());
    server.stop();
}
