//! Snapshot isolation under mixed read/write load: every read taken
//! while writers hammer the blob must equal the replay of a *published
//! prefix* of the write sequence — never a torn in-between state.

use atomio::core::{Store, StoreConfig};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::stamp::WriteStamp;
use atomio::types::{ByteRange, ClientId, ExtentList, VersionId};
use atomio::workloads::verify::{replay, WriteRecord};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;

const FILE: u64 = 64 * 1024;
const WRITERS: usize = 4;
const READERS: usize = 3;
const ROUNDS: u64 = 6;

#[test]
fn concurrent_reads_always_see_a_published_prefix() {
    let store = Store::new(
        StoreConfig::default()
            .with_cost(atomio::simgrid::CostModel::grid5000())
            .with_chunk_size(4096)
            .with_data_providers(4),
    );
    let blob = store.create_blob();
    let clock = SimClock::new();

    // Every writer pre-declares its per-round extents (overlapping with
    // neighbours); the version→record map is filled as tickets resolve.
    let version_map: Mutex<HashMap<VersionId, WriteRecord>> = Mutex::new(HashMap::new());
    let observations: Mutex<Vec<(VersionId, Vec<u8>)>> = Mutex::new(Vec::new());

    run_actors_on(&clock, WRITERS + READERS, |actor, p| {
        if actor < WRITERS {
            for round in 0..ROUNDS {
                let stamp = WriteStamp::new(ClientId::new(actor as u64), round);
                let ext = ExtentList::from_ranges((0..4u64).map(|k| {
                    ByteRange::new(
                        ((actor as u64 * 3 + k * WRITERS as u64) * 3072) % (FILE - 4096),
                        4096,
                    )
                }));
                let payload = Bytes::from(stamp.payload_for(&ext));
                let v = blob.write_list(p, &ext, payload).unwrap();
                version_map.lock().insert(v, WriteRecord::new(stamp, ext));
            }
        } else {
            // Readers: wait for the first snapshot, then repeatedly pin
            // the latest version and read the whole file *at that
            // version*, pacing themselves so reads interleave with the
            // ongoing rounds.
            blob.version_manager()
                .wait_published(p, VersionId::new(1))
                .expect("wait_published");
            for _ in 0..2 * ROUNDS {
                p.sleep(std::time::Duration::from_millis(2));
                let v = blob.latest(p).unwrap().version;
                let size = blob.size_at(p, v).unwrap();
                let data = blob
                    .read_at(p, v, &ExtentList::single(ByteRange::new(0, size)))
                    .unwrap();
                observations.lock().push((v, data));
            }
        }
    });

    // Validate every observation against the replay of versions 1..=v.
    let version_map = version_map.into_inner();
    let total_versions = version_map.len() as u64;
    assert_eq!(total_versions, (WRITERS as u64) * ROUNDS);
    let observations = observations.into_inner();
    assert!(!observations.is_empty());
    for (v, data) in observations {
        let mut records = Vec::new();
        for version in 1..=v.raw() {
            records.push(version_map[&VersionId::new(version)].clone());
        }
        let order: Vec<usize> = (0..records.len()).collect();
        let model = replay(data.len(), &records, &order);
        assert_eq!(
            data,
            model,
            "read at {v} does not match the replay of versions 1..={}",
            v.raw()
        );
    }
}
