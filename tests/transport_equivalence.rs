//! Transport equivalence: the same atomic-write workload must produce
//! identical observable state whether the store runs over the in-process
//! `Loopback` transport or real localhost TCP sockets — per-call or
//! multiplexed.
//!
//! The remote deployment spawns the RPC servers **in process** (same API
//! the `atomio-provider-server` / `atomio-meta-server` binaries wrap) on
//! ephemeral ports, assembles `RemoteProvider` / `RemoteMetaStore`
//! proxies over the socket transports, and funnels them into
//! `Store::with_substrates` — the exact seam a real multi-host
//! deployment uses. Compared observables: read-back bytes, version
//! numbers, the full metadata node-key set, and the `rpc.*` byte
//! counters (all three transports must account identical wire totals
//! for identical workloads).

use atomio::core::{ReadVersion, Store, StoreConfig, TransportMode};
use atomio::meta::{LeafEntry, Node, NodeBody, NodeKey};
use atomio::provider::{chunk_store_for, ChunkStore, ProviderManager};
use atomio::rpc::{
    dial, Loopback, MetaService, MuxTransport, ProviderService, RemoteMetaStore, RemoteProvider,
    RemoteVersionManager, Request, Response, RpcConfig, RpcMode, RpcServer, ServerMode, Service,
    TcpTransport, Transport, VersionService,
};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::{CostModel, FaultInjector, Metrics, SimClock};
use atomio::types::tempdir::TempDir;
use atomio::types::{
    BackendConfig, BlobId, ByteRange, ChunkId, Error, ExtentList, ProviderId, TransportErrorKind,
    VersionId,
};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

const CHUNK: u64 = 16 * 1024;
const FILE: u64 = 128 * 1024;
const SEED: u64 = 0x7C9;

fn base_config(providers: usize) -> StoreConfig {
    StoreConfig::default()
        .with_zero_cost()
        .with_chunk_size(CHUNK)
        .with_data_providers(providers)
        .with_meta_shards(2)
        .with_replication(2, 1)
        .with_seed(SEED)
}

/// The hosted services' storage backend: in-memory by default, durable
/// disk under `tmp` when `ATOMIO_DISK=1` — the equivalence suite then
/// doubles as a Memory-vs-Disk equivalence proof over real sockets.
fn env_backend(tmp: &TempDir) -> BackendConfig {
    if std::env::var("ATOMIO_DISK").ok().as_deref() == Some("1") {
        BackendConfig::disk(tmp.path())
    } else {
        BackendConfig::Memory
    }
}

/// One server-hosted chunk store over the chosen backend.
fn hosted_store(i: usize, backend: &BackendConfig) -> Arc<dyn ChunkStore> {
    chunk_store_for(
        backend,
        ProviderId::new(i as u64),
        CostModel::zero(),
        &Arc::new(FaultInjector::new(0)),
    )
    .expect("open hosted chunk store")
}

/// A remote store plus the live servers backing it. One provider server
/// per data provider, so the failover test can kill an exact replica set.
struct RemoteDeployment {
    provider_servers: Vec<RpcServer>,
    _meta_server: RpcServer,
    _tmp: TempDir,
    store: Store,
}

fn remote_store(providers: usize) -> RemoteDeployment {
    remote_store_with(providers, RpcMode::PerCall, None)
}

fn remote_store_with(
    providers: usize,
    mode: RpcMode,
    metrics: Option<Metrics>,
) -> RemoteDeployment {
    // The default server mode honors ATOMIO_REACTOR=1, so the whole
    // suite reruns on the reactor front-end under that switch.
    remote_store_on(providers, mode, metrics, RpcConfig::default().server_mode)
}

fn remote_store_on(
    providers: usize,
    mode: RpcMode,
    metrics: Option<Metrics>,
    server_mode: ServerMode,
) -> RemoteDeployment {
    let config = base_config(providers).with_transport_mode(TransportMode::Tcp);
    let tmp = TempDir::new("atomio-transport");
    let backend = env_backend(&tmp);
    let server_cfg = RpcConfig {
        server_mode,
        ..RpcConfig::default()
    };

    let mut provider_servers = Vec::new();
    let mut stores: Vec<Arc<dyn ChunkStore>> = Vec::new();
    for i in 0..providers {
        let server = RpcServer::start_with_config(
            "127.0.0.1:0",
            Arc::new(ProviderService::from_stores(vec![hosted_store(
                i, &backend,
            )])),
            server_cfg,
        )
        .expect("bind provider server");
        let transport = dial(
            server.local_addr(),
            mode,
            RpcConfig::default(),
            metrics.clone(),
        );
        stores.push(Arc::new(RemoteProvider::new(
            ProviderId::new(i as u64),
            transport,
        )));
        provider_servers.push(server);
    }

    let meta_server = RpcServer::start_with_config(
        "127.0.0.1:0",
        Arc::new(
            MetaService::with_backend(config.meta_shards, CHUNK, &backend)
                .expect("open meta service"),
        ),
        server_cfg,
    )
    .expect("bind meta server");
    let meta_transport = dial(
        meta_server.local_addr(),
        mode,
        RpcConfig::default(),
        metrics,
    );

    let manager = Arc::new(ProviderManager::from_stores(
        stores,
        config.allocation,
        Arc::new(FaultInjector::new(config.seed ^ 0xFA17)),
        config.seed,
    ));
    let meta = Arc::new(RemoteMetaStore::new(meta_transport));
    let store = Store::with_substrates(config, manager, meta);

    RemoteDeployment {
        provider_servers,
        _meta_server: meta_server,
        _tmp: tmp,
        store,
    }
}

/// The same topology as [`remote_store_with`] over in-process `Loopback`
/// transports: one hosted provider service per data provider plus one
/// meta service, all publishing into one metrics registry. The baseline
/// for the byte-counter parity check.
fn loopback_rpc_store(providers: usize, metrics: Metrics) -> Store {
    let config = base_config(providers);
    let mut stores: Vec<Arc<dyn ChunkStore>> = Vec::new();
    for i in 0..providers {
        let transport: Arc<dyn Transport> = Arc::new(
            Loopback::new(Arc::new(ProviderService::from_stores(vec![hosted_store(
                i,
                &BackendConfig::Memory,
            )])))
            .with_metrics(metrics.clone()),
        );
        stores.push(Arc::new(RemoteProvider::new(
            ProviderId::new(i as u64),
            transport,
        )));
    }
    let meta_transport: Arc<dyn Transport> = Arc::new(
        Loopback::new(Arc::new(MetaService::new(config.meta_shards, CHUNK)))
            .with_metrics(metrics.clone()),
    );
    let manager = Arc::new(ProviderManager::from_stores(
        stores,
        config.allocation,
        Arc::new(FaultInjector::new(config.seed ^ 0xFA17)),
        config.seed,
    ));
    let meta = Arc::new(RemoteMetaStore::new(meta_transport));
    Store::with_substrates(config, manager, meta)
}

/// A deterministic single-writer history: overlapping extents, partial
/// chunks, a hole, and a self-overlapping list.
fn apply_history(blob: &atomio::core::Blob, p: &atomio::simgrid::Participant) {
    let w = |pairs: &[(u64, u64)], fill: u8| {
        let ext = ExtentList::from_pairs(pairs.iter().copied());
        let payload = Bytes::from(vec![fill; ext.total_len() as usize]);
        blob.write_list(p, &ext, payload).unwrap();
    };
    w(&[(0, 64 * 1024)], 0x11);
    w(&[(10_000, 5_000), (40_000, 12_345)], 0x22);
    w(&[(3_000, 1), (8_191, 2), (16_384, 4_096)], 0x33);
    w(&[(96 * 1024, 8 * 1024)], 0x44);
    w(&[(0, 30_000), (20_000, 30_000)], 0x55);
}

fn sorted_keys(keys: Vec<NodeKey>) -> Vec<NodeKey> {
    let mut keys = keys;
    keys.sort_by_key(|k| (k.blob, k.version, k.range.offset, k.range.len));
    keys
}

/// Runs the workload on one store and returns the observables.
fn observe(store: &Store) -> (VersionId, Vec<u8>, Vec<NodeKey>, usize) {
    let blob = store.create_blob();
    let clock = SimClock::new();
    // The history writes up to byte 104 KiB (96 KiB + 8 KiB tail).
    let full = ExtentList::single(ByteRange::new(0, 104 * 1024));
    let blob_ref = &blob;
    let full_ref = &full;
    let mut out = run_actors_on(&clock, 1, move |_, p| {
        apply_history(blob_ref, p);
        let latest = blob_ref.latest(p).unwrap();
        (
            latest.version,
            blob_ref
                .read_list(p, ReadVersion::Latest, full_ref)
                .unwrap(),
        )
    });
    let (version, bytes) = out.pop().unwrap();
    (
        version,
        bytes,
        sorted_keys(store.meta().list_keys()),
        store.meta().node_count(),
    )
}

#[test]
fn loopback_and_tcp_produce_identical_state() {
    let loopback = Store::new(base_config(4));
    let remote = remote_store(4);

    let (v_loop, bytes_loop, keys_loop, count_loop) = observe(&loopback);
    let (v_tcp, bytes_tcp, keys_tcp, count_tcp) = observe(&remote.store);

    assert_eq!(v_loop, v_tcp, "same version sequence");
    assert_eq!(bytes_loop, bytes_tcp, "bit-identical stored bytes");
    assert_eq!(keys_loop, keys_tcp, "identical metadata node sets");
    assert_eq!(count_loop, count_tcp);
    assert_eq!(v_loop, VersionId::new(5));
    drop(remote);
}

#[test]
fn replicated_reads_survive_a_killed_server() {
    // Two providers, one per server, replication 2: every chunk lives on
    // both, so any single server death leaves a full copy.
    let mut remote = remote_store(2);
    let blob = remote.store.create_blob();
    let clock = SimClock::new();
    let extents = ExtentList::single(ByteRange::new(0, FILE));

    let blob_ref = &blob;
    let ext_ref = &extents;
    run_actors_on(&clock, 1, move |_, p| {
        let payload = Bytes::from(vec![0xAB; FILE as usize]);
        blob_ref.write_list(p, ext_ref, payload).unwrap();
        let back = blob_ref.read_list(p, ReadVersion::Latest, ext_ref).unwrap();
        assert!(back.iter().all(|&b| b == 0xAB), "pre-kill read intact");
    });

    // Kill provider server 1: its connections sever, its port closes.
    remote.provider_servers[1].stop();

    let blob_ref = &blob;
    let ext_ref = &extents;
    run_actors_on(&clock, 1, move |_, p| {
        let back = blob_ref.read_list(p, ReadVersion::Latest, ext_ref).unwrap();
        assert!(
            back.iter().all(|&b| b == 0xAB),
            "reads fail over to the surviving replica"
        );
    });

    // The dead endpoint surfaces a *typed* transport error — the signal
    // the failover policy branches on.
    let dead: Arc<dyn Transport> =
        Arc::new(TcpTransport::new(remote.provider_servers[1].local_addr()));
    let proxy = RemoteProvider::new(ProviderId::new(1), dead);
    let err = proxy
        .get_chunk_range_at(0, ChunkId::new(0), ByteRange::new(0, 1))
        .unwrap_err();
    match err {
        Error::Transport { kind, .. } => {
            use atomio::types::TransportErrorKind::*;
            assert!(matches!(
                kind,
                ConnectionRefused | ConnectionReset | Timeout
            ));
        }
        other => panic!("expected Error::Transport, got {other:?}"),
    }
}

#[test]
fn loopback_and_mux_produce_identical_state() {
    let loopback = Store::new(base_config(4));
    let remote = remote_store_with(4, RpcMode::Mux, None);

    let (v_loop, bytes_loop, keys_loop, count_loop) = observe(&loopback);
    let (v_mux, bytes_mux, keys_mux, count_mux) = observe(&remote.store);

    assert_eq!(v_loop, v_mux, "same version sequence");
    assert_eq!(bytes_loop, bytes_mux, "bit-identical stored bytes");
    assert_eq!(keys_loop, keys_mux, "identical metadata node sets");
    assert_eq!(count_loop, count_mux);
    assert_eq!(v_loop, VersionId::new(5));
    drop(remote);
}

/// Pulls the `rpc.*` accounting counters every transport must agree on.
fn wire_totals(metrics: &Metrics) -> (u64, u64, u64) {
    (
        metrics.counter("rpc.messages").get(),
        metrics.counter("rpc.bytes_tx").get(),
        metrics.counter("rpc.bytes_rx").get(),
    )
}

#[test]
fn transports_report_identical_byte_counters() {
    let m_loop = Metrics::new();
    let m_tcp = Metrics::new();
    let m_mux = Metrics::new();

    let loopback = loopback_rpc_store(4, m_loop.clone());
    let tcp = remote_store_with(4, RpcMode::PerCall, Some(m_tcp.clone()));
    let mux = remote_store_with(4, RpcMode::Mux, Some(m_mux.clone()));

    let state_loop = observe(&loopback);
    let state_tcp = observe(&tcp.store);
    let state_mux = observe(&mux.store);
    assert_eq!(state_loop, state_tcp);
    assert_eq!(state_loop, state_mux);

    let totals_loop = wire_totals(&m_loop);
    assert!(totals_loop.0 > 0, "workload produced RPC traffic");
    assert_eq!(
        totals_loop,
        wire_totals(&m_tcp),
        "per-call TCP must account the same messages and bytes as Loopback"
    );
    assert_eq!(
        totals_loop,
        wire_totals(&m_mux),
        "mux must account the same messages and bytes as Loopback"
    );
    assert_eq!(m_loop.counter("rpc.retries").get(), 0);
    assert_eq!(m_tcp.counter("rpc.retries").get(), 0);
    assert_eq!(m_mux.counter("rpc.retries").get(), 0);
}

/// One service hosting all three roles, so a single transport endpoint
/// can carry interleaved provider, metadata, **and** version traffic
/// (the mux stress workload below). Ticket-grant traffic routes to a
/// standalone [`VersionService`] — the same service the
/// `atomio-version-server` binary wraps — not to the meta service's
/// nested compatibility copy.
#[derive(Debug)]
struct TriService {
    provider: ProviderService,
    meta: MetaService,
    versions: VersionService,
}

impl Service for TriService {
    fn handle(&self, request: Request, payload: Bytes) -> (Response, Bytes) {
        use Request::*;
        let chunk_op = matches!(
            request,
            PutChunk { .. }
                | PutChunkBatch { .. }
                | GetChunk { .. }
                | GetChunkRange { .. }
                | GetChunkRangeBatch { .. }
                | ProviderHasChunk { .. }
                | ProviderChunkCount { .. }
                | ProviderBytesStored { .. }
                | ProviderEvictChunk { .. }
                | ProviderChecksumOf { .. }
                | ProviderCorruptChunk { .. }
        );
        let version_op = matches!(
            request,
            VmTicket { .. }
                | VmTicketAppend { .. }
                | VmPublish { .. }
                | VmIsPublished { .. }
                | VmLatest { .. }
                | VmSnapshot { .. }
        );
        if chunk_op {
            self.provider.handle(request, payload)
        } else if version_op {
            self.versions.handle(request, payload)
        } else {
            self.meta.handle(request, payload)
        }
    }
}

fn tri_service() -> Arc<TriService> {
    Arc::new(TriService {
        provider: ProviderService::new(1),
        meta: MetaService::new(2, CHUNK),
        versions: VersionService::new(CHUNK),
    })
}

const STRESS_THREADS: u64 = 16;
const STRESS_OPS: u64 = 6;

fn stress_chunk(t: u64, i: u64) -> (ChunkId, Vec<u8>) {
    (
        ChunkId::new(t * 1000 + i),
        vec![(t * 31 + i) as u8; 1024 + i as usize * 17],
    )
}

fn stress_node(t: u64, i: u64) -> Node {
    let key = NodeKey::new(
        BlobId::new(t + 1),
        VersionId::new(i + 1),
        ByteRange::new(i * 64, 64),
    );
    Node {
        key,
        body: NodeBody::Leaf {
            entries: vec![LeafEntry {
                file_range: ByteRange::new(i * 64, 64),
                chunk: stress_chunk(t, i).0,
                chunk_offset: 0,
                homes: vec![ProviderId::new(0)],
            }],
            backlink: None,
        },
    }
}

/// 16 threads issue interleaved provider + metadata + version calls
/// through ONE shared transport, then the final state is read out
/// single-threaded: node-key set, node count, per-blob latest version,
/// and every chunk's bytes.
fn mux_stress_state(
    transport: &Arc<dyn Transport>,
) -> (Vec<NodeKey>, usize, Vec<VersionId>, Vec<Vec<u8>>) {
    std::thread::scope(|s| {
        for t in 0..STRESS_THREADS {
            let transport = Arc::clone(transport);
            s.spawn(move || {
                let provider = RemoteProvider::new(ProviderId::new(0), Arc::clone(&transport));
                let vm = RemoteVersionManager::new(t + 1, Arc::clone(&transport));
                for i in 0..STRESS_OPS {
                    let (chunk, body) = stress_chunk(t, i);
                    provider
                        .put_chunk_at(0, chunk, Bytes::from(body.clone()))
                        .unwrap();
                    let (back, _) = provider
                        .get_chunk_range_at(0, chunk, ByteRange::new(0, body.len() as u64))
                        .unwrap();
                    assert_eq!(back.as_ref(), &body[..], "thread {t} op {i} chunk echo");

                    let node = stress_node(t, i);
                    let key = node.key;
                    match transport
                        .call(
                            &Request::MetaPutBatch {
                                nodes: vec![node.clone()],
                            },
                            &[],
                        )
                        .unwrap()
                    {
                        (Response::NodePuts { results }, _) => {
                            assert!(results.iter().all(|r| r.is_ok()))
                        }
                        (other, _) => panic!("expected NodePuts, got {other:?}"),
                    }
                    match transport
                        .call(&Request::MetaGetBatch { keys: vec![key] }, &[])
                        .unwrap()
                    {
                        (Response::NodeGets { results }, _) => {
                            assert_eq!(results[0].as_ref().unwrap(), &node)
                        }
                        (other, _) => panic!("expected NodeGets, got {other:?}"),
                    }

                    let (ticket, _) = vm.ticket_append(64).unwrap();
                    vm.publish(ticket, key).unwrap();
                }
                assert_eq!(vm.latest().unwrap().version, VersionId::new(STRESS_OPS));
            });
        }
    });

    let keys = match transport.call(&Request::MetaListKeys, &[]).unwrap() {
        (Response::Keys { keys }, _) => sorted_keys(keys),
        (other, _) => panic!("expected Keys, got {other:?}"),
    };
    let count = match transport.call(&Request::MetaNodeCount, &[]).unwrap() {
        (Response::Count { value }, _) => value as usize,
        (other, _) => panic!("expected Count, got {other:?}"),
    };
    let provider = RemoteProvider::new(ProviderId::new(0), Arc::clone(transport));
    let mut latest = Vec::new();
    let mut chunks = Vec::new();
    for t in 0..STRESS_THREADS {
        latest.push(
            RemoteVersionManager::new(t + 1, Arc::clone(transport))
                .latest()
                .unwrap()
                .version,
        );
        for i in 0..STRESS_OPS {
            let (chunk, body) = stress_chunk(t, i);
            let (data, _) = provider
                .get_chunk_range_at(0, chunk, ByteRange::new(0, body.len() as u64))
                .unwrap();
            chunks.push(data.to_vec());
        }
    }
    (keys, count, latest, chunks)
}

#[test]
fn mux_stress_matches_loopback_bit_for_bit() {
    let m_loop = Metrics::new();
    let m_tcp = Metrics::new();
    let m_mux = Metrics::new();

    let loopback: Arc<dyn Transport> =
        Arc::new(Loopback::new(tri_service()).with_metrics(m_loop.clone()));
    let state_loop = mux_stress_state(&loopback);

    // Each socket arm gets its own fresh tri-service: the stress mutates
    // server state, so the arms must not share a deployment.
    let mut tcp_server = RpcServer::start("127.0.0.1:0", tri_service()).expect("bind tri server");
    let tcp = dial(
        tcp_server.local_addr(),
        RpcMode::PerCall,
        RpcConfig::default(),
        Some(m_tcp.clone()),
    );
    let state_tcp = mux_stress_state(&tcp);

    let mut mux_server = RpcServer::start("127.0.0.1:0", tri_service()).expect("bind tri server");
    let mux: Arc<dyn Transport> =
        Arc::new(MuxTransport::new(mux_server.local_addr()).with_metrics(m_mux.clone()));
    let state_mux = mux_stress_state(&mux);

    for (label, state) in [("per-call", &state_tcp), ("mux", &state_mux)] {
        assert_eq!(state_loop.0, state.0, "{label}: identical node-key sets");
        assert_eq!(state_loop.1, state.1, "{label}: identical node counts");
        assert_eq!(
            state_loop.2, state.2,
            "{label}: identical version sequences"
        );
        assert_eq!(state_loop.3, state.3, "{label}: bit-identical chunk bytes");
    }

    // And the byte accounting agrees even under 16-way interleaving of
    // chunk, metadata, and ticket-grant traffic.
    assert_eq!(wire_totals(&m_loop), wire_totals(&m_tcp));
    assert_eq!(wire_totals(&m_loop), wire_totals(&m_mux));
    assert!(
        m_mux.counter("rpc.inflight_peak").get() >= 2,
        "stress actually ran concurrent in-flight calls"
    );
    tcp_server.stop();
    mux_server.stop();
}

#[test]
fn threads_and_reactor_front_ends_are_bit_identical() {
    // The full atomic-write workload against explicitly-pinned server
    // front-ends: the epoll reactor must reproduce the thread-per-
    // connection results bit for bit — stored bytes, version chain,
    // node-key set — and account identical wire totals.
    let mut observed = Vec::new();
    let mut totals = Vec::new();
    for server_mode in [ServerMode::Threads, ServerMode::Reactor] {
        let metrics = Metrics::new();
        let remote = remote_store_on(4, RpcMode::Mux, Some(metrics.clone()), server_mode);
        observed.push(observe(&remote.store));
        totals.push(wire_totals(&metrics));
        drop(remote);
    }
    assert_eq!(
        observed[0], observed[1],
        "reactor front-end must be bit-identical to threads"
    );
    assert_eq!(
        totals[0], totals[1],
        "both front-ends must account identical bytes_tx/bytes_rx"
    );
    assert!(totals[0].0 > 0, "workload produced RPC traffic");
}

/// A service that answers slowly, so the fault test can guarantee calls
/// are in flight when a pool connection is severed.
#[derive(Debug)]
struct SlowPing;

impl Service for SlowPing {
    fn handle(&self, _request: Request, _payload: Bytes) -> (Response, Bytes) {
        std::thread::sleep(Duration::from_millis(120));
        (Response::Pong, Bytes::new())
    }
}

#[test]
fn killing_one_pool_connection_fails_only_inflight_calls() {
    let mut server = RpcServer::start("127.0.0.1:0", Arc::new(SlowPing)).expect("bind server");
    // One stream per pool member: the four concurrent calls are forced
    // onto four distinct connections (slot reservation is atomic, so
    // racing callers can never share a capped slot).
    let cfg = RpcConfig {
        mux_streams_per_conn: 1,
        ..RpcConfig::default()
    };
    let mux = Arc::new(MuxTransport::with_config(server.local_addr(), cfg));
    assert_eq!(mux.pool_size(), 4);

    // First-fit under the 1-stream cap: the first four concurrent calls
    // land on pool slots 0..3, one in-flight call per connection.
    let results: Vec<Result<(Response, Bytes), Error>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mux = Arc::clone(&mux);
                s.spawn(move || mux.call(&Request::Ping, &[]))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(40)); // all four in flight
        mux.sever_conn(0);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let failed: Vec<&Error> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert_eq!(
        failed.len(),
        1,
        "exactly the severed member's in-flight call fails: {results:?}"
    );
    assert!(
        matches!(
            failed[0],
            Error::Transport {
                kind: TransportErrorKind::ConnectionReset | TransportErrorKind::Timeout,
                ..
            }
        ),
        "typed transport error, got {:?}",
        failed[0]
    );

    // The dead slot redials transparently: sequential calls first-fit
    // onto slot 0 — the severed member — and every one succeeds.
    for _ in 0..5 {
        mux.call(&Request::Ping, &[]).unwrap();
    }
    server.stop();
}
