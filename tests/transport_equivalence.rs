//! Transport equivalence: the same atomic-write workload must produce
//! identical observable state whether the store runs over the in-process
//! `Loopback` transport or real localhost TCP sockets.
//!
//! The remote deployment spawns the RPC servers **in process** (same API
//! the `atomio-provider-server` / `atomio-meta-server` binaries wrap) on
//! ephemeral ports, assembles `RemoteProvider` / `RemoteMetaStore`
//! proxies over `TcpTransport`, and funnels them into
//! `Store::with_substrates` — the exact seam a real multi-host
//! deployment uses. Compared observables: read-back bytes, version
//! numbers, and the full metadata node-key set.

use atomio::core::{ReadVersion, Store, StoreConfig, TransportMode};
use atomio::meta::NodeKey;
use atomio::provider::{ChunkStore, DataProvider, ProviderManager};
use atomio::rpc::{
    MetaService, ProviderService, RemoteMetaStore, RemoteProvider, RpcServer, TcpTransport,
    Transport,
};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::{CostModel, FaultInjector, SimClock};
use atomio::types::{ByteRange, ChunkId, Error, ExtentList, ProviderId, VersionId};
use bytes::Bytes;
use std::sync::Arc;

const CHUNK: u64 = 16 * 1024;
const FILE: u64 = 128 * 1024;
const SEED: u64 = 0x7C9;

fn base_config(providers: usize) -> StoreConfig {
    StoreConfig::default()
        .with_zero_cost()
        .with_chunk_size(CHUNK)
        .with_data_providers(providers)
        .with_meta_shards(2)
        .with_replication(2, 1)
        .with_seed(SEED)
}

/// A remote store plus the live servers backing it. One provider server
/// per data provider, so the failover test can kill an exact replica set.
struct RemoteDeployment {
    provider_servers: Vec<RpcServer>,
    _meta_server: RpcServer,
    store: Store,
}

fn remote_store(providers: usize) -> RemoteDeployment {
    let config = base_config(providers).with_transport_mode(TransportMode::Tcp);

    let mut provider_servers = Vec::new();
    let mut stores: Vec<Arc<dyn atomio::provider::ChunkStore>> = Vec::new();
    for i in 0..providers {
        let hosted = Arc::new(DataProvider::new(
            ProviderId::new(i as u64),
            CostModel::zero(),
            Arc::new(FaultInjector::new(0)),
        ));
        let server = RpcServer::start(
            "127.0.0.1:0",
            Arc::new(ProviderService::from_providers(vec![hosted])),
        )
        .expect("bind provider server");
        let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new(server.local_addr()));
        stores.push(Arc::new(RemoteProvider::new(
            ProviderId::new(i as u64),
            transport,
        )));
        provider_servers.push(server);
    }

    let meta_server = RpcServer::start(
        "127.0.0.1:0",
        Arc::new(MetaService::new(config.meta_shards, CHUNK)),
    )
    .expect("bind meta server");
    let meta_transport: Arc<dyn Transport> = Arc::new(TcpTransport::new(meta_server.local_addr()));

    let manager = Arc::new(ProviderManager::from_stores(
        stores,
        config.allocation,
        Arc::new(FaultInjector::new(config.seed ^ 0xFA17)),
        config.seed,
    ));
    let meta = Arc::new(RemoteMetaStore::new(meta_transport));
    let store = Store::with_substrates(config, manager, meta);

    RemoteDeployment {
        provider_servers,
        _meta_server: meta_server,
        store,
    }
}

/// A deterministic single-writer history: overlapping extents, partial
/// chunks, a hole, and a self-overlapping list.
fn apply_history(blob: &atomio::core::Blob, p: &atomio::simgrid::Participant) {
    let w = |pairs: &[(u64, u64)], fill: u8| {
        let ext = ExtentList::from_pairs(pairs.iter().copied());
        let payload = Bytes::from(vec![fill; ext.total_len() as usize]);
        blob.write_list(p, &ext, payload).unwrap();
    };
    w(&[(0, 64 * 1024)], 0x11);
    w(&[(10_000, 5_000), (40_000, 12_345)], 0x22);
    w(&[(3_000, 1), (8_191, 2), (16_384, 4_096)], 0x33);
    w(&[(96 * 1024, 8 * 1024)], 0x44);
    w(&[(0, 30_000), (20_000, 30_000)], 0x55);
}

fn sorted_keys(keys: Vec<NodeKey>) -> Vec<NodeKey> {
    let mut keys = keys;
    keys.sort_by_key(|k| (k.blob, k.version, k.range.offset, k.range.len));
    keys
}

/// Runs the workload on one store and returns the observables.
fn observe(store: &Store) -> (VersionId, Vec<u8>, Vec<NodeKey>, usize) {
    let blob = store.create_blob();
    let clock = SimClock::new();
    // The history writes up to byte 104 KiB (96 KiB + 8 KiB tail).
    let full = ExtentList::single(ByteRange::new(0, 104 * 1024));
    let blob_ref = &blob;
    let full_ref = &full;
    let mut out = run_actors_on(&clock, 1, move |_, p| {
        apply_history(blob_ref, p);
        let latest = blob_ref.latest(p);
        (
            latest.version,
            blob_ref
                .read_list(p, ReadVersion::Latest, full_ref)
                .unwrap(),
        )
    });
    let (version, bytes) = out.pop().unwrap();
    (
        version,
        bytes,
        sorted_keys(store.meta().list_keys()),
        store.meta().node_count(),
    )
}

#[test]
fn loopback_and_tcp_produce_identical_state() {
    let loopback = Store::new(base_config(4));
    let remote = remote_store(4);

    let (v_loop, bytes_loop, keys_loop, count_loop) = observe(&loopback);
    let (v_tcp, bytes_tcp, keys_tcp, count_tcp) = observe(&remote.store);

    assert_eq!(v_loop, v_tcp, "same version sequence");
    assert_eq!(bytes_loop, bytes_tcp, "bit-identical stored bytes");
    assert_eq!(keys_loop, keys_tcp, "identical metadata node sets");
    assert_eq!(count_loop, count_tcp);
    assert_eq!(v_loop, VersionId::new(5));
    drop(remote);
}

#[test]
fn replicated_reads_survive_a_killed_server() {
    // Two providers, one per server, replication 2: every chunk lives on
    // both, so any single server death leaves a full copy.
    let mut remote = remote_store(2);
    let blob = remote.store.create_blob();
    let clock = SimClock::new();
    let extents = ExtentList::single(ByteRange::new(0, FILE));

    let blob_ref = &blob;
    let ext_ref = &extents;
    run_actors_on(&clock, 1, move |_, p| {
        let payload = Bytes::from(vec![0xAB; FILE as usize]);
        blob_ref.write_list(p, ext_ref, payload).unwrap();
        let back = blob_ref.read_list(p, ReadVersion::Latest, ext_ref).unwrap();
        assert!(back.iter().all(|&b| b == 0xAB), "pre-kill read intact");
    });

    // Kill provider server 1: its connections sever, its port closes.
    remote.provider_servers[1].stop();

    let blob_ref = &blob;
    let ext_ref = &extents;
    run_actors_on(&clock, 1, move |_, p| {
        let back = blob_ref.read_list(p, ReadVersion::Latest, ext_ref).unwrap();
        assert!(
            back.iter().all(|&b| b == 0xAB),
            "reads fail over to the surviving replica"
        );
    });

    // The dead endpoint surfaces a *typed* transport error — the signal
    // the failover policy branches on.
    let dead: Arc<dyn Transport> =
        Arc::new(TcpTransport::new(remote.provider_servers[1].local_addr()));
    let proxy = RemoteProvider::new(ProviderId::new(1), dead);
    let err = proxy
        .get_chunk_range_at(0, ChunkId::new(0), ByteRange::new(0, 1))
        .unwrap_err();
    match err {
        Error::Transport { kind, .. } => {
            use atomio::types::TransportErrorKind::*;
            assert!(matches!(
                kind,
                ConnectionRefused | ConnectionReset | Timeout
            ));
        }
        other => panic!("expected Error::Transport, got {other:?}"),
    }
}
