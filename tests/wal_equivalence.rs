//! Logged-mode equivalence: a store whose writes are absorbed by the
//! host-side write-ahead log and drained asynchronously must converge to
//! **bit-identical** state — bytes, version chain, metadata node sets —
//! as a Direct-mode store replaying the same writes serially in the
//! log's append order. That replay IS the serialization witness: the
//! drainer tickets in append order, so the version oracle observes the
//! exact sequence the application saw.
//!
//! Arms: Loopback and the full three-service TCP/mux deployment, the
//! checkpoint (halo-overlap slab) and tile (ghost-cell overlap)
//! workloads, plus a mid-drain version-server kill → typed transport
//! errors → restart → the drain completes with **no hole**.

use atomio::core::{CommitMode, ReadVersion, Store, StoreConfig, TransportMode};
use atomio::meta::NodeKey;
use atomio::provider::{chunk_store_for, ChunkStore, ProviderManager};
use atomio::rpc::{
    dial, MetaService, ProviderService, RemoteMetaStore, RemoteProvider, RemoteVersionManager,
    RpcConfig, RpcMode, RpcServer, Service, VersionService,
};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::{CostModel, FaultInjector, SimClock};
use atomio::types::stamp::WriteStamp;
use atomio::types::tempdir::TempDir;
use atomio::types::{
    BackendConfig, ByteRange, ClientId, Error, ExtentList, ProviderId, TransportErrorKind,
    VersionId,
};
use atomio::workloads::{CheckpointWorkload, TileWorkload};
use bytes::Bytes;
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;

const CHUNK: u64 = 4096;
const SEED: u64 = 0xD157;

fn base_config(providers: usize) -> StoreConfig {
    StoreConfig::default()
        .with_zero_cost()
        .with_chunk_size(CHUNK)
        .with_data_providers(providers)
        .with_meta_shards(2)
        .with_replication(2, 1)
        .with_seed(SEED)
}

/// A full three-service deployment (provider, meta, version servers on
/// ephemeral localhost ports) whose store runs in the given commit mode.
struct ThreeServiceDeployment {
    _provider_servers: Vec<RpcServer>,
    _meta_server: RpcServer,
    version_server: RpcServer,
    version_service: Arc<VersionService>,
    version_addr: SocketAddr,
    _tmp: TempDir,
    store: Store,
}

/// The hosted services' storage backend: in-memory by default, durable
/// disk under `tmp` when `ATOMIO_DISK=1`, so the logged-mode
/// equivalence proof also runs over recovered-capable substrates.
fn env_backend(tmp: &TempDir) -> BackendConfig {
    if std::env::var("ATOMIO_DISK").ok().as_deref() == Some("1") {
        BackendConfig::disk(tmp.path())
    } else {
        BackendConfig::Memory
    }
}

fn three_service_store(
    providers: usize,
    mode: RpcMode,
    commit: CommitMode,
) -> ThreeServiceDeployment {
    let config = base_config(providers)
        .with_transport_mode(TransportMode::Tcp)
        .with_commit_mode(commit);
    let tmp = TempDir::new("atomio-wal");
    let backend = env_backend(&tmp);

    let mut provider_servers = Vec::new();
    let mut stores: Vec<Arc<dyn ChunkStore>> = Vec::new();
    for i in 0..providers {
        let hosted = chunk_store_for(
            &backend,
            ProviderId::new(i as u64),
            CostModel::zero(),
            &Arc::new(FaultInjector::new(0)),
        )
        .expect("open hosted chunk store");
        let server = RpcServer::start(
            "127.0.0.1:0",
            Arc::new(ProviderService::from_stores(vec![hosted])),
        )
        .expect("bind provider server");
        let transport = dial(server.local_addr(), mode, RpcConfig::default(), None);
        stores.push(Arc::new(RemoteProvider::new(
            ProviderId::new(i as u64),
            transport,
        )));
        provider_servers.push(server);
    }

    let meta_server = RpcServer::start(
        "127.0.0.1:0",
        Arc::new(
            MetaService::with_backend(config.meta_shards, CHUNK, &backend)
                .expect("open meta service"),
        ),
    )
    .expect("bind meta server");
    let meta_transport = dial(meta_server.local_addr(), mode, RpcConfig::default(), None);

    let version_service = Arc::new(VersionService::with_backend(CHUNK, backend.clone()));
    let version_server = RpcServer::start(
        "127.0.0.1:0",
        Arc::clone(&version_service) as Arc<dyn Service>,
    )
    .expect("bind version server");
    let version_addr = version_server.local_addr();
    let version_transport = dial(version_addr, mode, RpcConfig::default(), None);

    let manager = Arc::new(ProviderManager::from_stores(
        stores,
        config.allocation,
        Arc::new(FaultInjector::new(config.seed ^ 0xFA17)),
        config.seed,
    ));
    let meta = Arc::new(RemoteMetaStore::new(meta_transport));
    let store = Store::with_substrates(config, manager, meta).with_version_oracles(move |blob| {
        Arc::new(RemoteVersionManager::new(
            blob.raw(),
            Arc::clone(&version_transport),
        ))
    });

    ThreeServiceDeployment {
        _provider_servers: provider_servers,
        _meta_server: meta_server,
        version_server,
        version_service,
        _tmp: tmp,
        version_addr,
        store,
    }
}

fn sorted_keys(keys: Vec<NodeKey>) -> Vec<NodeKey> {
    let mut keys = keys;
    keys.sort_by_key(|k| (k.blob, k.version, k.range.offset, k.range.len));
    keys
}

/// The equivalence observables of a store after a run: latest version,
/// full dataset bytes, and the metadata node-key set.
type Observables = (VersionId, Vec<u8>, Vec<NodeKey>, usize);

fn observe(store: &Store, blob: &atomio::core::Blob, clock: &SimClock, bytes: u64) -> Observables {
    let (version, state) = run_actors_on(clock, 1, |_, p| {
        (
            blob.latest(p).unwrap().version,
            blob.read_list(
                p,
                ReadVersion::Latest,
                &ExtentList::single(ByteRange::new(0, bytes)),
            )
            .unwrap(),
        )
    })
    .pop()
    .unwrap();
    (
        version,
        state,
        sorted_keys(store.meta().list_keys()),
        store.meta().node_count(),
    )
}

/// One write of a workload run: who wrote what.
#[derive(Clone)]
struct LoggedWrite {
    stamp: WriteStamp,
    extents: ExtentList,
}

/// Runs `per_rank` write sequences concurrently against a Logged-mode
/// blob, then drains the log serially. Returns the observables plus the
/// writes ordered by their predicted (= granted) versions — the log's
/// append order, i.e. the serialization witness.
fn run_logged(
    store: &Store,
    per_rank: &[Vec<LoggedWrite>],
    total_bytes: u64,
) -> (Observables, Vec<LoggedWrite>) {
    let blob = store.create_blob();
    let clock = SimClock::new();
    let order: Mutex<Vec<(u64, LoggedWrite)>> = Mutex::new(Vec::new());

    // Phase 1: concurrent appends. No drainer runs yet, so the log holds
    // the whole burst — every ack is a pure host-memory append.
    let blob_ref = &blob;
    let order_ref = &order;
    run_actors_on(&clock, per_rank.len(), |rank, p| {
        for w in &per_rank[rank] {
            let payload = Bytes::from(w.stamp.payload_for(&w.extents));
            let v = blob_ref.write_list(p, &w.extents, payload).unwrap();
            order_ref.lock().push((v.raw(), w.clone()));
        }
    });

    // Phase 2: drain to completion.
    let wal = blob.wal().expect("Logged store has a WAL");
    let expected = wal.depth() as u64;
    wal.close();
    let drained = run_actors_on(&clock, 1, |_, p| blob_ref.wal_drain(p).unwrap())
        .pop()
        .unwrap();
    assert_eq!(drained, expected, "every logged entry drained");
    assert!(wal.first_drain_error().is_none());

    let mut order = order.into_inner();
    order.sort_by_key(|(v, _)| *v);
    // Predicted versions are exactly 1..=n: dense, no holes.
    let versions: Vec<u64> = order.iter().map(|(v, _)| *v).collect();
    assert_eq!(versions, (1..=order.len() as u64).collect::<Vec<_>>());

    let obs = observe(store, &blob, &clock, total_bytes);
    (obs, order.into_iter().map(|(_, w)| w).collect())
}

/// Replays `writes` serially, in order, against a Direct-mode blob.
fn run_direct_serial(store: &Store, writes: &[LoggedWrite], total_bytes: u64) -> Observables {
    let blob = store.create_blob();
    let clock = SimClock::new();
    let blob_ref = &blob;
    run_actors_on(&clock, 1, |_, p| {
        for (k, w) in writes.iter().enumerate() {
            let payload = Bytes::from(w.stamp.payload_for(&w.extents));
            let v = blob_ref.write_list(p, &w.extents, payload).unwrap();
            assert_eq!(v, VersionId::new(k as u64 + 1));
        }
    });
    observe(store, &blob, &clock, total_bytes)
}

fn checkpoint_writes(iters: u64) -> (Vec<Vec<LoggedWrite>>, u64) {
    // 4 ranks × 512 cells × 16 B with a 32-cell halo: neighbouring slabs
    // overlap, so drain order decides the halo bytes.
    let w = CheckpointWorkload::new(4, 512, 16, 32);
    assert!(w.has_overlap());
    let per_rank = (0..w.ranks)
        .map(|r| {
            (0..iters)
                .map(|iter| LoggedWrite {
                    stamp: WriteStamp::new(ClientId::new(r as u64), iter),
                    extents: w.extents_for(r),
                })
                .collect()
        })
        .collect();
    (per_rank, w.file_bytes())
}

fn tile_writes() -> (Vec<Vec<LoggedWrite>>, u64) {
    // 9 ranks of ghost-extended tiles: non-contiguous extent lists
    // overlapping each rank's 4-neighbourhood.
    let w = TileWorkload::new(3, 3, 8, 8, 16, 2, 2);
    assert!(w.has_overlap());
    let per_rank = (0..w.processes())
        .map(|r| {
            vec![LoggedWrite {
                stamp: WriteStamp::new(ClientId::new(r as u64), 1),
                extents: w.extents_for(r),
            }]
        })
        .collect();
    (per_rank, w.dataset_bytes())
}

#[test]
fn logged_drains_bit_identical_to_direct_loopback() {
    for (per_rank, bytes) in [checkpoint_writes(2), tile_writes()] {
        let logged_store = Store::new(base_config(4).with_commit_mode(CommitMode::Logged));
        let (logged_obs, witness) = run_logged(&logged_store, &per_rank, bytes);

        let direct_store = Store::new(base_config(4));
        let direct_obs = run_direct_serial(&direct_store, &witness, bytes);

        assert_eq!(logged_obs.0, direct_obs.0, "same version chain");
        assert_eq!(logged_obs.1, direct_obs.1, "bit-identical bytes");
        assert_eq!(logged_obs.2, direct_obs.2, "identical node-key sets");
        assert_eq!(logged_obs.3, direct_obs.3, "identical node counts");
    }
}

#[test]
fn logged_drains_bit_identical_over_tcp_mux() {
    for mode in [RpcMode::PerCall, RpcMode::Mux] {
        let (per_rank, bytes) = checkpoint_writes(2);
        let remote = three_service_store(4, mode, CommitMode::Logged);
        let (logged_obs, witness) = run_logged(&remote.store, &per_rank, bytes);

        let direct_store = Store::new(base_config(4));
        let direct_obs = run_direct_serial(&direct_store, &witness, bytes);

        assert_eq!(
            logged_obs, direct_obs,
            "{mode:?}: TCP Logged drain must match the Loopback Direct replay"
        );
        drop(remote);
    }
}

#[test]
fn mid_drain_version_server_kill_leaves_no_hole() {
    let mut d = three_service_store(2, RpcMode::PerCall, CommitMode::Logged);
    let blob = d.store.create_blob();
    let clock = SimClock::new();
    let blob_ref = &blob;

    // Absorb a burst of three writes and drain only the first.
    run_actors_on(&clock, 1, |_, p| {
        for k in 0..3u64 {
            let v = blob_ref
                .write(p, k * CHUNK, Bytes::from(vec![k as u8 + 1; CHUNK as usize]))
                .unwrap();
            assert_eq!(v, VersionId::new(k + 1), "acked before any drain");
        }
        assert_eq!(blob_ref.wal_drain_one(p).unwrap(), Some(VersionId::new(1)));
    });
    let wal = blob.wal().unwrap();
    assert_eq!(wal.depth(), 2);

    // Kill the version server mid-drain: the next replay dies *typed*
    // at the ticket leg, and the entry stays in the log.
    d.version_server.stop();
    run_actors_on(&clock, 1, |_, p| {
        let err = blob_ref.wal_drain_one(p).unwrap_err();
        match err {
            Error::Transport { kind, .. } => {
                use TransportErrorKind::*;
                assert!(matches!(
                    kind,
                    ConnectionRefused | ConnectionReset | Timeout
                ));
            }
            other => panic!("expected Error::Transport, got {other:?}"),
        }
    });
    assert_eq!(wal.depth(), 2, "failed replay retains the entry");

    // Restart the server shell around the surviving service state and
    // finish the drain: both remaining entries replay, in order.
    d.version_server = RpcServer::start(
        d.version_addr,
        Arc::clone(&d.version_service) as Arc<dyn Service>,
    )
    .expect("rebind version server");
    wal.close();
    run_actors_on(&clock, 1, |_, p| {
        assert_eq!(blob_ref.wal_drain(p).unwrap(), 2);
        blob_ref.wal_sync(p).unwrap();
        // No hole: versions 1..=3 all published, bytes intact.
        assert_eq!(blob_ref.latest(p).unwrap().version, VersionId::new(3));
        for k in 0..3u64 {
            let back = blob_ref.read(p, k * CHUNK, CHUNK).unwrap();
            assert!(
                back.iter().all(|&b| b == k as u8 + 1),
                "entry {k} drained intact across the crash"
            );
        }
    });
    assert_eq!(wal.depth(), 0);
    assert!(wal.first_drain_error().is_none());
}
