//! Namespace + MPI integration: open a shared file by path, run a
//! collective job over it, fork a snapshot for analysis, rename the
//! output into an archive — the adoption-path workflow end to end.

use atomio::core::{Store, StoreConfig};
use atomio::mpiio::drivers::VersioningDriver;
use atomio::mpiio::{adio::AdioDriver, CollectiveStrategy, Communicator, File, OpenMode};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::stamp::WriteStamp;
use atomio::types::{ClientId, ExtentList};
use atomio::workloads::TileWorkload;
use std::sync::Arc;

#[test]
fn full_job_lifecycle_over_named_files() {
    let store = Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(4096)
            .with_data_providers(4),
    );
    let clock = SimClock::new();

    // 1. The job creates its output file by path.
    let blob = store.create_file("/jobs/climate/out.dat").unwrap();
    let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(blob.clone()));

    // 2. An MPI job writes tiles collectively (two-phase, atomic).
    let workload = TileWorkload::new(2, 2, 16, 16, 8, 2, 2);
    let ranks = workload.processes();
    let comm = Communicator::new(ranks, store.config().cost);
    let files: Vec<File> = (0..ranks)
        .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
        .collect();
    let stamps: Vec<WriteStamp> = (0..ranks)
        .map(|r| WriteStamp::new(ClientId::new(r as u64), 1))
        .collect();
    run_actors_on(&clock, ranks, |rank, p| {
        let f = &files[rank];
        f.set_view(workload.view(rank).unwrap());
        f.set_atomic(true);
        f.set_collective(CollectiveStrategy::TwoPhase { aggregators: 4 });
        let payload = stamps[rank].payload_for(&workload.extents_for(rank));
        f.write_at_all(p, 0, &payload).unwrap();
    });

    // 3. Analysis forks the finished snapshot by path + version.
    run_actors_on(&clock, 1, |_, p| {
        let source = store.open_file("/jobs/climate/out.dat").unwrap();
        let frozen = store
            .clone_blob(p, &source, source.latest(p).unwrap().version)
            .unwrap();
        // The fork holds the complete dataset.
        assert_eq!(frozen.latest(p).unwrap().size, workload.dataset_bytes());
        let all = ExtentList::from_pairs([(0u64, workload.dataset_bytes())]);
        let data = frozen
            .read_at(p, frozen.latest(p).unwrap().version, &all)
            .unwrap();
        assert_eq!(data.len() as u64, workload.dataset_bytes());
        // Some rank's stamp appears at the dataset start (rank 0 owns it
        // unless a ghost neighbour won the corner — accept either).
        let matched = stamps
            .iter()
            .any(|stamp| stamp.matches(0, &data[..workload.sz_element as usize]));
        assert!(matched, "dataset start carries no rank's stamp");
    });

    // 4. The output is archived; the old path disappears.
    store
        .rename("/jobs/climate/out.dat", "/archive/climate/run-1.dat")
        .unwrap();
    assert!(store.open_file("/jobs/climate/out.dat").is_err());
    assert_eq!(store.list("/archive"), vec!["/archive/climate/run-1.dat"]);

    // 5. The archived file is still the same data.
    run_actors_on(&clock, 1, |_, p| {
        let archived = store.open_file("/archive/climate/run-1.dat").unwrap();
        assert_eq!(archived.id(), blob.id());
        assert_eq!(archived.latest(p).unwrap().size, workload.dataset_bytes());
    });
}

#[test]
fn two_jobs_on_different_paths_are_isolated() {
    let store = Store::new(
        StoreConfig::default()
            .with_zero_cost()
            .with_chunk_size(1024)
            .with_data_providers(2),
    );
    let clock = SimClock::new();
    let a = store.create_file("/a").unwrap();
    let b = store.create_file("/b").unwrap();
    run_actors_on(&clock, 2, |i, p| {
        let blob = if i == 0 { &a } else { &b };
        let fill = if i == 0 { 0xAA } else { 0xBB };
        for round in 0..3 {
            let _ = round;
            blob.write(p, 0, bytes::Bytes::from(vec![fill; 2048]))
                .unwrap();
        }
    });
    run_actors_on(&clock, 1, |_, p| {
        assert_eq!(a.read(p, 0, 2048).unwrap(), vec![0xAA; 2048]);
        assert_eq!(b.read(p, 0, 2048).unwrap(), vec![0xBB; 2048]);
        assert_eq!(a.latest(p).unwrap().version.raw(), 3);
        assert_eq!(b.latest(p).unwrap().version.raw(), 3);
    });
}
