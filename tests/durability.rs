//! Crash durability of the disk backend, end to end through the store:
//! a deployment whose `StoreConfig` selects [`BackendConfig::Disk`]
//! must bring every **published** version back bit for bit after a hard
//! drop — no flush, no shutdown hook — while granted-but-unpublished
//! tickets and torn log tails roll back cleanly.
//!
//! The Memory backend is the reference: the same writes through a
//! default (in-memory Loopback) store must produce identical bytes,
//! version chains, and metadata node sets, because the disk backend is
//! a substrate swap behind `BackendConfig`, not a semantics change.

use atomio::core::{ReadVersion, Store, StoreConfig};
use atomio::meta::NodeKey;
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::tempdir::TempDir;
use atomio::types::{BackendConfig, ByteRange, Error, ExtentList, VersionId};
use bytes::Bytes;
use std::path::Path;

const CHUNK: u64 = 4096;

fn config_on(backend: BackendConfig) -> StoreConfig {
    StoreConfig::default()
        .with_zero_cost()
        .with_chunk_size(CHUNK)
        .with_data_providers(4)
        .with_meta_shards(2)
        .with_backend(backend)
        .with_seed(0xD0_0D)
}

fn sorted_keys(mut keys: Vec<NodeKey>) -> Vec<NodeKey> {
    keys.sort_by_key(|k| (k.blob, k.version, k.range.offset, k.range.len));
    keys
}

/// Three committed versions: v1 spans three chunks, v2 overwrites the
/// middle, v3 writes a non-contiguous extent list across all three.
fn apply_writes(store: &Store, clock: &SimClock) -> atomio::core::Blob {
    let blob = store.create_blob();
    let blob_ref = &blob;
    run_actors_on(clock, 1, move |_, p| {
        blob_ref
            .write(p, 0, Bytes::from(vec![0xA1; 3 * CHUNK as usize]))
            .unwrap();
        blob_ref
            .write(p, CHUNK, Bytes::from(vec![0xB2; CHUNK as usize]))
            .unwrap();
        let ext = ExtentList::from_pairs([(512, 1024), (2 * CHUNK + 100, 300)]);
        blob_ref
            .write_list(p, &ext, Bytes::from(vec![0xC3; 1324]))
            .unwrap();
    });
    blob
}

fn read_all(blob: &atomio::core::Blob, clock: &SimClock, at: ReadVersion) -> Vec<u8> {
    let blob_ref = &blob;
    run_actors_on(clock, 1, move |_, p| {
        let ext = ExtentList::single(ByteRange::new(0, 3 * CHUNK));
        blob_ref.read_list(p, at, &ext).unwrap()
    })
    .pop()
    .unwrap()
}

#[test]
fn published_state_survives_hard_drop_and_reopen_bit_identical() {
    let tmp = TempDir::new("atomio-durability");
    let clock = SimClock::new();

    // Reference run on the default in-memory backend.
    let mem_store = Store::new(config_on(BackendConfig::Memory));
    let mem_blob = apply_writes(&mem_store, &clock);
    let mem_state = read_all(&mem_blob, &clock, ReadVersion::Latest);
    let mem_keys = sorted_keys(mem_store.meta().list_keys());

    // Same writes on disk: equivalence while the first deployment runs.
    let disk_store = Store::new(config_on(BackendConfig::disk(tmp.path())));
    let disk_blob = apply_writes(&disk_store, &clock);
    let pre_drop = read_all(&disk_blob, &clock, ReadVersion::Latest);
    let pre_v2 = read_all(&disk_blob, &clock, ReadVersion::At(VersionId::new(2)));
    let pre_keys = sorted_keys(disk_store.meta().list_keys());
    assert_eq!(pre_drop, mem_state, "disk backend changes no bytes");
    assert_eq!(pre_keys, mem_keys, "disk backend changes no metadata");

    // Hard drop: no flush, no shutdown hook. The default per-publish
    // fsync policy means everything published is already durable.
    drop(disk_blob);
    drop(disk_store);

    // A fresh deployment over the same directory recovers everything.
    // Blob ids are allocated deterministically in creation order, so
    // re-creating the blob re-binds the recovered state.
    let reopened = Store::new(config_on(BackendConfig::disk(tmp.path())));
    let blob = reopened.create_blob();
    let blob_ref = &blob;
    run_actors_on(&clock, 1, move |_, p| {
        assert_eq!(blob_ref.latest(p).unwrap().version, VersionId::new(3));
    });
    assert_eq!(
        read_all(&blob, &clock, ReadVersion::Latest),
        pre_drop,
        "latest reads back bit-identical after crash recovery"
    );
    assert_eq!(
        read_all(&blob, &clock, ReadVersion::At(VersionId::new(2))),
        pre_v2,
        "historic snapshots survive too"
    );
    assert_eq!(
        sorted_keys(reopened.meta().list_keys()),
        pre_keys,
        "every metadata tree node recovered from the shard logs"
    );

    // The pipeline keeps serving: the next commit is v4 and does not
    // disturb recovered state (chunk ids resume past everything on
    // disk, so nothing gets overwritten).
    run_actors_on(&clock, 1, move |_, p| {
        blob_ref
            .write(p, 0, Bytes::from(vec![0xD4; CHUNK as usize]))
            .unwrap();
        assert_eq!(blob_ref.latest(p).unwrap().version, VersionId::new(4));
    });
    assert_eq!(
        read_all(&blob, &clock, ReadVersion::At(VersionId::new(3))),
        pre_drop,
        "the old tip is untouched by the post-recovery write"
    );
}

#[test]
fn granted_but_unpublished_ticket_rolls_back_on_reopen() {
    let tmp = TempDir::new("atomio-durability-grant");
    let clock = SimClock::new();

    let store = Store::new(config_on(BackendConfig::disk(tmp.path())));
    let blob = apply_writes(&store, &clock);
    let tip = read_all(&blob, &clock, ReadVersion::Latest);

    // Grab a ticket for v4 and crash before publishing. Nothing hits
    // the publish log until publication, so the grant must vanish.
    let blob_ref = &blob;
    run_actors_on(&clock, 1, move |_, p| {
        let (t, _) = blob_ref.version_manager().ticket_append(p, CHUNK).unwrap();
        assert_eq!(t.version, VersionId::new(4));
    });
    drop(blob);
    drop(store);

    let reopened = Store::new(config_on(BackendConfig::disk(tmp.path())));
    let blob = reopened.create_blob();
    let blob_ref = &blob;
    run_actors_on(&clock, 1, move |_, p| {
        assert_eq!(
            blob_ref.latest(p).unwrap().version,
            VersionId::new(3),
            "latest never advances into the torn grant"
        );
        assert!(matches!(
            blob_ref
                .read_list(
                    p,
                    ReadVersion::At(VersionId::new(4)),
                    &ExtentList::single(ByteRange::new(0, CHUNK)),
                )
                .unwrap_err(),
            Error::VersionNotFound { .. }
        ));
    });
    assert_eq!(read_all(&blob, &clock, ReadVersion::Latest), tip);

    // The rolled-back number is reissued: the next commit lands as v4.
    run_actors_on(&clock, 1, move |_, p| {
        blob_ref
            .write(p, 0, Bytes::from(vec![0xE5; CHUNK as usize]))
            .unwrap();
        assert_eq!(blob_ref.latest(p).unwrap().version, VersionId::new(4));
    });
}

#[test]
fn torn_publish_log_tail_rolls_back_to_the_last_complete_version() {
    let tmp = TempDir::new("atomio-durability-torn");
    let clock = SimClock::new();

    let store = Store::new(config_on(BackendConfig::disk(tmp.path())));
    let blob = apply_writes(&store, &clock);
    let v2_state = read_all(&blob, &clock, ReadVersion::At(VersionId::new(2)));
    drop(blob);
    drop(store);

    // Tear the publish log's tail: chop one byte off v3's record, as a
    // crash mid-append would. Recovery must truncate the torn record
    // and resume from the last complete one.
    let log = tmp
        .path()
        .join("version")
        .join("blob-0")
        .join("publish.log");
    tear_one_byte(&log);

    let reopened = Store::new(config_on(BackendConfig::disk(tmp.path())));
    let blob = reopened.create_blob();
    let blob_ref = &blob;
    run_actors_on(&clock, 1, move |_, p| {
        assert_eq!(
            blob_ref.latest(p).unwrap().version,
            VersionId::new(2),
            "the torn v3 record rolls back; the complete prefix survives"
        );
    });
    assert_eq!(
        read_all(&blob, &clock, ReadVersion::Latest),
        v2_state,
        "the store serves exactly the pre-tear v2 bytes"
    );
}

fn tear_one_byte(path: &Path) {
    let len = std::fs::metadata(path).expect("publish log exists").len();
    assert!(len > 1, "publish log should hold records");
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open publish log");
    file.set_len(len - 1).expect("tear the log tail");
}
