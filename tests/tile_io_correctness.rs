//! mpi-tile-io pattern correctness across the full MPI-I/O path: every
//! rank writes its ghost-extended tile through a subarray view in atomic
//! mode; the final dataset must equal a serial replay in snapshot order,
//! and each rank's ghost-free interior must survive intact.

use atomio::mpiio::{Communicator, File, OpenMode};
use atomio::simgrid::clock::run_actors_on;
use atomio::simgrid::SimClock;
use atomio::types::stamp::WriteStamp;
use atomio::types::{ByteRange, ClientId, ExtentList};
use atomio::workloads::verify::{check_serializable, replay, WriteRecord};
use atomio::workloads::TileWorkload;
use atomio_bench::{Backend, BenchConfig};
use std::sync::Arc;

fn run_tile_round(backend: Backend, workload: &TileWorkload) -> (Vec<u8>, Vec<WriteRecord>) {
    let cfg = BenchConfig {
        servers: 4,
        chunk_size: 4096,
        cost: atomio_simgrid::CostModel::zero(),
        ..BenchConfig::default()
    };
    let (driver, _) = cfg.build(backend);
    let ranks = workload.processes();
    let clock = SimClock::new();
    let comm = Communicator::new(ranks, cfg.cost);
    let files: Vec<File> = (0..ranks)
        .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
        .collect();
    let stamps: Vec<WriteStamp> = (0..ranks)
        .map(|r| WriteStamp::new(ClientId::new(r as u64), 1))
        .collect();
    let extents: Vec<ExtentList> = (0..ranks).map(|r| workload.extents_for(r)).collect();

    run_actors_on(&clock, ranks, |rank, p| {
        let f = &files[rank];
        f.set_view(workload.view(rank).unwrap());
        f.set_atomic(true);
        let payload = stamps[rank].payload_for(&extents[rank]);
        f.write_at_all(p, 0, &payload).unwrap();
    });

    let state = run_actors_on(&clock, 1, |_, p| {
        driver
            .read_extents(
                p,
                ClientId::new(99),
                &ExtentList::single(ByteRange::new(0, workload.dataset_bytes())),
                false,
            )
            .unwrap()
    })
    .pop()
    .unwrap();
    let writes = (0..ranks)
        .map(|r| WriteRecord::new(stamps[r], extents[r].clone()))
        .collect();
    (state, writes)
}

#[test]
fn tile_round_is_serializable_on_both_backends() {
    let workload = TileWorkload::new(3, 3, 16, 16, 8, 2, 2);
    for backend in [Backend::Versioning, Backend::LustreLock] {
        let (state, writes) = run_tile_round(backend, &workload);
        let order =
            check_serializable(&state, &writes).unwrap_or_else(|v| panic!("{backend:?}: {v:?}"));
        // The witness replay reproduces the observed dataset exactly.
        assert_eq!(
            replay(state.len(), &writes, &order),
            state,
            "{backend:?} witness mismatch"
        );
    }
}

#[test]
fn tile_interiors_survive_ghost_conflicts() {
    // The ghost borders may belong to either neighbour, but the interior
    // of each tile (everything at least `overlap` away from the tile
    // edge) is written by exactly one rank and must carry its stamp.
    let workload = TileWorkload::new(2, 2, 8, 8, 4, 2, 2);
    let (state, writes) = run_tile_round(Backend::Versioning, &workload);
    check_serializable(&state, &writes).expect("serializable");

    let elem = workload.sz_element;
    let row = workload.array_x();
    for (rank, write) in writes.iter().enumerate().take(workload.processes()) {
        let (tx, ty) = workload.tile_of(rank);
        let x0 = tx * (workload.sz_tile_x - workload.overlap_x);
        let y0 = ty * (workload.sz_tile_y - workload.overlap_y);
        for dy in workload.overlap_y..workload.sz_tile_y - workload.overlap_y {
            for dx in workload.overlap_x..workload.sz_tile_x - workload.overlap_x {
                let off = ((y0 + dy) * row + x0 + dx) * elem;
                let got = &state[off as usize..(off + elem) as usize];
                assert!(
                    write.stamp.matches(off, got),
                    "rank {rank} interior element at ({}, {}) clobbered",
                    x0 + dx,
                    y0 + dy
                );
            }
        }
    }
}

#[test]
fn disjoint_tiles_reconstruct_exactly() {
    // Zero overlap: the dataset must be the exact union of all tiles.
    let workload = TileWorkload::new(2, 3, 8, 8, 4, 0, 0);
    let (state, writes) = run_tile_round(Backend::LustreLock, &workload);
    for w in &writes {
        for r in &w.extents {
            let got = &state[r.offset as usize..r.end() as usize];
            assert!(w.stamp.matches(r.offset, got));
        }
    }
    assert_eq!(state.len() as u64, workload.dataset_bytes());
}
