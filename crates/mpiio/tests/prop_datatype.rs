//! Property tests for datatype flattening and file views, checked
//! against naive reference expansions.

use atomio_mpiio::{Datatype, FileView};
use atomio_types::ExtentList;
use proptest::prelude::*;

/// Naive reference: expand a vector type element by element.
fn naive_vector(elem_size: u64, count: u64, blocklen: u64, stride: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for i in 0..count {
        for j in 0..blocklen {
            out.push(((i * stride + j) * elem_size, elem_size));
        }
    }
    out
}

fn naive_subarray_2d(
    elem: u64,
    sizes: (u64, u64),
    subsizes: (u64, u64),
    starts: (u64, u64),
) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for y in starts.0..starts.0 + subsizes.0 {
        for x in starts.1..starts.1 + subsizes.1 {
            out.push(((y * sizes.1 + x) * elem, elem));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vector_flatten_matches_naive(
        elem_size in 1u64..16,
        count in 1u64..20,
        blocklen in 1u64..8,
        extra_stride in 0u64..8,
    ) {
        let stride = blocklen + extra_stride;
        let t = Datatype::bytes(elem_size).unwrap()
            .vector(count, blocklen, stride).unwrap();
        let want = ExtentList::from_pairs(naive_vector(elem_size, count, blocklen, stride));
        prop_assert_eq!(t.flatten(), want);
        prop_assert_eq!(t.size(), count * blocklen * elem_size);
    }

    #[test]
    fn subarray_flatten_matches_naive(
        elem in 1u64..8,
        rows in 1u64..12,
        cols in 1u64..12,
        sub in (1u64..6, 1u64..6),
        start in (0u64..6, 0u64..6),
    ) {
        let sizes = (rows + sub.0 + start.0, cols + sub.1 + start.1);
        let t = Datatype::bytes(elem).unwrap()
            .subarray(&[sizes.0, sizes.1], &[sub.0, sub.1], &[start.0, start.1])
            .unwrap();
        let want = ExtentList::from_pairs(naive_subarray_2d(elem, sizes, sub, start));
        prop_assert_eq!(t.flatten(), want);
        prop_assert_eq!(t.size(), sub.0 * sub.1 * elem);
    }

    #[test]
    fn flatten_total_always_equals_size(
        elem in 1u64..8,
        count in 1u64..10,
        displs in proptest::collection::vec(0u64..4, 1..6),
    ) {
        // Build an indexed type with strictly increasing displacements.
        let mut blocks = Vec::new();
        let mut at = 0u64;
        for d in &displs {
            blocks.push((at, 1 + d % 3));
            at += 1 + d % 3 + d;
        }
        let base = Datatype::bytes(elem).unwrap().contiguous(count).unwrap();
        let t = base.indexed(&blocks).unwrap();
        prop_assert_eq!(t.flatten().total_len(), t.size());
        // Extent covers every flattened byte.
        prop_assert!(t.flatten().covering_range().end() <= t.extent());
    }

    #[test]
    fn pack_unpack_identity(
        elem in 1u64..8,
        displs in proptest::collection::vec(0u64..5, 1..6),
        seed in any::<u64>(),
    ) {
        let mut blocks = Vec::new();
        let mut at = 0u64;
        for d in &displs {
            blocks.push((at, 1 + d % 3));
            at += 1 + d % 3 + d + 1;
        }
        let t = Datatype::bytes(elem).unwrap().indexed(&blocks).unwrap();
        let span = t.flatten().covering_range().end();
        let mut mem = vec![0u8; span as usize];
        let mut x = seed | 1;
        for b in mem.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 56) as u8;
        }
        let packed = t.pack(&mem).unwrap();
        prop_assert_eq!(packed.len() as u64, t.size());
        let mut back = vec![0u8; span as usize];
        t.unpack(&packed, &mut back).unwrap();
        // Bytes inside the typemap round-trip; gap bytes stay zero.
        for r in &t.flatten() {
            prop_assert_eq!(&back[r.offset as usize..r.end() as usize],
                            &mem[r.offset as usize..r.end() as usize]);
        }
        let holes = ExtentList::single(atomio_types::ByteRange::new(0, span))
            .subtract(&t.flatten());
        for r in &holes {
            prop_assert!(back[r.offset as usize..r.end() as usize].iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn view_extents_tile_correctly(
        block in 1u64..64,
        pad in 0u64..64,
        tiles in 1u64..12,
        start_tile in 0u64..4,
    ) {
        // Block-cyclic view: `block` bytes of mine, `pad` of others.
        let ft = Datatype::bytes(block).unwrap().resized(block + pad).unwrap();
        let view = FileView::new(0, 1, ft).unwrap();
        let e = view.extents_for(start_tile * block, tiles * block).unwrap();
        prop_assert_eq!(e.total_len(), tiles * block);
        // The naive tiling.
        let want = ExtentList::from_pairs(
            (start_tile..start_tile + tiles).map(|t| (t * (block + pad), block)),
        );
        prop_assert_eq!(e, want);
    }

    #[test]
    fn view_data_order_is_monotonic(
        block in 1u64..32,
        pad in 1u64..32,
        len in 1u64..200,
        off in 0u64..50,
    ) {
        let ft = Datatype::bytes(block).unwrap().resized(block + pad).unwrap();
        let view = FileView::new(128, 1, ft).unwrap();
        let e = view.extents_for(off, len).unwrap();
        prop_assert_eq!(e.total_len(), len);
        // Extents are in file order and disjoint (ExtentList invariant),
        // and they start at/after the displacement.
        if let Some(first) = e.ranges().first() {
            prop_assert!(first.offset >= 128);
        }
    }
}
