//! The ADIO abstraction: how ROMIO talks to a storage backend.
//!
//! An [`AdioDriver`] moves a flattened extent list of bytes to/from the
//! backing store, honouring (or not) MPI atomic mode. All datatype and
//! view processing happens above this trait; all concurrency control
//! happens below it — which is exactly the boundary where the paper
//! intervenes: its backend receives the whole non-contiguous request
//! natively instead of a stream of POSIX calls.

use atomio_simgrid::Participant;
use atomio_types::{ClientId, ExtentList, Result};
use bytes::Bytes;

/// A storage backend as seen by the MPI-I/O layer.
pub trait AdioDriver: Send + Sync + std::fmt::Debug {
    /// Writes `payload` (packed in file order) to `extents`.
    ///
    /// With `atomic` set, the write must obey MPI atomic mode: concurrent
    /// overlapping writes may not interleave within the overlap.
    fn write_extents(
        &self,
        p: &Participant,
        client: ClientId,
        extents: &ExtentList,
        payload: Bytes,
        atomic: bool,
    ) -> Result<()>;

    /// Reads `extents`, returning bytes packed in file order. With
    /// `atomic` set, the read must not observe a torn concurrent write.
    fn read_extents(
        &self,
        p: &Participant,
        client: ClientId,
        extents: &ExtentList,
        atomic: bool,
    ) -> Result<Vec<u8>>;

    /// Current file size (highest byte written, as far as this backend
    /// knows).
    fn file_size(&self, p: &Participant) -> u64;

    /// A short name for reports ("versioning", "lustre-lock", ...).
    fn name(&self) -> &'static str;
}
