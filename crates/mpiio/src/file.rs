//! The MPI file handle: views, pointers, atomic mode, independent and
//! collective data access.

use crate::adio::AdioDriver;
use crate::collective::{two_phase_read, two_phase_write, CollectiveStrategy};
use crate::comm::Communicator;
use crate::view::FileView;
use atomio_simgrid::Participant;
use atomio_types::{ClientId, Error, Result};
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The shared file pointer of one open group (MPI maintains one shared
/// pointer per collective open, distinct from the individual pointers).
/// Create one and hand a clone to every rank's [`File::open_shared`].
#[derive(Debug, Clone, Default)]
pub struct SharedPointer {
    /// Offset in etypes.
    offset: Arc<AtomicU64>,
}

impl SharedPointer {
    /// A shared pointer at offset zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current offset in etypes.
    pub fn position(&self) -> u64 {
        self.offset.load(Ordering::SeqCst)
    }

    /// Atomically claims `etypes` at the pointer, returning the start.
    fn claim(&self, etypes: u64) -> u64 {
        self.offset.fetch_add(etypes, Ordering::SeqCst)
    }

    /// Sets the pointer (MPI_File_seek_shared; callers are responsible
    /// for the standard's requirement that this be collective).
    pub fn seek(&self, offset_etypes: u64) {
        self.offset.store(offset_etypes, Ordering::SeqCst);
    }
}

/// Open mode (subset of MPI_MODE_*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only access.
    ReadOnly,
    /// Read-write access.
    ReadWrite,
}

/// One rank's handle on a shared file (MPI_File).
///
/// All ranks of the communicator share the driver (the file); each rank
/// holds its own view, file pointer, and atomic-mode flag (MPI specifies
/// atomic mode per file handle; calling [`File::set_atomic`] on every
/// rank, as applications do, gives the collective behaviour).
#[derive(Debug)]
pub struct File {
    driver: Arc<dyn AdioDriver>,
    comm: Communicator,
    rank: usize,
    client: ClientId,
    mode: OpenMode,
    view: RwLock<FileView>,
    atomic: AtomicBool,
    collective: RwLock<CollectiveStrategy>,
    /// Individual file pointer, in etype units.
    pointer: AtomicU64,
    /// Group-wide shared pointer (present when opened via
    /// [`File::open_shared`]).
    shared: Option<SharedPointer>,
}

impl File {
    /// Opens the shared file on this rank.
    pub fn open(
        comm: Communicator,
        rank: usize,
        driver: Arc<dyn AdioDriver>,
        mode: OpenMode,
    ) -> Self {
        assert!(rank < comm.size(), "rank {rank} outside communicator");
        File {
            driver,
            comm,
            rank,
            client: ClientId::new(rank as u64),
            mode,
            view: RwLock::new(FileView::contiguous_bytes()),
            atomic: AtomicBool::new(false),
            collective: RwLock::new(CollectiveStrategy::Independent),
            pointer: AtomicU64::new(0),
            shared: None,
        }
    }

    /// Opens with a group-wide shared file pointer: every rank of the
    /// open group must pass a clone of the same [`SharedPointer`].
    pub fn open_shared(
        comm: Communicator,
        rank: usize,
        driver: Arc<dyn AdioDriver>,
        mode: OpenMode,
        shared: SharedPointer,
    ) -> Self {
        let mut f = Self::open(comm, rank, driver, mode);
        f.shared = Some(shared);
        f
    }

    /// This rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The backing driver.
    pub fn driver(&self) -> &Arc<dyn AdioDriver> {
        &self.driver
    }

    /// Sets the file view (MPI_File_set_view); resets the file pointer,
    /// as the standard requires.
    pub fn set_view(&self, view: FileView) {
        *self.view.write() = view;
        self.pointer.store(0, Ordering::Relaxed);
    }

    /// The current view.
    pub fn view(&self) -> FileView {
        self.view.read().clone()
    }

    /// Enables/disables MPI atomic mode (MPI_File_set_atomicity).
    pub fn set_atomic(&self, on: bool) {
        self.atomic.store(on, Ordering::Relaxed);
    }

    /// Current atomic-mode flag.
    pub fn is_atomic(&self) -> bool {
        self.atomic.load(Ordering::Relaxed)
    }

    /// Selects the collective-I/O strategy (ROMIO's `romio_cb_write`
    /// hint). Every rank must choose the same strategy.
    pub fn set_collective(&self, strategy: CollectiveStrategy) {
        *self.collective.write() = strategy;
    }

    /// Current collective strategy.
    pub fn collective_strategy(&self) -> CollectiveStrategy {
        *self.collective.read()
    }

    /// Current file size in bytes.
    pub fn size(&self, p: &Participant) -> u64 {
        self.driver.file_size(p)
    }

    fn check_writable(&self) -> Result<()> {
        match self.mode {
            OpenMode::ReadWrite => Ok(()),
            OpenMode::ReadOnly => Err(Error::InvalidMode("writing")),
        }
    }

    // ------------------------------------------------------------------
    // Independent data access
    // ------------------------------------------------------------------

    /// MPI_File_write_at: writes `buf` through the view at an explicit
    /// view offset (in etypes).
    pub fn write_at(&self, p: &Participant, offset_etypes: u64, buf: &[u8]) -> Result<()> {
        self.check_writable()?;
        if buf.is_empty() {
            return Ok(());
        }
        let extents = self
            .view
            .read()
            .extents_for(offset_etypes, buf.len() as u64)?;
        self.driver.write_extents(
            p,
            self.client,
            &extents,
            Bytes::copy_from_slice(buf),
            self.is_atomic(),
        )
    }

    /// MPI_File_read_at.
    pub fn read_at(&self, p: &Participant, offset_etypes: u64, len: u64) -> Result<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let extents = self.view.read().extents_for(offset_etypes, len)?;
        self.driver
            .read_extents(p, self.client, &extents, self.is_atomic())
    }

    /// MPI_File_write: writes at the individual file pointer and
    /// advances it.
    pub fn write(&self, p: &Participant, buf: &[u8]) -> Result<()> {
        let etype = self.view.read().etype_size;
        if !(buf.len() as u64).is_multiple_of(etype) {
            return Err(Error::InvalidDatatype(
                "write length is not a whole number of etypes".into(),
            ));
        }
        let offset = self
            .pointer
            .fetch_add(buf.len() as u64 / etype, Ordering::Relaxed);
        self.write_at(p, offset, buf)
    }

    /// MPI_File_read: reads at the individual pointer and advances it.
    pub fn read(&self, p: &Participant, len: u64) -> Result<Vec<u8>> {
        let etype = self.view.read().etype_size;
        if !len.is_multiple_of(etype) {
            return Err(Error::InvalidDatatype(
                "read length is not a whole number of etypes".into(),
            ));
        }
        let offset = self.pointer.fetch_add(len / etype, Ordering::Relaxed);
        self.read_at(p, offset, len)
    }

    /// MPI_File_seek (absolute, in etypes).
    pub fn seek(&self, offset_etypes: u64) {
        self.pointer.store(offset_etypes, Ordering::Relaxed);
    }

    /// MPI_File_write_shared: writes at the group's shared file pointer,
    /// atomically claiming the region — concurrent callers never
    /// overlap. Non-deterministic order (like the standard's).
    pub fn write_shared(&self, p: &Participant, buf: &[u8]) -> Result<()> {
        let shared = self
            .shared
            .as_ref()
            .ok_or(Error::InvalidMode("shared-pointer access"))?;
        let etype = self.view.read().etype_size;
        if !(buf.len() as u64).is_multiple_of(etype) {
            return Err(Error::InvalidDatatype(
                "write length is not a whole number of etypes".into(),
            ));
        }
        let offset = shared.claim(buf.len() as u64 / etype);
        self.write_at(p, offset, buf)
    }

    /// MPI_File_read_shared.
    pub fn read_shared(&self, p: &Participant, len: u64) -> Result<Vec<u8>> {
        let shared = self
            .shared
            .as_ref()
            .ok_or(Error::InvalidMode("shared-pointer access"))?;
        let etype = self.view.read().etype_size;
        if !len.is_multiple_of(etype) {
            return Err(Error::InvalidDatatype(
                "read length is not a whole number of etypes".into(),
            ));
        }
        let offset = shared.claim(len / etype);
        self.read_at(p, offset, len)
    }

    /// MPI_File_write_ordered: collective write at the shared pointer in
    /// **rank order** — rank r's data lands immediately after the data of
    /// ranks 0..r, regardless of arrival timing. All ranks must call it;
    /// empty buffers are allowed.
    pub fn write_ordered(&self, p: &Participant, buf: &[u8]) -> Result<()> {
        let shared = self
            .shared
            .as_ref()
            .ok_or(Error::InvalidMode("shared-pointer access"))?;
        let etype = self.view.read().etype_size;
        if !(buf.len() as u64).is_multiple_of(etype) {
            return Err(Error::InvalidDatatype(
                "write length is not a whole number of etypes".into(),
            ));
        }
        let my_etypes = buf.len() as u64 / etype;
        // Read the base BEFORE the allgather: the gather is a sync point,
        // so every rank observes the same pointer value (rank 0 only
        // advances it after the gather completes).
        let base = shared.position();
        // Exchange sizes; compute this rank's slot by prefix sum.
        let sizes = self
            .comm
            .allgather(p, self.rank, my_etypes.to_le_bytes().to_vec());
        let decoded: Vec<u64> = sizes
            .iter()
            .map(|b| u64::from_le_bytes(b[..8].try_into().expect("8 bytes")))
            .collect();
        let my_start = base + decoded[..self.rank].iter().sum::<u64>();
        let result = if buf.is_empty() {
            Ok(())
        } else {
            self.write_at(p, my_start, buf)
        };
        // Rank 0 advances the shared pointer past everyone, once.
        if self.rank == 0 {
            shared.seek(base + decoded.iter().sum::<u64>());
        }
        self.comm.barrier(p);
        result
    }

    /// Writes a *non-contiguous memory buffer* described by `mem_type`
    /// (ROMIO handles memory-side datatypes by packing — MPI_Pack — and
    /// then streaming the packed bytes through the file view).
    pub fn write_at_typed(
        &self,
        p: &Participant,
        offset_etypes: u64,
        mem_type: &crate::Datatype,
        mem_buf: &[u8],
    ) -> Result<()> {
        let packed = mem_type.pack(mem_buf)?;
        self.write_at(p, offset_etypes, &packed)
    }

    /// Reads into a *non-contiguous memory buffer* described by
    /// `mem_type` (the packed file data is scattered via MPI_Unpack).
    pub fn read_at_typed(
        &self,
        p: &Participant,
        offset_etypes: u64,
        mem_type: &crate::Datatype,
        mem_buf: &mut [u8],
    ) -> Result<()> {
        let packed = self.read_at(p, offset_etypes, mem_type.size())?;
        mem_type.unpack(&packed, mem_buf)
    }

    // ------------------------------------------------------------------
    // Collective data access
    // ------------------------------------------------------------------

    /// MPI_File_write_at_all: collective write. Every rank of the
    /// communicator must call it; ranks with nothing to write pass an
    /// empty buffer.
    pub fn write_at_all(&self, p: &Participant, offset_etypes: u64, buf: &[u8]) -> Result<()> {
        match self.collective_strategy() {
            CollectiveStrategy::Independent => {
                self.comm.barrier(p);
                let result = if buf.is_empty() {
                    Ok(())
                } else {
                    self.write_at(p, offset_etypes, buf)
                };
                self.comm.barrier(p);
                result
            }
            CollectiveStrategy::TwoPhase { aggregators } => {
                self.check_writable()?;
                let extents = self
                    .view
                    .read()
                    .extents_for(offset_etypes, buf.len() as u64)?;
                two_phase_write(
                    p,
                    &self.comm,
                    self.rank,
                    &self.driver,
                    &extents,
                    buf,
                    aggregators,
                    self.is_atomic(),
                )
            }
        }
    }

    /// MPI_File_read_at_all: collective read.
    pub fn read_at_all(&self, p: &Participant, offset_etypes: u64, len: u64) -> Result<Vec<u8>> {
        match self.collective_strategy() {
            CollectiveStrategy::Independent => {
                self.comm.barrier(p);
                let result = self.read_at(p, offset_etypes, len);
                self.comm.barrier(p);
                result
            }
            CollectiveStrategy::TwoPhase { aggregators } => {
                let extents = self.view.read().extents_for(offset_etypes, len)?;
                two_phase_read(
                    p,
                    &self.comm,
                    self.rank,
                    &self.driver,
                    &extents,
                    aggregators,
                    self.is_atomic(),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::VersioningDriver;
    use crate::Datatype;
    use atomio_core::{Store, StoreConfig};
    use atomio_simgrid::clock::run_actors;
    use atomio_simgrid::CostModel;

    fn shared_file(ranks: usize) -> (Arc<dyn AdioDriver>, Communicator) {
        let store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4),
        );
        let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(store.create_blob()));
        (driver, Communicator::new(ranks, CostModel::zero()))
    }

    #[test]
    fn write_read_through_default_view() {
        let (driver, comm) = shared_file(1);
        let f = File::open(comm, 0, driver, OpenMode::ReadWrite);
        run_actors(1, |_, p| {
            f.write_at(p, 100, b"payload").unwrap();
            assert_eq!(f.read_at(p, 100, 7).unwrap(), b"payload");
            assert_eq!(f.size(p), 107);
        });
    }

    #[test]
    fn file_pointer_advances() {
        let (driver, comm) = shared_file(1);
        let f = File::open(comm, 0, driver, OpenMode::ReadWrite);
        run_actors(1, |_, p| {
            f.write(p, b"aaaa").unwrap();
            f.write(p, b"bbbb").unwrap();
            f.seek(0);
            assert_eq!(f.read(p, 8).unwrap(), b"aaaabbbb");
            // Pointer resets on set_view.
            f.set_view(FileView::contiguous_bytes());
            assert_eq!(f.read(p, 4).unwrap(), b"aaaa");
        });
    }

    #[test]
    fn read_only_mode_rejects_writes() {
        let (driver, comm) = shared_file(1);
        let f = File::open(comm, 0, driver, OpenMode::ReadOnly);
        run_actors(1, |_, p| {
            assert_eq!(
                f.write_at(p, 0, b"x").unwrap_err(),
                Error::InvalidMode("writing")
            );
        });
    }

    #[test]
    fn strided_views_partition_the_file() {
        // Two ranks with complementary block-cyclic views write
        // interleaved 4-byte blocks; the file ends up fully covered.
        let (driver, comm) = shared_file(2);
        let files: Vec<File> = (0..2)
            .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
            .collect();
        for (r, f) in files.iter().enumerate() {
            let ft = Datatype::bytes(4).unwrap().resized(8).unwrap();
            f.set_view(FileView::new(r as u64 * 4, 4, ft).unwrap());
        }
        let fref = &files;
        run_actors(2, move |i, p| {
            let fill = if i == 0 { b'A' } else { b'B' };
            fref[i].write_at(p, 0, &[fill; 8]).unwrap();
        });
        run_actors(1, |_, p| {
            let whole = File::open(comm.clone(), 0, Arc::clone(&driver), OpenMode::ReadWrite);
            let got = whole.read_at(p, 0, 16).unwrap();
            assert_eq!(&got, b"AAAABBBBAAAABBBB");
        });
    }

    #[test]
    fn atomicity_flag_reaches_driver() {
        let (driver, comm) = shared_file(1);
        let f = File::open(comm, 0, driver, OpenMode::ReadWrite);
        assert!(!f.is_atomic());
        f.set_atomic(true);
        assert!(f.is_atomic());
        f.set_atomic(false);
        assert!(!f.is_atomic());
    }

    #[test]
    fn collective_write_synchronizes() {
        let (driver, comm) = shared_file(4);
        let files: Vec<File> = (0..4)
            .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
            .collect();
        let fref = &files;
        run_actors(4, move |i, p| {
            // Each rank writes its own 4-byte block collectively; rank 3
            // writes nothing (allowed: empty participation).
            if i < 3 {
                fref[i]
                    .write_at_all(p, i as u64 * 4, &[b'0' + i as u8; 4])
                    .unwrap();
            } else {
                fref[i].write_at_all(p, 0, b"").unwrap();
            }
            // All ranks collectively read the full region afterwards.
            let got = fref[i].read_at_all(p, 0, 12).unwrap();
            assert_eq!(&got, b"000011112222");
        });
    }

    #[test]
    fn two_phase_collective_matches_rank_order_replay() {
        use crate::collective::CollectiveStrategy;
        use atomio_types::stamp::WriteStamp;
        // 4 ranks with heavily overlapping strided views; two-phase must
        // produce exactly the serial schedule rank0, rank1, rank2, rank3.
        let (driver, comm) = shared_file(4);
        let files: Vec<File> = (0..4)
            .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
            .collect();
        let extents: Vec<atomio_types::ExtentList> = (0..4u64)
            .map(|r| {
                atomio_types::ExtentList::from_pairs((0..6u64).map(|k| (k * 256 + r * 96, 128u64)))
            })
            .collect();
        let stamps: Vec<WriteStamp> = (0..4)
            .map(|r| WriteStamp::new(atomio_types::ClientId::new(r), 5))
            .collect();
        let fref = &files;
        let eref = &extents;
        let sref = &stamps;
        run_actors(4, move |i, p| {
            fref[i].set_atomic(true);
            fref[i].set_collective(CollectiveStrategy::TwoPhase { aggregators: 2 });
            // Views: identity byte views; address extents via indexed
            // writes is awkward, so write each extent set through a
            // custom view-less path: set an indexed filetype matching
            // the extent list.
            let pairs: Vec<(u64, u64)> =
                eref[i].ranges().iter().map(|r| (r.offset, r.len)).collect();
            let ft = Datatype::bytes(1).unwrap().indexed(&pairs).unwrap();
            fref[i].set_view(FileView::new(0, 1, ft).unwrap());
            let payload = sref[i].payload_for(&eref[i]);
            fref[i].write_at_all(p, 0, &payload).unwrap();
        });
        // Model: apply in rank order.
        let end = extents
            .iter()
            .map(|e| e.covering_range().end())
            .max()
            .unwrap();
        let mut model = vec![0u8; end as usize];
        for (i, e) in extents.iter().enumerate() {
            for r in e {
                stamps[i].fill_range(r.offset, &mut model[r.offset as usize..r.end() as usize]);
            }
        }
        run_actors(1, |_, p| {
            let whole = File::open(comm.clone(), 0, Arc::clone(&driver), OpenMode::ReadWrite);
            let got = whole.read_at(p, 0, end).unwrap();
            assert_eq!(got, model, "two-phase result is not the rank-order replay");
        });
    }

    #[test]
    fn two_phase_collective_read_matches_independent() {
        use crate::collective::CollectiveStrategy;
        let (driver, comm) = shared_file(4);
        let files: Vec<File> = (0..4)
            .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
            .collect();
        // Populate with a known pattern through rank 0.
        run_actors(1, |_, p| {
            let data: Vec<u8> = (0..4096u64).map(|i| (i % 251) as u8).collect();
            files[0].write_at(p, 0, &data).unwrap();
        });
        // Each rank reads a strided slice both ways; results must agree.
        let fref = &files;
        run_actors(4, move |i, p| {
            let ft = Datatype::bytes(64).unwrap().resized(256).unwrap();
            fref[i].set_view(FileView::new(i as u64 * 64, 1, ft).unwrap());
            fref[i].set_collective(CollectiveStrategy::Independent);
            let independent = fref[i].read_at_all(p, 0, 640).unwrap();
            fref[i].set_collective(CollectiveStrategy::TwoPhase { aggregators: 2 });
            let two_phase = fref[i].read_at_all(p, 0, 640).unwrap();
            assert_eq!(independent, two_phase, "rank {i}");
            // Spot-check content: first byte of rank i's view.
            assert_eq!(two_phase[0], ((i as u64 * 64) % 251) as u8);
        });
    }

    #[test]
    fn two_phase_with_idle_ranks_and_empty_union() {
        use crate::collective::CollectiveStrategy;
        let (driver, comm) = shared_file(3);
        let files: Vec<File> = (0..3)
            .map(|r| File::open(comm.clone(), r, Arc::clone(&driver), OpenMode::ReadWrite))
            .collect();
        let fref = &files;
        // Round 1: only rank 1 writes; others participate empty-handed.
        run_actors(3, move |i, p| {
            fref[i].set_collective(CollectiveStrategy::TwoPhase { aggregators: 3 });
            if i == 1 {
                fref[i].write_at_all(p, 10, b"solo").unwrap();
            } else {
                fref[i].write_at_all(p, 0, b"").unwrap();
            }
            // Round 2: nobody writes at all.
            fref[i].write_at_all(p, 0, b"").unwrap();
        });
        run_actors(1, |_, p| {
            assert_eq!(files[0].read_at(p, 10, 4).unwrap(), b"solo");
        });
    }

    #[test]
    fn two_phase_zero_aggregators_rejected() {
        use crate::collective::CollectiveStrategy;
        let (driver, comm) = shared_file(1);
        let f = File::open(comm, 0, driver, OpenMode::ReadWrite);
        f.set_collective(CollectiveStrategy::TwoPhase { aggregators: 0 });
        run_actors(1, |_, p| {
            assert!(matches!(
                f.write_at_all(p, 0, b"data"),
                Err(Error::CollectiveMismatch(_))
            ));
        });
    }

    #[test]
    fn shared_pointer_claims_disjoint_regions() {
        use super::SharedPointer;
        let (driver, comm) = shared_file(4);
        let sp = SharedPointer::new();
        let files: Vec<File> = (0..4)
            .map(|r| {
                File::open_shared(
                    comm.clone(),
                    r,
                    Arc::clone(&driver),
                    OpenMode::ReadWrite,
                    sp.clone(),
                )
            })
            .collect();
        let fref = &files;
        run_actors(4, move |i, p| {
            // Each rank writes 8 bytes of its own fill via the shared
            // pointer, twice.
            for _ in 0..2 {
                fref[i].write_shared(p, &[b'a' + i as u8; 8]).unwrap();
            }
        });
        assert_eq!(sp.position(), 64);
        run_actors(1, |_, p| {
            let data = files[0].read_at(p, 0, 64).unwrap();
            // Every 8-byte cell is uniform (no interleaving) and each
            // rank shows up exactly twice.
            let mut counts = [0usize; 4];
            for cell in data.chunks(8) {
                assert!(cell.iter().all(|&b| b == cell[0]), "torn cell");
                counts[(cell[0] - b'a') as usize] += 1;
            }
            assert_eq!(counts, [2, 2, 2, 2]);
        });
    }

    #[test]
    fn write_ordered_is_rank_ordered() {
        use super::SharedPointer;
        let (driver, comm) = shared_file(3);
        let sp = SharedPointer::new();
        let files: Vec<File> = (0..3)
            .map(|r| {
                File::open_shared(
                    comm.clone(),
                    r,
                    Arc::clone(&driver),
                    OpenMode::ReadWrite,
                    sp.clone(),
                )
            })
            .collect();
        let fref = &files;
        run_actors(3, move |i, p| {
            // Variable sizes; rank 1 contributes nothing in round 2.
            p.sleep(std::time::Duration::from_micros((3 - i as u64) * 50));
            let payload = vec![b'A' + i as u8; (i + 1) * 2];
            fref[i].write_ordered(p, &payload).unwrap();
            let payload2 = if i == 1 {
                vec![]
            } else {
                vec![b'x' + i as u8; 2]
            };
            fref[i].write_ordered(p, &payload2).unwrap();
        });
        run_actors(1, |_, p| {
            let data = files[0].read_at(p, 0, 16).unwrap();
            // Round 1: A*2, B*4, C*6 in rank order; round 2: x*2, z*2.
            assert_eq!(&data, b"AABBBBCCCCCCxxzz");
        });
        assert_eq!(sp.position(), 16);
    }

    #[test]
    fn shared_ops_require_shared_open() {
        let (driver, comm) = shared_file(1);
        let f = File::open(comm, 0, driver, OpenMode::ReadWrite);
        run_actors(1, |_, p| {
            assert_eq!(
                f.write_shared(p, b"x").unwrap_err(),
                Error::InvalidMode("shared-pointer access")
            );
            assert_eq!(
                f.read_shared(p, 1).unwrap_err(),
                Error::InvalidMode("shared-pointer access")
            );
            assert_eq!(
                f.write_ordered(p, b"x").unwrap_err(),
                Error::InvalidMode("shared-pointer access")
            );
        });
    }

    #[test]
    fn typed_memory_io_roundtrips() {
        // Memory buffer with a strided layout (e.g. a column of a
        // row-major matrix): 4 doubles every 32 bytes.
        let (driver, comm) = shared_file(1);
        let f = File::open(comm, 0, driver, OpenMode::ReadWrite);
        let mem_type = Datatype::bytes(8).unwrap().hvector(4, 1, 32).unwrap();
        let mut mem = vec![0u8; mem_type.flatten().covering_range().end() as usize + 24];
        for (i, b) in mem.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        run_actors(1, |_, p| {
            f.write_at_typed(p, 0, &mem_type, &mem).unwrap();
            // The file holds the packed column contiguously.
            let on_disk = f.read_at(p, 0, 32).unwrap();
            let expected: Vec<u8> = (0..4)
                .flat_map(|i| mem[i * 32..i * 32 + 8].to_vec())
                .collect();
            assert_eq!(on_disk, expected);
            // Scatter it back into a fresh strided buffer.
            let mut back = vec![0xEEu8; mem.len()];
            f.read_at_typed(p, 0, &mem_type, &mut back).unwrap();
            for i in 0..4 {
                assert_eq!(&back[i * 32..i * 32 + 8], &mem[i * 32..i * 32 + 8]);
                if i < 3 {
                    assert!(back[i * 32 + 8..(i + 1) * 32].iter().all(|&b| b == 0xEE));
                }
            }
        });
    }

    #[test]
    fn empty_accesses_are_noops() {
        let (driver, comm) = shared_file(1);
        let f = File::open(comm, 0, driver, OpenMode::ReadWrite);
        run_actors(1, |_, p| {
            f.write_at(p, 0, b"").unwrap();
            assert_eq!(f.read_at(p, 0, 0).unwrap(), Vec::<u8>::new());
            assert_eq!(f.size(p), 0);
        });
    }
}
