//! # atomio-mpiio
//!
//! The MPI-I/O layer: a ROMIO-style implementation of the parts of
//! MPI-2 I/O that the paper's evaluation exercises — derived datatypes,
//! file views, independent and collective access, **atomic mode**, and
//! the ADIO driver abstraction through which different storage backends
//! plug in.
//!
//! Four ADIO drivers implement the four concurrency-control strategies
//! the paper discusses:
//!
//! | driver | strategy | paper reference |
//! |---|---|---|
//! | [`drivers::VersioningDriver`] | native non-contiguous atomic writes on the versioning store | the proposal (§IV–V) |
//! | [`drivers::LockingDriver`] | covering byte-range lock on a POSIX-like PFS | Lustre/GPFS baseline (§III) |
//! | [`drivers::WholeFileDriver`] | whole-file lock at the MPI-I/O layer | Ross et al., CCGRID'05 \[8\] |
//! | [`drivers::ConflictDetectDriver`] | overlap detection, lock only on conflict | Sehrish et al., EuroPVM/MPI'09 \[9\] |
//!
//! "MPI processes" are simulated ranks: OS threads registered on the
//! virtual clock, grouped by a [`Communicator`] that provides barriers
//! and small collectives with simulated message costs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adio;
pub mod collective;
pub mod comm;
pub mod datatype;
pub mod drivers;
pub mod file;
pub mod view;

pub use adio::AdioDriver;
pub use collective::CollectiveStrategy;
pub use comm::Communicator;
pub use datatype::Datatype;
pub use file::{File, OpenMode, SharedPointer};
pub use view::FileView;
