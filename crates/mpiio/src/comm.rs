//! A simulated MPI communicator: barriers and small collectives for a
//! fixed group of ranks (threads registered on the virtual clock).

use atomio_simgrid::{CostModel, Participant};
use parking_lot::Mutex;
use std::sync::Arc;

/// A communicator over `size` ranks.
///
/// Every rank must participate in every collective, in the same order —
/// exactly MPI's contract. Mismatched participation trips an assertion
/// rather than deadlocking silently.
#[derive(Debug, Clone)]
pub struct Communicator {
    inner: Arc<CommInner>,
}

#[derive(Debug)]
struct CommInner {
    size: usize,
    cost: CostModel,
    barrier: Mutex<BarrierState>,
    gather: Mutex<GatherState>,
    exchange: Mutex<ExchangeState>,
}

/// One payload per peer.
type PerPeer = Vec<Vec<u8>>;
/// A finished round's data plus how many ranks have copied it out.
type RoundResult<T> = std::collections::HashMap<u64, (Arc<T>, usize)>;

#[derive(Debug, Default)]
struct ExchangeState {
    generation: u64,
    arrived: usize,
    /// `slots[src][dst]` = payload src sends to dst this round.
    slots: Vec<Option<PerPeer>>,
    /// Completed rounds: generation → (per-destination inboxes, copied).
    results: RoundResult<Vec<PerPeer>>,
}

#[derive(Debug, Default)]
struct BarrierState {
    generation: u64,
    arrived: usize,
}

#[derive(Debug, Default)]
struct GatherState {
    generation: u64,
    arrived: usize,
    slots: Vec<Option<Vec<u8>>>,
    /// Completed rounds' data, keyed by generation and dropped once every
    /// rank has copied it — so a slow rank can never observe a later
    /// round's result.
    results: RoundResult<PerPeer>,
}

impl Communicator {
    /// Creates a communicator for `size` ranks.
    pub fn new(size: usize, cost: CostModel) -> Self {
        assert!(size > 0, "communicator needs at least one rank");
        Communicator {
            inner: Arc::new(CommInner {
                size,
                cost,
                barrier: Mutex::new(BarrierState::default()),
                gather: Mutex::new(GatherState {
                    slots: vec![None; size],
                    ..GatherState::default()
                }),
                exchange: Mutex::new(ExchangeState {
                    slots: vec![None; size],
                    ..ExchangeState::default()
                }),
            }),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Synchronizes all ranks (costs one message latency per rank, the
    /// usual tree-barrier approximation: O(log n) rounds charged as a
    /// logarithmic multiple of the link latency).
    pub fn barrier(&self, p: &Participant) {
        let rounds = (self.inner.size as f64).log2().ceil().max(1.0) as u32;
        p.sleep(self.inner.cost.msg_latency * 2 * rounds);
        let my_gen = {
            let mut st = self.inner.barrier.lock();
            let gen = st.generation;
            st.arrived += 1;
            if st.arrived == self.inner.size {
                st.arrived = 0;
                st.generation += 1;
            }
            gen
        };
        p.poll_until(|| (self.inner.barrier.lock().generation > my_gen).then_some(()));
    }

    /// Gathers one byte payload from every rank onto every rank
    /// (MPI_Allgatherv of small metadata, e.g. extent summaries).
    pub fn allgather(&self, p: &Participant, rank: usize, payload: Vec<u8>) -> Vec<Vec<u8>> {
        assert!(rank < self.inner.size, "rank {rank} out of range");
        let bytes: u64 = payload.len() as u64 * self.inner.size as u64;
        p.sleep(self.inner.cost.msg_latency * 2);
        p.sleep(self.inner.cost.net_transfer(bytes));
        let my_gen = {
            let mut st = self.inner.gather.lock();
            // A rank cannot enter round g+1 before its round-g slot was
            // drained (draining happens when round g completes), so a
            // non-empty slot means a collective-order violation.
            assert!(
                st.slots[rank].is_none(),
                "rank {rank} gathered twice in one round (collective order violation)"
            );
            st.slots[rank] = Some(payload);
            st.arrived += 1;
            let gen = st.generation;
            if st.arrived == self.inner.size {
                let gathered: Vec<Vec<u8>> = st
                    .slots
                    .iter_mut()
                    .map(|s| s.take().expect("all ranks arrived"))
                    .collect();
                st.results.insert(gen, (Arc::new(gathered), 0));
                st.arrived = 0;
                st.generation += 1;
            }
            gen
        };
        let shared = p.poll_until(|| {
            self.inner
                .gather
                .lock()
                .results
                .get(&my_gen)
                .map(|(data, _)| Arc::clone(data))
        });
        // Mark our copy; the last rank out drops the round's storage.
        {
            let mut st = self.inner.gather.lock();
            let done = {
                let entry = st.results.get_mut(&my_gen).expect("result still live");
                entry.1 += 1;
                entry.1 == self.inner.size
            };
            if done {
                st.results.remove(&my_gen);
            }
        }
        shared.to_vec()
    }

    /// Personalized all-to-all exchange (MPI_Alltoallv): rank `rank`
    /// contributes `outgoing[d]` for every destination `d` and receives
    /// the payloads every rank addressed to it, indexed by source.
    ///
    /// Costs: one message latency round plus the NIC time of everything
    /// this rank sends and receives.
    pub fn alltoallv(&self, p: &Participant, rank: usize, outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert!(rank < self.inner.size, "rank {rank} out of range");
        assert_eq!(
            outgoing.len(),
            self.inner.size,
            "alltoallv needs one payload per destination"
        );
        let sent: u64 = outgoing.iter().map(|b| b.len() as u64).sum();
        p.sleep(self.inner.cost.msg_latency * 2);
        p.sleep(self.inner.cost.net_transfer(sent));
        let my_gen = {
            let mut st = self.inner.exchange.lock();
            assert!(
                st.slots[rank].is_none(),
                "rank {rank} exchanged twice in one round (collective order violation)"
            );
            st.slots[rank] = Some(outgoing);
            st.arrived += 1;
            let gen = st.generation;
            if st.arrived == self.inner.size {
                let contributions: Vec<PerPeer> = st
                    .slots
                    .iter_mut()
                    .map(|s| s.take().expect("all ranks arrived"))
                    .collect();
                // Transpose: inbox[dst][src].
                let n = self.inner.size;
                let mut inboxes: Vec<PerPeer> = (0..n).map(|_| Vec::with_capacity(n)).collect();
                for contribution in contributions {
                    for (dst, payload) in contribution.into_iter().enumerate() {
                        inboxes[dst].push(payload);
                    }
                }
                st.results.insert(gen, (Arc::new(inboxes), 0));
                st.arrived = 0;
                st.generation += 1;
            }
            gen
        };
        let shared = p.poll_until(|| {
            self.inner
                .exchange
                .lock()
                .results
                .get(&my_gen)
                .map(|(data, _)| Arc::clone(data))
        });
        // Charge receive-side NIC time, then release the round storage.
        let received: u64 = shared[rank].iter().map(|b| b.len() as u64).sum();
        p.sleep(self.inner.cost.net_transfer(received));
        let inbox = shared[rank].clone();
        {
            let mut st = self.inner.exchange.lock();
            let done = {
                let entry = st.results.get_mut(&my_gen).expect("result still live");
                entry.1 += 1;
                entry.1 == self.inner.size
            };
            if done {
                st.results.remove(&my_gen);
            }
        }
        inbox
    }

    /// Splits this communicator's ranks into `groups` round-robin
    /// sub-groups; returns the sub-communicator metadata (group id,
    /// rank-in-group, group size) for `rank`. Used by collective
    /// aggregation.
    pub fn split_round_robin(&self, rank: usize, groups: usize) -> (usize, usize, usize) {
        assert!(groups > 0 && rank < self.inner.size);
        let group = rank % groups;
        let rank_in_group = rank / groups;
        let group_size = (self.inner.size - group).div_ceil(groups);
        (group, rank_in_group, group_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn barrier_synchronizes() {
        let comm = Communicator::new(4, CostModel::zero());
        let before = AtomicU64::new(0);
        run_actors(4, |i, p| {
            // Stagger arrivals.
            p.sleep(Duration::from_millis(i as u64));
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier(p);
            // After the barrier, everyone must have arrived.
            assert_eq!(before.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn repeated_barriers_do_not_mix_generations() {
        let comm = Communicator::new(3, CostModel::zero());
        let counter = AtomicU64::new(0);
        run_actors(3, |_, p| {
            for round in 0..10u64 {
                comm.barrier(p);
                let c = counter.fetch_add(1, Ordering::SeqCst);
                assert!(c / 3 == round, "round {round} saw counter {c}");
                comm.barrier(p);
            }
        });
    }

    #[test]
    fn allgather_collects_all_ranks() {
        let comm = Communicator::new(4, CostModel::zero());
        let (results, _) = run_actors(4, |i, p| comm.allgather(p, i, vec![i as u8; i + 1]));
        for r in &results {
            assert_eq!(r.len(), 4);
            for (rank, payload) in r.iter().enumerate() {
                assert_eq!(payload, &vec![rank as u8; rank + 1]);
            }
        }
    }

    #[test]
    fn repeated_allgathers_do_not_mix_rounds() {
        let comm = Communicator::new(3, CostModel::zero());
        run_actors(3, |i, p| {
            for round in 0..20u8 {
                // Stagger ranks so a slow rank coexists with fast ones.
                p.sleep(Duration::from_micros(i as u64 * 7));
                let got = comm.allgather(p, i, vec![round, i as u8]);
                for (rank, payload) in got.iter().enumerate() {
                    assert_eq!(payload, &vec![round, rank as u8], "round {round}");
                }
            }
        });
    }

    #[test]
    fn barrier_costs_time() {
        let comm = Communicator::new(8, CostModel::grid5000());
        let (_, total) = run_actors(8, |_, p| comm.barrier(p));
        // 3 rounds × 200µs, plus at most one poll interval of skew for
        // the ranks that were already waiting when the last one arrived.
        assert!(total >= Duration::from_micros(600));
        assert!(total <= Duration::from_micros(600) + Duration::from_micros(25));
    }

    #[test]
    fn alltoallv_routes_personalized_payloads() {
        let comm = Communicator::new(3, CostModel::zero());
        let (results, _) = run_actors(3, |i, p| {
            // Rank i sends "i*10 + dst" to each destination.
            let outgoing: Vec<Vec<u8>> = (0..3).map(|dst| vec![(i * 10 + dst) as u8]).collect();
            comm.alltoallv(p, i, outgoing)
        });
        for (dst, inbox) in results.iter().enumerate() {
            assert_eq!(inbox.len(), 3);
            for (src, payload) in inbox.iter().enumerate() {
                assert_eq!(
                    payload,
                    &vec![(src * 10 + dst) as u8],
                    "src {src} dst {dst}"
                );
            }
        }
    }

    #[test]
    fn repeated_alltoallv_rounds_do_not_mix() {
        let comm = Communicator::new(2, CostModel::zero());
        run_actors(2, |i, p| {
            for round in 0..10u8 {
                p.sleep(Duration::from_micros(i as u64 * 3));
                let outgoing: Vec<Vec<u8>> =
                    (0..2).map(|d| vec![round, i as u8, d as u8]).collect();
                let inbox = comm.alltoallv(p, i, outgoing);
                for (src, payload) in inbox.iter().enumerate() {
                    assert_eq!(payload, &vec![round, src as u8, i as u8]);
                }
            }
        });
    }

    #[test]
    fn alltoallv_charges_transfer_time() {
        let comm = Communicator::new(2, CostModel::grid5000());
        let (_, total) = run_actors(2, |i, p| {
            let outgoing: Vec<Vec<u8>> = (0..2).map(|_| vec![0u8; 1 << 20]).collect();
            comm.alltoallv(p, i, outgoing);
        });
        // Each rank sends and receives 2 MiB over a ~110 MiB/s NIC.
        assert!(total > Duration::from_millis(30), "{total:?}");
    }

    #[test]
    fn split_round_robin_covers_all() {
        let comm = Communicator::new(10, CostModel::zero());
        let mut counts = vec![0usize; 3];
        for rank in 0..10 {
            let (g, rig, gs) = comm.split_round_robin(rank, 3);
            assert!(g < 3);
            assert!(rig < gs);
            counts[g] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts, vec![4, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_size_rejected() {
        let _ = Communicator::new(0, CostModel::zero());
    }
}
