//! File views: mapping a rank's linear I/O stream onto file extents.
//!
//! An MPI file view `(disp, etype, filetype)` makes each process see only
//! the bytes selected by tiling `filetype` from byte `disp` onward. An
//! access of `n` etypes at view-offset `o` (in etypes) therefore
//! materializes as a non-contiguous [`ExtentList`] in the file — which is
//! precisely what this module computes.

use crate::datatype::Datatype;
use atomio_types::{ByteRange, Error, ExtentList, Result};

/// A rank's file view.
///
/// ```
/// use atomio_mpiio::{Datatype, FileView};
///
/// // Block-cyclic view: this rank owns 4 bytes of every 16-byte tile.
/// let mine = Datatype::bytes(4).unwrap().resized(16).unwrap();
/// let view = FileView::new(0, 4, mine).unwrap();
/// // Writing 12 bytes (3 etypes) lands in three separate file regions.
/// let extents = view.extents_for(0, 12).unwrap();
/// assert_eq!(extents.range_count(), 3);
/// assert_eq!(extents.total_len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileView {
    /// Absolute byte displacement where the view begins.
    pub disp: u64,
    /// Elementary type size (offsets are measured in etypes).
    pub etype_size: u64,
    /// The tiled access template.
    pub filetype: Datatype,
    /// Flattened one-tile template (cached).
    template: ExtentList,
}

impl FileView {
    /// Creates a view.
    ///
    /// # Errors
    /// The filetype's data size must be a whole number of etypes, per the
    /// MPI standard.
    pub fn new(disp: u64, etype_size: u64, filetype: Datatype) -> Result<Self> {
        if etype_size == 0 {
            return Err(Error::InvalidDatatype("zero-size etype".into()));
        }
        if !filetype.size().is_multiple_of(etype_size) {
            return Err(Error::InvalidDatatype(format!(
                "filetype size {} is not a multiple of the etype size {}",
                filetype.size(),
                etype_size
            )));
        }
        let template = filetype.flatten();
        Ok(FileView {
            disp,
            etype_size,
            filetype,
            template,
        })
    }

    /// The trivial byte-stream view: the whole file, contiguous.
    pub fn contiguous_bytes() -> Self {
        let byte = Datatype::bytes(1).expect("1 > 0");
        Self::new(0, 1, byte).expect("trivial view is valid")
    }

    /// Data bytes per filetype tile.
    pub fn tile_data(&self) -> u64 {
        self.filetype.size()
    }

    /// File-space bytes per filetype tile.
    pub fn tile_extent(&self) -> u64 {
        self.filetype.extent()
    }

    /// Maps an access of `len_bytes` at `offset_etypes` (view offset in
    /// etype units, as MPI specifies) to absolute file extents.
    ///
    /// # Errors
    /// `len_bytes` must be a whole number of etypes.
    pub fn extents_for(&self, offset_etypes: u64, len_bytes: u64) -> Result<ExtentList> {
        if len_bytes == 0 {
            return Ok(ExtentList::new());
        }
        if !len_bytes.is_multiple_of(self.etype_size) {
            return Err(Error::InvalidDatatype(format!(
                "access of {len_bytes} bytes is not a multiple of the etype size {}",
                self.etype_size
            )));
        }
        let start_byte = offset_etypes * self.etype_size; // position in view data space
        let end_byte = start_byte + len_bytes;
        let tile_data = self.tile_data();
        let tile_extent = self.tile_extent();

        let first_tile = start_byte / tile_data;
        let last_tile = (end_byte - 1) / tile_data;
        let mut ranges = Vec::new();
        for tile in first_tile..=last_tile {
            let tile_base = self.disp + tile * tile_extent;
            // Data-space window inside this tile.
            let lo = start_byte.saturating_sub(tile * tile_data);
            let hi = (end_byte - tile * tile_data).min(tile_data);
            // Walk the template, selecting the [lo, hi) data bytes.
            let mut seen = 0u64;
            for &r in &self.template {
                let r_lo = seen;
                let r_hi = seen + r.len;
                seen = r_hi;
                if r_hi <= lo {
                    continue;
                }
                if r_lo >= hi {
                    break;
                }
                let cut_lo = lo.max(r_lo);
                let cut_hi = hi.min(r_hi);
                ranges.push(ByteRange::new(
                    tile_base + r.offset + (cut_lo - r_lo),
                    cut_hi - cut_lo,
                ));
            }
        }
        Ok(ExtentList::from_ranges(ranges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(e: &ExtentList) -> Vec<(u64, u64)> {
        e.ranges().iter().map(|r| (r.offset, r.len)).collect()
    }

    #[test]
    fn contiguous_view_is_identity() {
        let v = FileView::contiguous_bytes();
        let e = v.extents_for(10, 20).unwrap();
        assert_eq!(pairs(&e), vec![(10, 20)]);
        assert!(v.extents_for(0, 0).unwrap().is_empty());
    }

    #[test]
    fn displacement_shifts_everything() {
        let v = FileView::new(1000, 1, Datatype::bytes(1).unwrap()).unwrap();
        let e = v.extents_for(5, 3).unwrap();
        assert_eq!(pairs(&e), vec![(1005, 3)]);
    }

    #[test]
    fn strided_view_tiles() {
        // Filetype: 4 data bytes then 12 bytes of other ranks' data
        // (extent 16) — the canonical block-cyclic view.
        let ft = Datatype::bytes(4).unwrap().resized(16).unwrap();
        let v = FileView::new(0, 4, ft).unwrap();
        // Writing 12 bytes (3 etypes) from view offset 0: three tiles.
        let e = v.extents_for(0, 12).unwrap();
        assert_eq!(pairs(&e), vec![(0, 4), (16, 4), (32, 4)]);
        // From etype offset 1 (= 4 data bytes in): tiles 1 and 2.
        let e = v.extents_for(1, 8).unwrap();
        assert_eq!(pairs(&e), vec![(16, 4), (32, 4)]);
    }

    #[test]
    fn partial_tile_access_slices_template() {
        // Filetype with two blocks per tile: [0,4) and [8,12), extent 16.
        let ft = Datatype::bytes(4)
            .unwrap()
            .indexed(&[(0, 1), (2, 1)])
            .unwrap()
            .resized(16)
            .unwrap();
        let v = FileView::new(0, 1, ft).unwrap();
        // 6 bytes from data offset 1: bytes 1..4 of block A, 0..3 of B.
        let e = v.extents_for(1, 6).unwrap();
        assert_eq!(pairs(&e), vec![(1, 3), (8, 3)]);
        // Crossing a tile boundary: data bytes 6..10 = last 2 of tile 0's
        // block B + first 2 of tile 1's block A.
        let e = v.extents_for(6, 4).unwrap();
        assert_eq!(pairs(&e), vec![(10, 2), (16, 2)]);
    }

    #[test]
    fn subarray_view_matches_tile_io_pattern() {
        // A 2-D 8×8 array of 1-byte elements; this rank owns the 4×4 tile
        // at (0, 4) — the right half of the top half.
        let ft = Datatype::bytes(1)
            .unwrap()
            .subarray(&[8, 8], &[4, 4], &[0, 4])
            .unwrap();
        let v = FileView::new(0, 1, ft).unwrap();
        let e = v.extents_for(0, 16).unwrap();
        assert_eq!(
            pairs(&e),
            vec![(4, 4), (12, 4), (20, 4), (28, 4)],
            "one run per row of the tile"
        );
    }

    #[test]
    fn etype_misalignment_rejected() {
        let v = FileView::new(0, 4, Datatype::bytes(4).unwrap()).unwrap();
        assert!(v.extents_for(0, 6).is_err());
        assert!(FileView::new(0, 0, Datatype::bytes(4).unwrap()).is_err());
        // Filetype not a multiple of etype.
        assert!(FileView::new(0, 8, Datatype::bytes(4).unwrap()).is_err());
    }

    #[test]
    fn total_extent_length_equals_access_size() {
        let ft = Datatype::bytes(8)
            .unwrap()
            .vector(4, 2, 5)
            .unwrap()
            .resized(8 * 5 * 4)
            .unwrap();
        let v = FileView::new(64, 8, ft).unwrap();
        for (off, len) in [(0u64, 64u64), (3, 40), (8, 128), (1, 8)] {
            let e = v.extents_for(off, len).unwrap();
            assert_eq!(e.total_len(), len, "offset {off} len {len}");
        }
    }
}
