//! Two-phase collective I/O (the ROMIO optimization of
//! `MPI_File_write_at_all`).
//!
//! Independent collective writes send every rank's small non-contiguous
//! pieces straight to storage. Two-phase I/O first *redistributes* the
//! data over the network: the ranks exchange access metadata
//! (allgather), the file range under access is split into contiguous
//! **file domains** owned by aggregator ranks, every rank ships its
//! pieces to the owning aggregators (alltoallv), and each aggregator
//! issues one large, mostly-contiguous write for its domain. Network
//! bandwidth is traded for far fewer, far larger storage requests.
//!
//! Overlaps *within* one collective (ghost cells!) are resolved
//! deterministically: pieces are applied in rank order, so the result
//! equals the serial schedule rank 0, rank 1, ... — a valid MPI
//! atomic-mode outcome. Each aggregator's write goes through the normal
//! ADIO driver with the caller's atomicity flag, so concurrent *other*
//! writers are handled by the backend's concurrency control.

use crate::adio::AdioDriver;
use crate::comm::Communicator;
use atomio_simgrid::Participant;
use atomio_types::{ByteRange, ClientId, Error, ExtentList, Result};
use bytes::Bytes;
use std::sync::Arc;

/// How collective data access is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveStrategy {
    /// Every rank writes its own pieces (barrier-synchronized).
    #[default]
    Independent,
    /// Two-phase I/O with at most this many aggregator ranks.
    TwoPhase {
        /// Upper bound on the number of aggregators (clamped to the
        /// communicator size; 0 is invalid).
        aggregators: usize,
    },
}

/// Executes the two-phase write for one rank. Returns once the rank's
/// part of the collective (including any aggregation duty) is done.
#[allow(clippy::too_many_arguments)] // mirrors the MPI call surface
pub fn two_phase_write(
    p: &Participant,
    comm: &Communicator,
    rank: usize,
    driver: &Arc<dyn AdioDriver>,
    extents: &ExtentList,
    payload: &[u8],
    aggregators: usize,
    atomic: bool,
) -> Result<()> {
    if aggregators == 0 {
        return Err(Error::CollectiveMismatch(
            "two-phase I/O needs at least one aggregator".into(),
        ));
    }
    if payload.len() as u64 != extents.total_len() {
        return Err(Error::BufferSizeMismatch {
            expected: extents.total_len(),
            actual: payload.len() as u64,
        });
    }

    // Phase 0: exchange access metadata.
    let all_meta = comm.allgather(p, rank, encode_extents(extents));
    let mut union = ExtentList::new();
    for meta in &all_meta {
        union = union.union(&decode_extents(meta)?);
    }

    // Compute file domains: contiguous-ish splits of the union, owned by
    // ranks 0..domains.len().
    let n_agg = aggregators.min(comm.size());
    let domains = union.partition(n_agg);

    // Phase 1: ship my pieces to the owning aggregators.
    let offsets: Vec<(ByteRange, u64)> = extents.with_buffer_offsets().collect();
    let mut outgoing: Vec<Vec<u8>> = vec![Vec::new(); comm.size()];
    for (d, domain) in domains.iter().enumerate() {
        let mine = extents.intersection(domain);
        if mine.is_empty() {
            continue;
        }
        let mut msg = Vec::new();
        for &piece in &mine {
            // Locate the piece's bytes in my packed payload.
            let idx = offsets.partition_point(|(r, _)| r.end() <= piece.offset);
            let (outer, buf_off) = offsets[idx];
            debug_assert!(outer.contains_range(piece));
            let start = (buf_off + piece.offset - outer.offset) as usize;
            encode_piece(&mut msg, piece, &payload[start..start + piece.len as usize]);
        }
        outgoing[d] = msg;
    }
    let inbox = comm.alltoallv(p, rank, outgoing);

    // Phase 2: aggregators assemble and write their domain.
    if rank < domains.len() {
        let domain = &domains[rank];
        let mut buf = vec![0u8; domain.total_len() as usize];
        let dom_offsets: Vec<(ByteRange, u64)> = domain.with_buffer_offsets().collect();
        // Apply pieces in source-rank order: deterministic overlap
        // resolution equal to the serial schedule rank 0, 1, 2, ...
        for msg in inbox.iter() {
            let mut cursor = 0usize;
            while cursor < msg.len() {
                let (piece, data, next) = decode_piece(msg, cursor)?;
                let idx = dom_offsets.partition_point(|(r, _)| r.end() <= piece.offset);
                let (outer, buf_off) = *dom_offsets
                    .get(idx)
                    .ok_or_else(|| Error::Internal("piece outside aggregator domain".into()))?;
                if !outer.contains_range(piece) {
                    return Err(Error::Internal(
                        "piece crosses aggregator domain runs".into(),
                    ));
                }
                let start = (buf_off + piece.offset - outer.offset) as usize;
                buf[start..start + data.len()].copy_from_slice(data);
                cursor = next;
            }
        }
        driver.write_extents(
            p,
            ClientId::new(rank as u64),
            domain,
            Bytes::from(buf),
            atomic,
        )?;
    }

    // Everyone leaves together (write_at_all semantics).
    comm.barrier(p);
    Ok(())
}

/// Executes the two-phase **read** for one rank: aggregators fetch their
/// file domains with one large request each, then scatter the pieces
/// every rank asked for (alltoallv); each rank assembles its own packed
/// buffer. Returns the rank's bytes in file order.
pub fn two_phase_read(
    p: &Participant,
    comm: &Communicator,
    rank: usize,
    driver: &Arc<dyn AdioDriver>,
    extents: &ExtentList,
    aggregators: usize,
    atomic: bool,
) -> Result<Vec<u8>> {
    if aggregators == 0 {
        return Err(Error::CollectiveMismatch(
            "two-phase I/O needs at least one aggregator".into(),
        ));
    }
    // Phase 0: exchange access metadata.
    let all_meta = comm.allgather(p, rank, encode_extents(extents));
    let mut requests: Vec<ExtentList> = Vec::with_capacity(all_meta.len());
    let mut union = ExtentList::new();
    for meta in &all_meta {
        let e = decode_extents(meta)?;
        union = union.union(&e);
        requests.push(e);
    }
    let n_agg = aggregators.min(comm.size());
    let domains = union.partition(n_agg);

    // Phase 1: aggregators read their domain and build per-rank replies.
    let mut outgoing: Vec<Vec<u8>> = vec![Vec::new(); comm.size()];
    if rank < domains.len() {
        let domain = &domains[rank];
        let data = driver.read_extents(p, ClientId::new(rank as u64), domain, atomic)?;
        let dom_offsets: Vec<(ByteRange, u64)> = domain.with_buffer_offsets().collect();
        for (dst, req) in requests.iter().enumerate() {
            let wanted = req.intersection(domain);
            if wanted.is_empty() {
                continue;
            }
            let mut msg = Vec::new();
            for &piece in &wanted {
                let idx = dom_offsets.partition_point(|(r, _)| r.end() <= piece.offset);
                let (outer, buf_off) = dom_offsets[idx];
                debug_assert!(outer.contains_range(piece));
                let start = (buf_off + piece.offset - outer.offset) as usize;
                encode_piece(&mut msg, piece, &data[start..start + piece.len as usize]);
            }
            outgoing[dst] = msg;
        }
    }
    let inbox = comm.alltoallv(p, rank, outgoing);

    // Phase 2: assemble my packed buffer from the aggregators' pieces.
    let mut out = vec![0u8; extents.total_len() as usize];
    let my_offsets: Vec<(ByteRange, u64)> = extents.with_buffer_offsets().collect();
    for msg in inbox.iter() {
        let mut cursor = 0usize;
        while cursor < msg.len() {
            let (piece, data, next) = decode_piece(msg, cursor)?;
            let idx = my_offsets.partition_point(|(r, _)| r.end() <= piece.offset);
            let (outer, buf_off) = *my_offsets
                .get(idx)
                .ok_or_else(|| Error::Internal("piece outside my request".into()))?;
            if !outer.contains_range(piece) {
                return Err(Error::Internal("piece crosses request runs".into()));
            }
            let start = (buf_off + piece.offset - outer.offset) as usize;
            out[start..start + data.len()].copy_from_slice(data);
            cursor = next;
        }
    }
    comm.barrier(p);
    Ok(out)
}

// --- tiny wire format -----------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> Result<u64> {
    buf.get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
        .ok_or_else(|| Error::Internal("truncated collective message".into()))
}

/// Encodes an extent list as `count, (offset, len)*`.
pub(crate) fn encode_extents(extents: &ExtentList) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 16 * extents.range_count());
    put_u64(&mut out, extents.range_count() as u64);
    for r in extents {
        put_u64(&mut out, r.offset);
        put_u64(&mut out, r.len);
    }
    out
}

/// Decodes [`encode_extents`] output.
pub(crate) fn decode_extents(buf: &[u8]) -> Result<ExtentList> {
    let count = get_u64(buf, 0)? as usize;
    let mut ranges = Vec::with_capacity(count);
    for i in 0..count {
        let offset = get_u64(buf, 8 + i * 16)?;
        let len = get_u64(buf, 16 + i * 16)?;
        ranges.push(ByteRange::new(offset, len));
    }
    Ok(ExtentList::from_ranges(ranges))
}

fn encode_piece(out: &mut Vec<u8>, range: ByteRange, data: &[u8]) {
    debug_assert_eq!(range.len as usize, data.len());
    put_u64(out, range.offset);
    put_u64(out, range.len);
    out.extend_from_slice(data);
}

fn decode_piece(buf: &[u8], at: usize) -> Result<(ByteRange, &[u8], usize)> {
    let offset = get_u64(buf, at)?;
    let len = get_u64(buf, at + 8)?;
    let start = at + 16;
    let end = start + len as usize;
    let data = buf
        .get(start..end)
        .ok_or_else(|| Error::Internal("truncated piece".into()))?;
    Ok((ByteRange::new(offset, len), data, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_wire_roundtrip() {
        let e = ExtentList::from_pairs([(0u64, 10u64), (100, 5), (1 << 40, 1)]);
        assert_eq!(decode_extents(&encode_extents(&e)).unwrap(), e);
        let empty = ExtentList::new();
        assert_eq!(decode_extents(&encode_extents(&empty)).unwrap(), empty);
    }

    #[test]
    fn piece_wire_roundtrip() {
        let mut msg = Vec::new();
        encode_piece(&mut msg, ByteRange::new(40, 3), b"abc");
        encode_piece(&mut msg, ByteRange::new(100, 2), b"xy");
        let (r1, d1, next) = decode_piece(&msg, 0).unwrap();
        assert_eq!((r1, d1), (ByteRange::new(40, 3), &b"abc"[..]));
        let (r2, d2, end) = decode_piece(&msg, next).unwrap();
        assert_eq!((r2, d2), (ByteRange::new(100, 2), &b"xy"[..]));
        assert_eq!(end, msg.len());
    }

    #[test]
    fn truncated_messages_error() {
        assert!(decode_extents(&[1, 2, 3]).is_err());
        let mut msg = Vec::new();
        encode_piece(&mut msg, ByteRange::new(0, 100), &[0u8; 100]);
        msg.truncate(50);
        assert!(decode_piece(&msg, 0).is_err());
    }
}
