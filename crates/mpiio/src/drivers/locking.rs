//! The traditional baseline: covering byte-range locks over a POSIX-like
//! parallel file system (the Lustre/GPFS strategy from the paper's §III).
//!
//! * Atomic mode: take one **exclusive lock over the smallest contiguous
//!   range covering every region** of the request — including the gaps —
//!   hold it across the whole multi-region transfer, then release.
//! * Non-atomic mode: raw striped writes, no locks (the PVFS-like
//!   configuration: fast, but concurrent overlapping writes can tear).

use crate::adio::AdioDriver;
use atomio_pfs::{LockKind, PfsFile};
use atomio_simgrid::Participant;
use atomio_types::{ClientId, ExtentList, Result};
use bytes::Bytes;
use std::sync::Arc;

/// ADIO driver over the locking parallel file system.
#[derive(Debug, Clone)]
pub struct LockingDriver {
    file: Arc<PfsFile>,
}

impl LockingDriver {
    /// Wraps a PFS file as an MPI-I/O backend.
    pub fn new(file: Arc<PfsFile>) -> Self {
        LockingDriver { file }
    }

    /// The underlying file (for lock-statistics assertions).
    pub fn file(&self) -> &Arc<PfsFile> {
        &self.file
    }
}

impl AdioDriver for LockingDriver {
    fn write_extents(
        &self,
        p: &Participant,
        client: ClientId,
        extents: &ExtentList,
        payload: Bytes,
        atomic: bool,
    ) -> Result<()> {
        let handle = atomic.then(|| {
            self.file
                .locks()
                .lock(p, client, extents.covering_range(), LockKind::Exclusive)
        });
        let mut result = Ok(());
        for (range, buf_off) in extents.with_buffer_offsets() {
            let data = &payload[buf_off as usize..(buf_off + range.len) as usize];
            result = self.file.pwrite(p, range.offset, data);
            if result.is_err() {
                break;
            }
        }
        if let Some(h) = handle {
            self.file.locks().unlock(p, h);
        }
        result
    }

    fn read_extents(
        &self,
        p: &Participant,
        client: ClientId,
        extents: &ExtentList,
        atomic: bool,
    ) -> Result<Vec<u8>> {
        let handle = atomic.then(|| {
            self.file
                .locks()
                .lock(p, client, extents.covering_range(), LockKind::Shared)
        });
        let mut out = vec![0u8; extents.total_len() as usize];
        let mut result = Ok(());
        for (range, buf_off) in extents.with_buffer_offsets() {
            match self.file.pread(p, range.offset, range.len) {
                Ok(data) => {
                    out[buf_off as usize..(buf_off + range.len) as usize].copy_from_slice(&data);
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if let Some(h) = handle {
            self.file.locks().unlock(p, h);
        }
        result.map(|()| out)
    }

    fn file_size(&self, _p: &Participant) -> u64 {
        self.file.size()
    }

    fn name(&self) -> &'static str {
        "lustre-lock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_pfs::ParallelFs;
    use atomio_simgrid::clock::run_actors;
    use atomio_simgrid::{CostModel, Metrics};
    use std::time::Duration;

    fn driver(cost: CostModel) -> (LockingDriver, Metrics) {
        let metrics = Metrics::new();
        let fs = ParallelFs::new(4, cost, metrics.clone());
        (LockingDriver::new(Arc::new(fs.create_file(64))), metrics)
    }

    #[test]
    fn roundtrip() {
        let (d, _) = driver(CostModel::zero());
        run_actors(1, |_, p| {
            let ext = ExtentList::from_pairs([(0u64, 4u64), (100, 4)]);
            d.write_extents(
                p,
                ClientId::new(0),
                &ext,
                Bytes::from_static(b"aaaabbbb"),
                true,
            )
            .unwrap();
            let got = d.read_extents(p, ClientId::new(0), &ext, true).unwrap();
            assert_eq!(got, b"aaaabbbb");
            assert_eq!(d.file_size(p), 104);
        });
    }

    #[test]
    fn atomic_mode_takes_covering_lock() {
        let (d, metrics) = driver(CostModel::zero());
        run_actors(1, |_, p| {
            let ext = ExtentList::from_pairs([(0u64, 4u64), (100, 4)]);
            d.write_extents(p, ClientId::new(0), &ext, Bytes::from(vec![0; 8]), true)
                .unwrap();
        });
        assert_eq!(metrics.counter("dlm.locks_granted").get(), 1);
        // Non-atomic writes take none.
        run_actors(1, |_, p| {
            let ext = ExtentList::from_pairs([(0u64, 4u64)]);
            d.write_extents(p, ClientId::new(0), &ext, Bytes::from(vec![0; 4]), false)
                .unwrap();
        });
        assert_eq!(metrics.counter("dlm.locks_granted").get(), 1);
    }

    #[test]
    fn atomic_overlapping_writes_serialize() {
        let (d, _) = driver(CostModel::grid5000());
        let d = Arc::new(d);
        let dc = Arc::clone(&d);
        // Two writers, overlapping non-contiguous sets; atomic mode must
        // serialize the transfers (total ≈ 2× one transfer).
        let solo = {
            let (d1, _) = driver(CostModel::grid5000());
            run_actors(1, move |_, p| {
                let ext = ExtentList::from_pairs([(0u64, 1u64 << 20), (2 << 20, 1 << 20)]);
                d1.write_extents(
                    p,
                    ClientId::new(0),
                    &ext,
                    Bytes::from(vec![0; 2 << 20]),
                    true,
                )
                .unwrap();
            })
            .1
        };
        let (_, both) = run_actors(2, move |i, p| {
            let ext = ExtentList::from_pairs([(0u64, 1u64 << 20), (2 << 20, 1 << 20)]);
            dc.write_extents(
                p,
                ClientId::new(i as u64),
                &ext,
                Bytes::from(vec![i as u8; 2 << 20]),
                true,
            )
            .unwrap();
        });
        assert!(
            both.as_secs_f64() > solo.as_secs_f64() * 1.8,
            "atomic overlap did not serialize: solo {solo:?}, both {both:?}"
        );
        let _ = Duration::ZERO;
    }

    #[test]
    fn non_atomic_overlapping_writes_overlap_in_time() {
        let cost = CostModel::grid5000();
        let solo = {
            let (d1, _) = driver(cost);
            run_actors(1, move |_, p| {
                let ext = ExtentList::from_pairs([(0u64, 1u64 << 20)]);
                d1.write_extents(
                    p,
                    ClientId::new(0),
                    &ext,
                    Bytes::from(vec![0; 1 << 20]),
                    false,
                )
                .unwrap();
            })
            .1
        };
        let (d2, _) = driver(cost);
        let d2 = Arc::new(d2);
        let (_, both) = run_actors(2, move |i, p| {
            let ext = ExtentList::from_pairs([(0u64, 1u64 << 20)]);
            d2.write_extents(
                p,
                ClientId::new(i as u64),
                &ext,
                Bytes::from(vec![i as u8; 1 << 20]),
                false,
            )
            .unwrap();
        });
        // Striped over 4 OSTs, the two writers contend on disks but not
        // on locks; well under full serialization.
        assert!(
            both.as_secs_f64() < solo.as_secs_f64() * 1.9,
            "non-atomic writes serialized: solo {solo:?}, both {both:?}"
        );
    }
}
