//! The paper's driver: native non-contiguous atomic writes on the
//! versioning store.
//!
//! There is no consistency-model translation here — the flattened extent
//! list goes straight to [`atomio_core::Blob::write_list`], which commits
//! it as one snapshot. Atomic mode costs nothing extra: every write is
//! atomic by construction, and reads always see a complete snapshot.

use crate::adio::AdioDriver;
use atomio_core::{Blob, ReadVersion};
use atomio_simgrid::Participant;
use atomio_types::{ClientId, ExtentList, Result};
use bytes::Bytes;

/// ADIO driver over the versioning blob store.
#[derive(Debug, Clone)]
pub struct VersioningDriver {
    blob: Blob,
}

impl VersioningDriver {
    /// Wraps a blob as an MPI-I/O backend.
    pub fn new(blob: Blob) -> Self {
        VersioningDriver { blob }
    }

    /// The underlying blob (for version-aware readers, E8).
    pub fn blob(&self) -> &Blob {
        &self.blob
    }
}

impl AdioDriver for VersioningDriver {
    fn write_extents(
        &self,
        p: &Participant,
        _client: ClientId,
        extents: &ExtentList,
        payload: Bytes,
        _atomic: bool, // every write is a snapshot: atomicity is free
    ) -> Result<()> {
        self.blob.write_list(p, extents, payload)?;
        Ok(())
    }

    fn read_extents(
        &self,
        p: &Participant,
        _client: ClientId,
        extents: &ExtentList,
        _atomic: bool, // snapshot reads can never tear
    ) -> Result<Vec<u8>> {
        // MPI semantics: reading past EOF yields no data; we zero-fill
        // the tail so callers get a full-size buffer.
        let size = self.blob.latest(p)?.size;
        let inside = extents.clip(atomio_types::ByteRange::new(0, size));
        if inside.is_empty() {
            return Ok(vec![0u8; extents.total_len() as usize]);
        }
        let data = self.blob.read_list(p, ReadVersion::Latest, &inside)?;
        if inside == *extents {
            return Ok(data);
        }
        // Re-pack: scatter the in-bounds bytes into the full-size buffer.
        let mut out = vec![0u8; extents.total_len() as usize];
        let mut src = 0usize;
        let offsets: Vec<_> = extents.with_buffer_offsets().collect();
        for (r_in, _) in inside.with_buffer_offsets() {
            let idx = offsets.partition_point(|(r, _)| r.end() <= r_in.offset);
            let (outer, buf_off) = offsets[idx];
            let dst = (buf_off + r_in.offset - outer.offset) as usize;
            out[dst..dst + r_in.len as usize].copy_from_slice(&data[src..src + r_in.len as usize]);
            src += r_in.len as usize;
        }
        Ok(out)
    }

    fn file_size(&self, p: &Participant) -> u64 {
        self.blob.latest(p).map(|s| s.size).unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "versioning"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_core::{Store, StoreConfig};
    use atomio_simgrid::clock::run_actors;

    fn driver() -> VersioningDriver {
        let store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(64)
                .with_data_providers(4),
        );
        VersioningDriver::new(store.create_blob())
    }

    #[test]
    fn roundtrip() {
        let d = driver();
        run_actors(1, |_, p| {
            let ext = ExtentList::from_pairs([(0u64, 4u64), (100, 4)]);
            d.write_extents(
                p,
                ClientId::new(0),
                &ext,
                Bytes::from_static(b"aaaabbbb"),
                true,
            )
            .unwrap();
            let got = d.read_extents(p, ClientId::new(0), &ext, true).unwrap();
            assert_eq!(got, b"aaaabbbb");
            assert_eq!(d.file_size(p), 104);
        });
    }

    #[test]
    fn read_past_eof_zero_fills() {
        let d = driver();
        run_actors(1, |_, p| {
            d.write_extents(
                p,
                ClientId::new(0),
                &ExtentList::from_pairs([(0u64, 4u64)]),
                Bytes::from_static(b"data"),
                true,
            )
            .unwrap();
            // Read [2, 10): 2 real bytes + 6 past EOF.
            let got = d
                .read_extents(
                    p,
                    ClientId::new(0),
                    &ExtentList::from_pairs([(2u64, 8u64)]),
                    true,
                )
                .unwrap();
            assert_eq!(got, b"ta\0\0\0\0\0\0");
            // Entirely past EOF.
            let got = d
                .read_extents(
                    p,
                    ClientId::new(0),
                    &ExtentList::from_pairs([(100u64, 4u64)]),
                    true,
                )
                .unwrap();
            assert_eq!(got, vec![0u8; 4]);
        });
    }
}
