//! ADIO drivers: one per concurrency-control strategy under comparison.

pub mod conflict;
pub mod locking;
pub mod versioning;
pub mod whole_file;

pub use conflict::ConflictDetectDriver;
pub use locking::LockingDriver;
pub use versioning::VersioningDriver;
pub use whole_file::WholeFileDriver;
