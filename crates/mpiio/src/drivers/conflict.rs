//! Conflict-detection driver (Sehrish, Wang & Thakur, EuroPVM/MPI'09):
//! detect whether concurrent accesses actually overlap, and lock only
//! when they do.
//!
//! Writers register their extent list with a coordination service before
//! transferring. A writer with no conflict against in-flight writes
//! proceeds lock-free; a writer that conflicts waits for the conflicting
//! earlier registrations to finish and then performs its transfer under
//! the covering-range lock. The cost of the registration round trip is
//! paid by *every* write — the "unnecessary overhead ... for
//! non-overlapping concurrent I/O" the paper quotes as this approach's
//! acknowledged weakness.

use crate::adio::AdioDriver;
use atomio_pfs::{LockKind, PfsFile};
use atomio_simgrid::{CostModel, Participant, Resource};
use atomio_types::{ClientId, ExtentList, Result};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct ActiveWrite {
    id: u64,
    extents: ExtentList,
}

/// ADIO driver with overlap detection.
#[derive(Debug, Clone)]
pub struct ConflictDetectDriver {
    file: Arc<PfsFile>,
    cost: CostModel,
    coordinator: Arc<Coordinator>,
}

#[derive(Debug)]
struct Coordinator {
    cpu: Resource,
    active: Mutex<Vec<ActiveWrite>>,
    next_id: AtomicU64,
    lock_free_writes: AtomicU64,
    locked_writes: AtomicU64,
}

impl ConflictDetectDriver {
    /// Wraps a PFS file with a conflict-detection coordinator.
    pub fn new(file: Arc<PfsFile>, cost: CostModel) -> Self {
        ConflictDetectDriver {
            file,
            cost,
            coordinator: Arc::new(Coordinator {
                cpu: Resource::new("conflict-coordinator/cpu"),
                active: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
                lock_free_writes: AtomicU64::new(0),
                locked_writes: AtomicU64::new(0),
            }),
        }
    }

    /// `(lock_free, locked)` write counts — how often detection avoided
    /// locking.
    pub fn write_counts(&self) -> (u64, u64) {
        (
            self.coordinator.lock_free_writes.load(Ordering::Relaxed),
            self.coordinator.locked_writes.load(Ordering::Relaxed),
        )
    }
}

impl AdioDriver for ConflictDetectDriver {
    fn write_extents(
        &self,
        p: &Participant,
        client: ClientId,
        extents: &ExtentList,
        payload: Bytes,
        atomic: bool,
    ) -> Result<()> {
        if !atomic {
            // Non-atomic mode skips detection entirely.
            return write_raw(&self.file, p, extents, &payload);
        }
        // Register with the coordinator (the per-op detection overhead).
        p.sleep(self.cost.rpc_round_trip());
        self.coordinator.cpu.serve(p, self.cost.meta_op);
        let my_id = self.coordinator.next_id.fetch_add(1, Ordering::Relaxed);
        let conflicting: Vec<u64> = {
            let mut active = self.coordinator.active.lock();
            let conflicts = active
                .iter()
                .filter(|w| w.id < my_id && w.extents.overlaps(extents))
                .map(|w| w.id)
                .collect();
            active.push(ActiveWrite {
                id: my_id,
                extents: extents.clone(),
            });
            conflicts
        };

        let result = if conflicting.is_empty() {
            // No overlap with any in-flight write: proceed lock-free.
            self.coordinator
                .lock_free_writes
                .fetch_add(1, Ordering::Relaxed);
            write_raw(&self.file, p, extents, &payload)
        } else {
            // Wait for the earlier conflicting writes to retire, then
            // write under the covering lock.
            self.coordinator
                .locked_writes
                .fetch_add(1, Ordering::Relaxed);
            p.poll_until(|| {
                let active = self.coordinator.active.lock();
                conflicting
                    .iter()
                    .all(|id| !active.iter().any(|w| w.id == *id))
                    .then_some(())
            });
            let handle =
                self.file
                    .locks()
                    .lock(p, client, extents.covering_range(), LockKind::Exclusive);
            let r = write_raw(&self.file, p, extents, &payload);
            self.file.locks().unlock(p, handle);
            r
        };

        // Deregister.
        self.coordinator.active.lock().retain(|w| w.id != my_id);
        result
    }

    fn read_extents(
        &self,
        p: &Participant,
        client: ClientId,
        extents: &ExtentList,
        atomic: bool,
    ) -> Result<Vec<u8>> {
        let handle = atomic.then(|| {
            self.file
                .locks()
                .lock(p, client, extents.covering_range(), LockKind::Shared)
        });
        let mut out = vec![0u8; extents.total_len() as usize];
        let mut result = Ok(());
        for (range, buf_off) in extents.with_buffer_offsets() {
            match self.file.pread(p, range.offset, range.len) {
                Ok(data) => {
                    out[buf_off as usize..(buf_off + range.len) as usize].copy_from_slice(&data)
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if let Some(h) = handle {
            self.file.locks().unlock(p, h);
        }
        result.map(|()| out)
    }

    fn file_size(&self, _p: &Participant) -> u64 {
        self.file.size()
    }

    fn name(&self) -> &'static str {
        "conflict-detect"
    }
}

fn write_raw(file: &PfsFile, p: &Participant, extents: &ExtentList, payload: &Bytes) -> Result<()> {
    for (range, buf_off) in extents.with_buffer_offsets() {
        file.pwrite(
            p,
            range.offset,
            &payload[buf_off as usize..(buf_off + range.len) as usize],
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_pfs::ParallelFs;
    use atomio_simgrid::clock::run_actors;
    use atomio_simgrid::Metrics;

    fn driver(cost: CostModel) -> ConflictDetectDriver {
        let fs = ParallelFs::new(4, cost, Metrics::new());
        ConflictDetectDriver::new(Arc::new(fs.create_file(64)), cost)
    }

    #[test]
    fn roundtrip() {
        let d = driver(CostModel::zero());
        run_actors(1, |_, p| {
            let ext = ExtentList::from_pairs([(0u64, 4u64), (64, 4)]);
            d.write_extents(
                p,
                ClientId::new(0),
                &ext,
                Bytes::from_static(b"aaaabbbb"),
                true,
            )
            .unwrap();
            assert_eq!(
                d.read_extents(p, ClientId::new(0), &ext, true).unwrap(),
                b"aaaabbbb"
            );
        });
        assert_eq!(d.write_counts(), (1, 0));
    }

    #[test]
    fn disjoint_writers_stay_lock_free() {
        let d = Arc::new(driver(CostModel::zero()));
        let dc = Arc::clone(&d);
        run_actors(4, move |i, p| {
            let ext = ExtentList::from_pairs([(i as u64 * 1000, 100u64)]);
            dc.write_extents(
                p,
                ClientId::new(i as u64),
                &ext,
                Bytes::from(vec![i as u8; 100]),
                true,
            )
            .unwrap();
        });
        assert_eq!(d.write_counts().1, 0, "disjoint writes must not lock");
        assert_eq!(d.write_counts().0, 4);
    }

    #[test]
    fn overlapping_writers_detect_and_serialize() {
        let cost = CostModel::grid5000();
        let d = Arc::new(driver(cost));
        let dc = Arc::clone(&d);
        let (_, _) = run_actors(3, move |i, p| {
            let ext = ExtentList::from_pairs([(0u64, 1u64 << 20)]);
            dc.write_extents(
                p,
                ClientId::new(i as u64),
                &ext,
                Bytes::from(vec![i as u8; 1 << 20]),
                true,
            )
            .unwrap();
        });
        let (lock_free, locked) = d.write_counts();
        assert_eq!(lock_free + locked, 3);
        assert!(locked >= 1, "overlap must be detected");
        // The coordinator table drains.
        assert!(d.coordinator.active.lock().is_empty());
    }

    #[test]
    fn detection_costs_time_even_without_conflicts() {
        let cost = CostModel::grid5000();
        // Same single write through the plain locking driver (non-atomic:
        // no lock, no detection) vs conflict driver (atomic: detection).
        let plain = {
            let fs = ParallelFs::new(4, cost, Metrics::new());
            let f = Arc::new(fs.create_file(64));
            run_actors(1, move |_, p| {
                for (range, _) in ExtentList::from_pairs([(0u64, 4096u64)]).with_buffer_offsets() {
                    f.pwrite(p, range.offset, &vec![0u8; range.len as usize])
                        .unwrap();
                }
            })
            .1
        };
        let detected = {
            let d = driver(cost);
            run_actors(1, move |_, p| {
                d.write_extents(
                    p,
                    ClientId::new(0),
                    &ExtentList::from_pairs([(0u64, 4096u64)]),
                    Bytes::from(vec![0u8; 4096]),
                    true,
                )
                .unwrap();
            })
            .1
        };
        assert!(
            detected > plain,
            "detection should cost overhead: {detected:?} vs {plain:?}"
        );
    }
}
