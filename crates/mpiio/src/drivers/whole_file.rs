//! Whole-file locking at the MPI-I/O layer (Ross et al., CCGRID'05):
//! MPI atomic mode implemented *portably*, with no file-system support —
//! every atomic access locks the entire file.
//!
//! This is the strategy ROMIO falls back to on file systems without
//! byte-range locks; it is correct and simple, and serializes everything.

use crate::adio::AdioDriver;
use atomio_pfs::{LockKind, PfsFile};
use atomio_simgrid::Participant;
use atomio_types::{ByteRange, ClientId, ExtentList, Result};
use bytes::Bytes;
use std::sync::Arc;

/// The byte range standing in for "the whole file".
fn whole_file() -> ByteRange {
    ByteRange::new(0, u64::MAX)
}

/// ADIO driver that implements atomic mode with a whole-file lock.
#[derive(Debug, Clone)]
pub struct WholeFileDriver {
    file: Arc<PfsFile>,
}

impl WholeFileDriver {
    /// Wraps a PFS file.
    pub fn new(file: Arc<PfsFile>) -> Self {
        WholeFileDriver { file }
    }
}

impl AdioDriver for WholeFileDriver {
    fn write_extents(
        &self,
        p: &Participant,
        client: ClientId,
        extents: &ExtentList,
        payload: Bytes,
        atomic: bool,
    ) -> Result<()> {
        let handle = atomic.then(|| {
            self.file
                .locks()
                .lock(p, client, whole_file(), LockKind::Exclusive)
        });
        let mut result = Ok(());
        for (range, buf_off) in extents.with_buffer_offsets() {
            let data = &payload[buf_off as usize..(buf_off + range.len) as usize];
            result = self.file.pwrite(p, range.offset, data);
            if result.is_err() {
                break;
            }
        }
        if let Some(h) = handle {
            self.file.locks().unlock(p, h);
        }
        result
    }

    fn read_extents(
        &self,
        p: &Participant,
        client: ClientId,
        extents: &ExtentList,
        atomic: bool,
    ) -> Result<Vec<u8>> {
        let handle = atomic.then(|| {
            self.file
                .locks()
                .lock(p, client, whole_file(), LockKind::Shared)
        });
        let mut out = vec![0u8; extents.total_len() as usize];
        let mut result = Ok(());
        for (range, buf_off) in extents.with_buffer_offsets() {
            match self.file.pread(p, range.offset, range.len) {
                Ok(data) => {
                    out[buf_off as usize..(buf_off + range.len) as usize].copy_from_slice(&data)
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        if let Some(h) = handle {
            self.file.locks().unlock(p, h);
        }
        result.map(|()| out)
    }

    fn file_size(&self, _p: &Participant) -> u64 {
        self.file.size()
    }

    fn name(&self) -> &'static str {
        "whole-file-lock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_pfs::ParallelFs;
    use atomio_simgrid::clock::run_actors;
    use atomio_simgrid::{CostModel, Metrics};

    fn driver(cost: CostModel) -> WholeFileDriver {
        let fs = ParallelFs::new(4, cost, Metrics::new());
        WholeFileDriver::new(Arc::new(fs.create_file(64)))
    }

    #[test]
    fn roundtrip() {
        let d = driver(CostModel::zero());
        run_actors(1, |_, p| {
            let ext = ExtentList::from_pairs([(5u64, 3u64), (50, 3)]);
            d.write_extents(
                p,
                ClientId::new(0),
                &ext,
                Bytes::from_static(b"abcdef"),
                true,
            )
            .unwrap();
            assert_eq!(
                d.read_extents(p, ClientId::new(0), &ext, true).unwrap(),
                b"abcdef"
            );
        });
    }

    #[test]
    fn even_disjoint_atomic_writes_serialize() {
        // The whole-file lock's defining pathology: writers that touch
        // completely disjoint ranges still serialize.
        let cost = CostModel::grid5000();
        let d = Arc::new(driver(cost));
        let dc = Arc::clone(&d);
        let (_, total) = run_actors(4, move |i, p| {
            let ext = ExtentList::from_pairs([(i as u64 * (4 << 20), 1u64 << 20)]);
            dc.write_extents(
                p,
                ClientId::new(i as u64),
                &ext,
                Bytes::from(vec![i as u8; 1 << 20]),
                true,
            )
            .unwrap();
        });
        // Compare with the same pattern under covering-range locks
        // (disjoint ⇒ parallel).
        let fs = ParallelFs::new(4, cost, Metrics::new());
        let byte_range = super::super::locking::LockingDriver::new(Arc::new(fs.create_file(64)));
        let br = Arc::new(byte_range);
        let (_, parallel_total) = run_actors(4, move |i, p| {
            let ext = ExtentList::from_pairs([(i as u64 * (4 << 20), 1u64 << 20)]);
            br.write_extents(
                p,
                ClientId::new(i as u64),
                &ext,
                Bytes::from(vec![i as u8; 1 << 20]),
                true,
            )
            .unwrap();
        });
        assert!(
            total.as_secs_f64() > parallel_total.as_secs_f64() * 2.0,
            "whole-file lock should serialize disjoint writers: {total:?} vs {parallel_total:?}"
        );
    }
}
