//! MPI derived datatypes and their flattening into byte maps.
//!
//! A datatype describes *which bytes, at which relative displacements* an
//! operation touches. The MPI-I/O layer flattens the datatype of a file
//! view into an [`ExtentList`] — the representation the rest of the stack
//! (and the paper's List-I/O-style backend API) consumes.
//!
//! Supported constructors mirror the MPI type-construction calls used by
//! scientific codes: contiguous, vector/hvector, indexed, 2-D/N-D
//! subarray (the mpi-tile-io pattern), struct, and resized.

use atomio_types::{ByteRange, Error, ExtentList, Result};
use std::sync::Arc;

/// An MPI derived datatype.
///
/// Cheap to clone (internally reference-counted); construction validates
/// shape, so flattening cannot fail.
///
/// ```
/// use atomio_mpiio::Datatype;
///
/// // A 4x4-element tile at (1, 1) of an 8x8 array of doubles
/// // (MPI_Type_create_subarray), as mpi-tile-io builds it.
/// let tile = Datatype::double()
///     .subarray(&[8, 8], &[4, 4], &[1, 1])
///     .unwrap();
/// assert_eq!(tile.size(), 4 * 4 * 8);      // data bytes
/// assert_eq!(tile.extent(), 8 * 8 * 8);    // file-space footprint
/// // Flattening yields one contiguous run per tile row.
/// let map = tile.flatten();
/// assert_eq!(map.range_count(), 4);
/// assert_eq!(map.total_len(), tile.size());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datatype {
    inner: Arc<Kind>,
}

#[derive(Debug, PartialEq, Eq)]
enum Kind {
    /// `size` raw bytes (models MPI_BYTE, MPI_DOUBLE, ... by width).
    Elementary { size: u64 },
    /// `count` copies of `elem`, tiled at `elem.extent()`.
    Contiguous { count: u64, elem: Datatype },
    /// `count` blocks of `blocklen` elements, block starts `stride`
    /// **elements** apart.
    Vector {
        count: u64,
        blocklen: u64,
        stride: u64,
        elem: Datatype,
    },
    /// Like `Vector` but the stride is in **bytes**.
    Hvector {
        count: u64,
        blocklen: u64,
        stride_bytes: u64,
        elem: Datatype,
    },
    /// Blocks of `(displacement, length)` in element units.
    Indexed {
        blocks: Vec<(u64, u64)>,
        elem: Datatype,
    },
    /// Blocks of `(byte displacement, length in elements)`.
    Hindexed {
        blocks: Vec<(u64, u64)>,
        elem: Datatype,
    },
    /// An N-dimensional C-order (row-major) subarray of a larger array.
    Subarray {
        sizes: Vec<u64>,
        subsizes: Vec<u64>,
        starts: Vec<u64>,
        elem: Datatype,
    },
    /// Fields at explicit byte displacements.
    Struct { fields: Vec<(u64, Datatype)> },
    /// Same data as `elem`, different extent (MPI_Type_create_resized).
    Resized { extent: u64, elem: Datatype },
}

impl Datatype {
    fn wrap(kind: Kind) -> Self {
        Datatype {
            inner: Arc::new(kind),
        }
    }

    /// An elementary type of `size` bytes.
    ///
    /// # Errors
    /// Rejects zero-size elements.
    pub fn bytes(size: u64) -> Result<Self> {
        if size == 0 {
            return Err(Error::InvalidDatatype("zero-size elementary type".into()));
        }
        Ok(Self::wrap(Kind::Elementary { size }))
    }

    /// A double-precision float (8 bytes) — common convenience.
    pub fn double() -> Self {
        Self::bytes(8).expect("8 > 0")
    }

    /// `count` contiguous copies of `self`.
    pub fn contiguous(&self, count: u64) -> Result<Self> {
        if count == 0 {
            return Err(Error::InvalidDatatype("zero-count contiguous".into()));
        }
        Ok(Self::wrap(Kind::Contiguous {
            count,
            elem: self.clone(),
        }))
    }

    /// MPI_Type_vector: `count` blocks of `blocklen` elements with block
    /// starts `stride` elements apart.
    pub fn vector(&self, count: u64, blocklen: u64, stride: u64) -> Result<Self> {
        if count == 0 || blocklen == 0 {
            return Err(Error::InvalidDatatype("zero-size vector".into()));
        }
        if stride < blocklen {
            return Err(Error::InvalidDatatype(format!(
                "vector stride {stride} smaller than blocklen {blocklen} (blocks would overlap)"
            )));
        }
        Ok(Self::wrap(Kind::Vector {
            count,
            blocklen,
            stride,
            elem: self.clone(),
        }))
    }

    /// MPI_Type_create_hvector: stride expressed in bytes.
    pub fn hvector(&self, count: u64, blocklen: u64, stride_bytes: u64) -> Result<Self> {
        if count == 0 || blocklen == 0 {
            return Err(Error::InvalidDatatype("zero-size hvector".into()));
        }
        if stride_bytes < blocklen * self.extent() {
            return Err(Error::InvalidDatatype(
                "hvector byte stride smaller than block".into(),
            ));
        }
        Ok(Self::wrap(Kind::Hvector {
            count,
            blocklen,
            stride_bytes,
            elem: self.clone(),
        }))
    }

    /// MPI_Type_indexed: `(displacement, blocklen)` pairs in element
    /// units; displacements must be non-decreasing and non-overlapping.
    pub fn indexed(&self, blocks: &[(u64, u64)]) -> Result<Self> {
        if blocks.is_empty() {
            return Err(Error::InvalidDatatype("empty indexed type".into()));
        }
        let mut prev_end = 0u64;
        for &(disp, len) in blocks {
            if len == 0 {
                return Err(Error::InvalidDatatype("zero-length indexed block".into()));
            }
            if disp < prev_end {
                return Err(Error::InvalidDatatype(
                    "indexed blocks must be sorted and disjoint".into(),
                ));
            }
            prev_end = disp + len;
        }
        Ok(Self::wrap(Kind::Indexed {
            blocks: blocks.to_vec(),
            elem: self.clone(),
        }))
    }

    /// MPI_Type_create_indexed_block: equal-length blocks at the given
    /// element displacements (sorted, disjoint).
    pub fn indexed_block(&self, blocklen: u64, displs: &[u64]) -> Result<Self> {
        if blocklen == 0 {
            return Err(Error::InvalidDatatype("zero-length block".into()));
        }
        let blocks: Vec<(u64, u64)> = displs.iter().map(|&d| (d, blocklen)).collect();
        self.indexed(&blocks)
    }

    /// MPI_Type_create_hindexed: `(byte displacement, element count)`
    /// blocks; displacements must be sorted and blocks disjoint.
    pub fn hindexed(&self, blocks: &[(u64, u64)]) -> Result<Self> {
        if blocks.is_empty() {
            return Err(Error::InvalidDatatype("empty hindexed type".into()));
        }
        let mut prev_end = 0u64;
        for &(disp, len) in blocks {
            if len == 0 {
                return Err(Error::InvalidDatatype("zero-length hindexed block".into()));
            }
            if disp < prev_end {
                return Err(Error::InvalidDatatype(
                    "hindexed blocks must be sorted and disjoint".into(),
                ));
            }
            prev_end = disp + len * self.extent();
        }
        Ok(Self::wrap(Kind::Hindexed {
            blocks: blocks.to_vec(),
            elem: self.clone(),
        }))
    }

    /// MPI_Type_create_subarray (C order): an `subsizes` window at
    /// `starts` within an array of `sizes` elements.
    pub fn subarray(&self, sizes: &[u64], subsizes: &[u64], starts: &[u64]) -> Result<Self> {
        if sizes.is_empty() || sizes.len() != subsizes.len() || sizes.len() != starts.len() {
            return Err(Error::InvalidDatatype("subarray dimension mismatch".into()));
        }
        for i in 0..sizes.len() {
            if subsizes[i] == 0 || starts[i] + subsizes[i] > sizes[i] {
                return Err(Error::InvalidDatatype(format!(
                    "subarray dim {i}: window [{}, {}) outside array of {}",
                    starts[i],
                    starts[i] + subsizes[i],
                    sizes[i]
                )));
            }
        }
        Ok(Self::wrap(Kind::Subarray {
            sizes: sizes.to_vec(),
            subsizes: subsizes.to_vec(),
            starts: starts.to_vec(),
            elem: self.clone(),
        }))
    }

    /// MPI_Type_create_struct: fields at explicit byte displacements
    /// (sorted, non-overlapping).
    pub fn structured(fields: &[(u64, Datatype)]) -> Result<Self> {
        if fields.is_empty() {
            return Err(Error::InvalidDatatype("empty struct type".into()));
        }
        let mut prev_end = 0u64;
        for (disp, ty) in fields {
            if *disp < prev_end {
                return Err(Error::InvalidDatatype(
                    "struct fields must be sorted and disjoint".into(),
                ));
            }
            prev_end = disp + ty.extent();
        }
        Ok(Self::wrap(Kind::Struct {
            fields: fields.to_vec(),
        }))
    }

    /// MPI_Type_create_resized: same data, new extent (for tiling with
    /// padding).
    pub fn resized(&self, extent: u64) -> Result<Self> {
        if extent < self.span() {
            return Err(Error::InvalidDatatype(
                "resized extent smaller than the type's data span".into(),
            ));
        }
        Ok(Self::wrap(Kind::Resized {
            extent,
            elem: self.clone(),
        }))
    }

    /// Number of data bytes one instance carries.
    pub fn size(&self) -> u64 {
        match &*self.inner {
            Kind::Elementary { size } => *size,
            Kind::Contiguous { count, elem } => count * elem.size(),
            Kind::Vector {
                count,
                blocklen,
                elem,
                ..
            }
            | Kind::Hvector {
                count,
                blocklen,
                elem,
                ..
            } => count * blocklen * elem.size(),
            Kind::Indexed { blocks, elem } | Kind::Hindexed { blocks, elem } => {
                blocks.iter().map(|&(_, len)| len).sum::<u64>() * elem.size()
            }
            Kind::Subarray { subsizes, elem, .. } => subsizes.iter().product::<u64>() * elem.size(),
            Kind::Struct { fields } => fields.iter().map(|(_, t)| t.size()).sum(),
            Kind::Resized { elem, .. } => elem.size(),
        }
    }

    /// Distance from the first byte to one past the last byte the type
    /// can touch (its natural span, before any resize).
    fn span(&self) -> u64 {
        match &*self.inner {
            Kind::Elementary { size } => *size,
            Kind::Contiguous { count, elem } => (count - 1) * elem.extent() + elem.span(),
            Kind::Vector {
                count,
                blocklen,
                stride,
                elem,
            } => ((count - 1) * stride + (blocklen - 1)) * elem.extent() + elem.span(),
            Kind::Hvector {
                count,
                blocklen,
                stride_bytes,
                elem,
            } => (count - 1) * stride_bytes + (blocklen - 1) * elem.extent() + elem.span(),
            Kind::Indexed { blocks, elem } => {
                let &(disp, len) = blocks.last().expect("validated non-empty");
                (disp + len - 1) * elem.extent() + elem.span()
            }
            Kind::Hindexed { blocks, elem } => {
                let &(disp, len) = blocks.last().expect("validated non-empty");
                disp + (len - 1) * elem.extent() + elem.span()
            }
            Kind::Subarray { sizes, elem, .. } => sizes.iter().product::<u64>() * elem.extent(),
            Kind::Struct { fields } => {
                let (disp, ty) = fields.last().expect("validated non-empty");
                disp + ty.span()
            }
            Kind::Resized { elem, .. } => elem.span(),
        }
    }

    /// The type's extent: the tiling period when the type repeats (file
    /// views tile the filetype at its extent).
    pub fn extent(&self) -> u64 {
        match &*self.inner {
            Kind::Resized { extent, .. } => *extent,
            Kind::Subarray { sizes, elem, .. } => sizes.iter().product::<u64>() * elem.extent(),
            _ => self.span(),
        }
    }

    /// Flattens one instance into its relative byte map.
    pub fn flatten(&self) -> ExtentList {
        let mut ranges = Vec::new();
        self.emit(0, &mut ranges);
        ExtentList::from_ranges(ranges)
    }

    /// MPI_Pack: gathers one instance's bytes from `src` (a memory
    /// buffer laid out with this type's typemap) into a packed buffer.
    ///
    /// # Errors
    /// `src` must cover the type's span.
    pub fn pack(&self, src: &[u8]) -> Result<Vec<u8>> {
        if (src.len() as u64) < self.span() {
            return Err(Error::InvalidDatatype(format!(
                "pack source holds {} bytes but the type spans {}",
                src.len(),
                self.span()
            )));
        }
        let map = self.flatten();
        let mut out = Vec::with_capacity(self.size() as usize);
        for r in &map {
            out.extend_from_slice(&src[r.offset as usize..r.end() as usize]);
        }
        Ok(out)
    }

    /// MPI_Unpack: scatters a packed buffer back into `dst` according to
    /// this type's typemap. Bytes in the gaps of the typemap are left
    /// untouched.
    pub fn unpack(&self, packed: &[u8], dst: &mut [u8]) -> Result<()> {
        if packed.len() as u64 != self.size() {
            return Err(Error::InvalidDatatype(format!(
                "unpack source holds {} bytes but the type carries {}",
                packed.len(),
                self.size()
            )));
        }
        if (dst.len() as u64) < self.span() {
            return Err(Error::InvalidDatatype(format!(
                "unpack target holds {} bytes but the type spans {}",
                dst.len(),
                self.span()
            )));
        }
        let mut cursor = 0usize;
        for r in &self.flatten() {
            dst[r.offset as usize..r.end() as usize]
                .copy_from_slice(&packed[cursor..cursor + r.len as usize]);
            cursor += r.len as usize;
        }
        Ok(())
    }

    /// True when one instance is a single gapless run whose extent equals
    /// its size — the common case (elementary types, packed contiguous),
    /// which lets flattening emit whole blocks instead of per-element
    /// ranges.
    fn is_dense(&self) -> bool {
        match &*self.inner {
            Kind::Elementary { .. } => true,
            Kind::Contiguous { elem, .. } => elem.is_dense(),
            Kind::Resized { extent, elem } => elem.is_dense() && *extent == elem.size(),
            _ => false,
        }
    }

    fn emit(&self, base: u64, out: &mut Vec<ByteRange>) {
        match &*self.inner {
            Kind::Elementary { size } => out.push(ByteRange::new(base, *size)),
            Kind::Contiguous { count, elem } => {
                if elem.is_dense() {
                    out.push(ByteRange::new(base, count * elem.size()));
                    return;
                }
                for i in 0..*count {
                    elem.emit(base + i * elem.extent(), out);
                }
            }
            Kind::Vector {
                count,
                blocklen,
                stride,
                elem,
            } => {
                let dense = elem.is_dense();
                for i in 0..*count {
                    if dense {
                        out.push(ByteRange::new(
                            base + i * stride * elem.extent(),
                            blocklen * elem.size(),
                        ));
                        continue;
                    }
                    for j in 0..*blocklen {
                        elem.emit(base + (i * stride + j) * elem.extent(), out);
                    }
                }
            }
            Kind::Hvector {
                count,
                blocklen,
                stride_bytes,
                elem,
            } => {
                let dense = elem.is_dense();
                for i in 0..*count {
                    if dense {
                        out.push(ByteRange::new(
                            base + i * stride_bytes,
                            blocklen * elem.size(),
                        ));
                        continue;
                    }
                    for j in 0..*blocklen {
                        elem.emit(base + i * stride_bytes + j * elem.extent(), out);
                    }
                }
            }
            Kind::Indexed { blocks, elem } => {
                let dense = elem.is_dense();
                for &(disp, len) in blocks {
                    if dense {
                        out.push(ByteRange::new(
                            base + disp * elem.extent(),
                            len * elem.size(),
                        ));
                        continue;
                    }
                    for j in 0..len {
                        elem.emit(base + (disp + j) * elem.extent(), out);
                    }
                }
            }
            Kind::Hindexed { blocks, elem } => {
                let dense = elem.is_dense();
                for &(disp, len) in blocks {
                    if dense {
                        out.push(ByteRange::new(base + disp, len * elem.size()));
                        continue;
                    }
                    for j in 0..len {
                        elem.emit(base + disp + j * elem.extent(), out);
                    }
                }
            }
            Kind::Subarray {
                sizes,
                subsizes,
                starts,
                elem,
            } => {
                // Row-major: iterate all outer-dim positions; the
                // innermost dimension is one contiguous run of elements.
                let dims = sizes.len();
                let elem_extent = elem.extent();
                let row_len = subsizes[dims - 1];
                // Strides (in elements) of each dimension.
                let mut strides = vec![1u64; dims];
                for d in (0..dims - 1).rev() {
                    strides[d] = strides[d + 1] * sizes[d + 1];
                }
                let mut idx = vec![0u64; dims - 1];
                let dense = elem.is_dense();
                loop {
                    let mut elem_off = starts[dims - 1];
                    for d in 0..dims - 1 {
                        elem_off += (starts[d] + idx[d]) * strides[d];
                    }
                    // One contiguous row of `row_len` elements.
                    if dense {
                        out.push(ByteRange::new(
                            base + elem_off * elem_extent,
                            row_len * elem.size(),
                        ));
                    } else {
                        for j in 0..row_len {
                            elem.emit(base + (elem_off + j) * elem_extent, out);
                        }
                    }
                    // Advance the outer index vector (odometer).
                    let mut d = dims - 1;
                    loop {
                        if d == 0 {
                            return;
                        }
                        d -= 1;
                        idx[d] += 1;
                        if idx[d] < subsizes[d] {
                            break;
                        }
                        idx[d] = 0;
                    }
                }
            }
            Kind::Struct { fields } => {
                for (disp, ty) in fields {
                    ty.emit(base + disp, out);
                }
            }
            Kind::Resized { elem, .. } => elem.emit(base, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(t: &Datatype) -> Vec<(u64, u64)> {
        t.flatten()
            .ranges()
            .iter()
            .map(|r| (r.offset, r.len))
            .collect()
    }

    #[test]
    fn elementary_and_contiguous() {
        let d = Datatype::double();
        assert_eq!(d.size(), 8);
        assert_eq!(d.extent(), 8);
        assert_eq!(ranges(&d), vec![(0, 8)]);
        let c = d.contiguous(4).unwrap();
        assert_eq!(c.size(), 32);
        assert_eq!(c.extent(), 32);
        assert_eq!(ranges(&c), vec![(0, 32)], "contiguous runs coalesce");
    }

    #[test]
    fn zero_sizes_rejected() {
        assert!(Datatype::bytes(0).is_err());
        let d = Datatype::double();
        assert!(d.contiguous(0).is_err());
        assert!(d.vector(0, 1, 1).is_err());
        assert!(d.vector(1, 0, 1).is_err());
        assert!(d.indexed(&[]).is_err());
        assert!(d.indexed(&[(0, 0)]).is_err());
    }

    #[test]
    fn vector_strides() {
        // 3 blocks of 2 doubles every 4 doubles: the classic row-of-a-
        // matrix-column pattern.
        let v = Datatype::double().vector(3, 2, 4).unwrap();
        assert_eq!(v.size(), 48);
        assert_eq!(ranges(&v), vec![(0, 16), (32, 16), (64, 16)]);
        assert_eq!(v.extent(), (2 * 4 + 1) * 8 + 8);
        // Overlapping stride is rejected.
        assert!(Datatype::double().vector(2, 4, 2).is_err());
    }

    #[test]
    fn hvector_byte_strides() {
        let v = Datatype::bytes(4).unwrap().hvector(2, 3, 100).unwrap();
        assert_eq!(v.size(), 24);
        assert_eq!(ranges(&v), vec![(0, 12), (100, 12)]);
        assert!(Datatype::bytes(4).unwrap().hvector(2, 3, 10).is_err());
    }

    #[test]
    fn indexed_blocks() {
        let t = Datatype::bytes(2)
            .unwrap()
            .indexed(&[(0, 2), (5, 1), (10, 3)])
            .unwrap();
        assert_eq!(t.size(), 12);
        assert_eq!(ranges(&t), vec![(0, 4), (10, 2), (20, 6)]);
        // Unsorted/overlapping rejected.
        assert!(Datatype::bytes(1)
            .unwrap()
            .indexed(&[(5, 2), (0, 2)])
            .is_err());
        assert!(Datatype::bytes(1)
            .unwrap()
            .indexed(&[(0, 3), (2, 2)])
            .is_err());
    }

    #[test]
    fn subarray_2d_matches_manual() {
        // 4×6 array of 1-byte elements, 2×3 window at (1, 2):
        // rows 1..3, cols 2..5 → offsets 8..11 and 14..17.
        let t = Datatype::bytes(1)
            .unwrap()
            .subarray(&[4, 6], &[2, 3], &[1, 2])
            .unwrap();
        assert_eq!(t.size(), 6);
        assert_eq!(t.extent(), 24);
        assert_eq!(ranges(&t), vec![(8, 3), (14, 3)]);
    }

    #[test]
    fn subarray_3d() {
        // 2×3×4 of 1-byte elems; 1×2×2 window at (1,1,1).
        let t = Datatype::bytes(1)
            .unwrap()
            .subarray(&[2, 3, 4], &[1, 2, 2], &[1, 1, 1])
            .unwrap();
        // plane 1 (offset 12), rows 1..3, cols 1..3:
        // 12 + 4 + 1 = 17..19, 12 + 8 + 1 = 21..23.
        assert_eq!(ranges(&t), vec![(17, 2), (21, 2)]);
    }

    #[test]
    fn subarray_full_window_is_contiguous() {
        let t = Datatype::bytes(4)
            .unwrap()
            .subarray(&[8, 8], &[8, 8], &[0, 0])
            .unwrap();
        assert_eq!(ranges(&t), vec![(0, 256)]);
    }

    #[test]
    fn subarray_validation() {
        let e = Datatype::bytes(1).unwrap();
        assert!(e.subarray(&[4, 4], &[2], &[0, 0]).is_err());
        assert!(e.subarray(&[4], &[5], &[0]).is_err());
        assert!(e.subarray(&[4], &[2], &[3]).is_err());
        assert!(e.subarray(&[], &[], &[]).is_err());
    }

    #[test]
    fn struct_fields() {
        let header = Datatype::bytes(4).unwrap();
        let body = Datatype::bytes(8).unwrap().contiguous(2).unwrap();
        let t = Datatype::structured(&[(0, header), (8, body)]).unwrap();
        assert_eq!(t.size(), 20);
        assert_eq!(ranges(&t), vec![(0, 4), (8, 16)]);
        assert!(Datatype::structured(&[]).is_err());
        let a = Datatype::bytes(4).unwrap();
        let b = Datatype::bytes(4).unwrap();
        assert!(Datatype::structured(&[(2, a), (0, b)]).is_err());
    }

    #[test]
    fn resized_changes_extent_only() {
        let t = Datatype::bytes(4).unwrap();
        let r = t.resized(16).unwrap();
        assert_eq!(r.size(), 4);
        assert_eq!(r.extent(), 16);
        assert_eq!(ranges(&r), vec![(0, 4)]);
        // Tiling via contiguous uses the new extent: gaps appear.
        let tiled = r.contiguous(3).unwrap();
        assert_eq!(ranges(&tiled), vec![(0, 4), (16, 4), (32, 4)]);
        assert!(t.resized(2).is_err());
    }

    #[test]
    fn nested_vector_of_subarray() {
        // A vector of 2 subarray tiles — exercise nesting with extents.
        let tile = Datatype::bytes(1)
            .unwrap()
            .subarray(&[4, 4], &[2, 2], &[0, 0])
            .unwrap(); // extent 16, data at (0,2),(4,2)
        let two = tile.hvector(2, 1, 100).unwrap();
        assert_eq!(ranges(&two), vec![(0, 2), (4, 2), (100, 2), (104, 2)]);
    }

    #[test]
    fn hindexed_blocks() {
        let t = Datatype::bytes(4)
            .unwrap()
            .hindexed(&[(0, 2), (100, 1)])
            .unwrap();
        assert_eq!(t.size(), 12);
        assert_eq!(ranges(&t), vec![(0, 8), (100, 4)]);
        assert!(Datatype::bytes(4)
            .unwrap()
            .hindexed(&[(8, 1), (0, 1)])
            .is_err());
        assert!(Datatype::bytes(4)
            .unwrap()
            .hindexed(&[(0, 3), (8, 1)])
            .is_err());
        assert!(Datatype::bytes(4).unwrap().hindexed(&[]).is_err());
    }

    #[test]
    fn indexed_block_equal_lengths() {
        let t = Datatype::bytes(2)
            .unwrap()
            .indexed_block(3, &[0, 10, 20])
            .unwrap();
        assert_eq!(t.size(), 18);
        assert_eq!(ranges(&t), vec![(0, 6), (20, 6), (40, 6)]);
        assert!(Datatype::bytes(2).unwrap().indexed_block(0, &[0]).is_err());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let t = Datatype::bytes(2)
            .unwrap()
            .indexed(&[(0, 2), (5, 1), (10, 2)])
            .unwrap();
        // Memory layout: data at elements 0-1, 5, 10-11 of 2-byte elems.
        let mut mem = vec![0u8; t.span() as usize];
        for (i, b) in mem.iter_mut().enumerate() {
            *b = i as u8;
        }
        let packed = t.pack(&mem).unwrap();
        assert_eq!(packed.len() as u64, t.size());
        assert_eq!(&packed[..4], &[0, 1, 2, 3]);
        assert_eq!(&packed[4..6], &[10, 11]);
        // Unpack into a fresh buffer: gaps stay untouched.
        let mut dst = vec![0xFFu8; t.span() as usize];
        t.unpack(&packed, &mut dst).unwrap();
        assert_eq!(&dst[..4], &[0, 1, 2, 3]);
        assert_eq!(dst[4], 0xFF, "gap untouched");
        assert_eq!(&dst[10..12], &[10, 11]);
        // Size mismatches error.
        assert!(t.unpack(&packed[1..], &mut dst).is_err());
        assert!(t.pack(&mem[..3]).is_err());
        let mut small = vec![0u8; 3];
        assert!(t.unpack(&packed, &mut small).is_err());
    }

    #[test]
    fn flatten_size_invariant() {
        // For a few representative types, flatten().total_len() == size().
        let types = [
            Datatype::double().contiguous(7).unwrap(),
            Datatype::double().vector(5, 3, 9).unwrap(),
            Datatype::bytes(3)
                .unwrap()
                .indexed(&[(0, 1), (4, 2), (9, 5)])
                .unwrap(),
            Datatype::bytes(5)
                .unwrap()
                .hindexed(&[(0, 2), (50, 3)])
                .unwrap(),
            Datatype::bytes(2)
                .unwrap()
                .indexed_block(4, &[0, 8, 16])
                .unwrap(),
            Datatype::bytes(2)
                .unwrap()
                .subarray(&[6, 6, 6], &[2, 3, 4], &[1, 0, 2])
                .unwrap(),
        ];
        for t in &types {
            assert_eq!(t.flatten().total_len(), t.size());
        }
    }
}
