//! Property tests for the atomicity verifier: it must accept every
//! genuinely serial outcome (soundness of the witness) and reject
//! randomly interleaved outcomes of overlapping writes (sensitivity).

use atomio_simgrid::DetRng;
use atomio_types::stamp::WriteStamp;
use atomio_types::{ByteRange, ClientId, ExtentList};
use atomio_workloads::verify::{check_serializable, replay, Violation, WriteRecord};
use proptest::prelude::*;

const FILE: u64 = 600;

fn arb_writes() -> impl Strategy<Value = Vec<WriteRecord>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..FILE, 1u64..80), 1..5),
        1..6,
    )
    .prop_map(|per_writer| {
        per_writer
            .into_iter()
            .enumerate()
            .map(|(i, pairs)| {
                let ranges = pairs
                    .into_iter()
                    .map(|(off, len)| ByteRange::new(off, len.min(FILE - off)))
                    .filter(|r| !r.is_empty());
                WriteRecord::new(
                    WriteStamp::new(ClientId::new(i as u64), 0),
                    ExtentList::from_ranges(ranges),
                )
            })
            .filter(|w| !w.extents.is_empty())
            .collect()
    })
    .prop_filter("need at least one write", |ws: &Vec<WriteRecord>| {
        !ws.is_empty()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_serial_order_is_accepted(writes in arb_writes(), seed in any::<u64>()) {
        let rng = DetRng::new(seed);
        let mut order: Vec<usize> = (0..writes.len()).collect();
        rng.shuffle(&mut order);
        let state = replay(FILE as usize, &writes, &order);
        let witness = check_serializable(&state, &writes)
            .unwrap_or_else(|v| panic!("serial order {order:?} rejected: {v:?}"));
        // The witness must reproduce the state exactly.
        prop_assert_eq!(replay(FILE as usize, &writes, &witness), state);
    }

    #[test]
    fn segment_interleaving_of_full_overlap_is_rejected(
        seed in any::<u64>(),
        cut in 10u64..90,
    ) {
        // Two writers cover the same single 100-byte region; splice them
        // at `cut` inside the region: no serial order explains that.
        let writes = vec![
            WriteRecord::new(
                WriteStamp::new(ClientId::new(0), 0),
                ExtentList::from_pairs([(50u64, 100u64)]),
            ),
            WriteRecord::new(
                WriteStamp::new(ClientId::new(1), 0),
                ExtentList::from_pairs([(50u64, 100u64)]),
            ),
        ];
        let _ = seed;
        let a = replay(FILE as usize, &writes, &[1, 0]); // 0 wins
        let b = replay(FILE as usize, &writes, &[0, 1]); // 1 wins
        let mut state = a.clone();
        state[(50 + cut) as usize..150].copy_from_slice(&b[(50 + cut) as usize..150]);
        match check_serializable(&state, &writes) {
            Err(Violation::TornSegment { .. }) => {}
            other => prop_assert!(false, "expected torn segment, got {:?}", other),
        }
    }

    #[test]
    fn random_corruption_never_passes_silently(
        writes in arb_writes(),
        seed in any::<u64>(),
        victim in 0usize..(FILE as usize),
    ) {
        // Corrupt one byte that some write covers: the verifier must NOT
        // return a witness that fails to reproduce the corrupted state.
        let order: Vec<usize> = (0..writes.len()).collect();
        let mut state = replay(FILE as usize, &writes, &order);
        let covered = writes.iter().any(|w| w.extents.contains(victim as u64));
        prop_assume!(covered);
        let _ = seed;
        state[victim] ^= 0x5B;
        match check_serializable(&state, &writes) {
            // Rejection is the expected outcome...
            Err(_) => {}
            // ...but acceptance is only sound if the witness truly
            // replays to the corrupted state (possible when the flipped
            // byte coincidentally matches another overlapping writer).
            Ok(witness) => {
                prop_assert_eq!(replay(FILE as usize, &writes, &witness), state);
            }
        }
    }

    #[test]
    fn witness_respects_observed_overwrites(writes in arb_writes()) {
        // Apply in index order. Wherever the FINAL STATE shows write b's
        // bytes inside the overlap of a and b, the witness must place a
        // before b. (If a third write shadowed the whole overlap, the
        // pair's relative order is genuinely unconstrained and we make
        // no demand.)
        let order: Vec<usize> = (0..writes.len()).collect();
        let state = replay(FILE as usize, &writes, &order);
        let witness = check_serializable(&state, &writes).unwrap();
        // Segment the file exactly like the verifier and attribute whole
        // segments (per-byte checks would suffer 1/256 stamp collisions).
        let mut cuts: Vec<u64> = vec![0, FILE];
        for w in &writes {
            for r in &w.extents {
                cuts.push(r.offset);
                cuts.push(r.end());
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        for pair in cuts.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            if lo >= hi {
                continue;
            }
            let candidates: Vec<usize> = (0..writes.len())
                .filter(|&i| writes[i].extents.contains(lo))
                .collect();
            let data = &state[lo as usize..hi as usize];
            let matching: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| writes[i].stamp.matches(lo, data))
                .collect();
            // Ambiguous segments (stamp coincidence) constrain nothing.
            let [winner] = matching[..] else { continue };
            // Everyone else covering this segment wrote before the
            // winner; the witness must agree.
            let pw = witness.iter().position(|&x| x == winner).unwrap();
            for &other in &candidates {
                if other != winner {
                    let po = witness.iter().position(|&x| x == other).unwrap();
                    prop_assert!(po < pw, "witness reordered observed overwrite");
                }
            }
        }
        // And regardless of ordering details, the witness replays to the
        // observed state.
        prop_assert_eq!(replay(FILE as usize, &writes, &witness), state);
    }
}
