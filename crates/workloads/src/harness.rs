//! Driving a workload against a backend and measuring it.
//!
//! [`run_write_round`] is the shared engine of the integration tests and
//! every experiment binary: N simulated ranks concurrently issue one
//! atomic (or not) vectored write each through an ADIO driver; the round
//! is timed in virtual time, read back, and checked for MPI-atomicity by
//! the verifier.

use crate::checkpoint::CheckpointWorkload;
use crate::verify::{check_serializable_from, Violation, WriteRecord};
use atomio_core::{Blob, GcCoordinator};
use atomio_mpiio::adio::AdioDriver;
use atomio_mpiio::comm::Communicator;
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::{CostModel, SimClock};
use atomio_types::stamp::WriteStamp;
use atomio_types::{ByteRange, ClientId, ExtentList};
use bytes::Bytes;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The outcome of one concurrent write round.
#[derive(Debug)]
pub struct RoundOutcome {
    /// Virtual time the whole round took (slowest writer).
    pub elapsed: Duration,
    /// Total payload bytes moved by all writers.
    pub total_bytes: u64,
    /// The write records (stamps + extents) issued.
    pub writes: Vec<WriteRecord>,
    /// File contents after the round (`[0, max_end)`), if read back.
    pub final_state: Option<Vec<u8>>,
    /// Verifier verdict: `None` if verification was skipped or passed;
    /// `Some(violation)` if the state is not serializable.
    pub violation: Option<Violation>,
    /// Witness serial order when verification passed.
    pub witness: Option<Vec<usize>>,
}

impl RoundOutcome {
    /// Aggregated throughput in MiB per simulated second.
    pub fn throughput_mib_s(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.total_bytes as f64 / (1024.0 * 1024.0) / self.elapsed.as_secs_f64()
    }

    /// True when the round was verified and found serializable.
    pub fn is_atomic_ok(&self) -> bool {
        self.final_state.is_some() && self.violation.is_none()
    }
}

/// Runs one concurrent write round: client `i` atomically writes
/// `extents_per_client[i]` with its stamp pattern (`seq` distinguishes
/// successive rounds). With `verify`, the file is read back and checked
/// for serializability against a zero initial state.
pub fn run_write_round(
    clock: &SimClock,
    driver: &Arc<dyn AdioDriver>,
    extents_per_client: &[ExtentList],
    atomic: bool,
    seq: u64,
    verify: bool,
) -> RoundOutcome {
    run_write_round_from(clock, driver, extents_per_client, atomic, seq, verify, None)
}

/// Like [`run_write_round`] but verifying against a known pre-round file
/// state (`base`) — chain rounds by passing the previous round's
/// `final_state`.
#[allow(clippy::too_many_arguments)]
pub fn run_write_round_from(
    clock: &SimClock,
    driver: &Arc<dyn AdioDriver>,
    extents_per_client: &[ExtentList],
    atomic: bool,
    seq: u64,
    verify: bool,
    base: Option<&[u8]>,
) -> RoundOutcome {
    let n = extents_per_client.len();
    assert!(n > 0, "need at least one writer");
    let writes: Vec<WriteRecord> = extents_per_client
        .iter()
        .enumerate()
        .map(|(i, e)| WriteRecord::new(WriteStamp::new(ClientId::new(i as u64), seq), e.clone()))
        .collect();
    let total_bytes: u64 = extents_per_client.iter().map(|e| e.total_len()).sum();

    let start = clock.now();
    let results = run_actors_on(clock, n, |i, p| {
        let w = &writes[i];
        let payload = Bytes::from(w.stamp.payload_for(&w.extents));
        driver.write_extents(p, ClientId::new(i as u64), &w.extents, payload, atomic)
    });
    let elapsed = clock.now() - start;
    for (i, r) in results.iter().enumerate() {
        if let Err(e) = r {
            panic!("writer {i} failed: {e}");
        }
    }

    let (final_state, violation, witness) = if verify {
        let end = extents_per_client
            .iter()
            .map(|e| e.covering_range().end())
            .max()
            .unwrap_or(0);
        let state = run_actors_on(clock, 1, |_, p| {
            driver
                .read_extents(
                    p,
                    ClientId::new(u64::MAX),
                    &ExtentList::single(ByteRange::new(0, end)),
                    false,
                )
                .expect("read-back failed")
        })
        .pop()
        .expect("one reader");
        match check_serializable_from(base, &state, &writes) {
            Ok(order) => (Some(state), None, Some(order)),
            Err(v) => (Some(state), Some(v), None),
        }
    } else {
        (None, None, None)
    };

    RoundOutcome {
        elapsed,
        total_bytes,
        writes,
        final_state,
        violation,
        witness,
    }
}

/// How reclamation runs relative to the writers in
/// [`run_checkpoint_with_gc`] — the three arms of the E10 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcMode {
    /// No reclamation at all: the storage-growth baseline.
    Off,
    /// Rank 0 collects to the floor between iterations while every
    /// other rank waits at a barrier — the classic offline collector.
    StopTheWorld,
    /// A dedicated collector actor runs capped passes continuously
    /// while the writers write, never stalling them.
    Concurrent,
}

/// Outcome of one GC-under-load checkpoint run.
#[derive(Debug, Clone, Copy)]
pub struct GcLoadOutcome {
    /// Virtual time until every rank finished its last iteration.
    pub elapsed: Duration,
    /// Worst single-iteration barrier-to-barrier latency across ranks —
    /// in `StopTheWorld` mode this includes the collection stall.
    pub iter_ack_max: Duration,
    /// Payload bytes written over the whole run.
    pub total_bytes: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Snapshots retired by the collector during the run.
    pub versions_retired: u64,
    /// Chunks evicted from the providers.
    pub chunks_evicted: u64,
    /// Payload bytes reclaimed.
    pub bytes_reclaimed: u64,
    /// Collection passes executed.
    pub gc_passes: u64,
}

impl GcLoadOutcome {
    /// Reclaim throughput in MiB per simulated second of the whole run.
    pub fn reclaim_mib_s(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.bytes_reclaimed as f64 / (1024.0 * 1024.0) / self.elapsed.as_secs_f64()
    }
}

/// Drives `iterations` checkpoint dumps against `blob` while a collector
/// reclaims superseded snapshots per `mode` — the engine behind the E10
/// ablation and the distributed GC stress tests.
///
/// The blob's retention policy (and any live leases) decide what the
/// collector may take; this helper only decides *when* it runs. In
/// [`GcMode::Concurrent`] an extra virtual-clock actor interleaves
/// capped [`GcCoordinator::run_pass`] calls with the writers and keeps
/// collecting until the floor is drained after the last rank finishes,
/// so the run always ends fully reclaimed; [`GcMode::StopTheWorld`]
/// reaches the same end state by stalling every rank behind rank 0's
/// collection each iteration.
pub fn run_checkpoint_with_gc(
    clock: &SimClock,
    blob: &Blob,
    workload: &CheckpointWorkload,
    iterations: u64,
    mode: GcMode,
) -> GcLoadOutcome {
    assert!(iterations > 0, "need at least one iteration");
    let n = workload.ranks;
    let concurrent = mode == GcMode::Concurrent;
    let actors = n + usize::from(concurrent);
    let comm = Communicator::new(n, CostModel::zero());
    let writers_done = Arc::new(AtomicUsize::new(0));
    let start = clock.now();
    let results = run_actors_on(clock, actors, |i, p| {
        if i == n {
            // The collector actor: capped passes, interleaved with the
            // writers, then a final drain to the floor once they stop.
            let mut gc = GcCoordinator::new(blob.clone());
            let mut passes = 0u64;
            let mut report = GcLoadOutcome::zero();
            loop {
                let done = writers_done.load(Ordering::Acquire) == n;
                let r = gc.run_pass(p).expect("concurrent GC pass failed");
                passes += 1;
                report.versions_retired += r.report.versions_retired;
                report.chunks_evicted += r.report.chunks_evicted;
                report.bytes_reclaimed += r.report.bytes_reclaimed;
                if done && r.report.versions_retired == 0 {
                    break;
                }
                p.sleep(Duration::from_micros(100));
            }
            report.gc_passes = passes;
            return (Duration::ZERO, Duration::ZERO, report);
        }
        let extents = workload.extents_for(i);
        let mut stw =
            (i == 0 && mode == GcMode::StopTheWorld).then(|| GcCoordinator::new(blob.clone()));
        let mut gc_totals = GcLoadOutcome::zero();
        let mut iter_ack_max = Duration::ZERO;
        for iter in 0..iterations {
            comm.barrier(p);
            let t0 = p.now();
            let stamp = WriteStamp::new(ClientId::new(i as u64), iter);
            let payload = Bytes::from(stamp.payload_for(&extents));
            blob.write_list(p, &extents, payload)
                .unwrap_or_else(|e| panic!("rank {i} iteration {iter} failed: {e}"));
            if mode == GcMode::StopTheWorld {
                // Everyone stalls behind rank 0's collection — the
                // stall lands inside the measured iteration latency.
                comm.barrier(p);
                if let Some(gc) = stw.as_mut() {
                    let r = gc.run_to_floor(p).expect("stop-the-world GC failed");
                    gc_totals.versions_retired += r.report.versions_retired;
                    gc_totals.chunks_evicted += r.report.chunks_evicted;
                    gc_totals.bytes_reclaimed += r.report.bytes_reclaimed;
                    gc_totals.gc_passes += 1;
                }
            }
            comm.barrier(p);
            iter_ack_max = iter_ack_max.max(p.now() - t0);
        }
        writers_done.fetch_add(1, Ordering::Release);
        (iter_ack_max, p.now() - start, gc_totals)
    });
    let ranks = &results[..n];
    let mut out = GcLoadOutcome {
        elapsed: ranks.iter().map(|r| r.1).max().unwrap(),
        iter_ack_max: ranks.iter().map(|r| r.0).max().unwrap(),
        total_bytes: iterations * (0..n).map(|r| workload.bytes_for(r)).sum::<u64>(),
        iterations,
        ..GcLoadOutcome::zero()
    };
    for (_, _, gc) in results.iter() {
        out.versions_retired += gc.versions_retired;
        out.chunks_evicted += gc.chunks_evicted;
        out.bytes_reclaimed += gc.bytes_reclaimed;
        out.gc_passes += gc.gc_passes;
    }
    out
}

impl GcLoadOutcome {
    fn zero() -> Self {
        GcLoadOutcome {
            elapsed: Duration::ZERO,
            iter_ack_max: Duration::ZERO,
            total_bytes: 0,
            iterations: 0,
            versions_retired: 0,
            chunks_evicted: 0,
            bytes_reclaimed: 0,
            gc_passes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::OverlapWorkload;
    use atomio_core::{Store, StoreConfig};
    use atomio_mpiio::drivers::{LockingDriver, VersioningDriver};
    use atomio_pfs::ParallelFs;
    use atomio_simgrid::{CostModel, Metrics};

    fn versioning_driver() -> Arc<dyn AdioDriver> {
        let store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(256)
                .with_data_providers(4),
        );
        Arc::new(VersioningDriver::new(store.create_blob()))
    }

    fn locking_driver() -> Arc<dyn AdioDriver> {
        let fs = ParallelFs::new(4, CostModel::zero(), Metrics::new());
        Arc::new(LockingDriver::new(Arc::new(fs.create_file(256))))
    }

    #[test]
    fn versioning_round_is_atomic() {
        let w = OverlapWorkload::new(6, 4, 512, 1, 2);
        let extents: Vec<ExtentList> = (0..6).map(|i| w.extents_for(i)).collect();
        let clock = SimClock::new();
        let out = run_write_round(&clock, &versioning_driver(), &extents, true, 0, true);
        assert!(out.is_atomic_ok(), "violation: {:?}", out.violation);
        assert_eq!(out.total_bytes, w.total_bytes());
        assert_eq!(out.witness.as_ref().unwrap().len(), 6);
    }

    #[test]
    fn locking_round_is_atomic() {
        let w = OverlapWorkload::new(4, 4, 512, 1, 2);
        let extents: Vec<ExtentList> = (0..4).map(|i| w.extents_for(i)).collect();
        let clock = SimClock::new();
        let out = run_write_round(&clock, &locking_driver(), &extents, true, 0, true);
        assert!(out.is_atomic_ok(), "violation: {:?}", out.violation);
    }

    #[test]
    fn disjoint_nonatomic_round_still_serializable() {
        // Without overlap, even the no-lock path cannot tear.
        let w = OverlapWorkload::new(4, 4, 512, 0, 2);
        let extents: Vec<ExtentList> = (0..4).map(|i| w.extents_for(i)).collect();
        let clock = SimClock::new();
        let out = run_write_round(&clock, &locking_driver(), &extents, false, 0, true);
        assert!(out.is_atomic_ok());
    }

    #[test]
    fn throughput_uses_virtual_time() {
        let w = OverlapWorkload::new(2, 2, 1024, 0, 2);
        let extents: Vec<ExtentList> = (0..2).map(|i| w.extents_for(i)).collect();
        let store = Store::new(
            StoreConfig::default()
                .with_cost(CostModel::grid5000())
                .with_chunk_size(1024)
                .with_data_providers(4),
        );
        let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(store.create_blob()));
        let clock = SimClock::new();
        let out = run_write_round(&clock, &driver, &extents, true, 0, false);
        assert!(out.elapsed > Duration::ZERO);
        assert!(out.throughput_mib_s().is_finite());
        assert!(out.final_state.is_none(), "verification skipped");
    }

    #[test]
    fn chained_rounds_verify_against_previous_state() {
        use super::run_write_round_from;
        // Round 2 writes a *different, smaller* extent set than round 1;
        // verification only succeeds when round 1's state is the base.
        let driver = versioning_driver();
        let clock = SimClock::new();
        let round1: Vec<ExtentList> = (0..3)
            .map(|i| ExtentList::from_pairs([(i as u64 * 1024, 1024u64)]))
            .collect();
        let r1 = run_write_round(&clock, &driver, &round1, true, 1, true);
        assert!(r1.is_atomic_ok());
        let base = r1.final_state.as_deref().unwrap();
        let round2: Vec<ExtentList> = (0..3)
            .map(|i| ExtentList::from_pairs([(i as u64 * 1024 + 256, 256u64)]))
            .collect();
        let r2 = run_write_round_from(&clock, &driver, &round2, true, 2, true, Some(base));
        assert!(r2.is_atomic_ok(), "violation: {:?}", r2.violation);
        // Against a zero base the same round must fail (round-1 bytes in
        // the holes).
        let clock2 = SimClock::new();
        let driver2 = versioning_driver();
        let _ = run_write_round(&clock2, &driver2, &round1, true, 1, false);
        let r2_zero = run_write_round(&clock2, &driver2, &round2, true, 2, true);
        assert!(r2_zero.violation.is_some());
    }

    #[test]
    fn gc_under_load_reclaims_without_corrupting_reads() {
        use atomio_types::RetentionPolicy;
        let store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(256)
                .with_data_providers(4)
                .with_retention(RetentionPolicy::KeepLast(1)),
        );
        let blob = store.create_blob();
        let w = CheckpointWorkload::new(4, 4, 64, 1);
        let clock = SimClock::new();
        let out = run_checkpoint_with_gc(&clock, &blob, &w, 6, GcMode::Concurrent);
        assert_eq!(out.iterations, 6);
        assert!(
            out.versions_retired > 0 && out.bytes_reclaimed > 0,
            "concurrent GC reclaimed nothing: {out:?}"
        );
        // The retained snapshot still reads back whole: the last
        // iteration's halo-merged state, one complete cell value per
        // rank region (GC never tears what retention keeps).
        let state = run_actors_on(&clock, 1, |_, p| {
            blob.read(p, 0, w.file_bytes()).expect("read after GC")
        })
        .pop()
        .unwrap();
        assert_eq!(state.len() as u64, w.file_bytes());
        let stw_store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(256)
                .with_data_providers(4)
                .with_retention(RetentionPolicy::KeepLast(1)),
        );
        let stw = run_checkpoint_with_gc(
            &SimClock::new(),
            &stw_store.create_blob(),
            &w,
            6,
            GcMode::StopTheWorld,
        );
        assert!(stw.versions_retired > 0);
        let off_store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(256)
                .with_data_providers(4),
        );
        let off = run_checkpoint_with_gc(
            &SimClock::new(),
            &off_store.create_blob(),
            &w,
            6,
            GcMode::Off,
        );
        assert_eq!(off.versions_retired, 0);
        assert_eq!(off.gc_passes, 0);
    }

    #[test]
    fn successive_rounds_need_distinct_seq() {
        // Round 2 overwrites round 1; with distinct seq stamps the
        // verifier attributes the final state to round 2's writes.
        let w = OverlapWorkload::new(3, 3, 256, 1, 4);
        let extents: Vec<ExtentList> = (0..3).map(|i| w.extents_for(i)).collect();
        let driver = versioning_driver();
        let clock = SimClock::new();
        let r1 = run_write_round(&clock, &driver, &extents, true, 1, true);
        assert!(r1.is_atomic_ok());
        let r2 = run_write_round(&clock, &driver, &extents, true, 2, true);
        assert!(r2.is_atomic_ok(), "violation: {:?}", r2.violation);
    }
}
