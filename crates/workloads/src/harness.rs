//! Driving a workload against a backend and measuring it.
//!
//! [`run_write_round`] is the shared engine of the integration tests and
//! every experiment binary: N simulated ranks concurrently issue one
//! atomic (or not) vectored write each through an ADIO driver; the round
//! is timed in virtual time, read back, and checked for MPI-atomicity by
//! the verifier.

use crate::verify::{check_serializable_from, Violation, WriteRecord};
use atomio_mpiio::adio::AdioDriver;
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::SimClock;
use atomio_types::stamp::WriteStamp;
use atomio_types::{ByteRange, ClientId, ExtentList};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

/// The outcome of one concurrent write round.
#[derive(Debug)]
pub struct RoundOutcome {
    /// Virtual time the whole round took (slowest writer).
    pub elapsed: Duration,
    /// Total payload bytes moved by all writers.
    pub total_bytes: u64,
    /// The write records (stamps + extents) issued.
    pub writes: Vec<WriteRecord>,
    /// File contents after the round (`[0, max_end)`), if read back.
    pub final_state: Option<Vec<u8>>,
    /// Verifier verdict: `None` if verification was skipped or passed;
    /// `Some(violation)` if the state is not serializable.
    pub violation: Option<Violation>,
    /// Witness serial order when verification passed.
    pub witness: Option<Vec<usize>>,
}

impl RoundOutcome {
    /// Aggregated throughput in MiB per simulated second.
    pub fn throughput_mib_s(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.total_bytes as f64 / (1024.0 * 1024.0) / self.elapsed.as_secs_f64()
    }

    /// True when the round was verified and found serializable.
    pub fn is_atomic_ok(&self) -> bool {
        self.final_state.is_some() && self.violation.is_none()
    }
}

/// Runs one concurrent write round: client `i` atomically writes
/// `extents_per_client[i]` with its stamp pattern (`seq` distinguishes
/// successive rounds). With `verify`, the file is read back and checked
/// for serializability against a zero initial state.
pub fn run_write_round(
    clock: &SimClock,
    driver: &Arc<dyn AdioDriver>,
    extents_per_client: &[ExtentList],
    atomic: bool,
    seq: u64,
    verify: bool,
) -> RoundOutcome {
    run_write_round_from(clock, driver, extents_per_client, atomic, seq, verify, None)
}

/// Like [`run_write_round`] but verifying against a known pre-round file
/// state (`base`) — chain rounds by passing the previous round's
/// `final_state`.
#[allow(clippy::too_many_arguments)]
pub fn run_write_round_from(
    clock: &SimClock,
    driver: &Arc<dyn AdioDriver>,
    extents_per_client: &[ExtentList],
    atomic: bool,
    seq: u64,
    verify: bool,
    base: Option<&[u8]>,
) -> RoundOutcome {
    let n = extents_per_client.len();
    assert!(n > 0, "need at least one writer");
    let writes: Vec<WriteRecord> = extents_per_client
        .iter()
        .enumerate()
        .map(|(i, e)| WriteRecord::new(WriteStamp::new(ClientId::new(i as u64), seq), e.clone()))
        .collect();
    let total_bytes: u64 = extents_per_client.iter().map(|e| e.total_len()).sum();

    let start = clock.now();
    let results = run_actors_on(clock, n, |i, p| {
        let w = &writes[i];
        let payload = Bytes::from(w.stamp.payload_for(&w.extents));
        driver.write_extents(p, ClientId::new(i as u64), &w.extents, payload, atomic)
    });
    let elapsed = clock.now() - start;
    for (i, r) in results.iter().enumerate() {
        if let Err(e) = r {
            panic!("writer {i} failed: {e}");
        }
    }

    let (final_state, violation, witness) = if verify {
        let end = extents_per_client
            .iter()
            .map(|e| e.covering_range().end())
            .max()
            .unwrap_or(0);
        let state = run_actors_on(clock, 1, |_, p| {
            driver
                .read_extents(
                    p,
                    ClientId::new(u64::MAX),
                    &ExtentList::single(ByteRange::new(0, end)),
                    false,
                )
                .expect("read-back failed")
        })
        .pop()
        .expect("one reader");
        match check_serializable_from(base, &state, &writes) {
            Ok(order) => (Some(state), None, Some(order)),
            Err(v) => (Some(state), Some(v), None),
        }
    } else {
        (None, None, None)
    };

    RoundOutcome {
        elapsed,
        total_bytes,
        writes,
        final_state,
        violation,
        witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::OverlapWorkload;
    use atomio_core::{Store, StoreConfig};
    use atomio_mpiio::drivers::{LockingDriver, VersioningDriver};
    use atomio_pfs::ParallelFs;
    use atomio_simgrid::{CostModel, Metrics};

    fn versioning_driver() -> Arc<dyn AdioDriver> {
        let store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(256)
                .with_data_providers(4),
        );
        Arc::new(VersioningDriver::new(store.create_blob()))
    }

    fn locking_driver() -> Arc<dyn AdioDriver> {
        let fs = ParallelFs::new(4, CostModel::zero(), Metrics::new());
        Arc::new(LockingDriver::new(Arc::new(fs.create_file(256))))
    }

    #[test]
    fn versioning_round_is_atomic() {
        let w = OverlapWorkload::new(6, 4, 512, 1, 2);
        let extents: Vec<ExtentList> = (0..6).map(|i| w.extents_for(i)).collect();
        let clock = SimClock::new();
        let out = run_write_round(&clock, &versioning_driver(), &extents, true, 0, true);
        assert!(out.is_atomic_ok(), "violation: {:?}", out.violation);
        assert_eq!(out.total_bytes, w.total_bytes());
        assert_eq!(out.witness.as_ref().unwrap().len(), 6);
    }

    #[test]
    fn locking_round_is_atomic() {
        let w = OverlapWorkload::new(4, 4, 512, 1, 2);
        let extents: Vec<ExtentList> = (0..4).map(|i| w.extents_for(i)).collect();
        let clock = SimClock::new();
        let out = run_write_round(&clock, &locking_driver(), &extents, true, 0, true);
        assert!(out.is_atomic_ok(), "violation: {:?}", out.violation);
    }

    #[test]
    fn disjoint_nonatomic_round_still_serializable() {
        // Without overlap, even the no-lock path cannot tear.
        let w = OverlapWorkload::new(4, 4, 512, 0, 2);
        let extents: Vec<ExtentList> = (0..4).map(|i| w.extents_for(i)).collect();
        let clock = SimClock::new();
        let out = run_write_round(&clock, &locking_driver(), &extents, false, 0, true);
        assert!(out.is_atomic_ok());
    }

    #[test]
    fn throughput_uses_virtual_time() {
        let w = OverlapWorkload::new(2, 2, 1024, 0, 2);
        let extents: Vec<ExtentList> = (0..2).map(|i| w.extents_for(i)).collect();
        let store = Store::new(
            StoreConfig::default()
                .with_cost(CostModel::grid5000())
                .with_chunk_size(1024)
                .with_data_providers(4),
        );
        let driver: Arc<dyn AdioDriver> = Arc::new(VersioningDriver::new(store.create_blob()));
        let clock = SimClock::new();
        let out = run_write_round(&clock, &driver, &extents, true, 0, false);
        assert!(out.elapsed > Duration::ZERO);
        assert!(out.throughput_mib_s().is_finite());
        assert!(out.final_state.is_none(), "verification skipped");
    }

    #[test]
    fn chained_rounds_verify_against_previous_state() {
        use super::run_write_round_from;
        // Round 2 writes a *different, smaller* extent set than round 1;
        // verification only succeeds when round 1's state is the base.
        let driver = versioning_driver();
        let clock = SimClock::new();
        let round1: Vec<ExtentList> = (0..3)
            .map(|i| ExtentList::from_pairs([(i as u64 * 1024, 1024u64)]))
            .collect();
        let r1 = run_write_round(&clock, &driver, &round1, true, 1, true);
        assert!(r1.is_atomic_ok());
        let base = r1.final_state.as_deref().unwrap();
        let round2: Vec<ExtentList> = (0..3)
            .map(|i| ExtentList::from_pairs([(i as u64 * 1024 + 256, 256u64)]))
            .collect();
        let r2 = run_write_round_from(&clock, &driver, &round2, true, 2, true, Some(base));
        assert!(r2.is_atomic_ok(), "violation: {:?}", r2.violation);
        // Against a zero base the same round must fail (round-1 bytes in
        // the holes).
        let clock2 = SimClock::new();
        let driver2 = versioning_driver();
        let _ = run_write_round(&clock2, &driver2, &round1, true, 1, false);
        let r2_zero = run_write_round(&clock2, &driver2, &round2, true, 2, true);
        assert!(r2_zero.violation.is_some());
    }

    #[test]
    fn successive_rounds_need_distinct_seq() {
        // Round 2 overwrites round 1; with distinct seq stamps the
        // verifier attributes the final state to round 2's writes.
        let w = OverlapWorkload::new(3, 3, 256, 1, 4);
        let extents: Vec<ExtentList> = (0..3).map(|i| w.extents_for(i)).collect();
        let driver = versioning_driver();
        let clock = SimClock::new();
        let r1 = run_write_round(&clock, &driver, &extents, true, 1, true);
        assert!(r1.is_atomic_ok());
        let r2 = run_write_round(&clock, &driver, &extents, true, 2, true);
        assert!(r2.is_atomic_ok(), "violation: {:?}", r2.violation);
    }
}
