//! A re-implementation of the **mpi-tile-io** benchmark's access
//! pattern (the paper's §VI series-2 experiment).
//!
//! The dataset is a dense 2-D array of elements. Each process owns one
//! tile of `sz_tile_x × sz_tile_y` elements in an `nr_tiles_x ×
//! nr_tiles_y` grid; adjacent tiles **overlap** by `overlap_x`/`overlap_y`
//! elements (ghost cells), so the writes of neighbouring processes
//! conflict along their shared borders — precisely the pattern that
//! needs MPI atomic mode.

use atomio_mpiio::{Datatype, FileView};
use atomio_types::{ExtentList, Result};

/// Generator for the mpi-tile-io pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileWorkload {
    /// Tiles along X (columns of the process grid).
    pub nr_tiles_x: u64,
    /// Tiles along Y (rows of the process grid).
    pub nr_tiles_y: u64,
    /// Tile width in elements.
    pub sz_tile_x: u64,
    /// Tile height in elements.
    pub sz_tile_y: u64,
    /// Element size in bytes.
    pub sz_element: u64,
    /// Ghost-cell overlap along X, in elements.
    pub overlap_x: u64,
    /// Ghost-cell overlap along Y, in elements.
    pub overlap_y: u64,
}

impl TileWorkload {
    /// Validates and builds a workload description.
    pub fn new(
        nr_tiles_x: u64,
        nr_tiles_y: u64,
        sz_tile_x: u64,
        sz_tile_y: u64,
        sz_element: u64,
        overlap_x: u64,
        overlap_y: u64,
    ) -> Self {
        assert!(nr_tiles_x > 0 && nr_tiles_y > 0);
        assert!(sz_tile_x > 0 && sz_tile_y > 0 && sz_element > 0);
        assert!(
            overlap_x < sz_tile_x && overlap_y < sz_tile_y,
            "overlap must be smaller than the tile"
        );
        TileWorkload {
            nr_tiles_x,
            nr_tiles_y,
            sz_tile_x,
            sz_tile_y,
            sz_element,
            overlap_x,
            overlap_y,
        }
    }

    /// Number of processes (one per tile).
    pub fn processes(&self) -> usize {
        (self.nr_tiles_x * self.nr_tiles_y) as usize
    }

    /// Global array width in elements (mpi-tile-io geometry: tiles
    /// shifted by `sz_tile − overlap`).
    pub fn array_x(&self) -> u64 {
        self.nr_tiles_x * (self.sz_tile_x - self.overlap_x) + self.overlap_x
    }

    /// Global array height in elements.
    pub fn array_y(&self) -> u64 {
        self.nr_tiles_y * (self.sz_tile_y - self.overlap_y) + self.overlap_y
    }

    /// Total dataset size in bytes.
    pub fn dataset_bytes(&self) -> u64 {
        self.array_x() * self.array_y() * self.sz_element
    }

    /// Bytes each process transfers per write.
    pub fn bytes_per_process(&self) -> u64 {
        self.sz_tile_x * self.sz_tile_y * self.sz_element
    }

    /// The tile grid position of `rank` (row-major).
    pub fn tile_of(&self, rank: usize) -> (u64, u64) {
        let rank = rank as u64;
        assert!(rank < self.nr_tiles_x * self.nr_tiles_y);
        (rank % self.nr_tiles_x, rank / self.nr_tiles_x)
    }

    /// The MPI subarray datatype describing `rank`'s tile within the
    /// global array — what mpi-tile-io passes to `MPI_File_set_view`.
    pub fn filetype(&self, rank: usize) -> Result<Datatype> {
        let (tx, ty) = self.tile_of(rank);
        let start_x = tx * (self.sz_tile_x - self.overlap_x);
        let start_y = ty * (self.sz_tile_y - self.overlap_y);
        Datatype::bytes(self.sz_element)?.subarray(
            &[self.array_y(), self.array_x()],
            &[self.sz_tile_y, self.sz_tile_x],
            &[start_y, start_x],
        )
    }

    /// `rank`'s file view.
    pub fn view(&self, rank: usize) -> Result<FileView> {
        FileView::new(0, self.sz_element, self.filetype(rank)?)
    }

    /// `rank`'s flattened file footprint.
    pub fn extents_for(&self, rank: usize) -> ExtentList {
        self.filetype(rank).expect("validated geometry").flatten()
    }

    /// True when ghost cells make neighbouring tiles overlap.
    pub fn has_overlap(&self) -> bool {
        (self.overlap_x > 0 && self.nr_tiles_x > 1) || (self.overlap_y > 0 && self.nr_tiles_y > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_mpi_tile_io() {
        // 2×2 grid of 4×4 tiles, 1-element overlap: array is 7×7.
        let w = TileWorkload::new(2, 2, 4, 4, 8, 1, 1);
        assert_eq!(w.array_x(), 7);
        assert_eq!(w.array_y(), 7);
        assert_eq!(w.processes(), 4);
        assert_eq!(w.dataset_bytes(), 49 * 8);
        assert_eq!(w.bytes_per_process(), 16 * 8);
        assert!(w.has_overlap());
    }

    #[test]
    fn tile_positions_row_major() {
        let w = TileWorkload::new(3, 2, 4, 4, 1, 0, 0);
        assert_eq!(w.tile_of(0), (0, 0));
        assert_eq!(w.tile_of(2), (2, 0));
        assert_eq!(w.tile_of(3), (0, 1));
        assert_eq!(w.tile_of(5), (2, 1));
    }

    #[test]
    fn extents_are_row_runs() {
        let w = TileWorkload::new(2, 1, 2, 2, 4, 0, 0);
        // Array 4×2 elements of 4 bytes; rank 1's tile starts at x=2.
        let e = w.extents_for(1);
        assert_eq!(
            e.ranges()
                .iter()
                .map(|r| (r.offset, r.len))
                .collect::<Vec<_>>(),
            vec![(8, 8), (24, 8)]
        );
        assert_eq!(e.total_len(), w.bytes_per_process());
    }

    #[test]
    fn no_overlap_means_disjoint_tiles() {
        let w = TileWorkload::new(3, 3, 4, 4, 8, 0, 0);
        for a in 0..w.processes() {
            for b in (a + 1)..w.processes() {
                assert!(
                    !w.extents_for(a).overlaps(&w.extents_for(b)),
                    "tiles {a} and {b} overlap"
                );
            }
        }
        assert!(!w.has_overlap());
        // Tiles exactly tile the dataset.
        let union = (0..w.processes())
            .map(|r| w.extents_for(r))
            .fold(ExtentList::new(), |acc, e| acc.union(&e));
        assert_eq!(union.total_len(), w.dataset_bytes());
    }

    #[test]
    fn ghost_cells_overlap_neighbours() {
        let w = TileWorkload::new(2, 2, 4, 4, 8, 2, 2);
        // Horizontally adjacent ranks share a 2-column border.
        let left = w.extents_for(0);
        let right = w.extents_for(1);
        let shared = left.intersection(&right);
        assert_eq!(shared.total_len(), 2 * 4 * 8, "2 cols × 4 rows × 8B");
        // Diagonal neighbours share the 2×2 corner.
        let diag = w.extents_for(3);
        assert_eq!(left.intersection(&diag).total_len(), 2 * 2 * 8);
        // Every rank still writes its full tile.
        for r in 0..4 {
            assert_eq!(w.extents_for(r).total_len(), w.bytes_per_process());
        }
    }

    #[test]
    fn union_covers_whole_array_with_overlap() {
        let w = TileWorkload::new(3, 2, 5, 4, 2, 1, 1);
        let union = (0..w.processes())
            .map(|r| w.extents_for(r))
            .fold(ExtentList::new(), |acc, e| acc.union(&e));
        assert_eq!(union.total_len(), w.dataset_bytes());
        assert_eq!(union.range_count(), 1, "tiles cover the array gaplessly");
    }

    #[test]
    fn view_maps_linear_buffer_onto_tile() {
        let w = TileWorkload::new(2, 1, 2, 2, 4, 0, 0);
        let v = w.view(1).unwrap();
        let e = v.extents_for(0, w.bytes_per_process()).unwrap();
        assert_eq!(e, w.extents_for(1));
    }

    #[test]
    #[should_panic(expected = "overlap must be smaller")]
    fn overlap_larger_than_tile_rejected() {
        let _ = TileWorkload::new(2, 2, 4, 4, 8, 4, 0);
    }
}
