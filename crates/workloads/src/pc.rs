//! Producer–consumer pipelines over snapshots: the paper's §VII
//! future-work scenario ("the output of simulations is concurrently used
//! as the input of visualizations").
//!
//! * **Versioned pipeline** — the producer publishes one snapshot per
//!   iteration through the versioning store; consumers read *specific
//!   versions* concurrently with ongoing production. Nobody blocks
//!   anybody: the producer never waits for readers, and readers never
//!   see a half-written iteration.
//! * **Locked pipeline** — the classical alternative on a mutable file:
//!   the producer takes an exclusive whole-file lock per iteration, and
//!   consumers take shared locks to read a consistent state. Producer
//!   and consumers serialize against each other.

use atomio_core::Blob;
use atomio_pfs::{LockKind, PfsFile};
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::SimClock;
use atomio_types::stamp::WriteStamp;
use atomio_types::{ByteRange, ClientId, ExtentList, VersionId};
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

/// Parameters of the pipeline experiment.
#[derive(Debug, Clone, Copy)]
pub struct PcConfig {
    /// Snapshots the producer publishes.
    pub iterations: u64,
    /// Bytes per snapshot.
    pub payload_bytes: u64,
    /// Concurrent consumers.
    pub consumers: usize,
}

/// Measured outcome of a pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct PcOutcome {
    /// Total virtual time for the producer to finish all iterations.
    pub producer_time: Duration,
    /// Total virtual time until the last consumer finished.
    pub total_time: Duration,
    /// Iterations whose data every consumer read back bit-exact.
    pub verified_iterations: u64,
}

/// Runs the versioned pipeline on a blob.
pub fn run_versioned(clock: &SimClock, blob: &Blob, cfg: PcConfig) -> PcOutcome {
    let producer_stamp = |iter: u64| WriteStamp::new(ClientId::new(0), iter);
    let extents = ExtentList::single(ByteRange::new(0, cfg.payload_bytes));
    let start = clock.now();
    let producer_done = parking_lot::Mutex::new(None::<Duration>);
    let verified = std::sync::atomic::AtomicU64::new(0);

    let n = cfg.consumers + 1;
    run_actors_on(clock, n, |actor, p| {
        if actor == 0 {
            // Producer: one snapshot per iteration, back to back.
            for iter in 0..cfg.iterations {
                let payload = Bytes::from(producer_stamp(iter).payload_for(&extents));
                blob.write_list(p, &extents, payload).expect("write");
            }
            *producer_done.lock() = Some(clock.now() - start);
        } else {
            // Consumer: follow versions 1..=iterations as they publish,
            // reading each one while later ones are being produced.
            for iter in 0..cfg.iterations {
                let version = VersionId::new(iter + 1);
                blob.version_manager()
                    .wait_published(p, version)
                    .expect("wait_published");
                let data = blob.read_at(p, version, &extents).expect("read");
                if producer_stamp(iter).matches(0, &data) {
                    verified.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    });
    let total_time = clock.now() - start;
    let producer_time = producer_done.lock().expect("producer ran");
    PcOutcome {
        producer_time,
        total_time,
        verified_iterations: verified.load(std::sync::atomic::Ordering::Relaxed)
            / cfg.consumers.max(1) as u64,
    }
}

/// Runs the locked pipeline on a PFS file.
pub fn run_locked(clock: &SimClock, file: &Arc<PfsFile>, cfg: PcConfig) -> PcOutcome {
    let producer_stamp = |iter: u64| WriteStamp::new(ClientId::new(0), iter);
    let extents = ExtentList::single(ByteRange::new(0, cfg.payload_bytes));
    let start = clock.now();
    let producer_done = parking_lot::Mutex::new(None::<Duration>);
    let verified = std::sync::atomic::AtomicU64::new(0);
    let published = std::sync::atomic::AtomicU64::new(0);

    let n = cfg.consumers + 1;
    run_actors_on(clock, n, |actor, p| {
        if actor == 0 {
            for iter in 0..cfg.iterations {
                let payload = producer_stamp(iter).payload_for(&extents);
                let h = file.locks().lock(
                    p,
                    ClientId::new(0),
                    ByteRange::new(0, cfg.payload_bytes),
                    LockKind::Exclusive,
                );
                file.pwrite(p, 0, &payload).expect("write");
                file.locks().unlock(p, h);
                published.store(iter + 1, std::sync::atomic::Ordering::SeqCst);
            }
            *producer_done.lock() = Some(clock.now() - start);
        } else {
            for iter in 0..cfg.iterations {
                // Wait until iteration `iter` has been produced, then
                // read under a shared lock. Unlike snapshots, the reader
                // may observe a *later* iteration — the data raced away.
                p.poll_until(|| {
                    (published.load(std::sync::atomic::Ordering::SeqCst) > iter).then_some(())
                });
                let h = file.locks().lock(
                    p,
                    ClientId::new(1 + actor as u64),
                    ByteRange::new(0, cfg.payload_bytes),
                    LockKind::Shared,
                );
                let data = file.pread(p, 0, cfg.payload_bytes).expect("read");
                file.locks().unlock(p, h);
                if producer_stamp(iter).matches(0, &data) {
                    verified.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    });
    let total_time = clock.now() - start;
    let producer_time = producer_done.lock().expect("producer ran");
    PcOutcome {
        producer_time,
        total_time,
        verified_iterations: verified.load(std::sync::atomic::Ordering::Relaxed)
            / cfg.consumers.max(1) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_core::{Store, StoreConfig};
    use atomio_pfs::ParallelFs;
    use atomio_simgrid::{CostModel, Metrics};

    fn cfg() -> PcConfig {
        PcConfig {
            iterations: 8,
            payload_bytes: 64 * 1024,
            consumers: 3,
        }
    }

    #[test]
    fn versioned_pipeline_verifies_every_iteration() {
        let store = Store::new(
            StoreConfig::default()
                .with_zero_cost()
                .with_chunk_size(16 * 1024)
                .with_data_providers(4),
        );
        let blob = store.create_blob();
        let clock = SimClock::new();
        let out = run_versioned(&clock, &blob, cfg());
        // Snapshot isolation: every consumer saw every iteration intact.
        assert_eq!(out.verified_iterations, 8);
    }

    #[test]
    fn locked_pipeline_loses_iterations_to_races() {
        let fs = ParallelFs::new(4, CostModel::zero(), Metrics::new());
        let file = Arc::new(fs.create_file(16 * 1024));
        let clock = SimClock::new();
        let out = run_locked(&clock, &file, cfg());
        // The mutable file only ever holds the latest iteration; slow
        // consumers miss earlier ones (that is the point of the
        // comparison — data races away without versioning). All we can
        // assert deterministically is that verification is not total
        // when production outpaces consumption, and never exceeds the
        // iteration count.
        assert!(out.verified_iterations <= 8);
    }

    #[test]
    fn versioned_producer_is_not_blocked_by_consumers() {
        let mk = |consumers| {
            let store = Store::new(
                StoreConfig::default()
                    .with_cost(CostModel::grid5000())
                    .with_chunk_size(16 * 1024)
                    .with_data_providers(4),
            );
            let blob = store.create_blob();
            let clock = SimClock::new();
            run_versioned(
                &clock,
                &blob,
                PcConfig {
                    iterations: 4,
                    payload_bytes: 256 * 1024,
                    consumers,
                },
            )
            .producer_time
        };
        let alone = mk(0);
        let with_readers = mk(4);
        // Reads hit the same providers' disks, so some slowdown is
        // physical — and since metadata reads went batched, all four
        // readers resolve their trees near-instantly after a publication
        // and their chunk fetches land on the disks as one dense burst
        // (~2.1× here, vs ~1.5× when per-node metadata walks staggered
        // them). What versioning rules out is *lock-out*: four readers
        // serializing the producer behind them would cost ~5×.
        let ratio = with_readers.as_secs_f64() / alone.as_secs_f64();
        assert!(ratio < 2.5, "producer slowed {ratio:.2}x by readers");
    }

    #[test]
    fn locked_producer_is_blocked_by_consumers() {
        let mk = |consumers| {
            let fs = ParallelFs::new(4, CostModel::grid5000(), Metrics::new());
            let file = Arc::new(fs.create_file(16 * 1024));
            let clock = SimClock::new();
            run_locked(
                &clock,
                &file,
                PcConfig {
                    iterations: 4,
                    payload_bytes: 256 * 1024,
                    consumers,
                },
            )
            .producer_time
        };
        let alone = mk(0);
        let with_readers = mk(4);
        let ratio = with_readers.as_secs_f64() / alone.as_secs_f64();
        assert!(
            ratio > 1.5,
            "expected lock interference on the producer, got {ratio:.2}x"
        );
    }
}
