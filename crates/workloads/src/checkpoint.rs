//! Iterative checkpoint dumps: the "simulation writes its state every
//! iteration" pattern from the paper's introduction.
//!
//! The simulated domain is a 1-D chain of cells split into slabs, one
//! per rank, extended by `halo` ghost cells on each side (clipped at the
//! domain boundary). Every iteration, every rank dumps its extended slab
//! to the shared checkpoint file — neighbouring slabs overlap in the
//! halo regions, so every dump is a concurrent overlapping write.

use atomio_types::{ByteRange, ExtentList};

/// Generator for halo-extended slab checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointWorkload {
    /// Number of ranks.
    pub ranks: usize,
    /// Cells per rank (excluding halo).
    pub cells_per_rank: u64,
    /// Bytes per cell.
    pub cell_size: u64,
    /// Ghost cells on each side of a slab.
    pub halo: u64,
}

impl CheckpointWorkload {
    /// Validates and builds a workload.
    pub fn new(ranks: usize, cells_per_rank: u64, cell_size: u64, halo: u64) -> Self {
        assert!(ranks > 0 && cells_per_rank > 0 && cell_size > 0);
        assert!(
            halo <= cells_per_rank,
            "halo larger than a slab makes no physical sense"
        );
        CheckpointWorkload {
            ranks,
            cells_per_rank,
            cell_size,
            halo,
        }
    }

    /// Total domain cells.
    pub fn domain_cells(&self) -> u64 {
        self.ranks as u64 * self.cells_per_rank
    }

    /// Checkpoint file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.domain_cells() * self.cell_size
    }

    /// The (single, contiguous) extent rank `r` dumps: its slab plus
    /// halos, clipped to the domain.
    pub fn extents_for(&self, rank: usize) -> ExtentList {
        assert!(rank < self.ranks);
        let r = rank as u64;
        let lo_cell = (r * self.cells_per_rank).saturating_sub(self.halo);
        let hi_cell = ((r + 1) * self.cells_per_rank + self.halo).min(self.domain_cells());
        ExtentList::single(ByteRange::from_bounds(
            lo_cell * self.cell_size,
            hi_cell * self.cell_size,
        ))
    }

    /// Bytes rank `r` transfers per iteration.
    pub fn bytes_for(&self, rank: usize) -> u64 {
        self.extents_for(rank).total_len()
    }

    /// True when halos make neighbouring dumps overlap.
    pub fn has_overlap(&self) -> bool {
        self.halo > 0 && self.ranks > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_without_halo_tile_exactly() {
        let w = CheckpointWorkload::new(4, 100, 8, 0);
        let mut union = ExtentList::new();
        for r in 0..4 {
            let e = w.extents_for(r);
            assert_eq!(e.total_len(), 800);
            assert!(union.intersection(&e).is_empty());
            union = union.union(&e);
        }
        assert_eq!(union.total_len(), w.file_bytes());
        assert!(!w.has_overlap());
    }

    #[test]
    fn halos_overlap_neighbours_only() {
        let w = CheckpointWorkload::new(4, 100, 8, 10);
        let e1 = w.extents_for(1);
        let e2 = w.extents_for(2);
        let e3 = w.extents_for(3);
        // Adjacent slabs share 2·halo cells (each extends `halo` into the
        // other's territory).
        assert_eq!(e1.intersection(&e2).total_len(), 2 * 10 * 8);
        // Non-adjacent slabs stay disjoint.
        assert!(e1.intersection(&e3).is_empty());
        assert!(w.has_overlap());
    }

    #[test]
    fn boundary_slabs_clip_at_domain_edges() {
        let w = CheckpointWorkload::new(3, 100, 4, 20);
        let first = w.extents_for(0);
        let last = w.extents_for(2);
        assert_eq!(first.covering_range().offset, 0, "no halo below zero");
        assert_eq!(
            last.covering_range().end(),
            w.file_bytes(),
            "no halo past the domain"
        );
        // Interior slab has both halos.
        assert_eq!(w.bytes_for(1), (100 + 40) * 4);
        // Edge slabs have one halo.
        assert_eq!(w.bytes_for(0), (100 + 20) * 4);
        assert_eq!(w.bytes_for(2), (100 + 20) * 4);
    }

    #[test]
    #[should_panic(expected = "halo larger")]
    fn oversized_halo_rejected() {
        let _ = CheckpointWorkload::new(2, 10, 4, 11);
    }
}
