//! Iterative checkpoint dumps: the "simulation writes its state every
//! iteration" pattern from the paper's introduction.
//!
//! The simulated domain is a 1-D chain of cells split into slabs, one
//! per rank, extended by `halo` ghost cells on each side (clipped at the
//! domain boundary). Every iteration, every rank dumps its extended slab
//! to the shared checkpoint file — neighbouring slabs overlap in the
//! halo regions, so every dump is a concurrent overlapping write.

use atomio_core::Blob;
use atomio_mpiio::comm::Communicator;
use atomio_simgrid::clock::run_actors_on;
use atomio_simgrid::{CostModel, SimClock};
use atomio_types::stamp::WriteStamp;
use atomio_types::{ByteRange, ClientId, ExtentList};
use bytes::Bytes;
use std::time::Duration;

/// Generator for halo-extended slab checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointWorkload {
    /// Number of ranks.
    pub ranks: usize,
    /// Cells per rank (excluding halo).
    pub cells_per_rank: u64,
    /// Bytes per cell.
    pub cell_size: u64,
    /// Ghost cells on each side of a slab.
    pub halo: u64,
}

impl CheckpointWorkload {
    /// Validates and builds a workload.
    pub fn new(ranks: usize, cells_per_rank: u64, cell_size: u64, halo: u64) -> Self {
        assert!(ranks > 0 && cells_per_rank > 0 && cell_size > 0);
        assert!(
            halo <= cells_per_rank,
            "halo larger than a slab makes no physical sense"
        );
        CheckpointWorkload {
            ranks,
            cells_per_rank,
            cell_size,
            halo,
        }
    }

    /// Total domain cells.
    pub fn domain_cells(&self) -> u64 {
        self.ranks as u64 * self.cells_per_rank
    }

    /// Checkpoint file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.domain_cells() * self.cell_size
    }

    /// The (single, contiguous) extent rank `r` dumps: its slab plus
    /// halos, clipped to the domain.
    pub fn extents_for(&self, rank: usize) -> ExtentList {
        assert!(rank < self.ranks);
        let r = rank as u64;
        let lo_cell = (r * self.cells_per_rank).saturating_sub(self.halo);
        let hi_cell = ((r + 1) * self.cells_per_rank + self.halo).min(self.domain_cells());
        ExtentList::single(ByteRange::from_bounds(
            lo_cell * self.cell_size,
            hi_cell * self.cell_size,
        ))
    }

    /// Bytes rank `r` transfers per iteration.
    pub fn bytes_for(&self, rank: usize) -> u64 {
        self.extents_for(rank).total_len()
    }

    /// True when halos make neighbouring dumps overlap.
    pub fn has_overlap(&self) -> bool {
        self.halo > 0 && self.ranks > 1
    }
}

/// Outcome of [`run_checkpoint_burst`]: the perceived (barrier-ack)
/// latency of an iterative checkpoint run versus its end-to-end
/// durability time.
#[derive(Debug, Clone, Copy)]
pub struct BurstOutcome {
    /// Virtual time until the last iteration's barrier acked (every rank
    /// past its final write).
    pub ack_elapsed: Duration,
    /// Virtual time until every logged write had drained to the backend
    /// (equals [`BurstOutcome::ack_elapsed`] in `CommitMode::Direct`,
    /// where writes are durable when they return).
    pub durable_elapsed: Duration,
    /// Worst single-iteration barrier-to-barrier ack latency across all
    /// ranks — the stall a simulation's compute loop actually perceives.
    pub iter_ack_max: Duration,
    /// Payload bytes written over the whole run.
    pub total_bytes: u64,
    /// Iterations executed.
    pub iterations: u64,
}

impl BurstOutcome {
    /// How far durability trails the last ack: the drain lag the
    /// write-ahead log trades for its memory-speed barriers.
    pub fn drain_lag(&self) -> Duration {
        self.durable_elapsed.saturating_sub(self.ack_elapsed)
    }
}

/// Drives `iterations` checkpoint dumps of `workload` against `blob`,
/// with an MPI-style barrier between iterations, and measures barrier-ack
/// latency versus durability lag.
///
/// Every rank runs as one virtual-clock actor; when the blob runs in
/// `CommitMode::Logged` an extra actor runs [`Blob::wal_drain`] as the
/// background drainer, and rank 0 finishes with a [`Blob::wal_sync`]
/// durability barrier before closing the log. The inter-iteration
/// barrier itself is free (zero-cost communicator), so the measured ack
/// latency isolates the write path — the quantity the E8 ablation
/// compares across commit modes.
pub fn run_checkpoint_burst(
    clock: &SimClock,
    blob: &Blob,
    workload: &CheckpointWorkload,
    iterations: u64,
) -> BurstOutcome {
    assert!(iterations > 0, "need at least one iteration");
    let n = workload.ranks;
    let logged = blob.wal().is_some();
    let actors = n + usize::from(logged);
    let comm = Communicator::new(n, CostModel::zero());
    let start = clock.now();
    let results = run_actors_on(clock, actors, |i, p| {
        if i == n {
            // The background drainer (Logged mode only): replays log
            // entries until rank 0 closes the log after its final sync.
            blob.wal_drain(p).expect("drain failed");
            return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        }
        let extents = workload.extents_for(i);
        let mut iter_ack_max = Duration::ZERO;
        for iter in 0..iterations {
            comm.barrier(p);
            let t0 = p.now();
            let stamp = WriteStamp::new(ClientId::new(i as u64), iter);
            let payload = Bytes::from(stamp.payload_for(&extents));
            blob.write_list(p, &extents, payload)
                .unwrap_or_else(|e| panic!("rank {i} iteration {iter} failed: {e}"));
            comm.barrier(p);
            iter_ack_max = iter_ack_max.max(p.now() - t0);
        }
        let ack_done = p.now() - start;
        let durable_done = if i == 0 {
            blob.wal_sync(p).expect("drain reported a replay failure");
            if let Some(wal) = blob.wal() {
                wal.close();
            }
            p.now() - start
        } else {
            ack_done
        };
        (iter_ack_max, ack_done, durable_done)
    });
    let ranks = &results[..n];
    let ack_elapsed = ranks.iter().map(|r| r.1).max().unwrap();
    BurstOutcome {
        ack_elapsed,
        durable_elapsed: ranks.iter().map(|r| r.2).max().unwrap().max(ack_elapsed),
        iter_ack_max: ranks.iter().map(|r| r.0).max().unwrap(),
        total_bytes: iterations * (0..n).map(|r| workload.bytes_for(r)).sum::<u64>(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_without_halo_tile_exactly() {
        let w = CheckpointWorkload::new(4, 100, 8, 0);
        let mut union = ExtentList::new();
        for r in 0..4 {
            let e = w.extents_for(r);
            assert_eq!(e.total_len(), 800);
            assert!(union.intersection(&e).is_empty());
            union = union.union(&e);
        }
        assert_eq!(union.total_len(), w.file_bytes());
        assert!(!w.has_overlap());
    }

    #[test]
    fn halos_overlap_neighbours_only() {
        let w = CheckpointWorkload::new(4, 100, 8, 10);
        let e1 = w.extents_for(1);
        let e2 = w.extents_for(2);
        let e3 = w.extents_for(3);
        // Adjacent slabs share 2·halo cells (each extends `halo` into the
        // other's territory).
        assert_eq!(e1.intersection(&e2).total_len(), 2 * 10 * 8);
        // Non-adjacent slabs stay disjoint.
        assert!(e1.intersection(&e3).is_empty());
        assert!(w.has_overlap());
    }

    #[test]
    fn boundary_slabs_clip_at_domain_edges() {
        let w = CheckpointWorkload::new(3, 100, 4, 20);
        let first = w.extents_for(0);
        let last = w.extents_for(2);
        assert_eq!(first.covering_range().offset, 0, "no halo below zero");
        assert_eq!(
            last.covering_range().end(),
            w.file_bytes(),
            "no halo past the domain"
        );
        // Interior slab has both halos.
        assert_eq!(w.bytes_for(1), (100 + 40) * 4);
        // Edge slabs have one halo.
        assert_eq!(w.bytes_for(0), (100 + 20) * 4);
        assert_eq!(w.bytes_for(2), (100 + 20) * 4);
    }

    #[test]
    #[should_panic(expected = "halo larger")]
    fn oversized_halo_rejected() {
        let _ = CheckpointWorkload::new(2, 10, 4, 11);
    }

    mod burst {
        use super::super::*;
        use atomio_core::{CommitMode, Store, StoreConfig};

        fn store(mode: CommitMode, cost: CostModel) -> Store {
            Store::new(
                StoreConfig::default()
                    .with_cost(cost)
                    .with_chunk_size(4096)
                    .with_data_providers(4)
                    .with_meta_shards(2)
                    .with_commit_mode(mode),
            )
        }

        #[test]
        fn logged_acks_faster_and_drains_to_the_same_bytes() {
            // Disjoint slabs (halo 0) make the final state deterministic,
            // so Direct and Logged runs must land bit-identical bytes.
            let w = CheckpointWorkload::new(4, 512, 8, 0);
            let iters = 3u64;

            let run = |mode| {
                let s = store(mode, CostModel::grid5000());
                let blob = s.create_blob();
                let clock = SimClock::new();
                let out = run_checkpoint_burst(&clock, &blob, &w, iters);
                let state = atomio_simgrid::clock::run_actors_on(&clock, 1, |_, p| {
                    blob.read(p, 0, w.file_bytes()).unwrap()
                })
                .pop()
                .unwrap();
                (out, state)
            };
            let (direct, direct_state) = run(CommitMode::Direct);
            let (logged, logged_state) = run(CommitMode::Logged);

            assert_eq!(direct_state, logged_state, "drained state must match");
            assert_eq!(direct.total_bytes, logged.total_bytes);
            assert!(
                logged.iter_ack_max < direct.iter_ack_max,
                "logged barrier ack {:?} not faster than direct {:?}",
                logged.iter_ack_max,
                direct.iter_ack_max
            );
            // Direct is durable at ack; Logged trades a drain lag for it.
            assert_eq!(direct.drain_lag(), Duration::ZERO);
            assert!(logged.durable_elapsed >= logged.ack_elapsed);
        }

        #[test]
        fn burst_handles_overlapping_halos() {
            let w = CheckpointWorkload::new(3, 256, 8, 16);
            assert!(w.has_overlap());
            let s = store(CommitMode::Logged, CostModel::zero());
            let blob = s.create_blob();
            let clock = SimClock::new();
            let out = run_checkpoint_burst(&clock, &blob, &w, 2);
            assert_eq!(out.iterations, 2);
            // Every dump drained: 3 ranks × 2 iterations.
            assert_eq!(s.metrics().counter("wal.drained").get(), 6);
            assert_eq!(
                s.metrics().counter("core.writes").get(),
                6,
                "drainer replayed each entry exactly once"
            );
        }
    }
}
