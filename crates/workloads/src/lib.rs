//! # atomio-workloads
//!
//! Workload generators reproducing the paper's access patterns, plus the
//! **atomicity verifier** that decides whether a final file state could
//! have been produced by *some* serial order of the concurrent writes —
//! the MPI atomic-mode guarantee.
//!
//! Workloads:
//! * [`overlap::OverlapWorkload`] — the §VI series-1 stress pattern:
//!   every client writes many non-contiguous regions deliberately
//!   overlapping its neighbours'.
//! * [`tile::TileWorkload`] — a faithful re-implementation of the
//!   mpi-tile-io benchmark's access pattern (2-D tiles with ghost-cell
//!   overlap), the §VI series-2 benchmark.
//! * [`checkpoint::CheckpointWorkload`] — iterative slab dumps with halo
//!   overlap, the "simulation dumps its state each iteration" pattern
//!   from the paper's introduction.
//! * [`pc`] — producer/consumer pipelines over snapshots (the §VII
//!   future-work scenario).
//!
//! [`harness`] drives any workload against any ADIO driver under the
//! virtual clock and reports throughput — shared by the integration
//! tests and the experiment binaries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod harness;
pub mod overlap;
pub mod pc;
pub mod tile;
pub mod verify;

pub use checkpoint::{run_checkpoint_burst, BurstOutcome, CheckpointWorkload};
pub use harness::{run_checkpoint_with_gc, run_write_round, GcLoadOutcome, GcMode, RoundOutcome};
pub use overlap::OverlapWorkload;
pub use tile::TileWorkload;
pub use verify::{check_serializable, check_serializable_from, Violation, WriteRecord};
