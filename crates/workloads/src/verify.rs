//! The atomicity verifier: is a final file state serializable?
//!
//! MPI atomic mode requires that concurrent (possibly non-contiguous)
//! writes behave as if executed in *some* serial order. Given the final
//! bytes and the set of writes (each tagged with a position-dependent
//! [`WriteStamp`] pattern), the verifier:
//!
//! 1. cuts the file into maximal segments with a constant candidate set
//!    (the writes covering every byte of the segment);
//! 2. attributes each segment to the unique candidate whose stamp
//!    matches all of its bytes — a segment matching *no* candidate in
//!    full is a torn (interleaved) write;
//! 3. derives the ordering constraints "every other candidate of the
//!    segment wrote before the winner" and checks them for consistency
//!    (acyclicity). A cycle means no serial order can explain the state.
//!
//! The result is either a witness serial order or a precise
//! [`Violation`].

use atomio_types::stamp::WriteStamp;
use atomio_types::{ByteRange, ExtentList};
use std::collections::{HashMap, HashSet, VecDeque};

/// One concurrent write, as the verifier sees it.
#[derive(Debug, Clone)]
pub struct WriteRecord {
    /// The stamp whose pattern the write's payload carried.
    pub stamp: WriteStamp,
    /// The write's file footprint.
    pub extents: ExtentList,
}

impl WriteRecord {
    /// Convenience constructor.
    pub fn new(stamp: WriteStamp, extents: ExtentList) -> Self {
        WriteRecord { stamp, extents }
    }
}

/// Why a final state is not MPI-atomic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A segment covered by one or more writes matches none of them in
    /// full — bytes from different writes interleave inside it.
    TornSegment {
        /// The smallest segment exhibiting the tear.
        range: ByteRange,
        /// Indices (into the record slice) of the writes covering it.
        candidates: Vec<usize>,
    },
    /// A byte range no write covers holds non-zero data.
    DirtyHole {
        /// The offending range.
        range: ByteRange,
    },
    /// Pairwise winners imply a cyclic order — no serial schedule exists.
    CyclicOrder {
        /// Indices of writes involved in the cycle (one strongly
        /// connected component).
        writes: Vec<usize>,
    },
}

/// Checks whether `final_bytes` (the whole file, starting at offset 0)
/// is a serializable outcome of `writes` over an initially-zero file.
///
/// On success returns a witness order (indices into `writes`, earliest
/// first) such that replaying the writes in that order reproduces
/// `final_bytes`.
pub fn check_serializable(
    final_bytes: &[u8],
    writes: &[WriteRecord],
) -> Result<Vec<usize>, Violation> {
    check_serializable_from(None, final_bytes, writes)
}

/// Like [`check_serializable`], but over an arbitrary known initial
/// state instead of a zero file — byte ranges no write covers must match
/// `base` (this is how multi-round workloads verify every round, not
/// just the first).
pub fn check_serializable_from(
    base: Option<&[u8]>,
    final_bytes: &[u8],
    writes: &[WriteRecord],
) -> Result<Vec<usize>, Violation> {
    if let Some(base) = base {
        assert!(
            base.len() >= final_bytes.len(),
            "base state must cover the observed bytes"
        );
    }
    let file_len = final_bytes.len() as u64;

    // 1. Segment the file at every extent boundary.
    let mut cuts: Vec<u64> = vec![0, file_len];
    for w in writes {
        for r in &w.extents {
            cuts.push(r.offset.min(file_len));
            cuts.push(r.end().min(file_len));
        }
    }
    cuts.sort_unstable();
    cuts.dedup();

    // 2. Attribute each segment; collect ordering constraints.
    // edges[x] contains y  ⇔  x must precede y.
    let mut edges: HashMap<usize, HashSet<usize>> = HashMap::new();
    let mut winner_of_segment: Vec<(ByteRange, Option<usize>)> = Vec::new();
    for pair in cuts.windows(2) {
        let seg = ByteRange::from_bounds(pair[0], pair[1]);
        if seg.is_empty() {
            continue;
        }
        let candidates: Vec<usize> = writes
            .iter()
            .enumerate()
            .filter(|(_, w)| w.extents.contains(seg.offset))
            .map(|(i, _)| i)
            .collect();
        let data = &final_bytes[seg.offset as usize..seg.end() as usize];
        if candidates.is_empty() {
            let untouched = match base {
                Some(base) => data == &base[seg.offset as usize..seg.end() as usize],
                None => data.iter().all(|&b| b == 0),
            };
            if !untouched {
                return Err(Violation::DirtyHole { range: seg });
            }
            winner_of_segment.push((seg, None));
            continue;
        }
        let matching: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| writes[i].stamp.matches(seg.offset, data))
            .collect();
        if matching.is_empty() {
            return Err(Violation::TornSegment {
                range: seg,
                candidates,
            });
        }
        // Ordering constraints are only sound when the winner is
        // unambiguous. On tiny segments two stamps can coincide (a
        // 1-in-256 event per byte); then either candidate could have
        // written last and the segment constrains nothing — both
        // produce the same bytes there, so any witness still replays to
        // the observed state.
        if let [winner] = matching[..] {
            for &other in &candidates {
                if other != winner {
                    edges.entry(other).or_default().insert(winner);
                }
            }
            winner_of_segment.push((seg, Some(winner)));
        } else {
            winner_of_segment.push((seg, None));
        }
    }

    // 3. Topological sort (Kahn); a leftover residue is a cycle.
    let n = writes.len();
    let mut indegree = vec![0usize; n];
    for targets in edges.values() {
        for &t in targets {
            indegree[t] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(x) = queue.pop_front() {
        order.push(x);
        if let Some(targets) = edges.get(&x) {
            // Deterministic order: collect and sort.
            let mut ts: Vec<usize> = targets.iter().copied().collect();
            ts.sort_unstable();
            for t in ts {
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
    }
    if order.len() != n {
        let stuck: Vec<usize> = (0..n).filter(|i| !order.contains(i)).collect();
        return Err(Violation::CyclicOrder { writes: stuck });
    }
    Ok(order)
}

/// Replays `writes` in `order` over a zero file of `len` bytes — the
/// model the verifier's witness must reproduce (used by tests to
/// cross-check the verifier itself).
pub fn replay(len: usize, writes: &[WriteRecord], order: &[usize]) -> Vec<u8> {
    let mut out = vec![0u8; len];
    for &i in order {
        let w = &writes[i];
        for r in &w.extents {
            let end = (r.end() as usize).min(len);
            let start = (r.offset as usize).min(len);
            if start < end {
                w.stamp.fill_range(r.offset, &mut out[start..end]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_types::ClientId;

    fn rec(client: u64, pairs: &[(u64, u64)]) -> WriteRecord {
        WriteRecord::new(
            WriteStamp::new(ClientId::new(client), 0),
            ExtentList::from_pairs(pairs.iter().copied()),
        )
    }

    #[test]
    fn single_write_verifies() {
        let writes = vec![rec(0, &[(10, 20), (50, 10)])];
        let state = replay(100, &writes, &[0]);
        let order = check_serializable(&state, &writes).unwrap();
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn any_serial_order_verifies() {
        let writes = vec![rec(0, &[(0, 50)]), rec(1, &[(25, 50)]), rec(2, &[(40, 40)])];
        for order in [[0, 1, 2], [2, 1, 0], [1, 0, 2], [0, 2, 1]] {
            let state = replay(100, &writes, &order);
            let witness = check_serializable(&state, &writes)
                .unwrap_or_else(|v| panic!("order {order:?} rejected: {v:?}"));
            // The witness must reproduce the state.
            assert_eq!(replay(100, &writes, &witness), state, "order {order:?}");
        }
    }

    #[test]
    fn torn_write_detected() {
        let writes = vec![rec(0, &[(0, 40)]), rec(1, &[(0, 40)])];
        // Interleave: first half from writer 0, second half from writer 1
        // *within the fully-overlapped region* — no serial order does
        // that... actually [0,40) all overlapped: half-and-half is
        // torn only if the halves are not themselves segments. Both
        // writes cover exactly [0,40): one segment; mixed content.
        let mut state = replay(64, &writes, &[0]);
        let later = replay(64, &writes, &[1]);
        state[20..40].copy_from_slice(&later[20..40]);
        match check_serializable(&state, &writes) {
            Err(Violation::TornSegment { range, candidates }) => {
                assert_eq!(range, ByteRange::new(0, 40));
                assert_eq!(candidates, vec![0, 1]);
            }
            other => panic!("expected torn segment, got {other:?}"),
        }
    }

    #[test]
    fn pairwise_inconsistency_is_a_cycle() {
        // Writers A and B overlap in two disjoint segments; the state
        // shows A winning one and B the other — a 2-cycle.
        let writes = vec![rec(0, &[(0, 10), (20, 10)]), rec(1, &[(0, 10), (20, 10)])];
        let a = replay(32, &writes, &[1, 0]); // A wins everywhere
        let b = replay(32, &writes, &[0, 1]); // B wins everywhere
        let mut state = a.clone();
        state[20..30].copy_from_slice(&b[20..30]); // B wins segment 2
        match check_serializable(&state, &writes) {
            Err(Violation::CyclicOrder { writes: w }) => {
                assert_eq!(w, vec![0, 1]);
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn three_way_cycle_detected() {
        // A beats B, B beats C, C beats A in three pairwise-overlap
        // segments.
        let writes = vec![
            rec(0, &[(0, 10), (40, 10)]),  // A overlaps B at 0.., C at 40..
            rec(1, &[(0, 10), (20, 10)]),  // B overlaps C at 20..
            rec(2, &[(20, 10), (40, 10)]), // C
        ];
        let mut state = vec![0u8; 64];
        // Segment [0,10): A wins (B before A).
        writes[0].stamp.fill_range(0, &mut state[0..10]);
        // Segment [20,30): B wins (C before B).
        writes[1].stamp.fill_range(20, &mut state[20..30]);
        // Segment [40,50): C wins (A before C).
        writes[2].stamp.fill_range(40, &mut state[40..50]);
        match check_serializable(&state, &writes) {
            Err(Violation::CyclicOrder { writes: w }) => assert_eq!(w.len(), 3),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn dirty_hole_detected() {
        let writes = vec![rec(0, &[(0, 10)])];
        let mut state = replay(32, &writes, &[0]);
        state[20] = 0xFF;
        match check_serializable(&state, &writes) {
            Err(Violation::DirtyHole { range }) => assert!(range.contains(20)),
            other => panic!("expected dirty hole, got {other:?}"),
        }
    }

    #[test]
    fn partial_overlap_orders_correctly() {
        // B overwrites the middle of A: witness must place A before B.
        let writes = vec![rec(0, &[(0, 60)]), rec(1, &[(20, 20)])];
        let state = replay(64, &writes, &[0, 1]);
        let witness = check_serializable(&state, &writes).unwrap();
        assert_eq!(witness, vec![0, 1]);
        // And the reverse order produces the reverse witness.
        let state = replay(64, &writes, &[1, 0]);
        let witness = check_serializable(&state, &writes).unwrap();
        assert_eq!(replay(64, &writes, &witness), state);
    }

    #[test]
    fn non_overlapping_writes_any_order() {
        let writes = vec![rec(0, &[(0, 10)]), rec(1, &[(20, 10)]), rec(2, &[(40, 10)])];
        let state = replay(64, &writes, &[2, 0, 1]);
        let witness = check_serializable(&state, &writes).unwrap();
        assert_eq!(replay(64, &writes, &witness), state);
    }

    #[test]
    fn same_writer_multiple_ops_distinguished() {
        let w0 = WriteRecord::new(
            WriteStamp::new(ClientId::new(0), 0),
            ExtentList::from_pairs([(0u64, 20u64)]),
        );
        let w1 = WriteRecord::new(
            WriteStamp::new(ClientId::new(0), 1), // same client, next op
            ExtentList::from_pairs([(10u64, 20u64)]),
        );
        let writes = vec![w0, w1];
        let state = replay(40, &writes, &[0, 1]);
        let witness = check_serializable(&state, &writes).unwrap();
        assert_eq!(witness, vec![0, 1]);
    }

    #[test]
    fn base_state_supported() {
        use super::check_serializable_from;
        // Round 1 leaves arbitrary bytes; round 2's writes cover only a
        // part of the file. Against a zero base, the leftover bytes are
        // a violation; against the true base, the round verifies.
        let round1 = vec![rec(0, &[(0, 64)])];
        let base = replay(64, &round1, &[0]);
        let round2 = vec![rec(1, &[(16, 16)])];
        let mut state = base.clone();
        let w = &round2[0];
        for r in &w.extents {
            w.stamp
                .fill_range(r.offset, &mut state[r.offset as usize..r.end() as usize]);
        }
        assert!(matches!(
            check_serializable(&state, &round2),
            Err(Violation::DirtyHole { .. })
        ));
        let witness = check_serializable_from(Some(&base), &state, &round2).unwrap();
        assert_eq!(witness, vec![0]);
        // A corrupted untouched byte is still caught.
        let mut corrupted = state.clone();
        corrupted[60] ^= 1;
        assert!(matches!(
            check_serializable_from(Some(&base), &corrupted, &round2),
            Err(Violation::DirtyHole { .. })
        ));
    }

    #[test]
    fn empty_write_set_requires_zero_file() {
        assert!(check_serializable(&[0u8; 16], &[]).unwrap().is_empty());
        assert!(matches!(
            check_serializable(&[1u8; 16], &[]),
            Err(Violation::DirtyHole { .. })
        ));
    }

    #[test]
    fn extents_beyond_final_bytes_are_tolerated() {
        // A write extended the file but the caller only read a prefix:
        // boundaries get clamped.
        let writes = vec![rec(0, &[(0, 100)])];
        let state = replay(50, &writes, &[0]);
        let witness = check_serializable(&state, &writes).unwrap();
        assert_eq!(witness, vec![0]);
    }
}
