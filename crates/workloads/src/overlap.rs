//! The §VI series-1 stress pattern: concurrent non-contiguous writes
//! with deliberate overlap between neighbouring clients.
//!
//! Client `i` writes `regions_per_client` regions of `region_size`
//! bytes. Region `k` of client `i` starts at
//! `(k·N + i) · step` where `step = region_size · (1 − overlap)`:
//! with `overlap = 0` the regions tile the file exactly; as `overlap`
//! grows, each region overlaps its successor — the successor belonging
//! to the *next client* — so every client conflicts with its neighbours
//! in every region, "intentionally selected in such way as to generate a
//! large number of overlappings" (paper, §VI).

use atomio_types::{ByteRange, ExtentList};

/// Generator for the overlapping-regions stress workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapWorkload {
    /// Number of concurrent clients (MPI ranks).
    pub clients: usize,
    /// Non-contiguous regions each client writes.
    pub regions_per_client: usize,
    /// Bytes per region.
    pub region_size: u64,
    /// Overlap fraction numerator (overlap = num/den of a region).
    pub overlap_num: u64,
    /// Overlap fraction denominator.
    pub overlap_den: u64,
}

impl OverlapWorkload {
    /// A workload with an overlap fraction given as a rational in
    /// `[0, 1)`.
    pub fn new(
        clients: usize,
        regions_per_client: usize,
        region_size: u64,
        overlap_num: u64,
        overlap_den: u64,
    ) -> Self {
        assert!(clients > 0 && regions_per_client > 0 && region_size > 0);
        assert!(
            overlap_den > 0 && overlap_num < overlap_den,
            "overlap must be in [0,1)"
        );
        OverlapWorkload {
            clients,
            regions_per_client,
            region_size,
            overlap_num,
            overlap_den,
        }
    }

    /// Distance between consecutive region starts.
    pub fn step(&self) -> u64 {
        // region_size · (1 − overlap), at least 1 byte.
        (self.region_size * (self.overlap_den - self.overlap_num) / self.overlap_den).max(1)
    }

    /// The regions client `i` writes.
    pub fn extents_for(&self, client: usize) -> ExtentList {
        assert!(client < self.clients);
        let step = self.step();
        ExtentList::from_ranges((0..self.regions_per_client as u64).map(|k| {
            ByteRange::new(
                (k * self.clients as u64 + client as u64) * step,
                self.region_size,
            )
        }))
    }

    /// Bytes each client transfers.
    pub fn bytes_per_client(&self) -> u64 {
        self.regions_per_client as u64 * self.region_size
    }

    /// Total bytes transferred by the whole round.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_client() * self.clients as u64
    }

    /// One past the highest byte the workload touches.
    pub fn file_end(&self) -> u64 {
        ((self.regions_per_client as u64 - 1) * self.clients as u64 + self.clients as u64 - 1)
            * self.step()
            + self.region_size
    }

    /// True if any two clients' extent sets overlap (sanity knob for
    /// tests: zero overlap fraction ⇒ disjoint).
    pub fn has_conflicts(&self) -> bool {
        if self.clients < 2 {
            return false;
        }
        let a = self.extents_for(0);
        (1..self.clients).any(|i| a.overlaps(&self.extents_for(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_overlap_tiles_disjointly() {
        let w = OverlapWorkload::new(4, 8, 1024, 0, 2);
        let mut union = ExtentList::new();
        let mut total = 0;
        for c in 0..4 {
            let e = w.extents_for(c);
            assert_eq!(e.range_count(), 8);
            assert_eq!(e.total_len(), 8 * 1024);
            assert!(union.intersection(&e).is_empty(), "client {c} overlaps");
            union = union.union(&e);
            total += e.total_len();
        }
        assert!(!w.has_conflicts());
        assert_eq!(total, w.total_bytes());
        // Perfect tiling: the union is one contiguous run.
        assert_eq!(union.range_count(), 1);
        assert_eq!(union.covering_range().end(), w.file_end());
    }

    #[test]
    fn half_overlap_conflicts_with_neighbours() {
        let w = OverlapWorkload::new(4, 4, 1024, 1, 2);
        assert!(w.has_conflicts());
        // Client 0's first region overlaps client 1's first region.
        let a = w.extents_for(0);
        let b = w.extents_for(1);
        let common = a.intersection(&b);
        assert!(!common.is_empty());
        // Overlap amount: half a region per adjacent pair per region.
        assert_eq!(common.total_len(), 4 * 512);
    }

    #[test]
    fn extreme_overlap_is_nearly_total() {
        let w = OverlapWorkload::new(2, 2, 1024, 7, 8);
        let a = w.extents_for(0);
        let b = w.extents_for(1);
        // With 7/8 overlap and step 128, each client's regions coalesce
        // into one big run; the two runs share all but the 128-byte
        // fringes: [128, 1280) of a [0, 1408) file.
        assert_eq!(a.intersection(&b).total_len(), 1152);
    }

    #[test]
    fn bytes_accounting() {
        let w = OverlapWorkload::new(3, 5, 256, 1, 4);
        assert_eq!(w.bytes_per_client(), 1280);
        assert_eq!(w.total_bytes(), 3840);
        for c in 0..3 {
            assert_eq!(w.extents_for(c).total_len(), 1280);
        }
    }

    #[test]
    #[should_panic(expected = "overlap must be in")]
    fn full_overlap_rejected() {
        let _ = OverlapWorkload::new(2, 2, 64, 2, 2);
    }

    #[test]
    fn single_client_never_conflicts() {
        let w = OverlapWorkload::new(1, 4, 64, 1, 2);
        assert!(!w.has_conflicts());
    }
}
