//! Deterministic random-number helpers.
//!
//! Experiments must be reproducible run-to-run, so every random choice in
//! the workspace flows from an explicit seed. [`DetRng`] is a tiny
//! lock-free SplitMix64 stream usable from any thread; substreams derived
//! with [`DetRng::substream`] give each client/provider an independent,
//! stable sequence regardless of thread interleaving.

use atomio_types::stamp::mix64;
use std::sync::atomic::{AtomicU64, Ordering};

/// A deterministic, thread-safe random stream (SplitMix64).
#[derive(Debug)]
pub struct DetRng {
    /// Construction-time seed; substream derivation uses only this, so
    /// derived streams are stable no matter how many draws this stream
    /// has made.
    origin: u64,
    state: AtomicU64,
}

impl DetRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        let origin = mix64(seed ^ 0xD6E8_FEB8_6659_FD93);
        DetRng {
            origin,
            state: AtomicU64::new(origin),
        }
    }

    /// Derives an independent stream for a labelled sub-entity. The same
    /// `(seed, label)` pair always yields the same stream, regardless of
    /// how many draws other streams have made.
    pub fn substream(&self, label: u64) -> DetRng {
        DetRng::new(mix64(
            self.origin ^ mix64(label.wrapping_add(0xA076_1D64_78BD_642F)),
        ))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&self) -> u64 {
        let prev = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        mix64(prev)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (tiny bias acceptable for
        // workload generation; not used for statistics).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn next_range(&self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let a = DetRng::new(99);
        let b = DetRng::new(99);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = DetRng::new(1);
        let b = DetRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn substreams_are_stable_and_independent() {
        let root = DetRng::new(7);
        let s1a: Vec<u64> = {
            let s = root.substream(1);
            (0..8).map(|_| s.next_u64()).collect()
        };
        // Draw from root in between; substream(1) must not change.
        for _ in 0..100 {
            root.next_u64();
        }
        let s1b: Vec<u64> = {
            let s = root.substream(1);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(s1a, s1b, "substream must not depend on sibling draws");
        let s2: Vec<u64> = {
            let s = root.substream(2);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_ne!(s1a, s2);
    }

    #[test]
    fn bounded_draws_respect_bounds() {
        let rng = DetRng::new(5);
        for _ in 0..10_000 {
            let x = rng.next_below(17);
            assert!(x < 17);
            let y = rng.next_range(10, 20);
            assert!((10..20).contains(&y));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_draws_cover_range() {
        let rng = DetRng::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        DetRng::new(0).next_below(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let rng = DetRng::new(3);
        let mut xs: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // And (with this seed) actually permutes.
        assert_ne!(xs, (0..64).collect::<Vec<_>>());
    }
}
