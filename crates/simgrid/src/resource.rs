//! Virtual-time queueing resources: serialized devices and k-way servers.
//!
//! A [`Resource`] is the queueing-theoretic model of a device that serves
//! one request at a time (a disk spindle, a NIC port, a metadata CPU). A
//! request of service duration `d` arriving at virtual time `t` begins at
//! `max(t, next_free)`; the resource's `next_free` advances by `d` and the
//! caller sleeps until its completion instant. Because only bookkeeping —
//! never waiting — happens under the internal lock, the model composes
//! freely with the virtual clock.

use crate::clock::{Participant, SimTime};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A serialized virtual-time device with utilization accounting.
#[derive(Debug)]
pub struct Resource {
    name: String,
    state: Mutex<ResState>,
    /// Total service time ever charged, for utilization reporting.
    busy_ns: AtomicU64,
    /// Total requests served.
    requests: AtomicU64,
    /// Total queueing delay experienced by requests.
    queue_ns: AtomicU64,
}

#[derive(Debug, Default)]
struct ResState {
    next_free: SimTime,
}

impl Resource {
    /// Creates an idle resource with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            state: Mutex::new(ResState::default()),
            busy_ns: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            queue_ns: AtomicU64::new(0),
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Serves a request of duration `d`: queues behind in-flight requests
    /// and blocks the caller (in virtual time) until the request completes.
    pub fn serve(&self, p: &Participant, d: Duration) {
        self.serve_ns(p, d.as_nanos() as u64);
    }

    /// Nanosecond variant of [`Self::serve`].
    pub fn serve_ns(&self, p: &Participant, service_ns: u64) {
        if service_ns == 0 {
            return;
        }
        let completion = self.reserve_ns(p.now_ns(), service_ns);
        p.sleep_until_ns(completion);
    }

    /// Books a request of duration `d` arriving at `arrival` without
    /// blocking; see [`Self::reserve_ns`].
    pub fn reserve(&self, arrival: SimTime, d: Duration) -> SimTime {
        self.reserve_ns(arrival, d.as_nanos() as u64)
    }

    /// Books a request of duration `service_ns` arriving at virtual time
    /// `arrival` and returns its absolute completion time **without
    /// blocking the caller**.
    ///
    /// This is the non-blocking half of [`Self::serve_ns`]: the request
    /// queues behind everything already booked (it begins at
    /// `max(arrival, next_free)`), but the caller decides when to sleep —
    /// typically after booking a whole batch across many resources and
    /// taking the max completion. Utilization accounting is identical to
    /// the blocking path; zero-duration requests return `arrival` and
    /// record nothing.
    ///
    /// **Determinism.** Bookings with the same `arrival` instant issued
    /// by different actors reach this method in participant-id order:
    /// the clock releases same-instant wake-ups one actor at a time,
    /// smallest id first (see [`crate::clock`]), so queue positions —
    /// and therefore completion times — are identical on every run.
    pub fn reserve_ns(&self, arrival: SimTime, service_ns: u64) -> SimTime {
        if service_ns == 0 {
            return arrival;
        }
        let completion = {
            let mut st = self.state.lock();
            let start = st.next_free.max(arrival);
            st.next_free = start + service_ns;
            self.queue_ns.fetch_add(start - arrival, Ordering::Relaxed);
            st.next_free
        };
        self.busy_ns.fetch_add(service_ns, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        completion
    }

    /// Total service time charged so far.
    pub fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Total queueing delay experienced by all requests so far.
    pub fn total_queue_delay(&self) -> Duration {
        Duration::from_nanos(self.queue_ns.load(Ordering::Relaxed))
    }

    /// Number of requests served so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Utilization over an observation window (busy time / window).
    pub fn utilization(&self, window: Duration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        self.busy_time().as_secs_f64() / window.as_secs_f64()
    }
}

/// Per-client injection/reception NICs, created on first use and keyed by
/// participant id.
///
/// Every batch engine (chunk transfers, metadata commits) serializes a
/// client's wire traffic through that client's own NIC, so per-client
/// bandwidth caps at the client link while server-side devices drain in
/// parallel. Sharing one registry across services models the physical
/// truth that a client has *one* NIC: its data and metadata streams
/// contend with each other.
#[derive(Debug, Default)]
pub struct ClientNics {
    nics: Mutex<BTreeMap<u64, Arc<Resource>>>,
}

impl ClientNics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The NIC of the calling client, created on first use.
    pub fn nic_for(&self, p: &Participant) -> Arc<Resource> {
        let mut nics = self.nics.lock();
        Arc::clone(
            nics.entry(p.id())
                .or_insert_with(|| Arc::new(Resource::new(format!("client{}/nic", p.id())))),
        )
    }

    /// Snapshot of every NIC created so far, in client-id order (for
    /// utilization accounting).
    pub fn all(&self) -> Vec<Arc<Resource>> {
        self.nics.lock().values().cloned().collect()
    }
}

/// A pool of `k` identical serialized devices with shortest-queue
/// dispatch — models a server with several independent disks or channels.
#[derive(Debug)]
pub struct ResourcePool {
    devices: Vec<Resource>,
}

impl ResourcePool {
    /// Creates a pool of `k` devices.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(name: &str, k: usize) -> Self {
        assert!(k > 0, "resource pool needs at least one device");
        ResourcePool {
            devices: (0..k)
                .map(|i| Resource::new(format!("{name}[{i}]")))
                .collect(),
        }
    }

    /// Serves a request on the device that will start it earliest.
    pub fn serve(&self, p: &Participant, d: Duration) {
        let arrival = p.now_ns();
        let dev = self
            .devices
            .iter()
            .min_by_key(|dev| dev.state.lock().next_free.max(arrival))
            .expect("pool is non-empty");
        dev.serve(p, d);
    }

    /// The individual devices (for accounting).
    pub fn devices(&self) -> &[Resource] {
        &self.devices
    }

    /// Total busy time across all devices.
    pub fn busy_time(&self) -> Duration {
        self.devices.iter().map(|d| d.busy_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::run_actors;
    use std::sync::Arc;

    #[test]
    fn serialized_requests_queue() {
        let disk = Arc::new(Resource::new("disk"));
        // 4 actors each need 10ms of the same disk: total virtual time
        // must be 40ms (perfect serialization).
        let d = Arc::clone(&disk);
        let (_, total) = run_actors(4, move |_, p| {
            d.serve(p, Duration::from_millis(10));
        });
        assert_eq!(total, Duration::from_millis(40));
        assert_eq!(disk.busy_time(), Duration::from_millis(40));
        assert_eq!(disk.request_count(), 4);
        // Three of the four requests waited: 10 + 20 + 30 ms of queueing.
        assert_eq!(disk.total_queue_delay(), Duration::from_millis(60));
        assert!((disk.utilization(total) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_resources_run_in_parallel() {
        let disks: Arc<Vec<Resource>> =
            Arc::new((0..4).map(|i| Resource::new(format!("d{i}"))).collect());
        let d = Arc::clone(&disks);
        let (_, total) = run_actors(4, move |i, p| {
            d[i].serve(p, Duration::from_millis(10));
        });
        // One disk per actor: all requests overlap.
        assert_eq!(total, Duration::from_millis(10));
    }

    #[test]
    fn sequential_use_by_one_actor_accumulates() {
        let disk = Resource::new("disk");
        let (_, total) = run_actors(1, |_, p| {
            disk.serve(p, Duration::from_millis(3));
            disk.serve(p, Duration::from_millis(4));
        });
        assert_eq!(total, Duration::from_millis(7));
    }

    #[test]
    fn zero_service_is_free() {
        let disk = Resource::new("disk");
        let (_, total) = run_actors(1, |_, p| {
            disk.serve(p, Duration::ZERO);
        });
        assert_eq!(total, Duration::ZERO);
        assert_eq!(disk.request_count(), 0);
    }

    #[test]
    fn pool_spreads_load() {
        let pool = Arc::new(ResourcePool::new("disks", 2));
        let pl = Arc::clone(&pool);
        let (_, total) = run_actors(4, move |_, p| {
            pl.serve(p, Duration::from_millis(10));
        });
        // 4 requests over 2 devices: 20ms, not 40ms.
        assert_eq!(total, Duration::from_millis(20));
        assert_eq!(pool.busy_time(), Duration::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_pool_rejected() {
        let _ = ResourcePool::new("x", 0);
    }

    #[test]
    fn reserve_books_without_blocking() {
        let disk = Resource::new("disk");
        // Bookings queue back-to-back even though nobody sleeps.
        let c1 = disk.reserve_ns(0, 5);
        let c2 = disk.reserve_ns(0, 5);
        let c3 = disk.reserve_ns(20, 5);
        assert_eq!((c1, c2, c3), (5, 10, 25));
        assert_eq!(disk.busy_time(), Duration::from_nanos(15));
        assert_eq!(disk.request_count(), 3);
        // Second booking waited 5ns; the late third arrival waited none.
        assert_eq!(disk.total_queue_delay(), Duration::from_nanos(5));
    }

    #[test]
    fn zero_reservation_is_free() {
        let disk = Resource::new("disk");
        assert_eq!(disk.reserve_ns(7, 0), 7);
        assert_eq!(disk.request_count(), 0);
        assert_eq!(disk.busy_time(), Duration::ZERO);
    }

    #[test]
    fn batched_reservations_overlap_across_resources() {
        // One actor books 4 independent disks at once and sleeps to the
        // max completion: 10ms total, where serve() would cost 40ms.
        let disks: Vec<Resource> = (0..4).map(|i| Resource::new(format!("d{i}"))).collect();
        let (_, total) = run_actors(1, |_, p| {
            let now = p.now_ns();
            let done = disks
                .iter()
                .map(|d| d.reserve(now, Duration::from_millis(10)))
                .max()
                .unwrap();
            p.sleep_until_ns(done);
        });
        assert_eq!(total, Duration::from_millis(10));
    }

    #[test]
    fn client_nics_are_per_participant_and_shared() {
        let nics = ClientNics::new();
        let (ids, _) = run_actors(2, |_, p| {
            let a = nics.nic_for(p);
            let b = nics.nic_for(p);
            assert!(Arc::ptr_eq(&a, &b), "one NIC per client");
            a.name().to_string()
        });
        assert_ne!(ids[0], ids[1], "distinct clients get distinct NICs");
        assert_eq!(nics.all().len(), 2);
    }

    #[test]
    fn serve_and_reserve_agree_on_timing() {
        let a = Resource::new("a");
        let b = Resource::new("b");
        let (_, t_serve) = run_actors(1, |_, p| {
            a.serve(p, Duration::from_millis(3));
            a.serve(p, Duration::from_millis(4));
        });
        let (_, t_reserve) = run_actors(1, |_, p| {
            let c1 = b.reserve(p.now_ns(), Duration::from_millis(3));
            let c2 = b.reserve(c1, Duration::from_millis(4));
            p.sleep_until_ns(c2);
        });
        assert_eq!(t_serve, t_reserve);
        assert_eq!(a.total_queue_delay(), b.total_queue_delay());
    }
}
