//! The virtual clock that coordinates all simulated actors.
//!
//! Invariant: virtual time advances to the earliest pending wake-up only
//! when **all** registered participants are blocked in [`Participant::sleep`].
//! A participant that is executing CPU work holds time still, so no actor
//! ever observes time it has not lived through.
//!
//! All blocking in the workspace is expressed as virtual sleeping —
//! services that need to wait for a condition (a lock grant, a publication
//! turn) poll it with a small virtual interval. With virtual time this
//! costs no wall-clock waiting, and explicit FIFO queues inside the
//! services preserve fairness.
//!
//! ## Deterministic execution
//!
//! Wake-ups are released **one participant at a time**, ordered by
//! `(wake time, participant id)`: when several actors are due at the same
//! virtual instant, the one with the smallest id runs first, and the next
//! is only released once it sleeps (or deregisters) again. Combined with
//! [`Participant::sync`] at actor start (see [`run_actors_on`]), exactly
//! one actor executes at any moment, so every side effect that happens at
//! one virtual instant — resource bookings via
//! [`crate::Resource::reserve_ns`], allocation-cursor bumps, table
//! inserts — lands in participant-id order regardless of how the OS
//! schedules the underlying threads. Simulations are therefore
//! bit-reproducible run-to-run; virtual timing is unchanged (sequencing
//! costs zero virtual time).

use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

/// Virtual nanoseconds since simulation start.
pub type SimTime = u64;

/// Initial polling interval for condition waits, in virtual nanoseconds.
///
/// 20µs: two orders of magnitude below typical simulated transfer times
/// (hundreds of µs to ms), so polling skew is negligible for short
/// waits. Long waits back off exponentially to [`POLL_CAP_NS`] so a
/// multi-second lock queue does not generate millions of clock events.
pub const POLL_INTERVAL_NS: u64 = 20_000;

/// Upper bound of the poll back-off (2 ms): the worst-case discovery
/// skew for a long wait, small against the 100 ms+ transfer times such
/// waits sit behind.
pub const POLL_CAP_NS: u64 = 2_000_000;

#[derive(Debug)]
struct ClockState {
    now: SimTime,
    /// Pending wake-ups: (wake time, participant ticket).
    sleepers: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Registered participants currently *not* blocked in `sleep`.
    runnable: usize,
    /// Total registered participants.
    registered: usize,
    /// Hard ceiling on virtual time; exceeded => livelock, panic.
    horizon: SimTime,
    next_ticket: u64,
    /// The one sleeper released to run but not yet resumed. At most one
    /// wake-up is outstanding at a time: the next sleeper is released
    /// only after this one consumed its release (and went back to sleep
    /// or deregistered), which is what serializes same-instant actors in
    /// participant-id order.
    released: Option<u64>,
}

/// A shared virtual clock. Cheap to clone (it is an `Arc` internally).
///
/// ```
/// use atomio_simgrid::clock::run_actors;
/// use std::time::Duration;
///
/// // Eight actors "transfer" for 10 ms each, in parallel: the whole
/// // simulation consumes 10 ms of virtual time and ~zero wall time.
/// let (ends, total) = run_actors(8, |_, p| {
///     p.sleep(Duration::from_millis(10));
///     p.now()
/// });
/// assert_eq!(total, Duration::from_millis(10));
/// assert!(ends.iter().all(|&e| e == total));
/// ```
#[derive(Clone)]
pub struct SimClock {
    inner: Arc<ClockInner>,
}

struct ClockInner {
    state: Mutex<ClockState>,
    cv: Condvar,
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SimClock {
    /// Creates a clock at virtual time zero with a one-virtual-day horizon.
    pub fn new() -> Self {
        Self::with_horizon(Duration::from_secs(86_400))
    }

    /// Creates a clock with an explicit livelock horizon.
    pub fn with_horizon(horizon: Duration) -> Self {
        SimClock {
            inner: Arc::new(ClockInner {
                state: Mutex::new(ClockState {
                    now: 0,
                    sleepers: BinaryHeap::new(),
                    runnable: 0,
                    registered: 0,
                    horizon: horizon.as_nanos() as SimTime,
                    next_ticket: 0,
                    released: None,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Registers the calling thread as a simulated actor.
    ///
    /// The returned [`Participant`] must stay on this thread; dropping it
    /// deregisters the actor (allowing time to advance without it).
    pub fn register(&self) -> Participant {
        let mut st = self.inner.state.lock();
        st.runnable += 1;
        st.registered += 1;
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        Participant {
            clock: Arc::clone(&self.inner),
            _ticket: ticket,
            _not_sync: PhantomData,
        }
    }

    /// Current virtual time (for observers that never sleep, e.g. the
    /// experiment harness reading the final clock).
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.inner.state.lock().now)
    }
}

impl std::fmt::Debug for SimClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock();
        f.debug_struct("SimClock")
            .field("now_ns", &st.now)
            .field("registered", &st.registered)
            .field("runnable", &st.runnable)
            .field("sleepers", &st.sleepers.len())
            .finish()
    }
}

/// One registered simulated actor. Owned by exactly one thread.
pub struct Participant {
    clock: Arc<ClockInner>,
    _ticket: u64,
    /// Participants must not be shared across threads: sleeping from two
    /// threads through one registration would corrupt the runnable count.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl Participant {
    /// Stable identifier of this registration: tickets are handed out
    /// monotonically by the clock and never reused, so the id is unique
    /// for the clock's lifetime. Services key per-client state (e.g. a
    /// client-side NIC) on it.
    pub fn id(&self) -> u64 {
        self._ticket
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.clock.state.lock().now)
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> SimTime {
        self.clock.state.lock().now
    }

    /// Blocks this actor for `d` of virtual time.
    pub fn sleep(&self, d: Duration) {
        self.sleep_ns(d.as_nanos() as u64);
    }

    /// Blocks this actor for `ns` virtual nanoseconds.
    pub fn sleep_ns(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        let st = self.clock.state.lock();
        let wake = st.now + ns;
        self.sleep_until_locked(st, wake);
    }

    /// Blocks this actor until absolute virtual time `wake` (no-op if the
    /// clock is already there). Used by queueing resources that compute an
    /// absolute completion time.
    pub fn sleep_until_ns(&self, wake: SimTime) {
        let st = self.clock.state.lock();
        if wake <= st.now {
            return;
        }
        self.sleep_until_locked(st, wake);
    }

    /// Parks this actor at the *current* instant and resumes it in
    /// participant-id order relative to every other actor due now.
    ///
    /// Costs zero virtual time. [`run_actors_on`] calls this before each
    /// actor body so the segment an actor executes before its first sleep
    /// is sequenced like every later segment; services never need it.
    pub fn sync(&self) {
        let st = self.clock.state.lock();
        let wake = st.now;
        self.sleep_until_locked(st, wake);
    }

    fn sleep_until_locked(&self, mut st: parking_lot::MutexGuard<'_, ClockState>, wake: SimTime) {
        assert!(
            wake <= st.horizon,
            "virtual time horizon exceeded (wake at {wake} ns): livelock or runaway simulation"
        );
        st.sleepers.push(Reverse((wake, self._ticket)));
        st.runnable -= 1;
        Self::try_advance(&mut st, &self.clock.cv);
        // Waking requires an explicit release (not merely `now` reaching
        // `wake`): releases are handed out one at a time in (wake time,
        // participant id) order, which keeps same-instant actors
        // deterministic.
        while st.released != Some(self._ticket) {
            self.clock.cv.wait(&mut st);
        }
        st.released = None;
        debug_assert!(st.now >= wake);
    }

    /// Repeatedly evaluates `cond` until it returns `Some`, then yields
    /// the value. Polls start at [`POLL_INTERVAL_NS`] and back off
    /// exponentially to [`POLL_CAP_NS`].
    ///
    /// This is the building block for every "wait for a condition owned by
    /// another actor" interaction (lock grants, publication turns).
    pub fn poll_until<T>(&self, mut cond: impl FnMut() -> Option<T>) -> T {
        let mut interval = POLL_INTERVAL_NS;
        loop {
            if let Some(v) = cond() {
                return v;
            }
            self.sleep_ns(interval);
            interval = (interval + interval / 2).min(POLL_CAP_NS);
        }
    }

    /// Like [`Self::poll_until`] but gives up after `timeout` of virtual
    /// time, returning `None`.
    pub fn poll_until_timeout<T>(
        &self,
        timeout: Duration,
        mut cond: impl FnMut() -> Option<T>,
    ) -> Option<T> {
        let deadline = self.now_ns() + timeout.as_nanos() as u64;
        let mut interval = POLL_INTERVAL_NS;
        loop {
            if let Some(v) = cond() {
                return Some(v);
            }
            let now = self.now_ns();
            if now >= deadline {
                return None;
            }
            self.sleep_ns(interval.min(deadline - now));
            interval = (interval + interval / 2).min(POLL_CAP_NS);
        }
    }

    /// Releases the earliest sleeper if every registered participant is
    /// asleep and no release is already outstanding. Exactly one sleeper
    /// is released per call — ties at one instant resolve by participant
    /// id because the heap orders on `(wake, ticket)`.
    fn try_advance(st: &mut ClockState, cv: &Condvar) {
        if st.runnable > 0 || st.released.is_some() {
            return;
        }
        let Some(&Reverse((wake, ticket))) = st.sleepers.peek() else {
            if st.registered > 0 {
                // Every live participant is deregistered-or-sleeping and
                // nobody posted a wake-up: nothing can ever run again.
                panic!(
                    "virtual-time deadlock: {} participants registered, none runnable, no pending wake-ups",
                    st.registered
                );
            }
            return;
        };
        debug_assert!(wake >= st.now);
        st.sleepers.pop();
        st.now = wake;
        st.runnable += 1;
        st.released = Some(ticket);
        cv.notify_all();
    }
}

impl Drop for Participant {
    fn drop(&mut self) {
        let mut st = self.clock.state.lock();
        st.runnable -= 1;
        st.registered -= 1;
        // Our departure may unblock time for the remaining sleepers.
        Participant::try_advance(&mut st, &self.clock.cv);
    }
}

impl std::fmt::Debug for Participant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Participant")
            .field("ticket", &self._ticket)
            .finish()
    }
}

/// Runs `n` simulated actors to completion on a fresh clock and returns
/// their results plus the total virtual time consumed.
///
/// Convenience for tests and benchmarks: spawns one OS thread per actor,
/// registers each with the clock, and joins them all.
pub fn run_actors<T: Send>(
    n: usize,
    f: impl Fn(usize, &Participant) -> T + Sync,
) -> (Vec<T>, Duration) {
    let clock = SimClock::new();
    let results = run_actors_on(&clock, n, f);
    (results, clock.now())
}

/// Like [`run_actors`] but on an existing clock (so long-lived services
/// registered elsewhere keep their participants).
pub fn run_actors_on<T: Send>(
    clock: &SimClock,
    n: usize,
    f: impl Fn(usize, &Participant) -> T + Sync,
) -> Vec<T> {
    // Register before spawning so time cannot advance past a slow spawn.
    // Registration order = actor index order, so tickets (participant
    // ids) follow actor indices.
    let participants: Vec<Participant> = (0..n).map(|_| clock.register()).collect();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (i, (p, slot)) in participants.into_iter().zip(slots.iter_mut()).enumerate() {
            let f = &f;
            scope.spawn(move || {
                // Sequence actor starts: the segment before the first
                // sleep executes in id order like every later segment,
                // making the whole run deterministic.
                p.sync();
                *slot = Some(f(i, &p));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("actor panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_actor_accumulates_time() {
        let (times, total) = run_actors(1, |_, p| {
            p.sleep(Duration::from_millis(5));
            p.sleep(Duration::from_millis(7));
            p.now()
        });
        assert_eq!(times[0], Duration::from_millis(12));
        assert_eq!(total, Duration::from_millis(12));
    }

    #[test]
    fn parallel_sleeps_overlap() {
        // 8 actors each sleeping 10ms in parallel: total virtual time 10ms,
        // not 80ms.
        let (_, total) = run_actors(8, |_, p| {
            p.sleep(Duration::from_millis(10));
        });
        assert_eq!(total, Duration::from_millis(10));
    }

    #[test]
    fn staggered_sleeps_interleave_correctly() {
        let (ends, total) = run_actors(3, |i, p| {
            p.sleep(Duration::from_millis((i as u64 + 1) * 10));
            p.now()
        });
        assert_eq!(ends[0], Duration::from_millis(10));
        assert_eq!(ends[1], Duration::from_millis(20));
        assert_eq!(ends[2], Duration::from_millis(30));
        assert_eq!(total, Duration::from_millis(30));
    }

    #[test]
    fn zero_sleep_is_noop() {
        let (_, total) = run_actors(2, |_, p| {
            p.sleep(Duration::ZERO);
        });
        assert_eq!(total, Duration::ZERO);
    }

    #[test]
    fn sleep_until_past_is_noop() {
        let (_, total) = run_actors(1, |_, p| {
            p.sleep(Duration::from_millis(5));
            p.sleep_until_ns(1); // already past
            p.sleep_until_ns(8_000_000);
        });
        assert_eq!(total, Duration::from_millis(8));
    }

    #[test]
    fn poll_until_sees_other_actors_progress() {
        let flag = AtomicU64::new(0);
        let (results, total) = run_actors(2, |i, p| {
            if i == 0 {
                p.sleep(Duration::from_millis(3));
                flag.store(42, Ordering::SeqCst);
                0
            } else {
                p.poll_until(|| {
                    let v = flag.load(Ordering::SeqCst);
                    (v != 0).then_some(v)
                })
            }
        });
        assert_eq!(results[1], 42);
        // Poller observed the flag within one poll interval of 3ms.
        assert!(total >= Duration::from_millis(3));
        assert!(total < Duration::from_millis(4));
    }

    #[test]
    fn poll_timeout_expires() {
        let (res, total) = run_actors(1, |_, p| {
            p.poll_until_timeout(Duration::from_millis(1), || None::<()>)
        });
        assert_eq!(res[0], None);
        assert!(total >= Duration::from_millis(1));
    }

    #[test]
    fn early_exit_of_one_actor_unblocks_others() {
        // Actor 1 exits immediately; actor 0's sleeps must still advance.
        let (_, total) = run_actors(2, |i, p| {
            if i == 0 {
                p.sleep(Duration::from_millis(5));
            }
        });
        assert_eq!(total, Duration::from_millis(5));
    }

    #[test]
    fn drop_of_registered_participant_releases_time() {
        // A registered-but-idle participant holds time still; once it
        // drops, pending sleepers advance. (The deadlock panic inside
        // `try_advance` is purely defensive: it is unreachable through
        // the safe API, which only blocks through the clock itself.)
        let clock = SimClock::new();
        let idle = clock.register();
        let clock2 = clock.clone();
        let h = std::thread::spawn(move || {
            let p = clock2.register();
            p.sleep(Duration::from_millis(2));
            p.now()
        });
        // Give the sleeper a moment to block, then release time.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(clock.now(), Duration::ZERO, "idle participant pins time");
        drop(idle);
        assert_eq!(h.join().unwrap(), Duration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn horizon_catches_runaway() {
        let clock = SimClock::with_horizon(Duration::from_millis(1));
        let p = clock.register();
        p.sleep(Duration::from_secs(1));
    }

    #[test]
    fn many_actors_stress() {
        let counter = AtomicU64::new(0);
        let (_, total) = run_actors(32, |_, p| {
            for _ in 0..50 {
                p.sleep_ns(1_000);
                counter.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32 * 50);
        // All actors sleep in lockstep: 50 µs total.
        assert_eq!(total, Duration::from_micros(50));
    }

    #[test]
    fn sync_costs_no_virtual_time() {
        let (_, total) = run_actors(3, |_, p| {
            p.sync();
            p.sync();
        });
        assert_eq!(total, Duration::ZERO);
    }

    #[test]
    fn same_instant_wakeups_release_in_id_order() {
        // 8 actors all due at the same instant resume smallest-id first,
        // regardless of OS scheduling.
        let order = parking_lot::Mutex::new(Vec::new());
        let (_, _) = run_actors(8, |i, p| {
            p.sleep(Duration::from_millis(1));
            order.lock().push(i);
        });
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_bookings_serialize_by_participant_id() {
        // The ROADMAP nondeterminism item: concurrent clients booking one
        // device at the same virtual instant. The sequenced clock hands
        // the device to participants in id order, every run.
        let run = || {
            let disk = crate::resource::Resource::new("disk");
            let order = parking_lot::Mutex::new(Vec::new());
            run_actors(4, |i, p| {
                p.sleep(Duration::from_millis(1));
                let done = disk.reserve_ns(p.now_ns(), 1_000_000);
                order.lock().push((i, done));
            });
            order.into_inner()
        };
        let got = run();
        let expect: Vec<(usize, SimTime)> =
            (0..4).map(|i| (i, (i as u64 + 2) * 1_000_000)).collect();
        assert_eq!(got, expect, "bookings must land in participant-id order");
        assert_eq!(got, run(), "and identically on every run");
    }

    #[test]
    fn run_actors_on_shared_clock() {
        let clock = SimClock::new();
        let r1 = run_actors_on(&clock, 2, |_, p| {
            p.sleep(Duration::from_millis(1));
            p.now()
        });
        let r2 = run_actors_on(&clock, 1, |_, p| {
            p.sleep(Duration::from_millis(1));
            p.now()
        });
        assert_eq!(r1[0], Duration::from_millis(1));
        // Second batch starts where the first left off.
        assert_eq!(r2[0], Duration::from_millis(2));
    }
}
