//! # atomio-simgrid
//!
//! The simulated-cluster substrate every storage service in the workspace
//! runs on. The paper's experiments ran on the Grid'5000 testbed; this
//! crate is the laptop-scale substitution (see `DESIGN.md` §2): OS threads
//! play MPI ranks and servers, while **time is virtual**.
//!
//! ## Virtual time
//!
//! [`SimClock`] keeps a shared virtual clock. Every simulated actor
//! registers a [`Participant`]; instead of `thread::sleep`, actors call
//! [`Participant::sleep`], which posts a virtual wake-up and blocks. The
//! clock advances to the earliest posted wake-up only when *every*
//! registered participant is blocked, so virtual time never outruns any
//! actor. CPU work between sleeps costs zero virtual time, which is the
//! behaviour we want: the phenomena under study (lock serialization
//! vs. versioned isolation) are I/O-dominated.
//!
//! ## Devices as queueing resources
//!
//! [`Resource`] models a serialized device (disk spindle, NIC port) in
//! virtual time: a transfer of duration `d` arriving at virtual time `t`
//! starts at `max(t, next_free)` and the caller sleeps until it completes.
//! This reproduces device saturation and queueing delay without holding
//! any real lock across a wait.
//!
//! ## Cost model, faults, metrics
//!
//! [`CostModel`] turns operation shapes (message, chunk transfer, metadata
//! op) into durations, with presets for a Grid'5000-like cluster.
//! [`FaultInjector`] lets tests kill/heal providers deterministically.
//! [`Metrics`] is a tiny atomic counter/timer registry used by the
//! experiment harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod cost;
pub mod fault;
pub mod metrics;
pub mod resource;
pub mod rng;

pub use clock::{Participant, SimClock, SimTime};
pub use cost::CostModel;
pub use fault::FaultInjector;
pub use metrics::Metrics;
pub use resource::{ClientNics, Resource};
pub use rng::DetRng;
