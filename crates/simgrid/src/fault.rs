//! Deterministic fault injection for providers and messages.
//!
//! The storage services consult a shared [`FaultInjector`] before serving
//! requests. Tests use it to kill providers (checking that replication
//! masks the failure and that unreplicated accesses fail cleanly) and to
//! inject message-level failures with a seeded probability.

use atomio_types::ProviderId;
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::rng::DetRng;

/// Shared fault state consulted by the simulated services.
#[derive(Debug)]
pub struct FaultInjector {
    failed: RwLock<HashSet<ProviderId>>,
    /// Probability (in 1/2^32 units) that a message-level fault fires.
    msg_fault_p: AtomicU64,
    rng: DetRng,
    injected: AtomicU64,
}

impl FaultInjector {
    /// A quiet injector (no failures) with the given RNG seed for message
    /// faults.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            failed: RwLock::new(HashSet::new()),
            msg_fault_p: AtomicU64::new(0),
            rng: DetRng::new(seed),
            injected: AtomicU64::new(0),
        }
    }

    /// Marks a provider as crashed: every subsequent request to it fails.
    pub fn fail_provider(&self, p: ProviderId) {
        self.failed.write().insert(p);
    }

    /// Heals a previously failed provider.
    pub fn heal_provider(&self, p: ProviderId) {
        self.failed.write().remove(&p);
    }

    /// True if the provider is currently failed.
    pub fn is_failed(&self, p: ProviderId) -> bool {
        self.failed.read().contains(&p)
    }

    /// Number of currently failed providers.
    pub fn failed_count(&self) -> usize {
        self.failed.read().len()
    }

    /// Sets the per-message fault probability in `[0, 1]`.
    pub fn set_message_fault_probability(&self, p: f64) {
        let clamped = p.clamp(0.0, 1.0);
        self.msg_fault_p
            .store((clamped * u32::MAX as f64) as u64, Ordering::Relaxed);
    }

    /// Draws whether the next message faults (deterministic given the
    /// seed and the draw sequence).
    pub fn message_faults(&self) -> bool {
        let p = self.msg_fault_p.load(Ordering::Relaxed);
        if p == 0 {
            return false;
        }
        let hit = (self.rng.next_u64() & 0xFFFF_FFFF) < p;
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Total message faults injected so far.
    pub fn injected_message_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provider_fail_and_heal() {
        let f = FaultInjector::new(1);
        let p = ProviderId::new(3);
        assert!(!f.is_failed(p));
        f.fail_provider(p);
        assert!(f.is_failed(p));
        assert_eq!(f.failed_count(), 1);
        f.heal_provider(p);
        assert!(!f.is_failed(p));
        assert_eq!(f.failed_count(), 0);
    }

    #[test]
    fn zero_probability_never_faults() {
        let f = FaultInjector::new(42);
        for _ in 0..10_000 {
            assert!(!f.message_faults());
        }
        assert_eq!(f.injected_message_faults(), 0);
    }

    #[test]
    fn full_probability_always_faults() {
        let f = FaultInjector::new(42);
        f.set_message_fault_probability(1.0);
        for _ in 0..100 {
            assert!(f.message_faults());
        }
        assert_eq!(f.injected_message_faults(), 100);
    }

    #[test]
    fn intermediate_probability_is_roughly_respected() {
        let f = FaultInjector::new(7);
        f.set_message_fault_probability(0.25);
        let hits = (0..40_000).filter(|_| f.message_faults()).count();
        let rate = hits as f64 / 40_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate was {rate}");
    }

    #[test]
    fn probability_clamps() {
        let f = FaultInjector::new(7);
        f.set_message_fault_probability(7.5);
        assert!(f.message_faults());
        f.set_message_fault_probability(-1.0);
        assert!(!f.message_faults());
    }
}
