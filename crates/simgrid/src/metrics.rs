//! A tiny metrics registry: named atomic counters and duration
//! accumulators shared by services and read out by the experiment harness.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A named counter (monotonic u64).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Raises the counter to at least `v` — for high-watermark counters
    /// (e.g. peak in-flight RPC depth) that track a maximum rather than
    /// a running sum.
    #[inline]
    pub fn record_peak(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Overwrites the counter with `v` — for gauge-style counters (e.g.
    /// connections currently open) whose owner snapshots a level that
    /// can fall as well as rise.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An accumulating duration statistic (sum, count, max).
#[derive(Debug, Default)]
pub struct TimeStat {
    sum_ns: AtomicU64,
    count: AtomicU64,
    max_ns: AtomicU64,
}

impl TimeStat {
    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos() as u64;
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total accumulated time.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed))
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest single observation.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Mean observation (zero if empty).
    pub fn mean(&self) -> Duration {
        match self
            .sum_ns
            .load(Ordering::Relaxed)
            .checked_div(self.count())
        {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }
}

/// An accumulating dimensionless statistic (sum, count, max) over u64
/// observations — e.g. the outstanding-request depth of each transfer
/// batch.
#[derive(Debug, Default)]
pub struct ValueStat {
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl ValueStat {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Largest single observation.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (zero if empty).
    pub fn mean(&self) -> f64 {
        match self.count() {
            0 => 0.0,
            n => self.sum() as f64 / n as f64,
        }
    }
}

/// A registry of named counters and time statistics.
///
/// Cloning shares the underlying storage, so services and the harness can
/// hold the same registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    times: RwLock<BTreeMap<String, Arc<TimeStat>>>,
    values: RwLock<BTreeMap<String, Arc<ValueStat>>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.inner.counters.read().get(name) {
            return Arc::clone(c);
        }
        let mut w = self.inner.counters.write();
        Arc::clone(w.entry(name.to_owned()).or_default())
    }

    /// Returns (creating on first use) the time statistic named `name`.
    pub fn time_stat(&self, name: &str) -> Arc<TimeStat> {
        if let Some(t) = self.inner.times.read().get(name) {
            return Arc::clone(t);
        }
        let mut w = self.inner.times.write();
        Arc::clone(w.entry(name.to_owned()).or_default())
    }

    /// Returns (creating on first use) the value statistic named `name`.
    pub fn value_stat(&self, name: &str) -> Arc<ValueStat> {
        if let Some(v) = self.inner.values.read().get(name) {
            return Arc::clone(v);
        }
        let mut w = self.inner.values.write();
        Arc::clone(w.entry(name.to_owned()).or_default())
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every time stat as `(name, sum, count, max)`.
    pub fn time_snapshot(&self) -> Vec<(String, Duration, u64, Duration)> {
        self.inner
            .times
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.sum(), v.count(), v.max()))
            .collect()
    }

    /// Snapshot of every value stat as `(name, sum, count, max)`.
    pub fn value_snapshot(&self) -> Vec<(String, u64, u64, u64)> {
        self.inner
            .values
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.sum(), v.count(), v.max()))
            .collect()
    }

    /// Renders a human-readable report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in self.counter_snapshot() {
            let _ = writeln!(out, "{name:<40} {value}");
        }
        for (name, sum, count, max) in self.time_snapshot() {
            let _ = writeln!(out, "{name:<40} sum={sum:?} n={count} max={max:?}");
        }
        for (name, sum, count, max) in self.value_snapshot() {
            let mean = if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            };
            let _ = writeln!(out, "{name:<40} mean={mean:.1} n={count} max={max}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.counter("reads").inc();
        m.counter("reads").add(4);
        assert_eq!(m.counter("reads").get(), 5);
        assert_eq!(m.counter("writes").get(), 0);
    }

    #[test]
    fn counters_are_shared_across_clones() {
        let m = Metrics::new();
        let m2 = m.clone();
        m.counter("x").add(3);
        m2.counter("x").add(4);
        assert_eq!(m.counter("x").get(), 7);
    }

    #[test]
    fn time_stats_track_sum_count_max_mean() {
        let m = Metrics::new();
        let t = m.time_stat("lock_wait");
        t.record(Duration::from_millis(2));
        t.record(Duration::from_millis(10));
        t.record(Duration::from_millis(3));
        assert_eq!(t.sum(), Duration::from_millis(15));
        assert_eq!(t.count(), 3);
        assert_eq!(t.max(), Duration::from_millis(10));
        assert_eq!(t.mean(), Duration::from_millis(5));
        let empty = m.time_stat("nothing");
        assert_eq!(empty.mean(), Duration::ZERO);
    }

    #[test]
    fn snapshots_are_sorted_and_complete() {
        let m = Metrics::new();
        m.counter("b").inc();
        m.counter("a").add(2);
        m.time_stat("t").record(Duration::from_nanos(5));
        let counters = m.counter_snapshot();
        assert_eq!(counters, vec![("a".to_owned(), 2), ("b".to_owned(), 1)]);
        let times = m.time_snapshot();
        assert_eq!(times.len(), 1);
        assert_eq!(times[0].2, 1);
        let report = m.report();
        assert!(report.contains('a') && report.contains('t'));
    }

    #[test]
    fn value_stats_track_sum_count_max_mean() {
        let m = Metrics::new();
        let v = m.value_stat("depth");
        v.record(4);
        v.record(16);
        v.record(1);
        assert_eq!((v.sum(), v.count(), v.max()), (21, 3, 16));
        assert!((v.mean() - 7.0).abs() < 1e-9);
        assert_eq!(m.value_stat("empty").mean(), 0.0);
        let snap = m.value_snapshot();
        assert_eq!(snap[0], ("depth".to_owned(), 21, 3, 16));
        assert!(m.report().contains("depth"));
    }

    #[test]
    fn record_peak_is_a_high_watermark() {
        let c = Counter::default();
        c.record_peak(5);
        c.record_peak(3);
        assert_eq!(c.get(), 5);
        c.record_peak(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    fn set_overwrites_as_a_gauge() {
        let c = Counter::default();
        c.add(5);
        c.set(2);
        assert_eq!(c.get(), 2);
        c.set(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.counter("hits").inc();
                    }
                });
            }
        });
        assert_eq!(m.counter("hits").get(), 8000);
    }
}
