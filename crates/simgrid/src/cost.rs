//! Cost model: how many virtual nanoseconds each primitive operation of
//! the simulated cluster takes.
//!
//! One [`CostModel`] is shared by every service in an experiment so both
//! the versioning backend and the locking baseline pay identical prices
//! for messages, network transfers, disk transfers, and metadata work —
//! the comparison isolates the *concurrency-control* difference, which is
//! the paper's claim under test.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Prices of the primitive operations of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One-way latency of a control message (RPC request or reply).
    pub msg_latency: Duration,
    /// Network bandwidth of a single NIC, bytes per second.
    pub net_bandwidth: u64,
    /// Disk bandwidth of a single storage device, bytes per second.
    pub disk_bandwidth: u64,
    /// Fixed per-request disk overhead (seek + request setup).
    pub disk_seek: Duration,
    /// CPU cost of one metadata operation on a metadata/version server
    /// (tree-node fetch/store, ticket issue, lock-table update).
    pub meta_op: Duration,
}

impl CostModel {
    /// Everything is free: unit tests exercising only semantics.
    pub fn zero() -> Self {
        CostModel {
            msg_latency: Duration::ZERO,
            net_bandwidth: 0,
            disk_bandwidth: 0,
            disk_seek: Duration::ZERO,
            meta_op: Duration::ZERO,
        }
    }

    /// A Grid'5000-like commodity cluster of the paper's era: GbE network
    /// (~110 MB/s effective, 100 µs latency) and a single SATA disk per
    /// storage node (~70 MB/s, 0.5 ms seek), with ~30 µs per metadata op.
    pub fn grid5000() -> Self {
        CostModel {
            msg_latency: Duration::from_micros(100),
            net_bandwidth: 110 * 1024 * 1024,
            disk_bandwidth: 70 * 1024 * 1024,
            disk_seek: Duration::from_micros(500),
            meta_op: Duration::from_micros(30),
        }
    }

    /// A faster cluster (10 GbE, SSD-backed) used to check that the
    /// qualitative results are not an artifact of one hardware point.
    pub fn fast_cluster() -> Self {
        CostModel {
            msg_latency: Duration::from_micros(20),
            net_bandwidth: 1100 * 1024 * 1024,
            disk_bandwidth: 450 * 1024 * 1024,
            disk_seek: Duration::from_micros(60),
            meta_op: Duration::from_micros(10),
        }
    }

    /// Time for `bytes` to cross one NIC (zero if bandwidth is unlimited).
    pub fn net_transfer(&self, bytes: u64) -> Duration {
        Self::at_rate(bytes, self.net_bandwidth)
    }

    /// Time for a disk request of `bytes` (seek + transfer).
    pub fn disk_transfer(&self, bytes: u64) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        self.disk_seek + Self::at_rate(bytes, self.disk_bandwidth)
    }

    /// One request-reply control exchange (two message latencies).
    pub fn rpc_round_trip(&self) -> Duration {
        self.msg_latency * 2
    }

    /// Time to append `bytes` into a host-memory buffer (the write-ahead
    /// log's ack path). Host memory is modeled at 64× the NIC bandwidth —
    /// the rough memcpy/GbE ratio of each hardware generation — so the
    /// price scales with the rest of the model and stays zero under
    /// [`CostModel::zero`].
    pub fn host_append(&self, bytes: u64) -> Duration {
        Self::at_rate(bytes, self.net_bandwidth.saturating_mul(64))
    }

    fn at_rate(bytes: u64, rate: u64) -> Duration {
        if rate == 0 || bytes == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((bytes as u128 * 1_000_000_000 / rate as u128) as u64)
        }
    }
}

impl Default for CostModel {
    /// Defaults to the Grid'5000-like model, the paper's testbed analogue.
    fn default() -> Self {
        Self::grid5000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let m = CostModel::zero();
        assert_eq!(m.net_transfer(1 << 30), Duration::ZERO);
        assert_eq!(m.disk_transfer(1 << 30), Duration::ZERO);
        assert_eq!(m.rpc_round_trip(), Duration::ZERO);
        assert_eq!(m.host_append(1 << 30), Duration::ZERO);
    }

    #[test]
    fn host_append_is_memory_speed() {
        let m = CostModel::grid5000();
        // 64x the NIC: appending is far cheaper than shipping the bytes.
        assert_eq!(m.host_append(64 << 20), m.net_transfer(1 << 20));
        assert!(m.host_append(1 << 20) < m.rpc_round_trip() * 2);
    }

    #[test]
    fn transfer_scales_linearly() {
        let m = CostModel::grid5000();
        let one = m.net_transfer(1024 * 1024);
        let four = m.net_transfer(4 * 1024 * 1024);
        assert_eq!(four, one * 4);
    }

    #[test]
    fn disk_includes_seek() {
        let m = CostModel::grid5000();
        let d = m.disk_transfer(1);
        assert!(d >= m.disk_seek);
        assert_eq!(m.disk_transfer(0), Duration::ZERO);
    }

    #[test]
    fn grid5000_magnitudes_are_plausible() {
        let m = CostModel::grid5000();
        // 1 MiB over GbE ≈ 9.1 ms; over disk ≈ 14.3 ms + seek.
        let net = m.net_transfer(1024 * 1024);
        assert!(net > Duration::from_millis(8) && net < Duration::from_millis(11));
        let disk = m.disk_transfer(1024 * 1024);
        assert!(disk > Duration::from_millis(13) && disk < Duration::from_millis(17));
    }

    #[test]
    fn fast_cluster_is_faster() {
        let g = CostModel::grid5000();
        let f = CostModel::fast_cluster();
        assert!(f.net_transfer(1 << 20) < g.net_transfer(1 << 20));
        assert!(f.disk_transfer(1 << 20) < g.disk_transfer(1 << 20));
        assert!(f.rpc_round_trip() < g.rpc_round_trip());
    }

    #[test]
    fn default_is_grid5000() {
        assert_eq!(CostModel::default(), CostModel::grid5000());
    }
}
