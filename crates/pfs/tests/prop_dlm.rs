//! Model-based property tests for the distributed lock manager: random
//! concurrent lock/work/unlock schedules must never grant conflicting
//! locks, never starve anyone, and always drain.

use atomio_pfs::{LockKind, LockManager};
use atomio_simgrid::clock::run_actors;
use atomio_simgrid::{CostModel, Metrics};
use atomio_types::{ByteRange, ClientId};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
struct GenOp {
    offset: u64,
    len: u64,
    exclusive: bool,
    hold_us: u64,
}

fn arb_ops() -> impl Strategy<Value = Vec<Vec<GenOp>>> {
    // Up to 6 actors, each with up to 5 lock operations.
    proptest::collection::vec(
        proptest::collection::vec(
            (0u64..400, 1u64..120, any::<bool>(), 0u64..200).prop_map(
                |(offset, len, exclusive, hold_us)| GenOp {
                    offset,
                    len,
                    exclusive,
                    hold_us,
                },
            ),
            1..5,
        ),
        2..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn no_conflicting_grants_ever(schedules in arb_ops()) {
        let mgr = Arc::new(LockManager::new(CostModel::zero(), Metrics::new()));
        // Track currently held locks; assert compatibility at every grant.
        let held: Arc<Mutex<Vec<(u64, ByteRange, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let mgr2 = Arc::clone(&mgr);
        let held2 = Arc::clone(&held);
        let schedules2 = schedules.clone();
        run_actors(schedules.len(), move |i, p| {
            for (k, op) in schedules2[i].iter().enumerate() {
                let kind = if op.exclusive { LockKind::Exclusive } else { LockKind::Shared };
                let range = ByteRange::new(op.offset, op.len);
                let h = mgr2.lock(p, ClientId::new(i as u64), range, kind);
                {
                    let mut held = held2.lock();
                    for (_, other_range, other_excl) in held.iter() {
                        let conflict = (op.exclusive || *other_excl)
                            && range.overlaps(*other_range);
                        assert!(!conflict, "conflicting grant: {range} vs {other_range}");
                    }
                    held.push((i as u64 * 100 + k as u64, range, op.exclusive));
                }
                p.sleep(Duration::from_micros(op.hold_us));
                {
                    let mut held = held2.lock();
                    let id = i as u64 * 100 + k as u64;
                    held.retain(|(hid, _, _)| *hid != id);
                }
                mgr2.unlock(p, h);
            }
        });
        // The table fully drains.
        prop_assert_eq!(mgr.granted_count(), 0);
        prop_assert_eq!(mgr.waiting_count(), 0);
    }

    #[test]
    fn every_request_is_eventually_granted(schedules in arb_ops()) {
        // Livelock/starvation check: the run completes within the
        // virtual-time horizon (the clock would panic otherwise), and
        // the grant counter matches the number of requests.
        let metrics = Metrics::new();
        let mgr = Arc::new(LockManager::new(CostModel::zero(), metrics.clone()));
        let total: usize = schedules.iter().map(Vec::len).sum();
        let mgr2 = Arc::clone(&mgr);
        let schedules2 = schedules.clone();
        run_actors(schedules.len(), move |i, p| {
            for op in &schedules2[i] {
                let kind = if op.exclusive { LockKind::Exclusive } else { LockKind::Shared };
                let h = mgr2.lock(p, ClientId::new(i as u64), ByteRange::new(op.offset, op.len), kind);
                p.sleep(Duration::from_micros(op.hold_us));
                mgr2.unlock(p, h);
            }
        });
        prop_assert_eq!(metrics.counter("dlm.locks_granted").get(), total as u64);
    }
}
