//! An augmented interval tree over byte ranges.
//!
//! The lock manager's conflict checks ask "does any granted lock overlap
//! this range?" thousands of times per second under load; a linear scan
//! of the grant table is O(n) per check. This tree keeps intervals in a
//! balanced (randomized, treap-style) BST ordered by start offset and
//! augmented with subtree max-end, giving O(log n) expected insertion,
//! deletion, and stabbing/overlap queries.
//!
//! Values are opaque `u64` ids (the lock ids), so the tree is reusable
//! wherever ranges need indexing.

use atomio_types::stamp::mix64;
use atomio_types::ByteRange;

#[derive(Debug, Clone)]
struct TreeNode {
    range: ByteRange,
    id: u64,
    /// Heap priority (randomized balance).
    priority: u64,
    /// Max `range.end()` in this subtree.
    max_end: u64,
    left: Option<Box<TreeNode>>,
    right: Option<Box<TreeNode>>,
}

impl TreeNode {
    fn new(range: ByteRange, id: u64) -> Box<Self> {
        Box::new(TreeNode {
            range,
            id,
            priority: mix64(id ^ range.offset.rotate_left(21) ^ 0xA24B_1CA9_5F8D_33E7),
            max_end: range.end(),
            left: None,
            right: None,
        })
    }

    fn update(&mut self) {
        self.max_end = self.range.end();
        if let Some(l) = &self.left {
            self.max_end = self.max_end.max(l.max_end);
        }
        if let Some(r) = &self.right {
            self.max_end = self.max_end.max(r.max_end);
        }
    }
}

/// An interval tree mapping byte ranges to `u64` ids.
///
/// Duplicate ranges are allowed (ids disambiguate); empty ranges are
/// rejected.
///
/// ```
/// use atomio_pfs::IntervalTree;
/// use atomio_types::ByteRange;
///
/// let mut t = IntervalTree::new();
/// t.insert(ByteRange::new(0, 10), 1);
/// t.insert(ByteRange::new(20, 10), 2);
/// assert!(t.overlaps(ByteRange::new(5, 10)));
/// assert_eq!(t.overlapping_ids(ByteRange::new(5, 20)), vec![1, 2]);
/// assert!(t.remove(ByteRange::new(0, 10), 1));
/// assert!(!t.overlaps(ByteRange::new(5, 10)));
/// ```
#[derive(Debug, Default)]
pub struct IntervalTree {
    root: Option<Box<TreeNode>>,
    len: usize,
}

impl IntervalTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an interval with its id.
    ///
    /// # Panics
    /// Panics on empty ranges (they can never conflict and would be
    /// unfindable).
    pub fn insert(&mut self, range: ByteRange, id: u64) {
        assert!(!range.is_empty(), "cannot index an empty range");
        let node = TreeNode::new(range, id);
        self.root = Some(Self::insert_node(self.root.take(), node));
        self.len += 1;
    }

    fn insert_node(root: Option<Box<TreeNode>>, node: Box<TreeNode>) -> Box<TreeNode> {
        let Some(mut root) = root else { return node };
        if node.priority > root.priority {
            // Node becomes the new subtree root: split `root` around it.
            let (l, r) = Self::split(Some(root), node.range.offset, node.id);
            let mut node = node;
            node.left = l;
            node.right = r;
            node.update();
            return node;
        }
        if (node.range.offset, node.id) < (root.range.offset, root.id) {
            root.left = Some(Self::insert_node(root.left.take(), node));
        } else {
            root.right = Some(Self::insert_node(root.right.take(), node));
        }
        root.update();
        root
    }

    /// Splits by `(offset, id)` key: left < key <= right.
    fn split(
        root: Option<Box<TreeNode>>,
        offset: u64,
        id: u64,
    ) -> (Option<Box<TreeNode>>, Option<Box<TreeNode>>) {
        let Some(mut root) = root else {
            return (None, None);
        };
        if (root.range.offset, root.id) < (offset, id) {
            let (l, r) = Self::split(root.right.take(), offset, id);
            root.right = l;
            root.update();
            (Some(root), r)
        } else {
            let (l, r) = Self::split(root.left.take(), offset, id);
            root.left = r;
            root.update();
            (l, Some(root))
        }
    }

    /// Removes the interval with the given range and id. Returns whether
    /// anything was removed.
    pub fn remove(&mut self, range: ByteRange, id: u64) -> bool {
        let (root, removed) = Self::remove_node(self.root.take(), range, id);
        self.root = root;
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_node(
        root: Option<Box<TreeNode>>,
        range: ByteRange,
        id: u64,
    ) -> (Option<Box<TreeNode>>, bool) {
        let Some(mut root) = root else {
            return (None, false);
        };
        if root.id == id && root.range == range {
            let merged = Self::merge(root.left.take(), root.right.take());
            return (merged, true);
        }
        let removed = if (range.offset, id) < (root.range.offset, root.id) {
            let (l, rm) = Self::remove_node(root.left.take(), range, id);
            root.left = l;
            rm
        } else {
            let (r, rm) = Self::remove_node(root.right.take(), range, id);
            root.right = r;
            rm
        };
        root.update();
        (Some(root), removed)
    }

    fn merge(left: Option<Box<TreeNode>>, right: Option<Box<TreeNode>>) -> Option<Box<TreeNode>> {
        match (left, right) {
            (None, r) => r,
            (l, None) => l,
            (Some(mut l), Some(mut r)) => {
                if l.priority > r.priority {
                    l.right = Self::merge(l.right.take(), Some(r));
                    l.update();
                    Some(l)
                } else {
                    r.left = Self::merge(Some(l), r.left.take());
                    r.update();
                    Some(r)
                }
            }
        }
    }

    /// True if any stored interval overlaps `range`.
    pub fn overlaps(&self, range: ByteRange) -> bool {
        if range.is_empty() {
            return false;
        }
        let mut found = false;
        Self::visit_overlaps(&self.root, range, &mut |_| {
            found = true;
            false // stop
        });
        found
    }

    /// Ids of all stored intervals overlapping `range`, in start order.
    pub fn overlapping_ids(&self, range: ByteRange) -> Vec<u64> {
        let mut out = Vec::new();
        if !range.is_empty() {
            Self::visit_overlaps(&self.root, range, &mut |id| {
                out.push(id);
                true // keep going
            });
        }
        out
    }

    /// In-order traversal of overlapping nodes; `f` returns false to stop
    /// early. Returns false when stopped.
    fn visit_overlaps(
        node: &Option<Box<TreeNode>>,
        range: ByteRange,
        f: &mut impl FnMut(u64) -> bool,
    ) -> bool {
        let Some(node) = node else { return true };
        // Prune: nothing in this subtree ends after range.offset.
        if node.max_end <= range.offset {
            return true;
        }
        if !Self::visit_overlaps(&node.left, range, f) {
            return false;
        }
        // Prune right subtree (and self) when starts are past the range.
        if node.range.offset >= range.end() {
            return true;
        }
        if node.range.overlaps(range) && !f(node.id) {
            return false;
        }
        Self::visit_overlaps(&node.right, range, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> ByteRange {
        ByteRange::from_bounds(s, e)
    }

    #[test]
    fn insert_query_remove() {
        let mut t = IntervalTree::new();
        assert!(t.is_empty());
        t.insert(r(0, 10), 1);
        t.insert(r(20, 30), 2);
        t.insert(r(5, 25), 3);
        assert_eq!(t.len(), 3);
        assert!(t.overlaps(r(8, 9)));
        assert_eq!(t.overlapping_ids(r(8, 22)), vec![1, 3, 2]);
        assert_eq!(t.overlapping_ids(r(10, 20)), vec![3]);
        assert!(!t.overlaps(r(30, 40)));
        assert!(t.remove(r(5, 25), 3));
        assert!(!t.remove(r(5, 25), 3), "double remove");
        assert_eq!(t.overlapping_ids(r(10, 20)), Vec::<u64>::new());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicate_ranges_distinct_ids() {
        let mut t = IntervalTree::new();
        t.insert(r(0, 10), 1);
        t.insert(r(0, 10), 2);
        assert_eq!(t.overlapping_ids(r(0, 1)).len(), 2);
        assert!(t.remove(r(0, 10), 1));
        assert_eq!(t.overlapping_ids(r(0, 1)), vec![2]);
    }

    #[test]
    fn adjacency_is_not_overlap() {
        let mut t = IntervalTree::new();
        t.insert(r(10, 20), 1);
        assert!(!t.overlaps(r(0, 10)));
        assert!(!t.overlaps(r(20, 30)));
        assert!(t.overlaps(r(19, 21)));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_range_rejected() {
        IntervalTree::new().insert(ByteRange::empty(), 1);
    }

    #[test]
    fn randomized_against_linear_model() {
        use atomio_simgrid::DetRng;
        let rng = DetRng::new(2024);
        let mut tree = IntervalTree::new();
        let mut model: Vec<(ByteRange, u64)> = Vec::new();
        for id in 0..2000u64 {
            let op = rng.next_below(3);
            if op < 2 || model.is_empty() {
                let off = rng.next_below(10_000);
                let len = 1 + rng.next_below(500);
                let range = ByteRange::new(off, len);
                tree.insert(range, id);
                model.push((range, id));
            } else {
                let victim = rng.next_below(model.len() as u64) as usize;
                let (range, vid) = model.swap_remove(victim);
                assert!(tree.remove(range, vid));
            }
            // Spot-check a random query every step.
            let q = ByteRange::new(rng.next_below(10_000), 1 + rng.next_below(800));
            let mut want: Vec<u64> = model
                .iter()
                .filter(|(r, _)| r.overlaps(q))
                .map(|&(_, id)| id)
                .collect();
            let mut got = tree.overlapping_ids(q);
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "query {q} diverged at step {id}");
            assert_eq!(tree.len(), model.len());
        }
    }
}
