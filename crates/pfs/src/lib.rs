//! # atomio-pfs
//!
//! The locking-based baseline: a Lustre/GPFS-style parallel file system
//! with in-place striped objects and a distributed lock manager, plus a
//! PVFS-style mode with no locking (and no atomicity) at all.
//!
//! This is the system the paper compares against: POSIX atomicity is
//! provided by **byte-range extent locks** held for the duration of the
//! transfer. For a non-contiguous request the client must lock the
//! *smallest contiguous range covering all regions* — including the gaps
//! it never touches — which is precisely the "unnecessary
//! synchronization" the paper's §III calls out.
//!
//! Components:
//! * [`Ost`] — an object storage target: a mutable, striped byte store
//!   behind serialized NIC/disk resources (same cost model as the
//!   versioning backend's providers, so comparisons are fair).
//! * [`LockManager`] — fair (no-overtake FIFO) extent locks with shared /
//!   exclusive modes, granted concurrently when compatible.
//! * [`PfsFile`] / [`ParallelFs`] — files striped round-robin over OSTs,
//!   with raw (unlocked) `pwrite`/`pread` and POSIX-atomic variants that
//!   take the proper extent lock.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dlm;
pub mod file;
pub mod interval;
pub mod ost;

pub use dlm::{LockHandle, LockKind, LockManager};
pub use file::{ParallelFs, PfsFile};
pub use interval::IntervalTree;
pub use ost::Ost;
