//! Files striped over OSTs, with raw and POSIX-atomic access paths.

use crate::dlm::{LockKind, LockManager};
use crate::ost::{FileId, Ost};
use atomio_simgrid::{CostModel, FaultInjector, Metrics, Participant};
use atomio_types::{ByteRange, ChunkGeometry, ClientId, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A Lustre-like parallel file system: a fleet of OSTs plus per-file lock
/// services.
#[derive(Debug)]
pub struct ParallelFs {
    osts: Vec<Arc<Ost>>,
    cost: CostModel,
    metrics: Metrics,
    next_file: AtomicU64,
    faults: Arc<FaultInjector>,
}

impl ParallelFs {
    /// Deploys a file system with `osts` storage targets.
    pub fn new(osts: usize, cost: CostModel, metrics: Metrics) -> Self {
        let faults = Arc::new(FaultInjector::default());
        Self::with_faults(osts, cost, metrics, faults)
    }

    /// Deploys with an external fault plane.
    pub fn with_faults(
        osts: usize,
        cost: CostModel,
        metrics: Metrics,
        faults: Arc<FaultInjector>,
    ) -> Self {
        Self::heterogeneous(vec![cost; osts], cost, metrics, faults)
    }

    /// Deploys with per-OST hardware (`ost_costs[i]` for OST `i`); the
    /// lock service uses `service_cost`.
    pub fn heterogeneous(
        ost_costs: Vec<CostModel>,
        service_cost: CostModel,
        metrics: Metrics,
        faults: Arc<FaultInjector>,
    ) -> Self {
        assert!(!ost_costs.is_empty(), "need at least one OST");
        ParallelFs {
            osts: ost_costs
                .into_iter()
                .enumerate()
                .map(|(i, cost)| {
                    Arc::new(Ost::new(
                        atomio_types::ProviderId::new(i as u64),
                        cost,
                        Arc::clone(&faults),
                    ))
                })
                .collect(),
            cost: service_cost,
            metrics,
            next_file: AtomicU64::new(1),
            faults,
        }
    }

    /// Creates a file striped over all OSTs with the given stripe size.
    pub fn create_file(&self, stripe_size: u64) -> PfsFile {
        let id = self.next_file.fetch_add(1, Ordering::Relaxed);
        PfsFile {
            id,
            geometry: ChunkGeometry::new(stripe_size),
            osts: self.osts.clone(),
            locks: Arc::new(LockManager::new(self.cost, self.metrics.clone())),
            size: AtomicU64::new(0),
        }
    }

    /// The OST fleet (for accounting).
    pub fn osts(&self) -> &[Arc<Ost>] {
        &self.osts
    }

    /// The fault plane.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }
}

/// One striped file.
///
/// `pwrite`/`pread` are **raw**: they move bytes without any locking (the
/// PVFS-like mode — fast, but concurrent overlapping writes can tear).
/// `posix_pwrite`/`posix_pread` take the covering extent lock for the
/// duration of the transfer, giving POSIX per-call atomicity the way
/// Lustre clients do.
#[derive(Debug)]
pub struct PfsFile {
    id: FileId,
    geometry: ChunkGeometry,
    osts: Vec<Arc<Ost>>,
    locks: Arc<LockManager>,
    size: AtomicU64,
}

impl PfsFile {
    /// The file's id.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// Stripe geometry.
    pub fn geometry(&self) -> ChunkGeometry {
        self.geometry
    }

    /// The file's lock service — used directly by MPI-I/O drivers that
    /// lock at a granularity other than one call (covering range of a
    /// non-contiguous request, whole file, ...).
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// Current file size (highest byte ever written).
    pub fn size(&self) -> u64 {
        self.size.load(Ordering::Relaxed)
    }

    fn ost_for_stripe(&self, stripe: u64) -> &Arc<Ost> {
        &self.osts[(stripe % self.osts.len() as u64) as usize]
    }

    /// Raw positional write: stripes `data` over the OSTs, no locking.
    pub fn pwrite(&self, p: &Participant, offset: u64, data: &[u8]) -> Result<()> {
        let range = ByteRange::new(offset, data.len() as u64);
        if range.is_empty() {
            return Ok(());
        }
        for span in self.geometry.split_range(range) {
            let ost = self.ost_for_stripe(span.index);
            let lo = (span.absolute.offset - offset) as usize;
            let hi = (span.absolute.end() - offset) as usize;
            ost.write_stripe(p, self.id, span.index, span.relative.offset, &data[lo..hi])?;
        }
        self.size.fetch_max(range.end(), Ordering::Relaxed);
        Ok(())
    }

    /// Raw positional read: gathers stripes, zero-filling sparse holes.
    pub fn pread(&self, p: &Participant, offset: u64, len: u64) -> Result<Vec<u8>> {
        let range = ByteRange::new(offset, len);
        let mut out = vec![0u8; len as usize];
        for span in self.geometry.split_range(range) {
            let ost = self.ost_for_stripe(span.index);
            let data = ost.read_stripe(p, self.id, span.index, span.relative)?;
            let lo = (span.absolute.offset - offset) as usize;
            out[lo..lo + data.len()].copy_from_slice(&data);
        }
        Ok(out)
    }

    /// POSIX-atomic positional write: takes the exclusive extent lock
    /// covering the call's range for the duration of the transfer.
    pub fn posix_pwrite(
        &self,
        p: &Participant,
        client: ClientId,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        let handle = self.locks.lock(
            p,
            client,
            ByteRange::new(offset, data.len() as u64),
            LockKind::Exclusive,
        );
        let result = self.pwrite(p, offset, data);
        self.locks.unlock(p, handle);
        result
    }

    /// POSIX-atomic positional read (shared extent lock).
    pub fn posix_pread(
        &self,
        p: &Participant,
        client: ClientId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let handle = self
            .locks
            .lock(p, client, ByteRange::new(offset, len), LockKind::Shared);
        let result = self.pread(p, offset, len);
        self.locks.unlock(p, handle);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;
    use std::time::Duration;

    fn fs(osts: usize, cost: CostModel) -> ParallelFs {
        ParallelFs::new(osts, cost, Metrics::new())
    }

    #[test]
    fn striped_roundtrip() {
        let fs = fs(3, CostModel::zero());
        let f = fs.create_file(64);
        run_actors(1, |_, p| {
            let data: Vec<u8> = (0..=255).cycle().take(300).collect();
            f.pwrite(p, 10, &data).unwrap();
            assert_eq!(f.pread(p, 10, 300).unwrap(), data);
            assert_eq!(f.size(), 310);
        });
    }

    #[test]
    fn sparse_reads_are_zero() {
        let fs = fs(2, CostModel::zero());
        let f = fs.create_file(64);
        run_actors(1, |_, p| {
            f.pwrite(p, 200, b"end").unwrap();
            assert_eq!(f.pread(p, 0, 4).unwrap(), vec![0u8; 4]);
            let got = f.pread(p, 198, 5).unwrap();
            assert_eq!(got, b"\0\0end");
        });
    }

    #[test]
    fn zero_len_ops_are_noops() {
        let fs = fs(2, CostModel::zero());
        let f = fs.create_file(64);
        run_actors(1, |_, p| {
            f.pwrite(p, 5, b"").unwrap();
            assert_eq!(f.size(), 0);
            assert_eq!(f.pread(p, 5, 0).unwrap(), Vec::<u8>::new());
            f.posix_pwrite(p, ClientId::new(0), 5, b"").unwrap();
            assert_eq!(
                f.posix_pread(p, ClientId::new(0), 5, 0).unwrap(),
                Vec::<u8>::new()
            );
        });
    }

    #[test]
    fn stripes_map_round_robin_over_osts() {
        let fs = fs(4, CostModel::zero());
        let f = fs.create_file(64);
        run_actors(1, |_, p| {
            // 4 stripes of 64 bytes → one per OST.
            f.pwrite(p, 0, &vec![7u8; 256]).unwrap();
        });
        for ost in fs.osts() {
            assert_eq!(ost.bytes_stored(), 64, "uneven striping");
        }
    }

    #[test]
    fn striping_scales_bandwidth() {
        let cost = CostModel::grid5000();
        let time_with = |osts: usize| {
            let fs = fs(osts, cost);
            let f = Arc::new(fs.create_file(1 << 20));
            let fc = Arc::clone(&f);
            let (_, total) = run_actors(8, move |i, p| {
                // Disjoint 1 MiB regions, each exactly one stripe.
                fc.pwrite(p, i as u64 * (1 << 20), &vec![0u8; 1 << 20])
                    .unwrap();
            });
            total
        };
        let t1 = time_with(1);
        let t8 = time_with(8);
        let ratio = t1.as_secs_f64() / t8.as_secs_f64();
        assert!(ratio > 5.0, "striping speedup only {ratio:.2}");
    }

    #[test]
    fn posix_pwrite_serializes_overlaps() {
        let fs = fs(4, CostModel::grid5000());
        let f = Arc::new(fs.create_file(64 * 1024));
        let fc = Arc::clone(&f);
        let cost = CostModel::grid5000();
        let (_, total) = run_actors(4, move |i, p| {
            // All four writers hit the same 1 MiB range.
            fc.posix_pwrite(p, ClientId::new(i as u64), 0, &vec![i as u8; 1 << 20])
                .unwrap();
        });
        // Each transfer is lock-serialized: at least 4× the single disk
        // time for 1 MiB spread over 16 stripes/4 OSTs (4 stripes per OST
        // serialized on its disk).
        let per_write_disk = cost.disk_transfer(64 * 1024).as_secs_f64() * 4.0;
        assert!(
            total.as_secs_f64() >= per_write_disk * 4.0 * 0.9,
            "locking did not serialize: {total:?}"
        );
        let _ = Duration::ZERO;
    }

    #[test]
    fn raw_pwrite_overlaps_do_not_serialize() {
        let cost = CostModel::grid5000();
        let serialized = {
            let fs = fs(4, cost);
            let f = Arc::new(fs.create_file(64 * 1024));
            let fc = Arc::clone(&f);
            run_actors(4, move |i, p| {
                fc.posix_pwrite(p, ClientId::new(i as u64), 0, &vec![i as u8; 1 << 20])
                    .unwrap();
            })
            .1
        };
        let raw = {
            let fs = fs(4, cost);
            let f = Arc::new(fs.create_file(64 * 1024));
            let fc = Arc::clone(&f);
            run_actors(4, move |i, p| {
                fc.pwrite(p, 0, &vec![i as u8; 1 << 20]).unwrap();
            })
            .1
        };
        // Raw (PVFS-like) mode is markedly faster than lock-serialized
        // mode under full overlap... at the price of atomicity.
        assert!(
            serialized.as_secs_f64() > raw.as_secs_f64() * 2.0,
            "expected lock serialization cost: raw {raw:?} vs locked {serialized:?}"
        );
    }
}
