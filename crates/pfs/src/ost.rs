//! Object storage targets: mutable striped byte stores.
//!
//! Unlike the versioning backend's immutable chunk providers, an OST
//! updates stripe objects **in place** — which is exactly why the
//! baseline needs locks for atomicity. Costs (NIC, disk) use the same
//! model as the versioning providers so the comparison isolates the
//! concurrency-control difference.

use atomio_simgrid::{CostModel, FaultInjector, Participant, Resource};
use atomio_types::{ByteRange, Error, ProviderId, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a file within the parallel file system.
pub type FileId = u64;

/// A mutable stripe object: independently lockable bytes.
type StripeObject = Arc<Mutex<Vec<u8>>>;

/// One object storage target.
#[derive(Debug)]
pub struct Ost {
    id: ProviderId,
    cost: CostModel,
    nic: Resource,
    disk: Resource,
    /// Stripe objects: (file, stripe index) → mutable bytes.
    objects: RwLock<HashMap<(FileId, u64), StripeObject>>,
    faults: Arc<FaultInjector>,
}

impl Ost {
    /// Creates an OST.
    pub fn new(id: ProviderId, cost: CostModel, faults: Arc<FaultInjector>) -> Self {
        Ost {
            id,
            cost,
            nic: Resource::new(format!("ost-{}/nic", id.raw())),
            disk: Resource::new(format!("ost-{}/disk", id.raw())),
            objects: RwLock::new(HashMap::new()),
            faults,
        }
    }

    /// This OST's id.
    pub fn id(&self) -> ProviderId {
        self.id
    }

    fn check_alive(&self) -> Result<()> {
        if self.faults.is_failed(self.id) {
            Err(Error::ProviderFailed(self.id))
        } else {
            Ok(())
        }
    }

    fn object(&self, file: FileId, stripe: u64) -> StripeObject {
        if let Some(obj) = self.objects.read().get(&(file, stripe)) {
            return Arc::clone(obj);
        }
        let mut objects = self.objects.write();
        Arc::clone(objects.entry((file, stripe)).or_default())
    }

    /// Writes `data` into a stripe object at `range.offset`
    /// (stripe-relative), growing the object with zeros as needed.
    pub fn write_stripe(
        &self,
        p: &Participant,
        file: FileId,
        stripe: u64,
        offset: u64,
        data: &[u8],
    ) -> Result<()> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let len = data.len() as u64;
        self.nic.serve(p, self.cost.net_transfer(len));
        self.disk.serve(p, self.cost.disk_transfer(len));
        self.check_alive()?;
        let obj = self.object(file, stripe);
        let mut bytes = obj.lock();
        let end = (offset + len) as usize;
        if bytes.len() < end {
            bytes.resize(end, 0);
        }
        bytes[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    /// Reads `range` (stripe-relative) from a stripe object. Bytes past
    /// the object's current extent read as zeros (sparse files).
    pub fn read_stripe(
        &self,
        p: &Participant,
        file: FileId,
        stripe: u64,
        range: ByteRange,
    ) -> Result<Vec<u8>> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        self.disk.serve(p, self.cost.disk_transfer(range.len));
        self.nic.serve(p, self.cost.net_transfer(range.len));
        let mut out = vec![0u8; range.len as usize];
        if let Some(obj) = self.objects.read().get(&(file, stripe)) {
            let bytes = obj.lock();
            let have = bytes.len() as u64;
            if range.offset < have {
                let end = range.end().min(have);
                let n = (end - range.offset) as usize;
                out[..n].copy_from_slice(&bytes[range.offset as usize..end as usize]);
            }
        }
        Ok(out)
    }

    /// Total bytes currently held by this OST.
    pub fn bytes_stored(&self) -> u64 {
        self.objects
            .read()
            .values()
            .map(|obj| obj.lock().len() as u64)
            .sum()
    }

    /// The OST's disk resource (utilization accounting).
    pub fn disk(&self) -> &Resource {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;
    use std::time::Duration;

    fn ost() -> Ost {
        Ost::new(
            ProviderId::new(0),
            CostModel::zero(),
            Arc::new(FaultInjector::default()),
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let o = ost();
        run_actors(1, |_, p| {
            o.write_stripe(p, 1, 0, 10, b"hello").unwrap();
            let got = o.read_stripe(p, 1, 0, ByteRange::new(10, 5)).unwrap();
            assert_eq!(got, b"hello");
            // Sparse prefix reads as zeros.
            let pre = o.read_stripe(p, 1, 0, ByteRange::new(0, 10)).unwrap();
            assert_eq!(pre, vec![0u8; 10]);
        });
    }

    #[test]
    fn in_place_overwrite() {
        let o = ost();
        run_actors(1, |_, p| {
            o.write_stripe(p, 1, 0, 0, b"aaaa").unwrap();
            o.write_stripe(p, 1, 0, 2, b"bb").unwrap();
            let got = o.read_stripe(p, 1, 0, ByteRange::new(0, 4)).unwrap();
            assert_eq!(got, b"aabb");
        });
        assert_eq!(o.bytes_stored(), 4, "in-place mutation must not grow");
    }

    #[test]
    fn stripes_and_files_are_independent() {
        let o = ost();
        run_actors(1, |_, p| {
            o.write_stripe(p, 1, 0, 0, b"xx").unwrap();
            o.write_stripe(p, 1, 1, 0, b"yy").unwrap();
            o.write_stripe(p, 2, 0, 0, b"zz").unwrap();
            assert_eq!(o.read_stripe(p, 1, 0, ByteRange::new(0, 2)).unwrap(), b"xx");
            assert_eq!(o.read_stripe(p, 1, 1, ByteRange::new(0, 2)).unwrap(), b"yy");
            assert_eq!(o.read_stripe(p, 2, 0, ByteRange::new(0, 2)).unwrap(), b"zz");
        });
    }

    #[test]
    fn read_past_end_is_zeros() {
        let o = ost();
        run_actors(1, |_, p| {
            o.write_stripe(p, 1, 0, 0, b"ab").unwrap();
            let got = o.read_stripe(p, 1, 0, ByteRange::new(0, 6)).unwrap();
            assert_eq!(got, b"ab\0\0\0\0");
            // Entirely unknown object: all zeros.
            let got = o.read_stripe(p, 9, 9, ByteRange::new(0, 3)).unwrap();
            assert_eq!(got, vec![0u8; 3]);
        });
    }

    #[test]
    fn failed_ost_refuses() {
        let faults = Arc::new(FaultInjector::default());
        let o = Ost::new(ProviderId::new(7), CostModel::zero(), Arc::clone(&faults));
        faults.fail_provider(ProviderId::new(7));
        run_actors(1, |_, p| {
            assert!(matches!(
                o.write_stripe(p, 1, 0, 0, b"x"),
                Err(Error::ProviderFailed(_))
            ));
            assert!(matches!(
                o.read_stripe(p, 1, 0, ByteRange::new(0, 1)),
                Err(Error::ProviderFailed(_))
            ));
        });
    }

    #[test]
    fn concurrent_writes_to_one_ost_serialize_on_disk() {
        let cost = CostModel::grid5000();
        let o = Arc::new(Ost::new(
            ProviderId::new(0),
            cost,
            Arc::new(FaultInjector::default()),
        ));
        let oc = Arc::clone(&o);
        let (_, total) = run_actors(4, move |i, p| {
            oc.write_stripe(p, 1, i as u64, 0, &vec![0u8; 1 << 20])
                .unwrap();
        });
        let per = cost.disk_transfer(1 << 20);
        assert!(total >= per * 4, "disk did not serialize: {total:?}");
        let _ = Duration::ZERO;
    }
}
