//! The distributed lock manager: fair extent locks.
//!
//! Models the byte-range locking service of Lustre/GPFS: shared and
//! exclusive locks over byte ranges of one file, granted concurrently
//! when compatible, queued fairly (FIFO, no overtaking of a conflicting
//! earlier request — so writers cannot be starved by a stream of
//! readers).
//!
//! Waiting is expressed in virtual time (polling), but order is decided
//! by the explicit queue, so fairness does not depend on poll timing.

use crate::interval::IntervalTree;
use atomio_simgrid::{CostModel, Metrics, Participant, Resource};
use atomio_types::{ByteRange, ClientId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lock compatibility mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Concurrent readers allowed.
    Shared,
    /// Writers exclude everything.
    Exclusive,
}

impl LockKind {
    fn conflicts_with(self, other: LockKind) -> bool {
        matches!(
            (self, other),
            (LockKind::Exclusive, _) | (_, LockKind::Exclusive)
        )
    }
}

#[derive(Debug, Clone)]
struct LockReq {
    id: u64,
    owner: ClientId,
    range: ByteRange,
    kind: LockKind,
}

fn conflicts(a: &LockReq, b: &LockReq) -> bool {
    a.kind.conflicts_with(b.kind) && a.range.overlaps(b.range)
}

#[derive(Debug, Default)]
struct LockTable {
    granted: Vec<LockReq>,
    queue: VecDeque<LockReq>,
    /// Interval indexes over the granted set, by mode: a request
    /// conflicts with a granted lock iff it overlaps the exclusive index,
    /// or (being exclusive itself) overlaps the shared index. O(log n)
    /// per conflict probe instead of scanning the grant table.
    granted_shared: IntervalTree,
    granted_exclusive: IntervalTree,
}

impl LockTable {
    fn conflicts_with_granted(&self, req: &LockReq) -> bool {
        match req.kind {
            LockKind::Exclusive => {
                self.granted_exclusive.overlaps(req.range)
                    || self.granted_shared.overlaps(req.range)
            }
            LockKind::Shared => self.granted_exclusive.overlaps(req.range),
        }
    }

    fn index_of(&mut self, kind: LockKind) -> &mut IntervalTree {
        match kind {
            LockKind::Shared => &mut self.granted_shared,
            LockKind::Exclusive => &mut self.granted_exclusive,
        }
    }

    /// Grants every queued request that conflicts with no granted lock
    /// and no earlier-queued request (fair, no overtaking on conflict).
    fn promote(&mut self, newly_granted: &mut Vec<u64>) {
        let mut blocked: Vec<LockReq> = Vec::new();
        let mut still_waiting = VecDeque::new();
        for req in std::mem::take(&mut self.queue) {
            let conflict_granted = self.conflicts_with_granted(&req);
            let conflict_earlier = blocked.iter().any(|w| conflicts(w, &req));
            if conflict_granted || conflict_earlier {
                blocked.push(req.clone());
                still_waiting.push_back(req);
            } else {
                newly_granted.push(req.id);
                self.index_of(req.kind).insert(req.range, req.id);
                self.granted.push(req);
            }
        }
        self.queue = still_waiting;
    }

    fn is_granted(&self, id: u64) -> bool {
        self.granted.iter().any(|g| g.id == id)
    }
}

/// A fair extent-lock service for one file.
///
/// ```
/// use atomio_pfs::{LockKind, LockManager};
/// use atomio_simgrid::{CostModel, Metrics, SimClock};
/// use atomio_types::{ByteRange, ClientId};
///
/// let mgr = LockManager::new(CostModel::zero(), Metrics::new());
/// let clock = SimClock::new();
/// let p = clock.register();
/// // Two disjoint exclusive locks coexist; release drains the table.
/// let a = mgr.lock(&p, ClientId::new(0), ByteRange::new(0, 100), LockKind::Exclusive);
/// let b = mgr.lock(&p, ClientId::new(1), ByteRange::new(100, 100), LockKind::Exclusive);
/// assert_eq!(mgr.granted_count(), 2);
/// mgr.unlock(&p, a);
/// mgr.unlock(&p, b);
/// assert_eq!(mgr.granted_count(), 0);
/// ```
#[derive(Debug)]
pub struct LockManager {
    cost: CostModel,
    cpu: Resource,
    table: Mutex<LockTable>,
    next_id: AtomicU64,
    metrics: Metrics,
}

/// A granted lock; release it with [`LockManager::unlock`].
///
/// Deliberately not RAII: the simulated client must pay the unlock RPC
/// explicitly, and leaked locks are a bug we want tests to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "locks must be released with LockManager::unlock"]
pub struct LockHandle {
    id: u64,
    /// The locked range (exposed for assertions and accounting).
    pub range: ByteRange,
    /// The lock mode.
    pub kind: LockKind,
}

impl LockManager {
    /// Creates a lock service.
    pub fn new(cost: CostModel, metrics: Metrics) -> Self {
        LockManager {
            cost,
            cpu: Resource::new("dlm/cpu"),
            table: Mutex::new(LockTable::default()),
            next_id: AtomicU64::new(1),
            metrics,
        }
    }

    /// Acquires an extent lock, blocking (in virtual time) until granted.
    pub fn lock(
        &self,
        p: &Participant,
        owner: ClientId,
        range: ByteRange,
        kind: LockKind,
    ) -> LockHandle {
        assert!(!range.is_empty(), "cannot lock an empty range");
        let started = p.now();
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut table = self.table.lock();
            table.queue.push_back(LockReq {
                id,
                owner,
                range,
                kind,
            });
            let mut granted = Vec::new();
            table.promote(&mut granted);
        }
        p.poll_until(|| self.table.lock().is_granted(id).then_some(()));
        self.metrics.counter("dlm.locks_granted").inc();
        self.metrics
            .time_stat("dlm.lock_wait")
            .record(p.now() - started);
        LockHandle { id, range, kind }
    }

    /// Like [`Self::lock`] but gives up after `timeout` of virtual time,
    /// removing the queued request so it can never be granted later.
    pub fn lock_timeout(
        &self,
        p: &Participant,
        owner: ClientId,
        range: ByteRange,
        kind: LockKind,
        timeout: std::time::Duration,
    ) -> atomio_types::Result<LockHandle> {
        assert!(!range.is_empty(), "cannot lock an empty range");
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut table = self.table.lock();
            table.queue.push_back(LockReq {
                id,
                owner,
                range,
                kind,
            });
            let mut granted = Vec::new();
            table.promote(&mut granted);
        }
        let granted = p
            .poll_until_timeout(timeout, || self.table.lock().is_granted(id).then_some(()))
            .is_some();
        if !granted {
            let mut table = self.table.lock();
            // Between the timeout and this cancellation the grant may
            // have raced in; honour it if so.
            if table.is_granted(id) {
                drop(table);
            } else {
                let holder = table
                    .granted
                    .iter()
                    .find(|g| {
                        conflicts(
                            g,
                            &LockReq {
                                id,
                                owner,
                                range,
                                kind,
                            },
                        )
                    })
                    .map(|g| atomio_types::error::ClientHint(g.owner.raw()));
                table.queue.retain(|r| r.id != id);
                let mut woken = Vec::new();
                table.promote(&mut woken);
                return Err(atomio_types::Error::LockTimeout {
                    holder_hint: holder,
                });
            }
        }
        self.metrics.counter("dlm.locks_granted").inc();
        Ok(LockHandle { id, range, kind })
    }

    /// Releases a granted lock.
    ///
    /// # Panics
    /// Panics if the handle is not currently granted (double unlock).
    pub fn unlock(&self, p: &Participant, handle: LockHandle) {
        p.sleep(self.cost.rpc_round_trip());
        self.cpu.serve(p, self.cost.meta_op);
        let mut table = self.table.lock();
        let before = table.granted.len();
        table.granted.retain(|g| g.id != handle.id);
        assert!(
            table.granted.len() + 1 == before,
            "unlock of a lock that is not granted"
        );
        let removed = table.index_of(handle.kind).remove(handle.range, handle.id);
        debug_assert!(removed, "grant table and interval index diverged");
        let mut granted = Vec::new();
        table.promote(&mut granted);
    }

    /// Number of currently granted locks.
    pub fn granted_count(&self) -> usize {
        self.table.lock().granted.len()
    }

    /// Number of currently queued (waiting) requests.
    pub fn waiting_count(&self) -> usize {
        self.table.lock().queue.len()
    }

    /// Owners of the currently granted locks (diagnostics).
    pub fn holders(&self) -> Vec<ClientId> {
        self.table.lock().granted.iter().map(|g| g.owner).collect()
    }
}

/// Shared handle type used by files.
pub type SharedLockManager = Arc<LockManager>;

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::time::Duration;

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::new(CostModel::zero(), Metrics::new()))
    }

    #[test]
    fn exclusive_locks_on_overlap_serialize() {
        let m = mgr();
        let active = Counter::new(0);
        let peak = Counter::new(0);
        run_actors(4, |i, p| {
            let h = m.lock(
                p,
                ClientId::new(i as u64),
                ByteRange::new(0, 100),
                LockKind::Exclusive,
            );
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            p.sleep(Duration::from_millis(1));
            active.fetch_sub(1, Ordering::SeqCst);
            m.unlock(p, h);
        });
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "exclusive overlap ran concurrently"
        );
        assert_eq!(m.granted_count(), 0);
        assert_eq!(m.waiting_count(), 0);
    }

    #[test]
    fn disjoint_exclusive_locks_run_concurrently() {
        let m = mgr();
        let (_, total) = run_actors(4, |i, p| {
            let h = m.lock(
                p,
                ClientId::new(i as u64),
                ByteRange::new(i as u64 * 100, 100),
                LockKind::Exclusive,
            );
            p.sleep(Duration::from_millis(5));
            m.unlock(p, h);
        });
        assert!(
            total < Duration::from_millis(10),
            "disjoint locks serialized: {total:?}"
        );
    }

    #[test]
    fn shared_locks_coexist_and_block_writers() {
        let m = mgr();
        let (_, total) = run_actors(3, |i, p| {
            if i < 2 {
                // Two readers hold overlapping shared locks together.
                let h = m.lock(
                    p,
                    ClientId::new(i as u64),
                    ByteRange::new(0, 100),
                    LockKind::Shared,
                );
                p.sleep(Duration::from_millis(5));
                m.unlock(p, h);
            } else {
                // The writer (queued after both) must wait for both.
                p.sleep(Duration::from_millis(1));
                let h = m.lock(
                    p,
                    ClientId::new(9),
                    ByteRange::new(50, 10),
                    LockKind::Exclusive,
                );
                m.unlock(p, h);
            }
        });
        // Readers overlap (5ms), writer finishes after them.
        assert!(total >= Duration::from_millis(5));
        assert!(total < Duration::from_millis(8), "{total:?}");
    }

    #[test]
    fn fifo_prevents_reader_overtaking_writer() {
        // reader A holds [0,100); writer W queues for it; reader B arrives
        // later and overlaps W's range: B must NOT overtake W.
        let m = mgr();
        let order = Mutex::new(Vec::new());
        run_actors(3, |i, p| match i {
            0 => {
                let h = m.lock(
                    p,
                    ClientId::new(0),
                    ByteRange::new(0, 100),
                    LockKind::Shared,
                );
                p.sleep(Duration::from_millis(4));
                m.unlock(p, h);
                order.lock().push('A');
            }
            1 => {
                p.sleep(Duration::from_millis(1));
                let h = m.lock(
                    p,
                    ClientId::new(1),
                    ByteRange::new(0, 100),
                    LockKind::Exclusive,
                );
                order.lock().push('W');
                m.unlock(p, h);
            }
            _ => {
                p.sleep(Duration::from_millis(2));
                let h = m.lock(
                    p,
                    ClientId::new(2),
                    ByteRange::new(0, 100),
                    LockKind::Shared,
                );
                order.lock().push('B');
                m.unlock(p, h);
            }
        });
        let got: String = order.lock().iter().collect();
        assert_eq!(got, "AWB", "reader B overtook the queued writer");
    }

    #[test]
    fn covering_lock_blocks_untouched_gap() {
        // The pathology the paper describes: a covering lock on [0,300)
        // for a request that only touches [0,100) and [200,300) still
        // blocks an independent writer of the gap [100,200).
        let m = mgr();
        let (_, total) = run_actors(2, |i, p| {
            if i == 0 {
                let h = m.lock(
                    p,
                    ClientId::new(0),
                    ByteRange::new(0, 300),
                    LockKind::Exclusive,
                );
                p.sleep(Duration::from_millis(5));
                m.unlock(p, h);
            } else {
                p.sleep(Duration::from_millis(1));
                let h = m.lock(
                    p,
                    ClientId::new(1),
                    ByteRange::new(100, 100),
                    LockKind::Exclusive,
                );
                p.sleep(Duration::from_millis(5));
                m.unlock(p, h);
            }
        });
        assert!(
            total >= Duration::from_millis(10),
            "gap writer was not blocked: {total:?}"
        );
    }

    #[test]
    #[should_panic(expected = "not granted")]
    fn double_unlock_panics() {
        // Direct single-thread use (zero cost model never sleeps, so a
        // registered participant on the test thread is safe).
        let m = mgr();
        let clock = atomio_simgrid::SimClock::new();
        let p = clock.register();
        let h = m.lock(
            &p,
            ClientId::new(0),
            ByteRange::new(0, 10),
            LockKind::Exclusive,
        );
        assert_eq!(m.holders(), vec![ClientId::new(0)]);
        m.unlock(&p, h);
        m.unlock(&p, h);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_range_rejected() {
        let m = mgr();
        let clock = atomio_simgrid::SimClock::new();
        let p = clock.register();
        let _ = m.lock(&p, ClientId::new(0), ByteRange::empty(), LockKind::Shared);
    }

    #[test]
    fn lock_timeout_expires_and_unblocks_queue() {
        let m = mgr();
        run_actors(2, |i, p| {
            if i == 0 {
                let h = m.lock(
                    p,
                    ClientId::new(0),
                    ByteRange::new(0, 100),
                    LockKind::Exclusive,
                );
                p.sleep(Duration::from_millis(10));
                m.unlock(p, h);
            } else {
                p.sleep(Duration::from_millis(1));
                // Times out long before the holder releases.
                let err = m
                    .lock_timeout(
                        p,
                        ClientId::new(1),
                        ByteRange::new(50, 10),
                        LockKind::Exclusive,
                        Duration::from_millis(2),
                    )
                    .unwrap_err();
                assert!(matches!(
                    err,
                    atomio_types::Error::LockTimeout {
                        holder_hint: Some(_)
                    }
                ));
                // A later retry (after the holder is gone) succeeds.
                p.sleep(Duration::from_millis(10));
                let h = m
                    .lock_timeout(
                        p,
                        ClientId::new(1),
                        ByteRange::new(50, 10),
                        LockKind::Exclusive,
                        Duration::from_millis(2),
                    )
                    .unwrap();
                m.unlock(p, h);
            }
        });
        assert_eq!(m.granted_count(), 0);
        assert_eq!(
            m.waiting_count(),
            0,
            "timed-out request must leave the queue"
        );
    }

    #[test]
    fn lock_timeout_grants_immediately_when_free() {
        let m = mgr();
        run_actors(1, |_, p| {
            let h = m
                .lock_timeout(
                    p,
                    ClientId::new(0),
                    ByteRange::new(0, 10),
                    LockKind::Shared,
                    Duration::from_millis(1),
                )
                .unwrap();
            m.unlock(p, h);
        });
    }

    #[test]
    fn lock_wait_metric_accumulates() {
        let metrics = Metrics::new();
        let m = Arc::new(LockManager::new(CostModel::zero(), metrics.clone()));
        run_actors(2, |i, p| {
            let h = m.lock(
                p,
                ClientId::new(i as u64),
                ByteRange::new(0, 10),
                LockKind::Exclusive,
            );
            p.sleep(Duration::from_millis(2));
            m.unlock(p, h);
        });
        assert_eq!(metrics.counter("dlm.locks_granted").get(), 2);
        // The second locker waited ~2ms.
        let wait = metrics.time_stat("dlm.lock_wait");
        assert!(wait.max() >= Duration::from_millis(2));
    }
}
