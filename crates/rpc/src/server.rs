//! Server-side request dispatch and the TCP accept loop.
//!
//! A [`Service`] maps one decoded request to one response; the two
//! concrete services mirror the paper's two server roles:
//!
//! * [`ProviderService`] hosts a fleet of [`DataProvider`]s (chunk ops).
//! * [`MetaService`] hosts [`MetaStore`] shards plus one lazily-created
//!   [`VersionManager`] per blob (metadata and version ops).
//!
//! Servers run **zero-cost** device models: a real deployment's latency
//! comes from the real sockets, not from the simulation. The virtual
//! `arrival` instants clients pass through the protocol therefore echo
//! back unchanged, keeping remote and in-process bookkeeping aligned.
//!
//! [`RpcServer`] is the hosting shell with two front-ends (the
//! [`ServerMode`] knob). **Threads** (the historical default): a
//! nonblocking accept loop on a dedicated thread, one reader thread per
//! connection. **Reactor**: a single epoll thread owns the listener and
//! every accepted socket, so server thread count stays constant no
//! matter how many clients connect (see `reactor.rs`). Both share
//! [`RpcServer::stop`], which also severs accepted connections so
//! failover tests can kill a live server deterministically, and both
//! enforce admission control: past [`crate::RpcConfig::max_conns`] open
//! connections a newcomer is accepted, answered with a typed
//! [`Response::Busy`], and closed.
//!
//! Either front-end feeds one bounded dispatch pool shared by all
//! connections ([`crate::RpcConfig::server_workers`], default 4):
//! requests from one multiplexed client dispatch concurrently, and
//! responses are written back in **completion** order, tagged with the
//! request id the client sent — the id, not arrival order, is what
//! routes a response to its caller. Front-ends hand workers whole
//! *batches* of buffered frames, so a backlogged connection pays one
//! dispatch handoff and one response write per burst rather than per
//! request.

use crate::proto::{BlobExport, Request, Response};
use crate::reactor::{run_reactor, ReactorShared};
use crate::transport::{counters, RpcConfig, ServerMode};
use crate::wire;
use atomio_core::{slot_for_blob, SlotMap};
use atomio_meta::{node_store_for, LocalNodeStore, TreeConfig, VersionHistory};
use atomio_provider::{chunk_store_for, ChunkStore, DataProvider};
use atomio_simgrid::{ClientNics, CostModel, FaultInjector, Metrics};
use atomio_types::{
    BackendConfig, ByteRange, Error, FsyncPolicy, ProviderId, Result, RetentionPolicy,
    TransportErrorKind,
};
use atomio_version::{TicketMode, VersionManager};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Maps one request (plus out-of-band payload) to one response (plus
/// out-of-band payload). Implementations never panic on bad input: every
/// failure becomes a [`Response::Fail`].
pub trait Service: Send + Sync + std::fmt::Debug {
    /// Handles one request.
    fn handle(&self, request: Request, payload: Bytes) -> (Response, Bytes);
}

fn fail(error: Error) -> (Response, Bytes) {
    (Response::Fail { error }, Bytes::new())
}

fn ok(response: Response) -> (Response, Bytes) {
    (response, Bytes::new())
}

fn unsupported(role: &'static str) -> (Response, Bytes) {
    fail(Error::Unsupported(role))
}

/// Hosts a fleet of chunk stores behind the chunk RPCs. The stores are
/// whatever the deployment's [`BackendConfig`] selects: ephemeral
/// in-memory [`DataProvider`]s or durable slot-sharded
/// [`DiskProvider`](atomio_provider::DiskProvider)s that recover their
/// state when the server restarts over the same `--data-dir`.
#[derive(Debug)]
pub struct ProviderService {
    providers: Vec<Arc<dyn ChunkStore>>,
}

impl ProviderService {
    /// Creates `count` zero-cost in-memory providers with ids
    /// `0..count` — shorthand for
    /// [`Self::with_backend`]`(count, &BackendConfig::Memory)`.
    pub fn new(count: usize) -> Self {
        Self::with_backend(count, &BackendConfig::Memory)
            .expect("the memory backend cannot fail to open")
    }

    /// Creates `count` zero-cost stores with ids `0..count` over the
    /// chosen backend — what the `atomio-provider-server` binary calls
    /// with its `--data-dir`/`--fsync` flags.
    ///
    /// # Errors
    /// [`Error::Internal`] when a disk backend's directory cannot be
    /// opened or recovered.
    pub fn with_backend(count: usize, backend: &BackendConfig) -> Result<Self> {
        let faults = Arc::new(FaultInjector::new(0));
        Ok(Self::from_stores(
            (0..count)
                .map(|i| {
                    chunk_store_for(
                        backend,
                        ProviderId::new(i as u64),
                        CostModel::zero(),
                        &faults,
                    )
                })
                .collect::<Result<_>>()?,
        ))
    }

    /// Hosts caller-built in-memory providers (ids must be unique; any
    /// cost model). Convenience over [`Self::from_stores`] for harnesses
    /// that pre-load a [`DataProvider`]; new code should select the
    /// backend through [`Self::with_backend`].
    pub fn from_providers(providers: Vec<Arc<DataProvider>>) -> Self {
        Self::from_stores(
            providers
                .into_iter()
                .map(|p| p as Arc<dyn ChunkStore>)
                .collect(),
        )
    }

    /// Hosts caller-built chunk stores (ids must be unique).
    pub fn from_stores(providers: Vec<Arc<dyn ChunkStore>>) -> Self {
        ProviderService { providers }
    }

    /// The hosted stores.
    pub fn providers(&self) -> &[Arc<dyn ChunkStore>] {
        &self.providers
    }

    fn provider(&self, id: ProviderId) -> Result<&Arc<dyn ChunkStore>> {
        self.providers
            .iter()
            .find(|p| p.id() == id)
            .ok_or(Error::ProviderNotFound(id))
    }
}

impl Service for ProviderService {
    fn handle(&self, request: Request, payload: Bytes) -> (Response, Bytes) {
        use Request::*;
        match request {
            Ping => ok(Response::Pong),
            PutChunk {
                provider,
                arrival,
                chunk,
            } => match self
                .provider(provider)
                .and_then(|s| s.put_chunk_at(arrival, chunk, payload))
            {
                Ok(done) => ok(Response::Done { done }),
                Err(e) => fail(e),
            },
            PutChunkBatch {
                provider,
                arrival,
                items,
            } => {
                let store = match self.provider(provider) {
                    Ok(s) => s,
                    Err(e) => return fail(e),
                };
                let total: u64 = items.iter().map(|&(_, len)| len).sum();
                if total != payload.len() as u64 {
                    return fail(Error::Transport {
                        kind: TransportErrorKind::Protocol,
                        detail: format!(
                            "batch declares {total} payload bytes, frame carries {}",
                            payload.len()
                        ),
                    });
                }
                let mut offset = 0usize;
                let results = items
                    .into_iter()
                    .map(|(chunk, len)| {
                        let data = payload.slice(offset..offset + len as usize);
                        offset += len as usize;
                        store.put_chunk_at(arrival, chunk, data)
                    })
                    .collect();
                ok(Response::PutBatch { results })
            }
            GetChunk {
                provider,
                arrival,
                chunk,
            } => {
                let outcome = self.provider(provider).and_then(|s| {
                    let len = s
                        .chunk_len(chunk)
                        .ok_or(Error::ChunkNotFound { provider, chunk })?;
                    s.get_chunk_range_at(arrival, chunk, ByteRange::new(0, len))
                });
                match outcome {
                    Ok((data, sent)) => (Response::ChunkData { sent }, data),
                    Err(e) => fail(e),
                }
            }
            GetChunkRange {
                provider,
                arrival,
                chunk,
                range,
            } => match self
                .provider(provider)
                .and_then(|s| s.get_chunk_range_at(arrival, chunk, range))
            {
                Ok((data, sent)) => (Response::ChunkData { sent }, data),
                Err(e) => fail(e),
            },
            GetChunkRangeBatch {
                provider,
                arrival,
                items,
            } => {
                let store = match self.provider(provider) {
                    Ok(s) => s,
                    Err(e) => return fail(e),
                };
                let mut out = Vec::new();
                let results = items
                    .into_iter()
                    .map(|(chunk, range)| {
                        store
                            .get_chunk_range_at(arrival, chunk, range)
                            .map(|(data, sent)| {
                                let len = data.len() as u64;
                                out.extend_from_slice(&data);
                                (len, sent)
                            })
                    })
                    .collect();
                (Response::ChunkBatch { results }, Bytes::from(out))
            }
            ProviderHasChunk { provider, chunk } => match self.provider(provider) {
                Ok(s) => ok(Response::Flag {
                    value: s.has_chunk(chunk),
                }),
                Err(e) => fail(e),
            },
            ProviderChunkCount { provider } => match self.provider(provider) {
                Ok(s) => ok(Response::Count {
                    value: s.chunk_count() as u64,
                }),
                Err(e) => fail(e),
            },
            ProviderBytesStored { provider } => match self.provider(provider) {
                Ok(s) => ok(Response::Count {
                    value: s.bytes_stored(),
                }),
                Err(e) => fail(e),
            },
            ProviderEvictChunk { provider, chunk } => match self.provider(provider) {
                Ok(s) => ok(Response::Count {
                    value: s.evict_chunk(chunk),
                }),
                Err(e) => fail(e),
            },
            ProviderChecksumOf { provider, chunk } => match self.provider(provider) {
                Ok(s) => ok(Response::Checksum {
                    value: s.checksum_of(chunk),
                }),
                Err(e) => fail(e),
            },
            ProviderCorruptChunk {
                provider,
                chunk,
                byte,
            } => match self.provider(provider) {
                Ok(s) => {
                    s.corrupt_chunk(chunk, byte as usize);
                    ok(Response::Unit)
                }
                Err(e) => fail(e),
            },
            ProviderEvictBatch { provider, chunks } => match self.provider(provider) {
                Ok(s) => ok(Response::Count {
                    value: s.evict_chunk_batch(&chunks),
                }),
                Err(e) => fail(e),
            },
            MetaPutBatch { .. }
            | MetaGetBatch { .. }
            | MetaContains { .. }
            | MetaNodeCount
            | MetaEvict { .. }
            | MetaEvictBatch { .. }
            | MetaListKeys
            | VmTicket { .. }
            | VmTicketAppend { .. }
            | VmPublish { .. }
            | VmIsPublished { .. }
            | VmLatest { .. }
            | VmSnapshot { .. }
            | VmSetRetention { .. }
            | VmLeaseAcquire { .. }
            | VmLeaseRenew { .. }
            | VmLeaseRelease { .. }
            | VmGcFloor { .. }
            | SlotMapGet
            | SlotMapInstall { .. }
            | VmFreezeSlots { .. }
            | VmSealSlots { .. }
            | VmExportSlots { .. }
            | VmImportBlobs { .. } => unsupported("metadata/version op sent to a provider server"),
        }
    }
}

/// Hosts per-blob version managers behind the version RPCs — the third
/// server role, mirroring BlobSeer's standalone version manager. The
/// `atomio-version-server` binary wraps exactly this service; it also
/// nests inside [`MetaService`] so a two-server deployment (meta +
/// providers) keeps working unchanged.
#[derive(Debug)]
pub struct VersionService {
    chunk_size: u64,
    backend: BackendConfig,
    retention: RetentionPolicy,
    lease_ttl_cap_ms: u64,
    vms: Mutex<HashMap<u64, Arc<VersionManager>>>,
    /// This server's group in the slot map, or `None` for an unsharded
    /// deployment (every slot is served, no ownership checks).
    shard: Option<usize>,
    /// The slot map this server believes in. Requests for blobs whose
    /// slot this shard does not own are refused with
    /// [`Error::WrongShard`] carrying the map's epoch.
    map: RwLock<SlotMap>,
    /// Per-slot handoff state, keyed by slot so concurrent handoffs
    /// moving disjoint slot sets off this shard merge instead of
    /// clobbering each other. A *frozen* slot refuses new tickets
    /// (typed) but publishes of already-granted tickets still land so
    /// the handoff can drain; a *sealed* slot refuses publishes too, so
    /// the export that follows cannot miss a late-landing version.
    /// Entries are cleared when a map at (or past) their epoch installs.
    frozen: RwLock<BTreeMap<u16, SlotFreeze>>,
}

/// One slot's handoff state (see [`VersionService::frozen`]).
#[derive(Debug, Clone, Copy)]
struct SlotFreeze {
    /// The epoch the reassigned map will carry — returned in the
    /// [`Error::WrongShard`] refusals so clients refetch past it.
    epoch: u64,
    /// Escalated: publishes are refused as well as tickets.
    sealed: bool,
}

/// Largest lease TTL a server grants by default (10 minutes): a crashed
/// reader can pin history for at most this long.
pub const DEFAULT_LEASE_TTL_CAP_MS: u64 = 600_000;

impl VersionService {
    /// Creates the in-memory service; version managers use `chunk_size`
    /// for their tree geometry.
    pub fn new(chunk_size: u64) -> Self {
        Self::with_backend(chunk_size, BackendConfig::Memory)
    }

    /// Creates the service over the chosen backend — with a disk
    /// backend each blob's manager keeps a durable publish log under
    /// `<dir>/version/blob-<id>` and replays it on reopen, so granted
    /// version numbers, published snapshots, retention policies, and
    /// live leases survive a server restart.
    pub fn with_backend(chunk_size: u64, backend: BackendConfig) -> Self {
        VersionService {
            chunk_size,
            backend,
            retention: RetentionPolicy::default(),
            lease_ttl_cap_ms: DEFAULT_LEASE_TTL_CAP_MS,
            vms: Mutex::new(HashMap::new()),
            shard: None,
            map: RwLock::new(SlotMap::single()),
            frozen: RwLock::new(BTreeMap::new()),
        }
    }

    /// Makes this service shard `shard` of an `of`-way deployment (the
    /// binaries' `--shard I/N` flag): it starts from the uniform
    /// `of`-group slot map, serves only the slots its group owns, and
    /// answers everything else with [`Error::WrongShard`] so stale
    /// clients refetch the map and re-route.
    pub fn with_shard(mut self, shard: usize, of: usize) -> Self {
        assert!(shard < of, "shard index {shard} out of {of}");
        self.shard = Some(shard);
        self.map = RwLock::new(SlotMap::uniform(of));
        self
    }

    /// The slot map this server currently believes in.
    pub fn slot_map(&self) -> SlotMap {
        self.map.read().clone()
    }

    /// Ownership gate: `Ok` when this server serves `blob`'s slot.
    fn owned(&self, blob: u64) -> Result<()> {
        let Some(group) = self.shard else {
            return Ok(());
        };
        let slot = slot_for_blob(blob);
        let map = self.map.read();
        if !map.owns(group, slot) {
            return Err(Error::WrongShard {
                epoch: map.epoch,
                slot,
            });
        }
        Ok(())
    }

    /// Gate for state-creating calls (tickets, retention changes): also
    /// refused while the blob's slot is frozen for a handoff, so the
    /// drain converges and the export cannot miss trailing state.
    fn ticket_gate(&self, blob: u64) -> Result<()> {
        self.owned(blob)?;
        let slot = slot_for_blob(blob);
        if let Some(f) = self.frozen.read().get(&slot) {
            return Err(Error::WrongShard {
                epoch: f.epoch,
                slot,
            });
        }
        Ok(())
    }

    /// [`Self::vm`] behind the ownership check — the dispatch path for
    /// every per-blob RPC except imports (which install state this
    /// server does not own *yet*).
    fn vm_owned(&self, blob: u64) -> Result<Arc<VersionManager>> {
        self.owned(blob)?;
        self.vm(blob)
    }

    /// [`Self::vm`] behind the ownership *and* freeze checks.
    fn vm_ticket(&self, blob: u64) -> Result<Arc<VersionManager>> {
        self.ticket_gate(blob)?;
        self.vm(blob)
    }

    /// Granted-but-unpublished tickets across the hosted blobs whose
    /// slot is in `set` — the drain gauge for a handoff coordinator.
    fn pending_grants_in(&self, set: &BTreeSet<u16>) -> u64 {
        self.vms
            .lock()
            .iter()
            .filter(|(blob, _)| set.contains(&slot_for_blob(**blob)))
            .map(|(_, vm)| vm.pending_grants())
            .sum()
    }

    /// Sets the deployment's default retention policy (the binaries'
    /// `--retention` flag). Applied to each blob whose manager has no
    /// policy of its own — an explicitly set (or durably recovered)
    /// per-blob policy wins.
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.retention = retention;
        self
    }

    /// Caps granted lease TTLs at `cap_ms` (the binaries'
    /// `--lease-ttl-ms` flag): requests for longer leases are clamped,
    /// bounding how long a crashed reader can pin history.
    pub fn with_lease_ttl_cap(mut self, cap_ms: u64) -> Self {
        self.lease_ttl_cap_ms = cap_ms.max(1);
        self
    }

    /// Wall-clock milliseconds for lease bookkeeping — network servers
    /// have no virtual clock, so lease TTLs run on real time.
    fn now_ms() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    /// The hosted version manager for `blob` (lazily created, like a
    /// blob's first ticket would; recovered from its publish log on a
    /// disk backend).
    ///
    /// # Errors
    /// [`Error::Internal`] when a disk backend's publish log cannot be
    /// opened or recovered.
    pub fn vm(&self, blob: u64) -> Result<Arc<VersionManager>> {
        let mut vms = self.vms.lock();
        if let Some(vm) = vms.get(&blob) {
            return Ok(Arc::clone(vm));
        }
        let vm = Arc::new(match &self.backend {
            BackendConfig::Memory => VersionManager::new(
                Arc::new(VersionHistory::new()),
                TreeConfig::new(self.chunk_size),
                CostModel::zero(),
                TicketMode::Pipelined,
            ),
            BackendConfig::Disk { dir, fsync } => VersionManager::durable(
                dir.join("version").join(format!("blob-{blob}")),
                Arc::new(VersionHistory::new()),
                TreeConfig::new(self.chunk_size),
                CostModel::zero(),
                TicketMode::Pipelined,
                *fsync,
            )?,
        });
        // The deployment default applies only where no per-blob policy
        // exists (freshly created, or recovered with none logged).
        if self.retention != RetentionPolicy::default()
            && vm.retention() == RetentionPolicy::default()
        {
            vm.set_retention_local(self.retention)?;
        }
        vms.insert(blob, Arc::clone(&vm));
        Ok(vm)
    }
}

impl Service for VersionService {
    fn handle(&self, request: Request, _payload: Bytes) -> (Response, Bytes) {
        use Request::*;
        match request {
            Ping => ok(Response::Pong),
            VmTicket {
                blob,
                extents,
                known,
            } => match self
                .vm_ticket(blob)
                .and_then(|vm| vm.ticket_local(&extents, known as usize))
            {
                Ok((ticket, extents, delta)) => ok(Response::TicketGrant {
                    ticket,
                    extents,
                    delta,
                }),
                Err(e) => fail(e),
            },
            VmTicketAppend { blob, len, known } => {
                match self
                    .vm_ticket(blob)
                    .and_then(|vm| vm.ticket_append_local(len, known as usize))
                {
                    Ok((ticket, extents, delta)) => ok(Response::TicketGrant {
                        ticket,
                        extents,
                        delta,
                    }),
                    Err(e) => fail(e),
                }
            }
            VmPublish { blob, ticket, root } => {
                // The freeze read-guard is held across the publish so a
                // concurrent `VmSealSlots` (which takes the write lock)
                // is a true barrier: once the seal RPC returns, every
                // in-flight publish has either landed — visible to the
                // export that follows — or is refused below. Without
                // this, a publish could pass the gate, the seal + export
                // could run, and the publish would then mutate state the
                // export already missed while still acking the writer.
                let frozen = self.frozen.read();
                let slot = slot_for_blob(blob);
                let result = match frozen.get(&slot) {
                    Some(f) if f.sealed => Err(Error::WrongShard {
                        epoch: f.epoch,
                        slot,
                    }),
                    _ => self
                        .vm_owned(blob)
                        .and_then(|vm| vm.publish_local(ticket, root)),
                };
                match result {
                    Ok(()) => ok(Response::Unit),
                    Err(e) => fail(e),
                }
            }
            VmIsPublished { blob, version } => match self.vm_owned(blob) {
                Ok(vm) => ok(Response::Flag {
                    value: vm.is_published(version),
                }),
                Err(e) => fail(e),
            },
            VmLatest { blob } => match self.vm_owned(blob) {
                Ok(vm) => ok(Response::Snapshot {
                    record: vm.latest_local(),
                }),
                Err(e) => fail(e),
            },
            VmSnapshot { blob, version } => {
                match self
                    .vm_owned(blob)
                    .and_then(|vm| vm.snapshot_local(version))
                {
                    Ok(record) => ok(Response::Snapshot { record }),
                    Err(e) => fail(e),
                }
            }
            VmSetRetention { blob, policy } => {
                match self
                    .vm_ticket(blob)
                    .and_then(|vm| vm.set_retention_local(policy))
                {
                    Ok(()) => ok(Response::Unit),
                    Err(e) => fail(e),
                }
            }
            VmLeaseAcquire {
                blob,
                version,
                ttl_ms,
            } => {
                let ttl = ttl_ms.min(self.lease_ttl_cap_ms);
                match self
                    .vm_owned(blob)
                    .and_then(|vm| vm.lease_acquire_local(version, ttl, Self::now_ms()))
                {
                    Ok(grant) => ok(Response::Lease { grant }),
                    Err(e) => fail(e),
                }
            }
            VmLeaseRenew {
                blob,
                lease,
                ttl_ms,
            } => {
                let ttl = ttl_ms.min(self.lease_ttl_cap_ms);
                match self
                    .vm_owned(blob)
                    .and_then(|vm| vm.lease_renew_local(lease, ttl, Self::now_ms()))
                {
                    Ok(grant) => ok(Response::Lease { grant }),
                    Err(e) => fail(e),
                }
            }
            VmLeaseRelease { blob, lease } => {
                match self
                    .vm_owned(blob)
                    .and_then(|vm| vm.lease_release_local(lease, Self::now_ms()))
                {
                    Ok(()) => ok(Response::Unit),
                    Err(e) => fail(e),
                }
            }
            VmGcFloor { blob } => match self.vm_owned(blob) {
                Ok(vm) => ok(Response::GcFloor {
                    info: vm.gc_floor_local(Self::now_ms()),
                }),
                Err(e) => fail(e),
            },
            SlotMapGet => ok(Response::SlotMapInfo {
                map: self.map.read().clone(),
            }),
            SlotMapInstall { map } => {
                // The map write-guard is released before touching the
                // freeze state: publishes take `frozen` then `map` (read
                // side), so holding both write locks here would invert
                // the order and deadlock.
                let installed_epoch = {
                    let mut cur = self.map.write();
                    if map.epoch < cur.epoch {
                        return fail(Error::Internal(format!(
                            "slot map epoch regressed: have {}, offered {}",
                            cur.epoch, map.epoch
                        )));
                    }
                    *cur = map;
                    cur.epoch
                };
                // Thaw every per-slot freeze the new map supersedes;
                // freezes for a yet-higher epoch stay in force.
                self.frozen.write().retain(|_, f| f.epoch > installed_epoch);
                ok(Response::Unit)
            }
            VmFreezeSlots { slots, epoch } => {
                let set: BTreeSet<u16> = slots.into_iter().collect();
                // Pending grants across the frozen slots: the coordinator
                // repeats this (idempotent) call until the count is zero.
                let pending = self.pending_grants_in(&set);
                // Merge per slot so two handoffs moving disjoint sets off
                // this shard cannot thaw each other mid-drain; a re-freeze
                // of a slot keeps any seal already in force.
                let mut frozen = self.frozen.write();
                for slot in set {
                    let f = frozen.entry(slot).or_insert(SlotFreeze {
                        epoch,
                        sealed: false,
                    });
                    f.epoch = f.epoch.max(epoch);
                }
                drop(frozen);
                ok(Response::Count { value: pending })
            }
            VmSealSlots { slots, epoch } => {
                let set: BTreeSet<u16> = slots.into_iter().collect();
                {
                    // Taking the write lock waits out every in-flight
                    // publish (they hold the read side across
                    // `publish_local`), so when this RPC returns the
                    // sealed slots are immutable: landed publishes are
                    // visible to the export, later ones are refused.
                    let mut frozen = self.frozen.write();
                    for slot in &set {
                        let f = frozen.entry(*slot).or_insert(SlotFreeze {
                            epoch,
                            sealed: true,
                        });
                        f.epoch = f.epoch.max(epoch);
                        f.sealed = true;
                    }
                }
                // Grants still outstanding are abandoned: their eventual
                // publishes draw `WrongShard` and fail typed on the new
                // owner, which never granted the ticket.
                ok(Response::Count {
                    value: self.pending_grants_in(&set),
                })
            }
            VmExportSlots { slots } => {
                let set: BTreeSet<u16> = slots.into_iter().collect();
                let vms: Vec<(u64, Arc<VersionManager>)> = self
                    .vms
                    .lock()
                    .iter()
                    .filter(|(blob, _)| set.contains(&slot_for_blob(**blob)))
                    .map(|(blob, vm)| (*blob, Arc::clone(vm)))
                    .collect();
                let blobs = vms
                    .into_iter()
                    .map(|(blob, vm)| {
                        let (versions, retention) = vm.export_published();
                        BlobExport {
                            blob,
                            versions,
                            retention,
                        }
                    })
                    .collect();
                ok(Response::SlotExport { blobs })
            }
            VmImportBlobs { blobs } => {
                let mut applied = 0u64;
                for b in blobs {
                    match self
                        .vm(b.blob)
                        .and_then(|vm| vm.import_published(&b.versions, b.retention))
                    {
                        Ok(n) => applied += n,
                        Err(e) => return fail(e),
                    }
                }
                ok(Response::Count { value: applied })
            }
            _ => unsupported("chunk/metadata op sent to a version server"),
        }
    }
}

/// Hosts metadata shards plus per-blob version managers behind the
/// metadata and version RPCs.
#[derive(Debug)]
pub struct MetaService {
    store: Arc<dyn LocalNodeStore>,
    versions: VersionService,
}

impl MetaService {
    /// Creates `shards` zero-cost in-memory metadata shards; version
    /// managers use `chunk_size` for their tree geometry — shorthand for
    /// [`Self::with_backend`]`(shards, chunk_size, &BackendConfig::Memory)`.
    pub fn new(shards: usize, chunk_size: u64) -> Self {
        Self::with_backend(shards, chunk_size, &BackendConfig::Memory)
            .expect("the memory backend cannot fail to open")
    }

    /// Creates the service over the chosen backend — what the
    /// `atomio-meta-server` binary calls with its
    /// `--data-dir`/`--fsync` flags. A disk backend recovers the shard
    /// node logs under `<dir>/meta` and keeps the nested version
    /// managers' publish logs under `<dir>/version`.
    ///
    /// # Errors
    /// [`Error::Internal`] when a disk backend's directory cannot be
    /// opened or recovered.
    pub fn with_backend(shards: usize, chunk_size: u64, backend: &BackendConfig) -> Result<Self> {
        Ok(MetaService {
            store: node_store_for(
                backend,
                shards,
                CostModel::zero(),
                Arc::new(ClientNics::new()),
            )?,
            versions: VersionService::with_backend(chunk_size, backend.clone()),
        })
    }

    /// The hosted metadata store.
    pub fn store(&self) -> &Arc<dyn LocalNodeStore> {
        &self.store
    }

    /// The nested version service (kept for two-server deployments; a
    /// three-server deployment runs a standalone [`VersionService`]).
    pub fn version_service(&self) -> &VersionService {
        &self.versions
    }

    /// Sets the default retention policy of the nested version service
    /// (see [`VersionService::with_retention`]).
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.versions = self.versions.with_retention(retention);
        self
    }

    /// Pins the nested version service to shard `shard` of `of` (see
    /// [`VersionService::with_shard`]).
    pub fn with_shard(mut self, shard: usize, of: usize) -> Self {
        self.versions = self.versions.with_shard(shard, of);
        self
    }

    /// Caps lease TTLs of the nested version service (see
    /// [`VersionService::with_lease_ttl_cap`]).
    pub fn with_lease_ttl_cap(mut self, cap_ms: u64) -> Self {
        self.versions = self.versions.with_lease_ttl_cap(cap_ms);
        self
    }
}

impl Service for MetaService {
    fn handle(&self, request: Request, payload: Bytes) -> (Response, Bytes) {
        use Request::*;
        match request {
            Ping => ok(Response::Pong),
            MetaPutBatch { nodes } => ok(Response::NodePuts {
                results: self.store.put_batch_local(nodes),
            }),
            MetaGetBatch { keys } => ok(Response::NodeGets {
                results: self
                    .store
                    .get_batch_local(&keys)
                    .into_iter()
                    .map(|r| r.map(|node| (*node).clone()))
                    .collect(),
            }),
            MetaContains { key } => ok(Response::Flag {
                value: self.store.contains(key),
            }),
            MetaNodeCount => ok(Response::Count {
                value: self.store.node_count() as u64,
            }),
            MetaEvict { key } => {
                self.store.evict(key);
                ok(Response::Unit)
            }
            MetaEvictBatch { keys } => ok(Response::Count {
                value: self.store.evict_batch(&keys),
            }),
            MetaListKeys => ok(Response::Keys {
                keys: self.store.list_keys(),
            }),
            VmTicket { .. }
            | VmTicketAppend { .. }
            | VmPublish { .. }
            | VmIsPublished { .. }
            | VmLatest { .. }
            | VmSnapshot { .. }
            | VmSetRetention { .. }
            | VmLeaseAcquire { .. }
            | VmLeaseRenew { .. }
            | VmLeaseRelease { .. }
            | VmGcFloor { .. }
            | SlotMapGet
            | SlotMapInstall { .. }
            | VmFreezeSlots { .. }
            | VmSealSlots { .. }
            | VmExportSlots { .. }
            | VmImportBlobs { .. } => self.versions.handle(request, payload),
            PutChunk { .. }
            | PutChunkBatch { .. }
            | GetChunk { .. }
            | GetChunkRange { .. }
            | GetChunkRangeBatch { .. }
            | ProviderHasChunk { .. }
            | ProviderChunkCount { .. }
            | ProviderBytesStored { .. }
            | ProviderEvictChunk { .. }
            | ProviderEvictBatch { .. }
            | ProviderChecksumOf { .. }
            | ProviderCorruptChunk { .. } => unsupported("chunk op sent to a metadata server"),
        }
    }
}

/// A running TCP server hosting one [`Service`].
#[derive(Debug)]
pub struct RpcServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    front_end: Option<JoinHandle<()>>,
    /// Threads-mode bookkeeping: the write half of every live
    /// connection, keyed by accept order, so [`RpcServer::stop`] can
    /// sever them and each connection's exit can reap its own entry.
    /// Reactor mode keeps this empty — the reactor owns its sockets.
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    reactor: Option<Arc<ReactorShared>>,
    open: Arc<AtomicUsize>,
}

impl RpcServer {
    /// Binds `addr` with default tuning; see [`RpcServer::start_with_config`].
    pub fn start(addr: impl ToSocketAddrs, service: Arc<dyn Service>) -> io::Result<Self> {
        Self::start_with_config(addr, service, RpcConfig::default())
    }

    /// Binds `addr` without a metrics registry; see
    /// [`RpcServer::start_with_metrics`].
    pub fn start_with_config(
        addr: impl ToSocketAddrs,
        service: Arc<dyn Service>,
        cfg: RpcConfig,
    ) -> io::Result<Self> {
        Self::start_with_metrics(addr, service, cfg, None)
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections under the configured [`ServerMode`]
    /// front-end. Either way a single bounded pool of
    /// `cfg.server_workers` dispatch workers is shared by every
    /// connection, so requests multiplexed over one socket execute
    /// concurrently without a thread explosion per connection.
    ///
    /// A `metrics` registry (server-side — distinct from any client
    /// transport registry) receives the connection counters:
    /// `rpc.accepts`, `rpc.conns_open`, `rpc.conns_peak`,
    /// `rpc.admission_rejects`, and — reactor only —
    /// `rpc.reactor_wakeups`.
    pub fn start_with_metrics(
        addr: impl ToSocketAddrs,
        service: Arc<dyn Service>,
        cfg: RpcConfig,
        metrics: Option<Metrics>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let open = Arc::new(AtomicUsize::new(0));

        // One bounded dispatch pool shared by every connection: the
        // front-end feeds request batches through this channel, workers
        // execute and route responses back to the batch's own
        // connection. The pool exits when the last sender (the
        // front-end and, in Threads mode, per-connection readers) is
        // gone.
        let workers = cfg.server_workers.max(1);
        let (job_tx, job_rx) = mpsc::sync_channel::<DispatchJob>(workers * 2);
        let job_rx = Arc::new(Mutex::new(job_rx));
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let service = Arc::clone(&service);
            std::thread::spawn(move || dispatch_worker(job_rx, service));
        }

        let mut reactor = None;
        let front_end = match cfg.server_mode {
            ServerMode::Reactor => {
                let shared = ReactorShared::new()?;
                reactor = Some(Arc::clone(&shared));
                let shutdown = Arc::clone(&shutdown);
                let open = Arc::clone(&open);
                std::thread::spawn(move || {
                    run_reactor(listener, job_tx, shared, shutdown, open, cfg, metrics)
                })
            }
            ServerMode::Threads => {
                let shutdown = Arc::clone(&shutdown);
                let conns = Arc::clone(&conns);
                let open = Arc::clone(&open);
                std::thread::spawn(move || {
                    let mut next_id = 0u64;
                    while !shutdown.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if let Some(m) = &metrics {
                                    m.counter(counters::ACCEPTS).inc();
                                }
                                let _ = stream.set_nodelay(true);
                                // Connection threads block on frame
                                // reads; stop() severs the socket to
                                // wake them.
                                let _ = stream.set_nonblocking(false);
                                let active = open.load(Ordering::Relaxed);
                                if active >= cfg.max_conns {
                                    if let Some(m) = &metrics {
                                        m.counter(counters::ADMISSION_REJECTS).inc();
                                    }
                                    std::thread::spawn(move || {
                                        reject_connection(stream, active as u64, cfg)
                                    });
                                    continue;
                                }
                                let id = next_id;
                                next_id += 1;
                                if let Ok(clone) = stream.try_clone() {
                                    conns.lock().insert(id, clone);
                                }
                                let n = open.fetch_add(1, Ordering::Relaxed) + 1;
                                if let Some(m) = &metrics {
                                    m.counter(counters::CONNS_OPEN).set(n as u64);
                                    m.counter(counters::CONNS_PEAK).record_peak(n as u64);
                                }
                                let job_tx = job_tx.clone();
                                let conns = Arc::clone(&conns);
                                let open = Arc::clone(&open);
                                let metrics = metrics.clone();
                                std::thread::spawn(move || {
                                    serve_connection(stream, job_tx, cfg);
                                    // Reap on exit: a finished
                                    // connection must not pin its fd
                                    // (or the open gauge) until stop().
                                    conns.lock().remove(&id);
                                    let n = open.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
                                    if let Some(m) = &metrics {
                                        m.counter(counters::CONNS_OPEN).set(n as u64);
                                    }
                                });
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                })
            }
        };

        Ok(RpcServer {
            addr,
            shutdown,
            front_end: Some(front_end),
            conns,
            reactor,
            open,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections the server currently holds open. Admission-rejected
    /// connections never count; a closed connection leaves the gauge as
    /// soon as the front-end reaps it (connection-thread exit in
    /// Threads mode, hangup/EOF handling in Reactor mode).
    pub fn open_conns(&self) -> usize {
        self.open.load(Ordering::Relaxed)
    }

    /// Stops accepting, severs every accepted connection, and joins the
    /// front-end. In-flight calls on severed connections surface
    /// connection-reset transport errors at their clients — exactly the
    /// failure the provider manager's failover policy handles. (The
    /// reactor front-end owns its sockets outright: the eventfd wake
    /// below makes it observe shutdown and drop them all.)
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for (_, conn) in self.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(shared) = &self.reactor {
            shared.wake();
        }
        if let Some(handle) = self.front_end.take() {
            let _ = handle.join();
        }
    }
}

/// Answers an admission-rejected connection. The newcomer is past the
/// server's `max_conns`, but it still deserves a typed refusal instead
/// of a hang or a reset: read its first frame (blocking, bounded by the
/// server's timeouts so a silent client cannot pin this thread), reply
/// with [`Response::Busy`] tagged with that frame's id — the id is what
/// routes the refusal to the right caller on a multiplexed client —
/// and close.
fn reject_connection(mut stream: TcpStream, active: u64, cfg: RpcConfig) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let Ok((id, _header, _payload, _)) = wire::read_frame(&mut &stream) else {
        return;
    };
    let busy = Response::Busy {
        active,
        max_conns: cfg.max_conns as u64,
    };
    let mut frame = Vec::new();
    if wire::write_frame(&mut frame, id, &busy.to_value(), &[]).is_ok() {
        let _ = io::Write::write_all(&mut stream, &frame);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Largest number of request frames handed to one dispatch worker at a
/// time. Batches only form when a pipelining client has a backlog of
/// fully-buffered frames (see [`buffered_frame_ready`]); a strict
/// per-call client always produces batches of one.
pub(crate) const MAX_DISPATCH_BATCH: usize = 16;

/// True when the reader's buffer already holds one complete frame, so
/// decoding it cannot block. (If the head of the buffer is garbage the
/// declared lengths are garbage too; the worst case is a `false` here
/// and the next blocking `read_frame` reports the framing error.)
fn buffered_frame_ready(reader: &std::io::BufReader<&mut TcpStream>) -> bool {
    let b = reader.buffer();
    let prefix = wire::FRAME_PREFIX_BYTES as usize;
    if b.len() < prefix {
        return false;
    }
    let head_len = u32::from_be_bytes(b[9..13].try_into().unwrap()) as usize;
    let payload_len = u32::from_be_bytes(b[13..17].try_into().unwrap()) as usize;
    b.len() >= prefix + head_len + payload_len
}

/// Where a dispatch worker delivers one batch's encoded response
/// frames — the front-ends differ in who is allowed to touch the
/// socket.
#[derive(Debug, Clone)]
pub(crate) enum ResponseSink {
    /// Threads mode: workers write to the connection's shared write
    /// half directly (the per-connection writer mutex orders them).
    Direct(Arc<Mutex<TcpStream>>),
    /// Reactor mode: the reactor thread is the socket's *single
    /// writer*, so workers queue frames through [`ReactorShared`] and
    /// ring its eventfd instead of writing.
    Reactor {
        /// The reactor's key for the batch's connection.
        token: u64,
        /// The reactor's completion mailbox + eventfd.
        shared: Arc<ReactorShared>,
    },
}

/// One unit of dispatch work: where the responses go, plus a batch of
/// decoded request frames read back-to-back from one connection.
pub(crate) type DispatchJob = (ResponseSink, Vec<(u64, Value, Bytes)>);

/// A member of the server's shared dispatch pool: executes request
/// batches from any connection and routes each batch's responses —
/// tagged with the request ids — back through the batch's sink in a
/// single delivery. Responses leave in completion order; clients match
/// them by id. A dead connection only gets severed; the worker lives on
/// to serve the other connections.
fn dispatch_worker(rx: Arc<Mutex<mpsc::Receiver<DispatchJob>>>, service: Arc<dyn Service>) {
    loop {
        // Take the receiver lock only to pull one job; holding it
        // across `handle` would serialize the pool.
        let job = rx.lock().recv();
        let Ok((sink, batch)) = job else {
            // Every sender hung up: the server stopped, drain is done.
            return;
        };
        // Encode every response of the batch into one buffer and
        // deliver it with a single write (Threads) or one completion
        // handoff (Reactor).
        let responses = batch.len();
        let mut frames = Vec::new();
        let mut poisoned = false;
        for (id, header, payload) in batch {
            let (response, out) = match Request::from_value(&header) {
                Ok(request) => service.handle(request, payload),
                Err(e) => fail(Error::Transport {
                    kind: TransportErrorKind::Protocol,
                    detail: format!("undecodable request: {e}"),
                }),
            };
            if wire::write_frame(&mut frames, id, &response.to_value(), &out).is_err() {
                // Oversized response — nothing sane to send back.
                poisoned = true;
                break;
            }
        }
        match sink {
            ResponseSink::Direct(writer) => {
                let mut w = writer.lock();
                if poisoned || io::Write::write_all(&mut *w, &frames).is_err() {
                    // Writes are dead: sever the socket so the
                    // connection's reader (blocked in read_frame)
                    // exits too.
                    let _ = w.shutdown(std::net::Shutdown::Both);
                }
            }
            ResponseSink::Reactor { token, shared } => {
                shared.complete(token, frames, responses, poisoned);
            }
        }
    }
}

/// Serves one connection: a reader loop on this thread feeds the
/// server's shared dispatch pool over a capacity-limited channel
/// (backpressure when every worker is busy).
///
/// The reader hands workers *batches*: after one blocking read it drains
/// whatever whole frames already sit in its buffer, so a backlogged
/// pipelining client pays one worker wakeup and one response-write
/// syscall per burst instead of per request.
fn serve_connection(mut stream: TcpStream, jobs: mpsc::SyncSender<DispatchJob>, cfg: RpcConfig) {
    let sink = match stream.try_clone() {
        Ok(w) => ResponseSink::Direct(Arc::new(Mutex::new(w))),
        Err(_) => return,
    };
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));

    // Buffered: pipelining clients send request frames back-to-back,
    // so one read syscall frequently yields several frames.
    let mut reader = std::io::BufReader::with_capacity(128 * 1024, &mut stream);
    'serve: loop {
        let mut burst = Vec::new();
        let mut read_dead = false;
        loop {
            match wire::read_frame(&mut reader) {
                Ok((id, header, payload, _)) => burst.push((id, header, payload)),
                // EOF, peer reset, a malformed frame, or a version
                // mismatch: drop the connection. (After a framing error
                // nothing on the stream can be trusted, so closing is
                // the only safe recovery.) Dispatch what already decoded.
                Err(_) => {
                    read_dead = true;
                    break;
                }
            }
            if burst.len() >= MAX_DISPATCH_BATCH || !buffered_frame_ready(&reader) {
                break;
            }
        }
        if dispatch_burst(&jobs, &sink, burst).is_err() {
            break;
        }
        if read_dead {
            break 'serve;
        }
    }
}

/// Hands one burst of requests to the dispatch pool. While the pool has
/// room each request becomes its own job, so independent requests
/// overlap across workers — what matters when service time (device
/// waits) dominates. Once the channel is full the remainder goes down
/// as a single batched job: under CPU saturation the work serializes
/// anyway, and one handoff per burst beats one per request.
pub(crate) fn dispatch_burst(
    jobs: &mpsc::SyncSender<DispatchJob>,
    sink: &ResponseSink,
    burst: Vec<(u64, Value, Bytes)>,
) -> std::result::Result<(), ()> {
    let mut overflow = Vec::new();
    for request in burst {
        if !overflow.is_empty() {
            overflow.push(request);
            continue;
        }
        match jobs.try_send((sink.clone(), vec![request])) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full((_, batch))) => overflow = batch,
            Err(mpsc::TrySendError::Disconnected(_)) => return Err(()),
        }
    }
    if !overflow.is_empty() && jobs.send((sink.clone(), overflow)).is_err() {
        return Err(());
    }
    Ok(())
}

/// Everything a server binary needs from one `--flag value` style
/// argument list: kept here so both binaries share the parsing and the
/// unit tests cover it.
#[derive(Debug, PartialEq, Eq)]
pub struct ServerArgs {
    /// Listen address, e.g. `127.0.0.1:7420`.
    pub addr: String,
    /// `--providers N` / `--shards N` style count (role-specific).
    pub count: usize,
    /// `--chunk-size BYTES` (meta and version servers, which carry the
    /// tree geometry; the provider role rejects it).
    pub chunk_size: u64,
    /// `--data-dir PATH`: root of this role's durable state. `None`
    /// (the default) keeps the in-memory backend.
    pub data_dir: Option<PathBuf>,
    /// `--fsync per-publish|group:N|deferred`: durability policy of a
    /// disk backend (ignored without `--data-dir`).
    pub fsync: FsyncPolicy,
    /// `--retention keep-all|keep-last:N|keep-above:V`: the default
    /// per-blob retention policy (version-capable roles only; the
    /// provider role rejects it).
    pub retention: RetentionPolicy,
    /// `--lease-ttl-ms N`: cap on granted snapshot-lease TTLs
    /// (version-capable roles only).
    pub lease_ttl_cap_ms: u64,
    /// `--shard I/N`: pin the hosted version service to shard `I` of an
    /// `N`-way slot map (version-capable roles only). `None` (the
    /// default) serves every slot unchecked.
    pub shard: Option<(usize, usize)>,
    /// Transport/dispatcher tuning assembled from the `--workers`,
    /// `--read-timeout-ms`, `--write-timeout-ms`, and `--backoff-ms`
    /// style flags (defaults from [`RpcConfig::default`]).
    pub cfg: RpcConfig,
}

impl ServerArgs {
    /// Parses `<addr> [--COUNT_FLAG n] [--chunk-size bytes]` plus the
    /// backend flags `--data-dir path` and
    /// `--fsync per-publish|group:N|deferred` (every role: each of the
    /// three services owns durable state under a disk backend) and the
    /// shared [`RpcConfig`] flags: `--workers n`, `--pool-conns n`,
    /// `--mux-streams-per-conn n`, `--connect-timeout-ms n`,
    /// `--read-timeout-ms n`, `--write-timeout-ms n`,
    /// `--connect-retries n`, `--backoff-ms n`,
    /// `--server-mode threads|reactor`, `--max-conns n`,
    /// `--max-inflight-per-conn n`.
    ///
    /// `--chunk-size`, `--retention`, and `--lease-ttl-ms` are
    /// role-gated: roles without version-manager state (the provider
    /// server) pass `accepts_chunk_size = false` and the flags are
    /// rejected instead of silently ignored —
    /// [`server_usage`] must advertise exactly what parses.
    pub fn parse(
        args: impl IntoIterator<Item = String>,
        count_flag: &str,
        default_count: usize,
        accepts_chunk_size: bool,
    ) -> std::result::Result<Self, String> {
        let mut args = args.into_iter();
        let addr = args.next().ok_or("missing listen address")?;
        let mut parsed = ServerArgs {
            addr,
            count: default_count,
            chunk_size: 64 * 1024,
            data_dir: None,
            fsync: FsyncPolicy::default(),
            retention: RetentionPolicy::default(),
            lease_ttl_cap_ms: DEFAULT_LEASE_TTL_CAP_MS,
            shard: None,
            cfg: RpcConfig::default(),
        };
        while let Some(flag) = args.next() {
            let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
            let bad = || format!("bad {flag}: {value}");
            let ms = || value.parse().map(Duration::from_millis).map_err(|_| bad());
            if flag == count_flag {
                parsed.count = value.parse().map_err(|_| bad())?;
            } else if flag == "--chunk-size" {
                if !accepts_chunk_size {
                    return Err("--chunk-size: this role has no chunk geometry".into());
                }
                parsed.chunk_size = value.parse().map_err(|_| bad())?;
            } else if flag == "--retention" {
                if !accepts_chunk_size {
                    return Err("--retention: this role hosts no version managers".into());
                }
                parsed.retention =
                    RetentionPolicy::parse(&value).map_err(|e| format!("bad {flag}: {e}"))?;
            } else if flag == "--lease-ttl-ms" {
                if !accepts_chunk_size {
                    return Err("--lease-ttl-ms: this role hosts no version managers".into());
                }
                parsed.lease_ttl_cap_ms = value.parse().map_err(|_| bad())?;
            } else if flag == "--shard" {
                if !accepts_chunk_size {
                    return Err("--shard: this role hosts no version managers".into());
                }
                let (i, n) = value.split_once('/').ok_or_else(bad)?;
                let (i, n): (usize, usize) =
                    (i.parse().map_err(|_| bad())?, n.parse().map_err(|_| bad())?);
                if i >= n {
                    return Err(format!("bad {flag}: shard index {i} out of range for /{n}"));
                }
                parsed.shard = Some((i, n));
            } else if flag == "--data-dir" {
                parsed.data_dir = Some(PathBuf::from(&value));
            } else if flag == "--fsync" {
                parsed.fsync =
                    FsyncPolicy::parse(&value).map_err(|e| format!("bad {flag}: {e}"))?;
            } else if flag == "--workers" {
                parsed.cfg.server_workers = value.parse().map_err(|_| bad())?;
            } else if flag == "--pool-conns" {
                parsed.cfg.pool_conns = value.parse().map_err(|_| bad())?;
            } else if flag == "--mux-streams-per-conn" {
                parsed.cfg.mux_streams_per_conn = value.parse().map_err(|_| bad())?;
            } else if flag == "--connect-retries" {
                parsed.cfg.connect_retries = value.parse().map_err(|_| bad())?;
            } else if flag == "--connect-timeout-ms" {
                parsed.cfg.connect_timeout = ms()?;
            } else if flag == "--read-timeout-ms" {
                parsed.cfg.read_timeout = ms()?;
            } else if flag == "--write-timeout-ms" {
                parsed.cfg.write_timeout = ms()?;
            } else if flag == "--backoff-ms" {
                parsed.cfg.backoff = ms()?;
            } else if flag == "--server-mode" {
                parsed.cfg.server_mode =
                    ServerMode::parse(&value).map_err(|e| format!("bad {flag}: {e}"))?;
            } else if flag == "--max-conns" {
                parsed.cfg.max_conns = value.parse().map_err(|_| bad())?;
            } else if flag == "--max-inflight-per-conn" {
                parsed.cfg.max_inflight_per_conn = value.parse().map_err(|_| bad())?;
            } else {
                return Err(format!("unknown flag {flag}"));
            }
        }
        Ok(parsed)
    }

    /// The storage backend these flags select: a disk backend rooted at
    /// `--data-dir` with the `--fsync` policy, or the in-memory default
    /// when `--data-dir` was not given.
    pub fn backend(&self) -> BackendConfig {
        match &self.data_dir {
            Some(dir) => BackendConfig::disk(dir).with_fsync(self.fsync),
            None => BackendConfig::Memory,
        }
    }
}

/// Runs a service on `addr` until the process is killed (binary entry
/// point; blocks forever).
pub fn serve_forever(addr: &str, service: Arc<dyn Service>, cfg: RpcConfig) -> io::Result<()> {
    let server = RpcServer::start_with_config(addr, service, cfg)?;
    eprintln!("listening on {}", server.local_addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// The shared transport/dispatcher flags every server binary accepts
/// (with each flag's value hint), in the order the usage line lists
/// them. [`server_usage`] renders this list, so the advertised flags
/// cannot drift from the parser.
const SHARED_FLAGS: [(&str, &str); 11] = [
    ("--workers", "N"),
    ("--read-timeout-ms", "N"),
    ("--write-timeout-ms", "N"),
    ("--connect-timeout-ms", "N"),
    ("--connect-retries", "N"),
    ("--backoff-ms", "N"),
    ("--pool-conns", "N"),
    ("--mux-streams-per-conn", "N"),
    ("--server-mode", "threads|reactor"),
    ("--max-conns", "N"),
    ("--max-inflight-per-conn", "N"),
];

/// Renders the one-line usage string of a server binary: exactly the
/// flags [`ServerArgs::parse`] accepts for that role — the role-specific
/// fleet-size flag (if any), `--chunk-size` only for roles that carry
/// chunk geometry, and the shared [`RpcConfig`] flags.
pub fn server_usage(name: &str, count_flag: Option<&str>, accepts_chunk_size: bool) -> String {
    let mut usage = format!("usage: {name} <listen-addr>");
    if let Some(flag) = count_flag {
        usage.push_str(&format!(" [{flag} N]"));
    }
    if accepts_chunk_size {
        usage.push_str(" [--chunk-size BYTES]");
        usage.push_str(" [--retention keep-all|keep-last:N|keep-above:V]");
        usage.push_str(" [--lease-ttl-ms N]");
        usage.push_str(" [--shard I/N]");
    }
    usage.push_str(" [--data-dir PATH] [--fsync per-publish|group:N|deferred]");
    for (flag, hint) in SHARED_FLAGS {
        usage.push_str(&format!(" [{flag} {hint}]"));
    }
    usage
}

/// The shared `main` of the three server binaries: parses the argument
/// list through [`ServerArgs`], builds the role's service, and serves
/// forever. `count_flag` is the role-specific fleet-size flag
/// (`--providers` / `--shards`) with its default, or `None` for roles
/// without one (the version server); `accepts_chunk_size` gates the
/// `--chunk-size` flag to the roles that carry chunk geometry. Exits
/// the process with status 2 on bad flags and 1 on a bind failure.
pub fn run_server_binary(
    name: &str,
    count_flag: Option<(&str, usize)>,
    accepts_chunk_size: bool,
    build: impl FnOnce(&ServerArgs) -> Arc<dyn Service>,
) {
    let (flag, default_count) = count_flag.unwrap_or(("", 0));
    let usage = server_usage(name, count_flag.map(|(f, _)| f), accepts_chunk_size);
    let args = match ServerArgs::parse(
        std::env::args().skip(1),
        flag,
        default_count,
        accepts_chunk_size,
    ) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let service = build(&args);
    if let Err(e) = serve_forever(&args.addr, service, args.cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
