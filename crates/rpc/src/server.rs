//! Server-side request dispatch and the TCP accept loop.
//!
//! A [`Service`] maps one decoded request to one response; the two
//! concrete services mirror the paper's two server roles:
//!
//! * [`ProviderService`] hosts a fleet of [`DataProvider`]s (chunk ops).
//! * [`MetaService`] hosts [`MetaStore`] shards plus one lazily-created
//!   [`VersionManager`] per blob (metadata and version ops).
//!
//! Servers run **zero-cost** device models: a real deployment's latency
//! comes from the real sockets, not from the simulation. The virtual
//! `arrival` instants clients pass through the protocol therefore echo
//! back unchanged, keeping remote and in-process bookkeeping aligned.
//!
//! [`RpcServer`] is the hosting shell: a nonblocking accept loop on a
//! dedicated thread, one thread per connection, and a [`RpcServer::stop`]
//! that also severs accepted connections so failover tests can kill a
//! live server deterministically.

use crate::proto::{Request, Response};
use crate::wire;
use atomio_meta::{MetaStore, TreeConfig, VersionHistory};
use atomio_provider::DataProvider;
use atomio_simgrid::{CostModel, FaultInjector};
use atomio_types::{ByteRange, Error, ProviderId, Result, TransportErrorKind};
use atomio_version::{TicketMode, VersionManager};
use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maps one request (plus out-of-band payload) to one response (plus
/// out-of-band payload). Implementations never panic on bad input: every
/// failure becomes a [`Response::Fail`].
pub trait Service: Send + Sync + std::fmt::Debug {
    /// Handles one request.
    fn handle(&self, request: Request, payload: Bytes) -> (Response, Bytes);
}

fn fail(error: Error) -> (Response, Bytes) {
    (Response::Fail { error }, Bytes::new())
}

fn ok(response: Response) -> (Response, Bytes) {
    (response, Bytes::new())
}

fn unsupported(role: &'static str) -> (Response, Bytes) {
    fail(Error::Unsupported(role))
}

/// Hosts a fleet of data providers behind the chunk RPCs.
#[derive(Debug)]
pub struct ProviderService {
    providers: Vec<Arc<DataProvider>>,
}

impl ProviderService {
    /// Creates `count` zero-cost providers with ids `0..count`.
    pub fn new(count: usize) -> Self {
        let faults = Arc::new(FaultInjector::new(0));
        Self::from_providers(
            (0..count)
                .map(|i| {
                    Arc::new(DataProvider::new(
                        ProviderId::new(i as u64),
                        CostModel::zero(),
                        Arc::clone(&faults),
                    ))
                })
                .collect(),
        )
    }

    /// Hosts caller-built providers (ids must be unique; any cost model).
    pub fn from_providers(providers: Vec<Arc<DataProvider>>) -> Self {
        ProviderService { providers }
    }

    /// The hosted providers.
    pub fn providers(&self) -> &[Arc<DataProvider>] {
        &self.providers
    }

    fn provider(&self, id: ProviderId) -> Result<&Arc<DataProvider>> {
        self.providers
            .iter()
            .find(|p| p.id() == id)
            .ok_or(Error::ProviderNotFound(id))
    }
}

impl Service for ProviderService {
    fn handle(&self, request: Request, payload: Bytes) -> (Response, Bytes) {
        use Request::*;
        match request {
            Ping => ok(Response::Pong),
            PutChunk {
                provider,
                arrival,
                chunk,
            } => match self
                .provider(provider)
                .and_then(|s| s.put_chunk_at(arrival, chunk, payload))
            {
                Ok(done) => ok(Response::Done { done }),
                Err(e) => fail(e),
            },
            PutChunkBatch {
                provider,
                arrival,
                items,
            } => {
                let store = match self.provider(provider) {
                    Ok(s) => s,
                    Err(e) => return fail(e),
                };
                let total: u64 = items.iter().map(|&(_, len)| len).sum();
                if total != payload.len() as u64 {
                    return fail(Error::Transport {
                        kind: TransportErrorKind::Protocol,
                        detail: format!(
                            "batch declares {total} payload bytes, frame carries {}",
                            payload.len()
                        ),
                    });
                }
                let mut offset = 0usize;
                let results = items
                    .into_iter()
                    .map(|(chunk, len)| {
                        let data = payload.slice(offset..offset + len as usize);
                        offset += len as usize;
                        store.put_chunk_at(arrival, chunk, data)
                    })
                    .collect();
                ok(Response::PutBatch { results })
            }
            GetChunk {
                provider,
                arrival,
                chunk,
            } => {
                let outcome = self.provider(provider).and_then(|s| {
                    let len = s
                        .chunk_len(chunk)
                        .ok_or(Error::ChunkNotFound { provider, chunk })?;
                    s.get_chunk_range_at(arrival, chunk, ByteRange::new(0, len))
                });
                match outcome {
                    Ok((data, sent)) => (Response::ChunkData { sent }, data),
                    Err(e) => fail(e),
                }
            }
            GetChunkRange {
                provider,
                arrival,
                chunk,
                range,
            } => match self
                .provider(provider)
                .and_then(|s| s.get_chunk_range_at(arrival, chunk, range))
            {
                Ok((data, sent)) => (Response::ChunkData { sent }, data),
                Err(e) => fail(e),
            },
            GetChunkRangeBatch {
                provider,
                arrival,
                items,
            } => {
                let store = match self.provider(provider) {
                    Ok(s) => s,
                    Err(e) => return fail(e),
                };
                let mut out = Vec::new();
                let results = items
                    .into_iter()
                    .map(|(chunk, range)| {
                        store
                            .get_chunk_range_at(arrival, chunk, range)
                            .map(|(data, sent)| {
                                let len = data.len() as u64;
                                out.extend_from_slice(&data);
                                (len, sent)
                            })
                    })
                    .collect();
                (Response::ChunkBatch { results }, Bytes::from(out))
            }
            ProviderHasChunk { provider, chunk } => match self.provider(provider) {
                Ok(s) => ok(Response::Flag {
                    value: s.has_chunk(chunk),
                }),
                Err(e) => fail(e),
            },
            ProviderChunkCount { provider } => match self.provider(provider) {
                Ok(s) => ok(Response::Count {
                    value: s.chunk_count() as u64,
                }),
                Err(e) => fail(e),
            },
            ProviderBytesStored { provider } => match self.provider(provider) {
                Ok(s) => ok(Response::Count {
                    value: s.bytes_stored(),
                }),
                Err(e) => fail(e),
            },
            ProviderEvictChunk { provider, chunk } => match self.provider(provider) {
                Ok(s) => ok(Response::Count {
                    value: s.evict_chunk(chunk),
                }),
                Err(e) => fail(e),
            },
            ProviderChecksumOf { provider, chunk } => match self.provider(provider) {
                Ok(s) => ok(Response::Checksum {
                    value: s.checksum_of(chunk),
                }),
                Err(e) => fail(e),
            },
            ProviderCorruptChunk {
                provider,
                chunk,
                byte,
            } => match self.provider(provider) {
                Ok(s) => {
                    s.corrupt_chunk(chunk, byte as usize);
                    ok(Response::Unit)
                }
                Err(e) => fail(e),
            },
            MetaPutBatch { .. }
            | MetaGetBatch { .. }
            | MetaContains { .. }
            | MetaNodeCount
            | MetaEvict { .. }
            | MetaListKeys
            | VmTicket { .. }
            | VmTicketAppend { .. }
            | VmPublish { .. }
            | VmIsPublished { .. }
            | VmLatest { .. }
            | VmSnapshot { .. } => unsupported("metadata/version op sent to a provider server"),
        }
    }
}

/// Hosts metadata shards plus per-blob version managers behind the
/// metadata and version RPCs.
#[derive(Debug)]
pub struct MetaService {
    store: Arc<MetaStore>,
    chunk_size: u64,
    vms: Mutex<HashMap<u64, Arc<VersionManager>>>,
}

impl MetaService {
    /// Creates `shards` zero-cost metadata shards; version managers use
    /// `chunk_size` for their tree geometry.
    pub fn new(shards: usize, chunk_size: u64) -> Self {
        MetaService {
            store: Arc::new(MetaStore::new(shards, CostModel::zero())),
            chunk_size,
            vms: Mutex::new(HashMap::new()),
        }
    }

    /// The hosted metadata store.
    pub fn store(&self) -> &Arc<MetaStore> {
        &self.store
    }

    fn vm(&self, blob: u64) -> Arc<VersionManager> {
        Arc::clone(self.vms.lock().entry(blob).or_insert_with(|| {
            Arc::new(VersionManager::new(
                Arc::new(VersionHistory::new()),
                TreeConfig::new(self.chunk_size),
                CostModel::zero(),
                TicketMode::Pipelined,
            ))
        }))
    }
}

impl Service for MetaService {
    fn handle(&self, request: Request, _payload: Bytes) -> (Response, Bytes) {
        use Request::*;
        match request {
            Ping => ok(Response::Pong),
            MetaPutBatch { nodes } => ok(Response::NodePuts {
                results: self.store.put_batch_local(nodes),
            }),
            MetaGetBatch { keys } => ok(Response::NodeGets {
                results: self
                    .store
                    .get_batch_local(&keys)
                    .into_iter()
                    .map(|r| r.map(|node| (*node).clone()))
                    .collect(),
            }),
            MetaContains { key } => ok(Response::Flag {
                value: self.store.contains(key),
            }),
            MetaNodeCount => ok(Response::Count {
                value: self.store.node_count() as u64,
            }),
            MetaEvict { key } => {
                self.store.evict(key);
                ok(Response::Unit)
            }
            MetaListKeys => ok(Response::Keys {
                keys: self.store.list_keys(),
            }),
            VmTicket {
                blob,
                extents,
                known,
            } => match self.vm(blob).ticket_local(&extents, known as usize) {
                Ok((ticket, extents, delta)) => ok(Response::TicketGrant {
                    ticket,
                    extents,
                    delta,
                }),
                Err(e) => fail(e),
            },
            VmTicketAppend { blob, len, known } => {
                match self.vm(blob).ticket_append_local(len, known as usize) {
                    Ok((ticket, extents, delta)) => ok(Response::TicketGrant {
                        ticket,
                        extents,
                        delta,
                    }),
                    Err(e) => fail(e),
                }
            }
            VmPublish { blob, ticket, root } => match self.vm(blob).publish_local(ticket, root) {
                Ok(()) => ok(Response::Unit),
                Err(e) => fail(e),
            },
            VmIsPublished { blob, version } => ok(Response::Flag {
                value: self.vm(blob).is_published(version),
            }),
            VmLatest { blob } => ok(Response::Snapshot {
                record: self.vm(blob).latest_local(),
            }),
            VmSnapshot { blob, version } => match self.vm(blob).snapshot_local(version) {
                Ok(record) => ok(Response::Snapshot { record }),
                Err(e) => fail(e),
            },
            PutChunk { .. }
            | PutChunkBatch { .. }
            | GetChunk { .. }
            | GetChunkRange { .. }
            | GetChunkRangeBatch { .. }
            | ProviderHasChunk { .. }
            | ProviderChunkCount { .. }
            | ProviderBytesStored { .. }
            | ProviderEvictChunk { .. }
            | ProviderChecksumOf { .. }
            | ProviderCorruptChunk { .. } => unsupported("chunk op sent to a metadata server"),
        }
    }
}

/// A running TCP server hosting one [`Service`].
#[derive(Debug)]
pub struct RpcServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl RpcServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections; one thread per connection.
    pub fn start(addr: impl ToSocketAddrs, service: Arc<dyn Service>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = stream.set_nodelay(true);
                            // Connection threads block on frame reads;
                            // stop() severs the socket to wake them.
                            let _ = stream.set_nonblocking(false);
                            if let Ok(clone) = stream.try_clone() {
                                conns.lock().push(clone);
                            }
                            let service = Arc::clone(&service);
                            std::thread::spawn(move || serve_connection(stream, service));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(RpcServer {
            addr,
            shutdown,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs every accepted connection, and joins the
    /// accept loop. In-flight calls on severed connections surface
    /// connection-reset transport errors at their clients — exactly the
    /// failure the provider manager's failover policy handles.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(mut stream: TcpStream, service: Arc<dyn Service>) {
    loop {
        let (header, payload, _) = match wire::read_frame(&mut stream) {
            Ok(frame) => frame,
            // EOF, peer reset, or a malformed frame: drop the connection.
            // (After a framing error nothing on the stream can be
            // trusted, so closing is the only safe recovery.)
            Err(_) => return,
        };
        let (response, out) = match Request::from_value(&header) {
            Ok(request) => service.handle(request, payload),
            Err(e) => fail(Error::Transport {
                kind: TransportErrorKind::Protocol,
                detail: format!("undecodable request: {e}"),
            }),
        };
        if wire::write_frame(&mut stream, &response.to_value(), &out).is_err() {
            return;
        }
    }
}

/// Everything a server binary needs from one `--flag value` style
/// argument list: kept here so both binaries share the parsing and the
/// unit tests cover it.
#[derive(Debug, PartialEq, Eq)]
pub struct ServerArgs {
    /// Listen address, e.g. `127.0.0.1:7420`.
    pub addr: String,
    /// `--providers N` / `--shards N` style count (role-specific).
    pub count: usize,
    /// `--chunk-size BYTES` (meta server only; ignored by providers).
    pub chunk_size: u64,
}

impl ServerArgs {
    /// Parses `<addr> [--COUNT_FLAG n] [--chunk-size bytes]`.
    pub fn parse(
        args: impl IntoIterator<Item = String>,
        count_flag: &str,
        default_count: usize,
    ) -> std::result::Result<Self, String> {
        let mut args = args.into_iter();
        let addr = args.next().ok_or("missing listen address")?;
        let mut parsed = ServerArgs {
            addr,
            count: default_count,
            chunk_size: 64 * 1024,
        };
        while let Some(flag) = args.next() {
            let value = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
            if flag == count_flag {
                parsed.count = value.parse().map_err(|_| format!("bad {flag}: {value}"))?;
            } else if flag == "--chunk-size" {
                parsed.chunk_size = value.parse().map_err(|_| format!("bad {flag}: {value}"))?;
            } else {
                return Err(format!("unknown flag {flag}"));
            }
        }
        Ok(parsed)
    }
}

/// Runs a service on `addr` until the process is killed (binary entry
/// point; blocks forever).
pub fn serve_forever(addr: &str, service: Arc<dyn Service>) -> io::Result<()> {
    let server = RpcServer::start(addr, service)?;
    eprintln!("listening on {}", server.local_addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
