//! Slot-routed fan-out over a sharded version service.
//!
//! [`SlotRoutedTransport`] implements [`Transport`] over a fleet of
//! per-shard transports: every version-manager request carries a blob id
//! ([`Request::vm_blob`]), the blob hashes to a slot
//! ([`slot_for_blob`]), and the client's [`SlotMap`] names the shard
//! that owns it. Because the routing lives *under* the [`Transport`]
//! seam, [`crate::client::RemoteVersionManager`] — and everything above
//! it — runs unchanged against 1 shard or 16.
//!
//! Stale maps self-heal: a shard that does not own a slot answers
//! [`Error::WrongShard`] with its map epoch; the router refetches the
//! map from every shard, adopts the highest epoch, and retries. During
//! an online handoff ([`handoff_slots`]) the moving slots are frozen —
//! then sealed — on the old owner, so the retry loop also rides out the
//! short window in which neither map nor freeze has settled — bounded,
//! then the typed error surfaces to the caller.

use crate::proto::{BlobExport, Request, Response};
use crate::transport::{unexpected, Transport};
use atomio_core::{slot_for_blob, SlotMap};
use atomio_types::{Error, Result};
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// How many times a routed call chases `WrongShard` redirects before
/// surfacing the error. Each retry refreshes the map and backs off
/// [`RETRY_BACKOFF`], so the budget comfortably covers a slot handoff.
const MAX_REDIRECTS: usize = 100;

/// Pause between redirect retries while a handoff settles.
const RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// Default wall-clock budget [`handoff_slots`] spends waiting for
/// granted-but-unpublished tickets to publish before sealing the moving
/// slots. Sized for this repo's core workload — large checkpoint
/// uploads can hold a ticket for many seconds — and overridable via
/// [`handoff_slots_with_budget`]. Tickets still outstanding when the
/// budget lapses are abandoned: the slots are sealed, so their eventual
/// publishes are refused typed rather than silently lost.
pub const DEFAULT_DRAIN_BUDGET: Duration = Duration::from_secs(30);

/// Pause between drain polls during a handoff.
const DRAIN_POLL_INTERVAL: Duration = Duration::from_millis(10);

/// A [`Transport`] that routes each version-manager call to the shard
/// owning the blob's hash slot.
///
/// Requests without a routing key (metadata ops, `Ping`, the slot-map
/// control plane) go to shard 0 — callers wanting a specific shard
/// should hold that shard's transport directly.
#[derive(Debug)]
pub struct SlotRoutedTransport {
    shards: Vec<Arc<dyn Transport>>,
    map: RwLock<SlotMap>,
}

impl SlotRoutedTransport {
    /// Builds a router over one transport per shard, assuming the
    /// uniform slot split every `--shard i/N` server boots with. A
    /// deployment mid-handoff corrects itself on the first
    /// `WrongShard` redirect.
    pub fn new(shards: Vec<Arc<dyn Transport>>) -> Self {
        assert!(!shards.is_empty(), "a routed transport needs shards");
        let map = SlotMap::uniform(shards.len());
        SlotRoutedTransport {
            shards,
            map: RwLock::new(map),
        }
    }

    /// The router's current belief about slot ownership.
    pub fn slot_map(&self) -> SlotMap {
        self.map.read().clone()
    }

    /// Adopts `map` if its epoch is not older than the current one.
    pub fn install(&self, map: SlotMap) {
        let mut cur = self.map.write();
        if map.epoch >= cur.epoch {
            *cur = map;
        }
    }

    /// The per-shard transports, indexed by group.
    pub fn shards(&self) -> &[Arc<dyn Transport>] {
        &self.shards
    }

    /// Refetches the slot map from every reachable shard and adopts the
    /// highest epoch seen. Unreachable shards are skipped: during a
    /// shard outage the survivors still agree on the map.
    pub fn refresh(&self) -> SlotMap {
        for shard in &self.shards {
            if let Ok((Response::SlotMapInfo { map }, _)) = shard.call(&Request::SlotMapGet, &[]) {
                self.install(map);
            }
        }
        self.slot_map()
    }

    /// The shard transport owning `blob` under the current map:
    /// `Ok(None)` while the blob's slot is unassigned (mid-handoff,
    /// worth retrying after a refresh), `Err` when the map routes the
    /// slot to a shard this router has no transport for (a permanent
    /// configuration mismatch — `reassign` can grow the group count
    /// past the dialed fleet — that no amount of retrying fixes).
    fn route(&self, blob: u64) -> Result<Option<Arc<dyn Transport>>> {
        let slot = slot_for_blob(blob);
        let Some(group) = self.map.read().group_of(slot) else {
            return Ok(None);
        };
        match self.shards.get(group) {
            Some(shard) => Ok(Some(Arc::clone(shard))),
            None => Err(Error::Internal(format!(
                "slot {slot} is owned by shard {group} but this router only dials {} shards — \
                 no transport for shard {group}",
                self.shards.len()
            ))),
        }
    }
}

impl Transport for SlotRoutedTransport {
    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)> {
        let Some(blob) = request.vm_blob() else {
            return self.shards[0].call(request, payload);
        };
        let mut last: Option<(Response, Bytes)> = None;
        for attempt in 0..MAX_REDIRECTS {
            if attempt > 0 {
                std::thread::sleep(RETRY_BACKOFF);
                self.refresh();
            }
            let target = match self.route(blob) {
                Ok(Some(target)) => target,
                // Unassigned slot: a handoff is mid-flight; refresh and
                // retry until the reassigned map lands.
                Ok(None) => continue,
                // Routed past the dialed fleet: fail fast — burning the
                // redirect budget cannot conjure the missing transport.
                Err(error) => return Ok((Response::Fail { error }, Bytes::new())),
            };
            let reply = target.call(request, payload)?;
            // A server-side refusal arrives as a transport-level `Ok`
            // carrying `Fail`; only `WrongShard` means "re-route".
            if let (
                Response::Fail {
                    error: Error::WrongShard { .. },
                },
                _,
            ) = &reply
            {
                last = Some(reply);
                continue;
            }
            return Ok(reply);
        }
        // Redirect budget exhausted: surface the shard's typed refusal.
        Ok(last.unwrap_or((
            Response::Fail {
                error: Error::Internal(format!(
                    "slot {} unassigned after {MAX_REDIRECTS} map refreshes",
                    slot_for_blob(blob)
                )),
            },
            Bytes::new(),
        )))
    }
}

/// Moves `slots` to shard `to` across a live fleet — the online
/// membership-change protocol — with the default
/// [`DEFAULT_DRAIN_BUDGET`]:
///
/// 1. Compute the reassigned map (epoch + 1).
/// 2. **Freeze** the moving slots on every current owner: new tickets
///    are refused with [`Error::WrongShard`] at the *new* epoch, but
///    in-flight publishes still land.
/// 3. **Drain**: poll each owner until no granted-but-unpublished
///    tickets remain in the moving slots, up to the drain budget.
/// 4. **Seal** the moving slots on each owner (`VmSealSlots`): from
///    here publishes are refused too, and the RPC returns only after
///    every in-flight publish has landed — so nothing can slip into a
///    slot between the export below and the map install. Tickets still
///    outstanding are abandoned: their writers' publishes are refused
///    typed (never silently dropped), and a retry against the new
///    owner — which does not know the ticket — fails typed as well.
/// 5. **Export** the published prefix (version chains + retention) of
///    every blob in the moving slots and **import** it on the new
///    owner. Import is idempotent, so a crashed-and-repeated handoff
///    replays harmlessly.
/// 6. **Install** the reassigned map everywhere — new owner first, so
///    redirected clients find it serving before the old owner thaws.
///
/// Snapshot leases are deliberately *not* migrated: they are
/// TTL-bounded, so readers re-acquire against the new owner and the old
/// grants lapse on their own.
///
/// Returns the installed map.
///
/// # Errors
/// Any transport failure or typed refusal from the fleet aborts the
/// handoff; the caller can retry (every step is idempotent) or reassert
/// the old map at a fresh epoch ([`SlotMap::bump_epoch`]) to thaw.
pub fn handoff_slots(
    shards: &[Arc<dyn Transport>],
    map: &SlotMap,
    slots: &[u16],
    to: usize,
) -> Result<SlotMap> {
    handoff_slots_with_budget(shards, map, slots, to, DEFAULT_DRAIN_BUDGET)
}

/// [`handoff_slots`] with an explicit drain budget: how long to wait
/// for in-flight tickets to publish before sealing the moving slots and
/// abandoning the stragglers. Deployments whose writers hold tickets
/// across long uploads should size this past their slowest commit.
pub fn handoff_slots_with_budget(
    shards: &[Arc<dyn Transport>],
    map: &SlotMap,
    slots: &[u16],
    to: usize,
    drain_budget: Duration,
) -> Result<SlotMap> {
    let next = map.reassign(slots, to);
    let owners: Vec<(usize, Vec<u16>)> = (0..shards.len())
        .filter(|g| *g != to)
        .map(|g| {
            let owned: Vec<u16> = slots.iter().copied().filter(|s| map.owns(g, *s)).collect();
            (g, owned)
        })
        .filter(|(_, owned)| !owned.is_empty())
        .collect();

    // Freeze + drain each losing shard. The freeze RPC is idempotent
    // and returns the pending-grant count, so it doubles as the poll.
    let drain_polls = (drain_budget.as_millis() / DRAIN_POLL_INTERVAL.as_millis()).max(1) as usize;
    for (g, owned) in &owners {
        for poll in 0..drain_polls {
            let request = Request::VmFreezeSlots {
                slots: owned.clone(),
                epoch: next.epoch,
            };
            match shards[*g].call(&request, &[])? {
                (Response::Count { value: 0 }, _) => break,
                (Response::Count { .. }, _) if poll + 1 < drain_polls => {
                    std::thread::sleep(DRAIN_POLL_INTERVAL)
                }
                // Budget exhausted with grants outstanding: fall through
                // to the seal, which abandons them typed.
                (Response::Count { .. }, _) => {}
                (other, _) => return Err(unexpected("Count", other)),
            }
        }
    }

    // Seal: the losing shards now refuse publishes in the moving slots
    // as well, so the export below is a consistent final snapshot — an
    // acked publish is either in it or was never acked.
    for (g, owned) in &owners {
        let request = Request::VmSealSlots {
            slots: owned.clone(),
            epoch: next.epoch,
        };
        match shards[*g].call(&request, &[])? {
            (Response::Count { .. }, _) => {}
            (other, _) => return Err(unexpected("Count", other)),
        }
    }

    // Export from the losing shards, import on the gaining shard.
    for (g, owned) in &owners {
        let request = Request::VmExportSlots {
            slots: owned.clone(),
        };
        let blobs: Vec<BlobExport> = match shards[*g].call(&request, &[])? {
            (Response::SlotExport { blobs }, _) => blobs,
            (other, _) => return Err(unexpected("SlotExport", other)),
        };
        if blobs.is_empty() {
            continue;
        }
        match shards[to].call(&Request::VmImportBlobs { blobs }, &[])? {
            (Response::Count { .. }, _) => {}
            (Response::Fail { error }, _) => return Err(error),
            (other, _) => return Err(unexpected("Count", other)),
        }
    }

    // Install the reassigned map: gaining shard first, then the rest
    // (installing thaws any freeze at or below the new epoch).
    let install = Request::SlotMapInstall { map: next.clone() };
    match shards[to].call(&install, &[])? {
        (Response::Unit, _) => {}
        (Response::Fail { error }, _) => return Err(error),
        (other, _) => return Err(unexpected("Unit", other)),
    }
    for (g, shard) in shards.iter().enumerate() {
        if g == to {
            continue;
        }
        match shard.call(&install, &[])? {
            (Response::Unit, _) => {}
            (Response::Fail { error }, _) => return Err(error),
            (other, _) => return Err(unexpected("Unit", other)),
        }
    }
    Ok(next)
}
