//! Slot-routed fan-out over a sharded version service.
//!
//! [`SlotRoutedTransport`] implements [`Transport`] over a fleet of
//! per-shard transports: every version-manager request carries a blob id
//! ([`Request::vm_blob`]), the blob hashes to a slot
//! ([`slot_for_blob`]), and the client's [`SlotMap`] names the shard
//! that owns it. Because the routing lives *under* the [`Transport`]
//! seam, [`crate::client::RemoteVersionManager`] — and everything above
//! it — runs unchanged against 1 shard or 16.
//!
//! Stale maps self-heal: a shard that does not own a slot answers
//! [`Error::WrongShard`] with its map epoch; the router refetches the
//! map from every shard, adopts the highest epoch, and retries. During
//! an online handoff ([`handoff_slots`]) the moving slots are frozen on
//! the old owner, so the retry loop also rides out the short window in
//! which neither map nor freeze has settled — bounded, then the typed
//! error surfaces to the caller.

use crate::proto::{BlobExport, Request, Response};
use crate::transport::{unexpected, Transport};
use atomio_core::{slot_for_blob, SlotMap};
use atomio_types::{Error, Result};
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// How many times a routed call chases `WrongShard` redirects before
/// surfacing the error. Each retry refreshes the map and backs off
/// [`RETRY_BACKOFF`], so the budget comfortably covers a slot handoff.
const MAX_REDIRECTS: usize = 100;

/// Pause between redirect retries while a handoff settles.
const RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// A [`Transport`] that routes each version-manager call to the shard
/// owning the blob's hash slot.
///
/// Requests without a routing key (metadata ops, `Ping`, the slot-map
/// control plane) go to shard 0 — callers wanting a specific shard
/// should hold that shard's transport directly.
#[derive(Debug)]
pub struct SlotRoutedTransport {
    shards: Vec<Arc<dyn Transport>>,
    map: RwLock<SlotMap>,
}

impl SlotRoutedTransport {
    /// Builds a router over one transport per shard, assuming the
    /// uniform slot split every `--shard i/N` server boots with. A
    /// deployment mid-handoff corrects itself on the first
    /// `WrongShard` redirect.
    pub fn new(shards: Vec<Arc<dyn Transport>>) -> Self {
        assert!(!shards.is_empty(), "a routed transport needs shards");
        let map = SlotMap::uniform(shards.len());
        SlotRoutedTransport {
            shards,
            map: RwLock::new(map),
        }
    }

    /// The router's current belief about slot ownership.
    pub fn slot_map(&self) -> SlotMap {
        self.map.read().clone()
    }

    /// Adopts `map` if its epoch is not older than the current one.
    pub fn install(&self, map: SlotMap) {
        let mut cur = self.map.write();
        if map.epoch >= cur.epoch {
            *cur = map;
        }
    }

    /// The per-shard transports, indexed by group.
    pub fn shards(&self) -> &[Arc<dyn Transport>] {
        &self.shards
    }

    /// Refetches the slot map from every reachable shard and adopts the
    /// highest epoch seen. Unreachable shards are skipped: during a
    /// shard outage the survivors still agree on the map.
    pub fn refresh(&self) -> SlotMap {
        for shard in &self.shards {
            if let Ok((Response::SlotMapInfo { map }, _)) = shard.call(&Request::SlotMapGet, &[]) {
                self.install(map);
            }
        }
        self.slot_map()
    }

    /// The shard transport owning `blob` under the current map, or
    /// `None` while the blob's slot is unassigned (mid-handoff).
    fn route(&self, blob: u64) -> Option<Arc<dyn Transport>> {
        let slot = slot_for_blob(blob);
        let group = self.map.read().group_of(slot)?;
        self.shards.get(group).map(Arc::clone)
    }
}

impl Transport for SlotRoutedTransport {
    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)> {
        let Some(blob) = request.vm_blob() else {
            return self.shards[0].call(request, payload);
        };
        let mut last: Option<(Response, Bytes)> = None;
        for attempt in 0..MAX_REDIRECTS {
            if attempt > 0 {
                std::thread::sleep(RETRY_BACKOFF);
                self.refresh();
            }
            let Some(target) = self.route(blob) else {
                // Unassigned slot: a handoff is mid-flight; refresh and
                // retry until the reassigned map lands.
                continue;
            };
            let reply = target.call(request, payload)?;
            // A server-side refusal arrives as a transport-level `Ok`
            // carrying `Fail`; only `WrongShard` means "re-route".
            if let (
                Response::Fail {
                    error: Error::WrongShard { .. },
                },
                _,
            ) = &reply
            {
                last = Some(reply);
                continue;
            }
            return Ok(reply);
        }
        // Redirect budget exhausted: surface the shard's typed refusal.
        Ok(last.unwrap_or((
            Response::Fail {
                error: Error::Internal(format!(
                    "slot {} unassigned after {MAX_REDIRECTS} map refreshes",
                    slot_for_blob(blob)
                )),
            },
            Bytes::new(),
        )))
    }
}

/// Moves `slots` to shard `to` across a live fleet — the online
/// membership-change protocol:
///
/// 1. Compute the reassigned map (epoch + 1).
/// 2. **Freeze** the moving slots on every current owner: new tickets
///    are refused with [`Error::WrongShard`] at the *new* epoch, but
///    in-flight publishes still land.
/// 3. **Drain**: poll each owner until no granted-but-unpublished
///    tickets remain in the moving slots (bounded; tickets that never
///    publish are abandoned — their writers' publishes will be refused
///    and retried against the new owner, which does not know the ticket
///    and fails them typed).
/// 4. **Export** the published prefix (version chains + retention) of
///    every blob in the moving slots and **import** it on the new
///    owner. Import is idempotent, so a crashed-and-repeated handoff
///    replays harmlessly.
/// 5. **Install** the reassigned map everywhere — new owner first, so
///    redirected clients find it serving before the old owner thaws.
///
/// Snapshot leases are deliberately *not* migrated: they are
/// TTL-bounded, so readers re-acquire against the new owner and the old
/// grants lapse on their own.
///
/// Returns the installed map.
///
/// # Errors
/// Any transport failure or typed refusal from the fleet aborts the
/// handoff; the caller can retry (every step is idempotent) or reassert
/// the old map at a fresh epoch ([`SlotMap::bump_epoch`]) to thaw.
pub fn handoff_slots(
    shards: &[Arc<dyn Transport>],
    map: &SlotMap,
    slots: &[u16],
    to: usize,
) -> Result<SlotMap> {
    let next = map.reassign(slots, to);
    let owners: Vec<(usize, Vec<u16>)> = (0..shards.len())
        .filter(|g| *g != to)
        .map(|g| {
            let owned: Vec<u16> = slots.iter().copied().filter(|s| map.owns(g, *s)).collect();
            (g, owned)
        })
        .filter(|(_, owned)| !owned.is_empty())
        .collect();

    // Freeze + drain each losing shard. The freeze RPC is idempotent
    // and returns the pending-grant count, so it doubles as the poll.
    for (g, owned) in &owners {
        let mut drained = false;
        for _ in 0..MAX_REDIRECTS {
            let request = Request::VmFreezeSlots {
                slots: owned.clone(),
                epoch: next.epoch,
            };
            match shards[*g].call(&request, &[])? {
                (Response::Count { value: 0 }, _) => {
                    drained = true;
                    break;
                }
                (Response::Count { .. }, _) => std::thread::sleep(RETRY_BACKOFF),
                (other, _) => return Err(unexpected("Count", other)),
            }
        }
        // Not drained: proceed anyway — unpublished tickets are
        // abandoned by design (step 3 above).
        let _ = drained;
    }

    // Export from the losing shards, import on the gaining shard.
    for (g, owned) in &owners {
        let request = Request::VmExportSlots {
            slots: owned.clone(),
        };
        let blobs: Vec<BlobExport> = match shards[*g].call(&request, &[])? {
            (Response::SlotExport { blobs }, _) => blobs,
            (other, _) => return Err(unexpected("SlotExport", other)),
        };
        if blobs.is_empty() {
            continue;
        }
        match shards[to].call(&Request::VmImportBlobs { blobs }, &[])? {
            (Response::Count { .. }, _) => {}
            (Response::Fail { error }, _) => return Err(error),
            (other, _) => return Err(unexpected("Count", other)),
        }
    }

    // Install the reassigned map: gaining shard first, then the rest
    // (installing thaws any freeze at or below the new epoch).
    let install = Request::SlotMapInstall { map: next.clone() };
    match shards[to].call(&install, &[])? {
        (Response::Unit, _) => {}
        (Response::Fail { error }, _) => return Err(error),
        (other, _) => return Err(unexpected("Unit", other)),
    }
    for (g, shard) in shards.iter().enumerate() {
        if g == to {
            continue;
        }
        match shard.call(&install, &[])? {
            (Response::Unit, _) => {}
            (Response::Fail { error }, _) => return Err(error),
            (other, _) => return Err(unexpected("Unit", other)),
        }
    }
    Ok(next)
}
