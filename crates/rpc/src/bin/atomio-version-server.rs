//! Hosts per-blob version managers behind the atomio RPC protocol — the
//! third deployable service (BlobSeer's standalone version manager).
//!
//! ```text
//! atomio-version-server <listen-addr> [--chunk-size BYTES]
//!     [--retention keep-all|keep-last:N|keep-above:V] [--lease-ttl-ms N]
//!     [--shard I/N]
//!     [--data-dir PATH] [--fsync per-publish|group:N|deferred]
//!     [--workers N] [--read-timeout-ms N] [--write-timeout-ms N]
//!     [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N]
//!     [--pool-conns N] [--mux-streams-per-conn N]
//!     [--server-mode threads|reactor] [--max-conns N]
//!     [--max-inflight-per-conn N]
//! ```
//!
//! Without `--data-dir` version state lives in memory and vanishes with
//! the process; with it each blob's manager appends a publish log under
//! `PATH/version/blob-<id>` and replays it on restart, so published
//! snapshots survive and granted-but-unpublished tickets roll back.
//!
//! `--server-mode reactor` swaps the thread-per-connection front-end
//! for one epoll thread multiplexing every connection; `--max-conns`
//! caps admitted connections (extras receive a typed busy rejection)
//! and `--max-inflight-per-conn` bounds per-connection pipelining.
//!
//! `--shard I/N` pins this server to shard `I` of an `N`-way hash-slot
//! map: it serves only blobs whose slot it owns and refuses the rest
//! with a typed `WrongShard` redirect. Run one process per shard (same
//! `N`, distinct `I`) and point clients at the full set via a
//! slot-routed transport.
//!
//! Example: `atomio-version-server 127.0.0.1:7422 --shard 0/4 --data-dir /var/lib/atomio --fsync group:8`

use atomio_rpc::{run_server_binary, VersionService};
use std::sync::Arc;

fn main() {
    run_server_binary("atomio-version-server", None, true, |args| {
        let mut service = VersionService::with_backend(args.chunk_size, args.backend())
            .with_retention(args.retention)
            .with_lease_ttl_cap(args.lease_ttl_cap_ms);
        if let Some((shard, of)) = args.shard {
            service = service.with_shard(shard, of);
        }
        Arc::new(service)
    });
}
