//! Hosts per-blob version managers behind the atomio RPC protocol — the
//! third deployable service (BlobSeer's standalone version manager).
//!
//! ```text
//! atomio-version-server <listen-addr> [--chunk-size BYTES]
//!     [--workers N] [--read-timeout-ms N] [--write-timeout-ms N]
//!     [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N]
//!     [--pool-conns N] [--mux-streams-per-conn N]
//! ```
//!
//! Example: `atomio-version-server 127.0.0.1:7422 --chunk-size 65536`

use atomio_rpc::{run_server_binary, VersionService};
use std::sync::Arc;

fn main() {
    run_server_binary("atomio-version-server", None, true, |args| {
        Arc::new(VersionService::new(args.chunk_size))
    });
}
