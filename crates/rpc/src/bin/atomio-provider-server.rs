//! Hosts a fleet of data providers behind the atomio RPC protocol.
//!
//! ```text
//! atomio-provider-server <listen-addr> [--providers N]
//!     [--workers N] [--read-timeout-ms N] [--write-timeout-ms N]
//!     [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N]
//!     [--pool-conns N] [--mux-streams-per-conn N]
//! ```
//!
//! Example: `atomio-provider-server 127.0.0.1:7420 --providers 4 --workers 8`

use atomio_rpc::{serve_forever, ProviderService, ServerArgs};
use std::sync::Arc;

fn main() {
    let args = match ServerArgs::parse(std::env::args().skip(1), "--providers", 1) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: atomio-provider-server <listen-addr> [--providers N] \
                 [--workers N] [--read-timeout-ms N] [--write-timeout-ms N] \
                 [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N] \
                 [--pool-conns N] [--mux-streams-per-conn N]"
            );
            std::process::exit(2);
        }
    };
    let service = Arc::new(ProviderService::new(args.count));
    if let Err(e) = serve_forever(&args.addr, service, args.cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
