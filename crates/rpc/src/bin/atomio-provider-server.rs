//! Hosts a fleet of data providers behind the atomio RPC protocol.
//!
//! ```text
//! atomio-provider-server <listen-addr> [--providers N]
//!     [--workers N] [--read-timeout-ms N] [--write-timeout-ms N]
//!     [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N]
//!     [--pool-conns N] [--mux-streams-per-conn N]
//! ```
//!
//! Example: `atomio-provider-server 127.0.0.1:7420 --providers 4 --workers 8`

use atomio_rpc::{run_server_binary, ProviderService};
use std::sync::Arc;

fn main() {
    run_server_binary(
        "atomio-provider-server",
        Some(("--providers", 1)),
        false,
        |args| Arc::new(ProviderService::new(args.count)),
    );
}
