//! Hosts a fleet of data providers behind the atomio RPC protocol.
//!
//! ```text
//! atomio-provider-server <listen-addr> [--providers N]
//!     [--data-dir PATH] [--fsync per-publish|group:N|deferred]
//!     [--workers N] [--read-timeout-ms N] [--write-timeout-ms N]
//!     [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N]
//!     [--pool-conns N] [--mux-streams-per-conn N]
//!     [--server-mode threads|reactor] [--max-conns N]
//!     [--max-inflight-per-conn N]
//! ```
//!
//! Without `--data-dir` chunks live in memory and vanish with the
//! process; with it each provider keeps slot-sharded part files under
//! `PATH/provider-<id>` and recovers them on restart.
//!
//! `--server-mode reactor` swaps the thread-per-connection front-end
//! for one epoll thread multiplexing every connection; `--max-conns`
//! caps admitted connections (extras receive a typed busy rejection)
//! and `--max-inflight-per-conn` bounds per-connection pipelining.
//!
//! Example: `atomio-provider-server 127.0.0.1:7420 --providers 4 --data-dir /var/lib/atomio`

use atomio_rpc::{run_server_binary, ProviderService};
use std::sync::Arc;

fn main() {
    run_server_binary(
        "atomio-provider-server",
        Some(("--providers", 1)),
        false,
        |args| {
            Arc::new(
                ProviderService::with_backend(args.count, &args.backend()).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }),
            )
        },
    );
}
