//! Hosts metadata shards (plus nested version managers for two-server
//! deployments) behind the atomio RPC protocol.
//!
//! ```text
//! atomio-meta-server <listen-addr> [--shards N] [--chunk-size BYTES]
//!     [--workers N] [--read-timeout-ms N] [--write-timeout-ms N]
//!     [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N]
//!     [--pool-conns N] [--mux-streams-per-conn N]
//! ```
//!
//! Example: `atomio-meta-server 127.0.0.1:7421 --shards 4 --chunk-size 65536`

use atomio_rpc::{run_server_binary, MetaService};
use std::sync::Arc;

fn main() {
    run_server_binary("atomio-meta-server", Some(("--shards", 1)), true, |args| {
        Arc::new(MetaService::new(args.count, args.chunk_size))
    });
}
