//! Hosts metadata shards (plus nested version managers for two-server
//! deployments) behind the atomio RPC protocol.
//!
//! ```text
//! atomio-meta-server <listen-addr> [--shards N] [--chunk-size BYTES]
//!     [--retention keep-all|keep-last:N|keep-above:V] [--lease-ttl-ms N]
//!     [--shard I/N]
//!     [--data-dir PATH] [--fsync per-publish|group:N|deferred]
//!     [--workers N] [--read-timeout-ms N] [--write-timeout-ms N]
//!     [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N]
//!     [--pool-conns N] [--mux-streams-per-conn N]
//!     [--server-mode threads|reactor] [--max-conns N]
//!     [--max-inflight-per-conn N]
//! ```
//!
//! Without `--data-dir` tree nodes live in memory and vanish with the
//! process; with it each shard appends to a node log under `PATH/meta`
//! (and nested version managers log publishes under `PATH/version`) and
//! recovers on restart.
//!
//! `--server-mode reactor` swaps the thread-per-connection front-end
//! for one epoll thread multiplexing every connection; `--max-conns`
//! caps admitted connections (extras receive a typed busy rejection)
//! and `--max-inflight-per-conn` bounds per-connection pipelining.
//!
//! Example: `atomio-meta-server 127.0.0.1:7421 --shards 4 --data-dir /var/lib/atomio`

use atomio_rpc::{run_server_binary, MetaService};
use std::sync::Arc;

fn main() {
    run_server_binary("atomio-meta-server", Some(("--shards", 1)), true, |args| {
        let mut service = MetaService::with_backend(args.count, args.chunk_size, &args.backend())
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            })
            .with_retention(args.retention)
            .with_lease_ttl_cap(args.lease_ttl_cap_ms);
        if let Some((shard, of)) = args.shard {
            service = service.with_shard(shard, of);
        }
        Arc::new(service)
    });
}
