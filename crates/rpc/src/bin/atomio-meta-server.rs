//! Hosts metadata shards and version managers behind the atomio RPC
//! protocol.
//!
//! ```text
//! atomio-meta-server <listen-addr> [--shards N] [--chunk-size BYTES]
//!     [--workers N] [--read-timeout-ms N] [--write-timeout-ms N]
//!     [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N]
//!     [--pool-conns N] [--mux-streams-per-conn N]
//! ```
//!
//! Example: `atomio-meta-server 127.0.0.1:7421 --shards 4 --chunk-size 65536`

use atomio_rpc::{serve_forever, MetaService, ServerArgs};
use std::sync::Arc;

fn main() {
    let args = match ServerArgs::parse(std::env::args().skip(1), "--shards", 1) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: atomio-meta-server <listen-addr> [--shards N] [--chunk-size BYTES] \
                 [--workers N] [--read-timeout-ms N] [--write-timeout-ms N] \
                 [--connect-timeout-ms N] [--connect-retries N] [--backoff-ms N] \
                 [--pool-conns N] [--mux-streams-per-conn N]"
            );
            std::process::exit(2);
        }
    };
    let service = Arc::new(MetaService::new(args.count, args.chunk_size));
    if let Err(e) = serve_forever(&args.addr, service, args.cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
