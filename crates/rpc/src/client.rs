//! Client-side proxies: drop-in substrates speaking RPC.
//!
//! * [`RemoteProvider`] implements [`ChunkStore`], so a
//!   `ProviderManager` built with `from_stores` routes chunk traffic
//!   through a [`Transport`] instead of in-process providers.
//! * [`RemoteMetaStore`] implements [`NodeStore`] for the tree builder
//!   and reader.
//! * [`RemoteVersionManager`] fronts a server-hosted version manager and
//!   keeps a local [`VersionHistory`] mirror fed by the grant deltas, so
//!   metadata building proceeds from local history exactly like the
//!   in-process pipelined ticket path.
//!
//! Proxies carry a **zero** cost model and idle device resources: over a
//! real transport, latency is real, so simulated device charging would
//! double-count. Infallible interface methods (`has_chunk`, counters)
//! degrade to neutral values on transport failure — the fallible data
//! path is where typed [`Error::Transport`] values surface and drive the
//! provider manager's failover.

use crate::proto::{Request, Response};
use crate::transport::{unexpected, Transport};
use atomio_meta::{Node, NodeKey, NodeStore, VersionHistory};
use atomio_provider::ChunkStore;
use atomio_simgrid::clock::SimTime;
use atomio_simgrid::{CostModel, Participant, Resource};
use atomio_types::{
    ByteRange, ChunkId, Error, ExtentList, ProviderId, Result, RetentionPolicy, VersionId,
};
use atomio_version::{GcFloor, LeaseGrant, SnapshotRecord, Ticket, VersionOracle};
use bytes::Bytes;
use std::sync::Arc;

/// A [`ChunkStore`] whose chunks live behind a transport.
#[derive(Debug)]
pub struct RemoteProvider {
    id: ProviderId,
    transport: Arc<dyn Transport>,
    cost: CostModel,
    disk: Resource,
    nic: Resource,
}

impl RemoteProvider {
    /// Creates a proxy for provider `id` reachable over `transport`.
    pub fn new(id: ProviderId, transport: Arc<dyn Transport>) -> Self {
        RemoteProvider {
            id,
            transport,
            cost: CostModel::zero(),
            // Idle placeholders: utilization reports skip resources with
            // zero requests, so remote proxies stay out of them.
            disk: Resource::new(format!("{id}/remote-disk")),
            nic: Resource::new(format!("{id}/remote-nic")),
        }
    }

    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)> {
        self.transport.call(request, payload)
    }

    /// Stores a batch of chunks in one frame; one completion instant per
    /// item, in order.
    pub fn put_chunk_batch(
        &self,
        arrival: SimTime,
        items: Vec<(ChunkId, Bytes)>,
    ) -> Result<Vec<Result<SimTime>>> {
        let mut payload = Vec::new();
        let lens = items
            .iter()
            .map(|(chunk, data)| {
                payload.extend_from_slice(data);
                (*chunk, data.len() as u64)
            })
            .collect();
        let request = Request::PutChunkBatch {
            provider: self.id,
            arrival,
            items: lens,
        };
        match self.call(&request, &payload)? {
            (Response::PutBatch { results }, _) => Ok(results),
            (other, _) => Err(unexpected("PutBatch", other)),
        }
    }

    /// Fetches a batch of chunk ranges in one frame; one `(payload,
    /// sent)` outcome per item, in order.
    pub fn get_chunk_range_batch(
        &self,
        arrival: SimTime,
        items: &[(ChunkId, ByteRange)],
    ) -> Result<Vec<Result<(Bytes, SimTime)>>> {
        let request = Request::GetChunkRangeBatch {
            provider: self.id,
            arrival,
            items: items.to_vec(),
        };
        match self.call(&request, &[])? {
            (Response::ChunkBatch { results }, payload) => {
                let mut offset = 0usize;
                let total: u64 = results
                    .iter()
                    .filter_map(|r| r.as_ref().ok().map(|&(len, _)| len))
                    .sum();
                if total != payload.len() as u64 {
                    return Err(Error::Transport {
                        kind: atomio_types::TransportErrorKind::Protocol,
                        detail: format!(
                            "batch declares {total} payload bytes, frame carries {}",
                            payload.len()
                        ),
                    });
                }
                Ok(results
                    .into_iter()
                    .map(|r| {
                        r.map(|(len, sent)| {
                            let data = payload.slice(offset..offset + len as usize);
                            offset += len as usize;
                            (data, sent)
                        })
                    })
                    .collect())
            }
            (other, _) => Err(unexpected("ChunkBatch", other)),
        }
    }
}

impl ChunkStore for RemoteProvider {
    fn id(&self) -> ProviderId {
        self.id
    }

    fn put_chunk(&self, _p: &Participant, chunk: ChunkId, data: Bytes) -> Result<()> {
        self.put_chunk_at(0, chunk, data).map(|_| ())
    }

    fn put_chunk_at(&self, arrival: SimTime, chunk: ChunkId, data: Bytes) -> Result<SimTime> {
        let request = Request::PutChunk {
            provider: self.id,
            arrival,
            chunk,
        };
        match self.call(&request, &data)? {
            (Response::Done { done }, _) => Ok(done),
            (other, _) => Err(unexpected("Done", other)),
        }
    }

    fn get_chunk(&self, _p: &Participant, chunk: ChunkId) -> Result<Bytes> {
        let request = Request::GetChunk {
            provider: self.id,
            arrival: 0,
            chunk,
        };
        match self.call(&request, &[])? {
            (Response::ChunkData { .. }, data) => Ok(data),
            (other, _) => Err(unexpected("ChunkData", other)),
        }
    }

    fn get_chunk_range(&self, _p: &Participant, chunk: ChunkId, range: ByteRange) -> Result<Bytes> {
        self.get_chunk_range_at(0, chunk, range)
            .map(|(data, _)| data)
    }

    fn get_chunk_range_at(
        &self,
        arrival: SimTime,
        chunk: ChunkId,
        range: ByteRange,
    ) -> Result<(Bytes, SimTime)> {
        let request = Request::GetChunkRange {
            provider: self.id,
            arrival,
            chunk,
            range,
        };
        match self.call(&request, &[])? {
            (Response::ChunkData { sent }, data) => Ok((data, sent)),
            (other, _) => Err(unexpected("ChunkData", other)),
        }
    }

    fn has_chunk(&self, chunk: ChunkId) -> bool {
        let request = Request::ProviderHasChunk {
            provider: self.id,
            chunk,
        };
        matches!(
            self.call(&request, &[]),
            Ok((Response::Flag { value: true }, _))
        )
    }

    fn chunk_count(&self) -> usize {
        let request = Request::ProviderChunkCount { provider: self.id };
        match self.call(&request, &[]) {
            Ok((Response::Count { value }, _)) => value as usize,
            _ => 0,
        }
    }

    fn bytes_stored(&self) -> u64 {
        let request = Request::ProviderBytesStored { provider: self.id };
        match self.call(&request, &[]) {
            Ok((Response::Count { value }, _)) => value,
            _ => 0,
        }
    }

    fn evict_chunk(&self, chunk: ChunkId) -> u64 {
        let request = Request::ProviderEvictChunk {
            provider: self.id,
            chunk,
        };
        match self.call(&request, &[]) {
            Ok((Response::Count { value }, _)) => value,
            _ => 0,
        }
    }

    fn evict_chunk_batch(&self, chunks: &[ChunkId]) -> u64 {
        let request = Request::ProviderEvictBatch {
            provider: self.id,
            chunks: chunks.to_vec(),
        };
        match self.call(&request, &[]) {
            Ok((Response::Count { value }, _)) => value,
            _ => 0,
        }
    }

    fn checksum_of(&self, chunk: ChunkId) -> Option<u64> {
        let request = Request::ProviderChecksumOf {
            provider: self.id,
            chunk,
        };
        match self.call(&request, &[]) {
            Ok((Response::Checksum { value }, _)) => value,
            _ => None,
        }
    }

    fn corrupt_chunk(&self, chunk: ChunkId, byte: usize) {
        let request = Request::ProviderCorruptChunk {
            provider: self.id,
            chunk,
            byte: byte as u64,
        };
        let _ = self.call(&request, &[]);
    }

    fn disk(&self) -> &Resource {
        &self.disk
    }

    fn nic(&self) -> &Resource {
        &self.nic
    }

    fn cost(&self) -> &CostModel {
        &self.cost
    }
}

/// A [`NodeStore`] whose nodes live behind a transport. A transport
/// failure on a batch fans out as one cloned error per item, so callers
/// keep their one-outcome-per-input invariant.
#[derive(Debug)]
pub struct RemoteMetaStore {
    transport: Arc<dyn Transport>,
}

impl RemoteMetaStore {
    /// Creates a proxy over `transport`.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        RemoteMetaStore { transport }
    }
}

impl NodeStore for RemoteMetaStore {
    fn put_batch(&self, _p: &Participant, nodes: Vec<Node>) -> Vec<Result<()>> {
        let n = nodes.len();
        let request = Request::MetaPutBatch { nodes };
        match self.transport.call(&request, &[]) {
            Ok((Response::NodePuts { results }, _)) if results.len() == n => results,
            Ok((other, _)) => vec![Err(unexpected("NodePuts", other)); n],
            Err(e) => vec![Err(e); n],
        }
    }

    fn get_batch(&self, _p: &Participant, keys: &[NodeKey]) -> Vec<Result<Arc<Node>>> {
        let n = keys.len();
        let request = Request::MetaGetBatch {
            keys: keys.to_vec(),
        };
        match self.transport.call(&request, &[]) {
            Ok((Response::NodeGets { results }, _)) if results.len() == n => {
                results.into_iter().map(|r| r.map(Arc::new)).collect()
            }
            Ok((other, _)) => vec![Err(unexpected("NodeGets", other)); n],
            Err(e) => vec![Err(e); n],
        }
    }

    fn contains(&self, key: NodeKey) -> bool {
        matches!(
            self.transport.call(&Request::MetaContains { key }, &[]),
            Ok((Response::Flag { value: true }, _))
        )
    }

    fn node_count(&self) -> usize {
        match self.transport.call(&Request::MetaNodeCount, &[]) {
            Ok((Response::Count { value }, _)) => value as usize,
            _ => 0,
        }
    }

    fn evict(&self, key: NodeKey) {
        let _ = self.transport.call(&Request::MetaEvict { key }, &[]);
    }

    fn evict_batch(&self, keys: &[NodeKey]) -> u64 {
        let request = Request::MetaEvictBatch {
            keys: keys.to_vec(),
        };
        match self.transport.call(&request, &[]) {
            Ok((Response::Count { value }, _)) => value,
            _ => 0,
        }
    }

    fn list_keys(&self) -> Vec<NodeKey> {
        match self.transport.call(&Request::MetaListKeys, &[]) {
            Ok((Response::Keys { keys }, _)) => keys,
            _ => Vec::new(),
        }
    }
}

/// A client handle on a server-hosted version manager.
///
/// Mirrors the pipelined ticket contract: every grant carries the write
/// summaries the client has not seen, the mirror absorbs them, and the
/// caller builds its metadata tree from the mirror — one round trip per
/// write, exactly like the in-process `TicketMode::Pipelined` path.
#[derive(Debug)]
pub struct RemoteVersionManager {
    blob: u64,
    transport: Arc<dyn Transport>,
    mirror: Arc<VersionHistory>,
}

impl RemoteVersionManager {
    /// Creates a handle for `blob` over `transport` with an empty
    /// history mirror.
    pub fn new(blob: u64, transport: Arc<dyn Transport>) -> Self {
        RemoteVersionManager {
            blob,
            transport,
            mirror: Arc::new(VersionHistory::new()),
        }
    }

    /// The local history mirror (feeds the tree builder).
    pub fn history(&self) -> &Arc<VersionHistory> {
        &self.mirror
    }

    fn grant(&self, request: Request) -> Result<(Ticket, ExtentList)> {
        match self.transport.call(&request, &[])? {
            (
                Response::TicketGrant {
                    ticket,
                    extents,
                    delta,
                },
                _,
            ) => {
                self.mirror.absorb(delta);
                Ok((ticket, extents))
            }
            (other, _) => Err(unexpected("TicketGrant", other)),
        }
    }

    /// Requests a write ticket for explicit extents; the mirror absorbs
    /// the returned history delta before this returns.
    pub fn ticket(&self, extents: &ExtentList) -> Result<(Ticket, ExtentList)> {
        self.grant(Request::VmTicket {
            blob: self.blob,
            extents: extents.clone(),
            known: self.mirror.len() as u64,
        })
    }

    /// Requests an append ticket for `len` bytes at end-of-blob.
    pub fn ticket_append(&self, len: u64) -> Result<(Ticket, ExtentList)> {
        self.grant(Request::VmTicketAppend {
            blob: self.blob,
            len,
            known: self.mirror.len() as u64,
        })
    }

    /// Publishes a built snapshot.
    pub fn publish(&self, ticket: Ticket, root: NodeKey) -> Result<()> {
        let request = Request::VmPublish {
            blob: self.blob,
            ticket,
            root,
        };
        match self.transport.call(&request, &[])? {
            (Response::Unit, _) => Ok(()),
            (other, _) => Err(unexpected("Unit", other)),
        }
    }

    /// True once `version` is published.
    pub fn is_published(&self, version: VersionId) -> Result<bool> {
        let request = Request::VmIsPublished {
            blob: self.blob,
            version,
        };
        match self.transport.call(&request, &[])? {
            (Response::Flag { value }, _) => Ok(value),
            (other, _) => Err(unexpected("Flag", other)),
        }
    }

    /// The latest published snapshot record.
    pub fn latest(&self) -> Result<SnapshotRecord> {
        let request = Request::VmLatest { blob: self.blob };
        match self.transport.call(&request, &[])? {
            (Response::Snapshot { record }, _) => Ok(record),
            (other, _) => Err(unexpected("Snapshot", other)),
        }
    }

    /// A specific published snapshot record.
    pub fn snapshot(&self, version: VersionId) -> Result<SnapshotRecord> {
        let request = Request::VmSnapshot {
            blob: self.blob,
            version,
        };
        match self.transport.call(&request, &[])? {
            (Response::Snapshot { record }, _) => Ok(record),
            (other, _) => Err(unexpected("Snapshot", other)),
        }
    }

    /// Sets the blob's retention policy on the server.
    pub fn set_retention(&self, policy: RetentionPolicy) -> Result<()> {
        let request = Request::VmSetRetention {
            blob: self.blob,
            policy,
        };
        match self.transport.call(&request, &[])? {
            (Response::Unit, _) => Ok(()),
            (other, _) => Err(unexpected("Unit", other)),
        }
    }

    fn lease_call(&self, request: Request) -> Result<LeaseGrant> {
        match self.transport.call(&request, &[])? {
            (Response::Lease { grant }, _) => Ok(grant),
            (other, _) => Err(unexpected("Lease", other)),
        }
    }

    /// Acquires a snapshot lease (TTL may be clamped by the server).
    pub fn lease_acquire(&self, version: VersionId, ttl_ms: u64) -> Result<LeaseGrant> {
        self.lease_call(Request::VmLeaseAcquire {
            blob: self.blob,
            version,
            ttl_ms,
        })
    }

    /// Extends a live lease.
    pub fn lease_renew(&self, lease: u64, ttl_ms: u64) -> Result<LeaseGrant> {
        self.lease_call(Request::VmLeaseRenew {
            blob: self.blob,
            lease,
            ttl_ms,
        })
    }

    /// Releases a lease (idempotent).
    pub fn lease_release(&self, lease: u64) -> Result<()> {
        let request = Request::VmLeaseRelease {
            blob: self.blob,
            lease,
        };
        match self.transport.call(&request, &[])? {
            (Response::Unit, _) => Ok(()),
            (other, _) => Err(unexpected("Unit", other)),
        }
    }

    /// The server-side reclamation floor plus lease gauges.
    pub fn gc_floor(&self) -> Result<GcFloor> {
        let request = Request::VmGcFloor { blob: self.blob };
        match self.transport.call(&request, &[])? {
            (Response::GcFloor { info }, _) => Ok(info),
            (other, _) => Err(unexpected("GcFloor", other)),
        }
    }
}

/// The oracle seam: a `Store` built with
/// `with_version_oracles(|blob| Arc::new(RemoteVersionManager::new(...)))`
/// runs the unchanged blob write path against an `atomio-version-server`.
///
/// The `Participant` is unused on the RPC legs themselves (network cost
/// is carried by the transport's blocking calls); it only paces the
/// publication poll in [`VersionOracle::wait_published`].
impl VersionOracle for RemoteVersionManager {
    fn history(&self) -> &Arc<VersionHistory> {
        RemoteVersionManager::history(self)
    }

    fn ticket(&self, _p: &Participant, extents: &ExtentList) -> Result<Ticket> {
        RemoteVersionManager::ticket(self, extents).map(|(ticket, _)| ticket)
    }

    fn ticket_append(&self, _p: &Participant, len: u64) -> Result<(Ticket, ExtentList)> {
        RemoteVersionManager::ticket_append(self, len)
    }

    fn publish(&self, _p: &Participant, ticket: Ticket, root: NodeKey) -> Result<()> {
        RemoteVersionManager::publish(self, ticket, root)
    }

    fn is_published(&self, version: VersionId) -> Result<bool> {
        RemoteVersionManager::is_published(self, version)
    }

    fn wait_published(&self, p: &Participant, version: VersionId) -> Result<()> {
        p.poll_until(|| match RemoteVersionManager::is_published(self, version) {
            Ok(true) => Some(Ok(())),
            Ok(false) => None,
            Err(error) => Some(Err(error)),
        })
    }

    fn latest(&self, _p: &Participant) -> Result<SnapshotRecord> {
        RemoteVersionManager::latest(self)
    }

    fn snapshot(&self, _p: &Participant, version: VersionId) -> Result<SnapshotRecord> {
        RemoteVersionManager::snapshot(self, version)
    }

    fn set_retention(&self, _p: &Participant, policy: RetentionPolicy) -> Result<()> {
        RemoteVersionManager::set_retention(self, policy)
    }

    fn lease_acquire(
        &self,
        _p: &Participant,
        version: VersionId,
        ttl_ms: u64,
    ) -> Result<LeaseGrant> {
        RemoteVersionManager::lease_acquire(self, version, ttl_ms)
    }

    fn lease_renew(&self, _p: &Participant, lease: u64, ttl_ms: u64) -> Result<LeaseGrant> {
        RemoteVersionManager::lease_renew(self, lease, ttl_ms)
    }

    fn lease_release(&self, _p: &Participant, lease: u64) -> Result<()> {
        RemoteVersionManager::lease_release(self, lease)
    }

    fn gc_floor(&self, _p: &Participant) -> Result<GcFloor> {
        RemoteVersionManager::gc_floor(self)
    }
}
