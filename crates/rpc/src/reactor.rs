//! Readiness-driven server front-end (the `ServerMode::Reactor` arm).
//!
//! One reactor thread owns the nonblocking listener and every accepted
//! socket through a thin, std-only epoll binding: direct `extern "C"`
//! declarations of `epoll_create1`/`epoll_ctl`/`epoll_wait`/`eventfd`
//! over `std::os::fd` — no external crates, no async runtime. Per
//! connection the reactor runs a small state machine:
//!
//! ```text
//!  EPOLLIN ─► read() to WouldBlock ─► rbuf ─► complete frames?
//!     ▲                                         │  batched handoff
//!     │ unpark when responses drain             ▼
//!  parked ◄─── in-flight cap hit ───── shared dispatch pool (workers)
//!                                               │  encoded frames
//!              eventfd wake ◄───────────────────┘
//!                   │
//!                   ▼
//!  wbuf ─► write() to WouldBlock ─► EPOLLOUT drains the rest
//! ```
//!
//! Workers never touch reactor sockets: each batch's encoded response
//! frames go through [`ReactorShared::complete`] and an eventfd write;
//! the reactor is the **single writer** of every socket it owns, so
//! response frames can never interleave. The same eventfd wakes the
//! reactor for shutdown.
//!
//! Backpressure is explicit at two levels. A connection with
//! `max_inflight_per_conn` requests in dispatch has its reads *parked*
//! (`EPOLLIN` unregistered) until responses drain — the kernel socket
//! buffer then pushes back on the client instead of the server queueing
//! unboundedly. And past `max_conns` open connections, a new connection
//! is still accepted and read, but its first complete frame is answered
//! with a typed `Response::Busy` (tagged with that frame's request id,
//! so both the per-call and mux clients route it) and the socket is
//! closed once the answer is on the wire — a typed error, not a hang or
//! a reset.

use crate::proto::{Response, PROTOCOL_VERSION};
use crate::server::{dispatch_burst, DispatchJob, ResponseSink, MAX_DISPATCH_BATCH};
use crate::transport::{counters, RpcConfig};
use crate::wire;
use atomio_simgrid::Metrics;
use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Raw Linux epoll/eventfd bindings — just the five entry points the
/// reactor needs, declared over `std::os::fd` instead of pulling a
/// bindings crate into the vendored dependency set.
mod sys {
    // Interest/event bits (include/uapi/linux/eventpoll.h).
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EFD_CLOEXEC: i32 = 0x80000;
    pub const EFD_NONBLOCK: i32 = 0x800;

    /// Mirror of the kernel's `struct epoll_event`. On x86-64 the ABI
    /// packs the 32-bit event mask against the 64-bit data word (12
    /// bytes total); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
    }
}

/// An owned epoll instance. Registered fds deregister themselves when
/// their sockets close, and the epoll fd itself closes on drop.
#[derive(Debug)]
struct Epoll(OwnedFd);

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll(unsafe { OwnedFd::from_raw_fd(fd) }))
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, mask: u32) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: mask,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.0.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, token: u64, mask: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, mask)
    }

    fn modify(&self, fd: RawFd, token: u64, mask: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, mask)
    }

    /// Blocks until at least one registered fd is ready; retries EINTR.
    fn wait(&self, events: &mut [sys::EpollEvent]) -> io::Result<usize> {
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.0.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    -1,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }
}

/// The reactor's cross-thread mailbox: dispatch workers park encoded
/// response frames here and ring the eventfd; `RpcServer::stop` rings
/// the same eventfd after raising the shutdown flag.
#[derive(Debug)]
pub(crate) struct ReactorShared {
    completions: Mutex<Vec<Completion>>,
    wake: std::fs::File,
}

#[derive(Debug)]
struct Completion {
    token: u64,
    frames: Vec<u8>,
    responses: usize,
    /// A response failed to encode: nothing sane to send, close the
    /// connection instead (mirrors the Threads-mode severing).
    sever: bool,
}

impl ReactorShared {
    pub(crate) fn new() -> io::Result<Arc<Self>> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Arc::new(ReactorShared {
            completions: Mutex::new(Vec::new()),
            wake: unsafe { std::fs::File::from_raw_fd(fd) },
        }))
    }

    /// Queues one batch's encoded responses for connection `token` and
    /// wakes the reactor.
    pub(crate) fn complete(&self, token: u64, frames: Vec<u8>, responses: usize, sever: bool) {
        self.completions.lock().push(Completion {
            token,
            frames,
            responses,
            sever,
        });
        self.wake();
    }

    /// Wakes the reactor thread out of `epoll_wait`.
    pub(crate) fn wake(&self) {
        // WouldBlock means the counter is saturated — a wakeup is
        // already guaranteed pending, so dropping the error is safe.
        let _ = (&self.wake).write(&1u64.to_ne_bytes());
    }

    fn drain_wake(&self) {
        // One read resets the eventfd counter (non-semaphore mode).
        let mut buf = [0u8; 8];
        let _ = (&self.wake).read(&mut buf);
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
/// Per-readiness read granularity (a stack buffer, appended to `rbuf`).
const READ_CHUNK: usize = 64 * 1024;

/// One accepted connection's state machine.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Inbound bytes not yet parsed into frames.
    rbuf: Vec<u8>,
    /// Encoded response frames not yet fully on the wire.
    wbuf: Vec<u8>,
    /// How far `wbuf` has been written.
    wpos: usize,
    /// Requests in dispatch whose responses have not been queued yet.
    inflight: usize,
    /// Current epoll interest mask.
    interest: u32,
    /// Admission-rejected at accept: answer the first frame with a
    /// typed Busy, then close. Never counts toward the open gauge.
    rejecting: bool,
    /// Close once `wbuf` drains (set by the Busy answer).
    closing: bool,
    /// Peer sent EOF / RDHUP: no more requests are coming, close once
    /// the in-flight responses drain.
    read_closed: bool,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.wpos >= self.wbuf.len()
    }
}

/// What a parse pass decided beyond dispatching frames.
enum PumpAction {
    None,
    /// Framing is broken (bad version byte, oversized declared lengths,
    /// undecodable frame): nothing on the stream can be trusted.
    Close,
    /// First frame of an over-cap connection was answered with Busy.
    Reject,
}

/// Runs the reactor event loop until shutdown. Owns the listener, every
/// accepted socket, and the epoll instance; feeds the shared dispatch
/// pool through `jobs` and maintains the `open` connection gauge that
/// `RpcServer::open_conns` and the `rpc.conns_open` counter report.
pub(crate) fn run_reactor(
    listener: TcpListener,
    jobs: mpsc::SyncSender<DispatchJob>,
    shared: Arc<ReactorShared>,
    shutdown: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    cfg: RpcConfig,
    metrics: Option<Metrics>,
) {
    let Ok(epoll) = Epoll::new() else { return };
    if epoll
        .add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN)
        .is_err()
        || epoll
            .add(shared.wake.as_raw_fd(), TOKEN_WAKE, sys::EPOLLIN)
            .is_err()
    {
        return;
    }
    Reactor {
        epoll,
        listener,
        jobs,
        shared,
        shutdown,
        open,
        cfg,
        metrics,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
    }
    .event_loop();
}

struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    jobs: mpsc::SyncSender<DispatchJob>,
    shared: Arc<ReactorShared>,
    shutdown: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    cfg: RpcConfig,
    metrics: Option<Metrics>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

impl Reactor {
    fn event_loop(&mut self) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 256];
        loop {
            let n = match self.epoll.wait(&mut events) {
                Ok(n) => n,
                Err(_) => return,
            };
            if let Some(m) = &self.metrics {
                m.counter(counters::REACTOR_WAKEUPS).inc();
            }
            if self.shutdown.load(Ordering::Relaxed) {
                // Dropping the sockets severs them: in-flight client
                // calls surface connection-reset transport errors,
                // exactly like Threads-mode stop().
                self.conns.clear();
                self.open.store(0, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.counter(counters::CONNS_OPEN).set(0);
                }
                return;
            }
            for ev in &events[..n] {
                let (token, mask) = (ev.data, ev.events);
                match token {
                    TOKEN_WAKE => self.shared.drain_wake(),
                    TOKEN_LISTENER => self.accept_ready(),
                    _ => self.conn_event(token, mask),
                }
            }
            self.apply_completions();
        }
    }

    /// Drains the accept backlog. Over-`max_conns` connections are
    /// still accepted and registered, but flagged `rejecting`: their
    /// first frame gets a typed Busy answer instead of service.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if let Some(m) = &self.metrics {
                        m.counter(counters::ACCEPTS).inc();
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let rejecting = self.open.load(Ordering::Relaxed) >= self.cfg.max_conns;
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
                    if self.epoll.add(stream.as_raw_fd(), token, interest).is_err() {
                        continue;
                    }
                    if !rejecting {
                        let n = self.open.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(m) = &self.metrics {
                            m.counter(counters::CONNS_OPEN).set(n as u64);
                            m.counter(counters::CONNS_PEAK).record_peak(n as u64);
                        }
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            inflight: 0,
                            interest,
                            rejecting,
                            closing: false,
                            read_closed: false,
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn conn_event(&mut self, token: u64, mask: u32) {
        if mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            // Reap on hangup/error: dead clients must not pin fds.
            self.close(token);
            return;
        }
        if mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
            self.readable(token);
        }
        if mask & sys::EPOLLOUT != 0 {
            self.flush(token);
        }
    }

    /// Moves socket bytes into the connection's read buffer, then
    /// parses and dispatches whatever complete frames arrived.
    fn readable(&mut self, token: u64) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut chunk = [0u8; READ_CHUNK];
            loop {
                match (&conn.stream).read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close(token);
            return;
        }
        self.pump(token);
    }

    /// Parses complete frames out of `rbuf` (up to the in-flight cap)
    /// and hands them to the dispatch pool; answers a rejecting
    /// connection's first frame with Busy. Called on readability and
    /// again whenever responses drain (unparking must re-parse frames
    /// that were already buffered, not wait for new readiness).
    fn pump(&mut self, token: u64) {
        let cap = self.cfg.max_inflight_per_conn.max(1);
        let max_conns = self.cfg.max_conns as u64;
        let active = self.open.load(Ordering::Relaxed) as u64;
        let prefix = wire::FRAME_PREFIX_BYTES as usize;

        let (burst, action) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut burst: Vec<(u64, Value, Bytes)> = Vec::new();
            let mut consumed = 0usize;
            let mut action = PumpAction::None;
            while !conn.closing {
                if !conn.rejecting && conn.inflight + burst.len() >= cap {
                    break; // parked: interest update below drops EPOLLIN
                }
                let b = &conn.rbuf[consumed..];
                if b.len() < prefix {
                    break;
                }
                // Validate the prefix before waiting for the body, so a
                // garbage prefix cannot demand gigabytes of buffering.
                if b[0] != PROTOCOL_VERSION {
                    action = PumpAction::Close;
                    break;
                }
                let head_len = u32::from_be_bytes(b[9..13].try_into().unwrap());
                let payload_len = u32::from_be_bytes(b[13..17].try_into().unwrap());
                if head_len > wire::MAX_HEADER_BYTES || payload_len > wire::MAX_PAYLOAD_BYTES {
                    action = PumpAction::Close;
                    break;
                }
                let total = prefix + head_len as usize + payload_len as usize;
                if b.len() < total {
                    break;
                }
                match wire::read_frame(&mut &b[..total]) {
                    Ok((id, header, payload, _)) => {
                        consumed += total;
                        if conn.rejecting {
                            let busy = Response::Busy { active, max_conns };
                            if wire::write_frame(&mut conn.wbuf, id, &busy.to_value(), &[]).is_err()
                            {
                                action = PumpAction::Close;
                            } else {
                                conn.closing = true;
                                action = PumpAction::Reject;
                            }
                            break;
                        }
                        burst.push((id, header, payload));
                    }
                    Err(_) => {
                        action = PumpAction::Close;
                        break;
                    }
                }
            }
            conn.rbuf.drain(..consumed);
            conn.inflight += burst.len();
            (burst, action)
        };

        match action {
            PumpAction::Close => {
                self.close(token);
                return;
            }
            PumpAction::Reject => {
                if let Some(m) = &self.metrics {
                    m.counter(counters::ADMISSION_REJECTS).inc();
                }
            }
            PumpAction::None => {}
        }

        // Hand off in Threads-sized batches: one worker wakeup and one
        // response write per burst, not per request.
        let mut iter = burst.into_iter();
        loop {
            let chunk: Vec<_> = iter.by_ref().take(MAX_DISPATCH_BATCH).collect();
            if chunk.is_empty() {
                break;
            }
            let sink = ResponseSink::Reactor {
                token,
                shared: Arc::clone(&self.shared),
            };
            if dispatch_burst(&self.jobs, &sink, chunk).is_err() {
                self.close(token);
                return;
            }
        }
        self.flush(token);
    }

    /// Writes as much of `wbuf` as the socket accepts, then settles the
    /// interest mask and closes the connection if it is finished.
    fn flush(&mut self, token: u64) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while conn.wpos < conn.wbuf.len() {
                match (&conn.stream).write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.wpos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if conn.flushed() {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
        }
        if dead {
            self.close(token);
            return;
        }
        self.update_interest(token);
        self.maybe_close_finished(token);
    }

    /// Re-registers the connection's epoll interest when it changed:
    /// `EPOLLIN` unless parked/closing/EOF, `EPOLLOUT` only while
    /// response bytes are queued.
    fn update_interest(&mut self, token: u64) {
        let cap = self.cfg.max_inflight_per_conn.max(1);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let parked = !conn.rejecting && conn.inflight >= cap;
        let mut want = sys::EPOLLRDHUP;
        if !parked && !conn.closing && !conn.read_closed {
            want |= sys::EPOLLIN;
        }
        if !conn.flushed() {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    /// Closes a connection that has nothing left to do: a Busy answer
    /// fully on the wire, or an EOF'd peer whose responses all drained.
    fn maybe_close_finished(&mut self, token: u64) {
        let done = match self.conns.get(&token) {
            Some(conn) => {
                (conn.closing && conn.flushed())
                    || (conn.read_closed && conn.flushed() && conn.inflight == 0)
            }
            None => return,
        };
        if done {
            self.close(token);
        }
    }

    /// Applies queued worker completions: response bytes join their
    /// connection's write buffer, in-flight counts drop, and previously
    /// parked connections get re-pumped (their buffered frames dispatch
    /// without waiting for new socket readiness).
    fn apply_completions(&mut self) {
        let batch = std::mem::take(&mut *self.shared.completions.lock());
        for c in batch {
            if c.sever {
                self.close(c.token);
                continue;
            }
            let Some(conn) = self.conns.get_mut(&c.token) else {
                // The connection died while its batch was in dispatch;
                // the response has nowhere to go.
                continue;
            };
            conn.inflight = conn.inflight.saturating_sub(c.responses);
            conn.wbuf.extend_from_slice(&c.frames);
            self.flush(c.token);
            self.pump(c.token);
        }
    }

    /// Removes and drops a connection (closing the socket deregisters
    /// it from epoll) and settles the open-connections gauge.
    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if !conn.rejecting {
                let n = self.open.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
                if let Some(m) = &self.metrics {
                    m.counter(counters::CONNS_OPEN).set(n as u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_the_kernel_abi() {
        // x86-64 packs the struct to 12 bytes; elsewhere natural
        // alignment yields 16. Either way `data` must sit right after
        // the 4-byte mask the kernel writes.
        let size = std::mem::size_of::<sys::EpollEvent>();
        if cfg!(target_arch = "x86_64") {
            assert_eq!(size, 12);
        } else {
            assert_eq!(size, 16);
        }
    }

    #[test]
    fn eventfd_wake_and_drain_round_trip() {
        let shared = ReactorShared::new().unwrap();
        shared.wake();
        shared.wake();
        let mut buf = [0u8; 8];
        let mut r: &std::fs::File = &shared.wake;
        let n = r.read(&mut buf).unwrap();
        assert_eq!(n, 8);
        // Non-semaphore eventfd: one read drains the whole counter.
        assert_eq!(u64::from_ne_bytes(buf), 2);
    }
}
