//! atomio-rpc: wire protocol and pluggable transports for the
//! versioning backend.
//!
//! The rest of the workspace talks to its substrates through traits —
//! [`ChunkStore`](atomio_provider::ChunkStore) for chunk data,
//! [`NodeStore`](atomio_meta::NodeStore) for tree metadata. This crate
//! supplies the other side of those seams:
//!
//! * [`proto`] — the request/response vocabulary, one tagged enum each.
//! * [`wire`] — length-prefixed framing and a compact binary encoding of
//!   the serde value model; chunk payloads travel out of band.
//! * [`transport`] — how frames move: [`Loopback`] runs the full codec
//!   in process (the default deployment; zero behavioral drift from the
//!   pre-RPC stack), [`TcpTransport`] speaks real `std::net` sockets
//!   with timeouts and bounded connect retry.
//! * [`server`] — [`RpcServer`] hosting a [`ProviderService`] or
//!   [`MetaService`]; the `atomio-provider-server` and
//!   `atomio-meta-server` binaries are thin wrappers over these.
//! * [`client`] — [`RemoteProvider`], [`RemoteMetaStore`], and
//!   [`RemoteVersionManager`]: drop-in proxies implementing the
//!   workspace seams over any [`Transport`].
//!
//! Assembling a socket-backed store is three lines per substrate:
//! build `TcpTransport`s at the server addresses, wrap them in the
//! remote proxies, and hand those to `ProviderManager::from_stores` and
//! `Store::with_substrates`. Everything above the seams — atomic write
//! pipelines, versioned reads, failover, scrub — runs unchanged.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{RemoteMetaStore, RemoteProvider, RemoteVersionManager};
pub use proto::{Request, Response};
pub use server::{serve_forever, MetaService, ProviderService, RpcServer, ServerArgs, Service};
pub use transport::{counters, Loopback, TcpConfig, TcpTransport, Transport};

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_provider::ChunkStore;
    use atomio_types::{ByteRange, ChunkId, Error, ProviderId, TransportErrorKind, VersionId};
    use bytes::Bytes;
    use std::sync::Arc;

    fn remote_fleet(transport: &Arc<dyn Transport>, count: usize) -> Vec<RemoteProvider> {
        (0..count)
            .map(|i| RemoteProvider::new(ProviderId::new(i as u64), Arc::clone(transport)))
            .collect()
    }

    #[test]
    fn loopback_serves_chunk_ops_through_the_codec() {
        let transport: Arc<dyn Transport> =
            Arc::new(Loopback::new(Arc::new(ProviderService::new(2))));
        let fleet = remote_fleet(&transport, 2);

        let chunk = ChunkId::new(7);
        let done = fleet[0]
            .put_chunk_at(5, chunk, Bytes::from_static(b"hello rpc"))
            .unwrap();
        assert_eq!(done, 5, "zero-cost server echoes the arrival instant");
        assert!(fleet[0].has_chunk(chunk));
        assert!(!fleet[1].has_chunk(chunk));
        assert_eq!(fleet[0].bytes_stored(), 9);
        assert_eq!(fleet[0].chunk_count(), 1);

        let (data, sent) = fleet[0]
            .get_chunk_range_at(9, chunk, ByteRange::new(6, 3))
            .unwrap();
        assert_eq!(data.as_ref(), b"rpc");
        assert_eq!(sent, 9);

        // Missing chunks surface the same typed error as in-process.
        let miss = fleet[1].get_chunk_range_at(0, chunk, ByteRange::new(0, 1));
        assert!(matches!(miss, Err(Error::ChunkNotFound { .. })));

        assert_eq!(fleet[0].evict_chunk(chunk), 9);
        assert_eq!(fleet[0].bytes_stored(), 0);
    }

    #[test]
    fn loopback_serves_chunk_batches() {
        let transport: Arc<dyn Transport> =
            Arc::new(Loopback::new(Arc::new(ProviderService::new(1))));
        let provider = RemoteProvider::new(ProviderId::new(0), Arc::clone(&transport));

        let items = vec![
            (ChunkId::new(1), Bytes::from_static(b"aaaa")),
            (ChunkId::new(2), Bytes::from_static(b"bb")),
        ];
        let puts = provider.put_chunk_batch(3, items).unwrap();
        assert_eq!(puts.len(), 2);
        assert!(puts.iter().all(|r| r == &Ok(3)));

        let gets = provider
            .get_chunk_range_batch(
                0,
                &[
                    (ChunkId::new(2), ByteRange::new(0, 2)),
                    (ChunkId::new(9), ByteRange::new(0, 1)), // missing
                    (ChunkId::new(1), ByteRange::new(1, 2)),
                ],
            )
            .unwrap();
        assert_eq!(gets[0].as_ref().unwrap().0.as_ref(), b"bb");
        assert!(matches!(gets[1], Err(Error::ChunkNotFound { .. })));
        assert_eq!(gets[2].as_ref().unwrap().0.as_ref(), b"aa");
    }

    #[test]
    fn loopback_serves_meta_and_version_ops() {
        let transport: Arc<dyn Transport> =
            Arc::new(Loopback::new(Arc::new(MetaService::new(2, 64))));
        let meta = RemoteMetaStore::new(Arc::clone(&transport));
        let vm = RemoteVersionManager::new(1, Arc::clone(&transport));

        // Ticket for a 2-chunk write; grant carries the history delta.
        let extents = atomio_types::ExtentList::single(ByteRange::new(0, 128));
        let (ticket, assigned) = vm.ticket(&extents).unwrap();
        assert_eq!(ticket.version, VersionId::new(1));
        assert_eq!(assigned, extents);
        assert_eq!(vm.history().len(), 1, "mirror absorbed the grant delta");

        // Build the write's tree against the remote store, from the
        // mirrored history — the client-side flow of a remote deployment.
        let blob = atomio_types::BlobId::new(1);
        let builder = atomio_meta::TreeBuilder::new(
            blob,
            &meta,
            vm.history(),
            atomio_meta::TreeConfig::new(64),
        );
        let entries: Vec<atomio_meta::LeafEntry> = vec![
            atomio_meta::LeafEntry {
                file_range: ByteRange::new(0, 64),
                chunk: ChunkId::new(10),
                chunk_offset: 0,
                homes: vec![ProviderId::new(0)],
            },
            atomio_meta::LeafEntry {
                file_range: ByteRange::new(64, 64),
                chunk: ChunkId::new(11),
                chunk_offset: 0,
                homes: vec![ProviderId::new(0)],
            },
        ];
        atomio_simgrid::clock::run_actors(1, |_, p| {
            let root = builder
                .build_update(p, ticket.version, ticket.capacity, &entries)
                .unwrap();
            vm.publish(ticket, root).unwrap();
            assert!(vm.is_published(ticket.version).unwrap());
            assert_eq!(vm.latest().unwrap().version, ticket.version);
            assert_eq!(vm.snapshot(ticket.version).unwrap().root, Some(root));

            // The published tree resolves back through the same store.
            let reader = atomio_meta::TreeReader::new(&meta);
            let pieces = reader.resolve(p, Some(root), &extents).unwrap();
            assert_eq!(pieces.len(), 2);
        });
    }

    #[test]
    fn wrong_role_requests_fail_without_panicking() {
        let provider: Arc<dyn Transport> =
            Arc::new(Loopback::new(Arc::new(ProviderService::new(1))));
        let (response, _) = provider.call(&Request::MetaNodeCount, &[]).unwrap();
        assert!(matches!(response, Response::Fail { .. }));

        let meta: Arc<dyn Transport> = Arc::new(Loopback::new(Arc::new(MetaService::new(1, 64))));
        let (response, _) = meta
            .call(
                &Request::ProviderChunkCount {
                    provider: ProviderId::new(0),
                },
                &[],
            )
            .unwrap();
        assert!(matches!(response, Response::Fail { .. }));
    }

    #[test]
    fn tcp_transport_round_trips_and_counts() {
        let mut server =
            RpcServer::start("127.0.0.1:0", Arc::new(ProviderService::new(1))).unwrap();
        let metrics = atomio_simgrid::Metrics::new();
        let transport: Arc<dyn Transport> =
            Arc::new(TcpTransport::new(server.local_addr()).with_metrics(metrics.clone()));
        let provider = RemoteProvider::new(ProviderId::new(0), Arc::clone(&transport));

        let chunk = ChunkId::new(1);
        provider
            .put_chunk_at(0, chunk, Bytes::from_static(b"over the wire"))
            .unwrap();
        let (data, _) = provider
            .get_chunk_range_at(0, chunk, ByteRange::new(5, 3))
            .unwrap();
        assert_eq!(data.as_ref(), b"the");

        let counters: std::collections::HashMap<_, _> =
            metrics.counter_snapshot().into_iter().collect();
        assert_eq!(counters["rpc.messages"], 2);
        assert!(counters["rpc.bytes_tx"] > 0);
        assert!(counters["rpc.bytes_rx"] > 0);

        server.stop();
        // A severed server surfaces a typed transport error, not a hang.
        let err = provider
            .put_chunk_at(0, ChunkId::new(2), Bytes::from_static(b"x"))
            .unwrap_err();
        match err {
            Error::Transport { kind, .. } => assert!(matches!(
                kind,
                TransportErrorKind::ConnectionReset
                    | TransportErrorKind::ConnectionRefused
                    | TransportErrorKind::Timeout
            )),
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn connect_refused_is_typed_and_counts_retries() {
        // Bind-then-drop guarantees a dead port.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let metrics = atomio_simgrid::Metrics::new();
        let cfg = TcpConfig {
            connect_retries: 2,
            backoff: std::time::Duration::from_millis(1),
            ..TcpConfig::default()
        };
        let transport = TcpTransport::with_config(dead, cfg).with_metrics(metrics.clone());
        let err = transport.call(&Request::Ping, &[]).unwrap_err();
        assert!(matches!(
            err,
            Error::Transport {
                kind: TransportErrorKind::ConnectionRefused,
                ..
            }
        ));
        let counters: std::collections::HashMap<_, _> =
            metrics.counter_snapshot().into_iter().collect();
        assert_eq!(counters["rpc.retries"], 2);
    }
}
