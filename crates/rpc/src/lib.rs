//! atomio-rpc: wire protocol and pluggable transports for the
//! versioning backend.
//!
//! The rest of the workspace talks to its substrates through traits —
//! [`ChunkStore`](atomio_provider::ChunkStore) for chunk data,
//! [`NodeStore`](atomio_meta::NodeStore) for tree metadata. This crate
//! supplies the other side of those seams:
//!
//! * [`proto`] — the request/response vocabulary, one tagged enum each,
//!   plus the negotiated [`proto::PROTOCOL_VERSION`].
//! * [`wire`] — versioned, request-id-tagged, length-prefixed framing
//!   and a compact binary encoding of the serde value model; chunk
//!   payloads travel out of band.
//! * [`transport`] — how frames move: [`Loopback`] runs the full codec
//!   in process (the default deployment; zero behavioral drift from the
//!   pre-RPC stack); [`TcpTransport`] speaks real `std::net` sockets
//!   with strict per-call framing (the [`RpcMode::PerCall`] ablation
//!   arm); [`MuxTransport`] multiplexes concurrent callers over a pool
//!   of persistent connections, demultiplexing responses by request id
//!   (the socket default, [`RpcMode::Mux`]). All three share the
//!   serde-able [`RpcConfig`] tuning knobs and report identical byte
//!   counters for identical workloads.
//! * [`server`] — [`RpcServer`] hosting a [`ProviderService`] or
//!   [`MetaService`] behind one of two [`ServerMode`] front-ends
//!   (per-connection reader threads, or a single epoll reactor thread
//!   multiplexing every socket), both feeding one bounded worker pool
//!   and both enforcing `max_conns` admission control; the
//!   `atomio-provider-server` and `atomio-meta-server` binaries are
//!   thin wrappers over these.
//! * [`client`] — [`RemoteProvider`], [`RemoteMetaStore`], and
//!   [`RemoteVersionManager`]: drop-in proxies implementing the
//!   workspace seams over any [`Transport`].
//! * [`routed`] — [`SlotRoutedTransport`], a [`Transport`] that fans
//!   version-manager calls out across `--shard i/N` version servers by
//!   hash slot, chasing `WrongShard` redirects through map refreshes;
//!   plus [`handoff_slots`], the online slot-migration coordinator.
//!
//! Assembling a socket-backed store is three lines per substrate:
//! [`dial`] the server addresses, wrap the transports in the remote
//! proxies, and hand those to `ProviderManager::from_stores` and
//! `Store::with_substrates`. Everything above the seams — atomic write
//! pipelines, versioned reads, failover, scrub — runs unchanged.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
mod reactor;
pub mod routed;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{RemoteMetaStore, RemoteProvider, RemoteVersionManager};
pub use proto::{BlobExport, Request, Response, PROTOCOL_VERSION};
pub use routed::{handoff_slots, handoff_slots_with_budget, SlotRoutedTransport};
pub use server::{
    run_server_binary, serve_forever, server_usage, MetaService, ProviderService, RpcServer,
    ServerArgs, Service, VersionService,
};
pub use transport::{
    counters, dial, Loopback, MuxTransport, RpcConfig, RpcMode, ServerMode, TcpTransport, Transport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_provider::ChunkStore;
    use atomio_types::{ByteRange, ChunkId, Error, ProviderId, TransportErrorKind, VersionId};
    use bytes::Bytes;
    use std::sync::Arc;

    fn remote_fleet(transport: &Arc<dyn Transport>, count: usize) -> Vec<RemoteProvider> {
        (0..count)
            .map(|i| RemoteProvider::new(ProviderId::new(i as u64), Arc::clone(transport)))
            .collect()
    }

    #[test]
    fn loopback_serves_chunk_ops_through_the_codec() {
        let transport: Arc<dyn Transport> =
            Arc::new(Loopback::new(Arc::new(ProviderService::new(2))));
        let fleet = remote_fleet(&transport, 2);

        let chunk = ChunkId::new(7);
        let done = fleet[0]
            .put_chunk_at(5, chunk, Bytes::from_static(b"hello rpc"))
            .unwrap();
        assert_eq!(done, 5, "zero-cost server echoes the arrival instant");
        assert!(fleet[0].has_chunk(chunk));
        assert!(!fleet[1].has_chunk(chunk));
        assert_eq!(fleet[0].bytes_stored(), 9);
        assert_eq!(fleet[0].chunk_count(), 1);

        let (data, sent) = fleet[0]
            .get_chunk_range_at(9, chunk, ByteRange::new(6, 3))
            .unwrap();
        assert_eq!(data.as_ref(), b"rpc");
        assert_eq!(sent, 9);

        // Missing chunks surface the same typed error as in-process.
        let miss = fleet[1].get_chunk_range_at(0, chunk, ByteRange::new(0, 1));
        assert!(matches!(miss, Err(Error::ChunkNotFound { .. })));

        assert_eq!(fleet[0].evict_chunk(chunk), 9);
        assert_eq!(fleet[0].bytes_stored(), 0);
    }

    #[test]
    fn loopback_serves_chunk_batches() {
        let transport: Arc<dyn Transport> =
            Arc::new(Loopback::new(Arc::new(ProviderService::new(1))));
        let provider = RemoteProvider::new(ProviderId::new(0), Arc::clone(&transport));

        let items = vec![
            (ChunkId::new(1), Bytes::from_static(b"aaaa")),
            (ChunkId::new(2), Bytes::from_static(b"bb")),
        ];
        let puts = provider.put_chunk_batch(3, items).unwrap();
        assert_eq!(puts.len(), 2);
        assert!(puts.iter().all(|r| r == &Ok(3)));

        let gets = provider
            .get_chunk_range_batch(
                0,
                &[
                    (ChunkId::new(2), ByteRange::new(0, 2)),
                    (ChunkId::new(9), ByteRange::new(0, 1)), // missing
                    (ChunkId::new(1), ByteRange::new(1, 2)),
                ],
            )
            .unwrap();
        assert_eq!(gets[0].as_ref().unwrap().0.as_ref(), b"bb");
        assert!(matches!(gets[1], Err(Error::ChunkNotFound { .. })));
        assert_eq!(gets[2].as_ref().unwrap().0.as_ref(), b"aa");
    }

    #[test]
    fn loopback_serves_meta_and_version_ops() {
        let transport: Arc<dyn Transport> =
            Arc::new(Loopback::new(Arc::new(MetaService::new(2, 64))));
        let meta = RemoteMetaStore::new(Arc::clone(&transport));
        let vm = RemoteVersionManager::new(1, Arc::clone(&transport));

        // Ticket for a 2-chunk write; grant carries the history delta.
        let extents = atomio_types::ExtentList::single(ByteRange::new(0, 128));
        let (ticket, assigned) = vm.ticket(&extents).unwrap();
        assert_eq!(ticket.version, VersionId::new(1));
        assert_eq!(assigned, extents);
        assert_eq!(vm.history().len(), 1, "mirror absorbed the grant delta");

        // Build the write's tree against the remote store, from the
        // mirrored history — the client-side flow of a remote deployment.
        let blob = atomio_types::BlobId::new(1);
        let builder = atomio_meta::TreeBuilder::new(
            blob,
            &meta,
            vm.history(),
            atomio_meta::TreeConfig::new(64),
        );
        let entries: Vec<atomio_meta::LeafEntry> = vec![
            atomio_meta::LeafEntry {
                file_range: ByteRange::new(0, 64),
                chunk: ChunkId::new(10),
                chunk_offset: 0,
                homes: vec![ProviderId::new(0)],
            },
            atomio_meta::LeafEntry {
                file_range: ByteRange::new(64, 64),
                chunk: ChunkId::new(11),
                chunk_offset: 0,
                homes: vec![ProviderId::new(0)],
            },
        ];
        atomio_simgrid::clock::run_actors(1, |_, p| {
            let root = builder
                .build_update(p, ticket.version, ticket.capacity, &entries)
                .unwrap();
            vm.publish(ticket, root).unwrap();
            assert!(vm.is_published(ticket.version).unwrap());
            assert_eq!(vm.latest().unwrap().version, ticket.version);
            assert_eq!(vm.snapshot(ticket.version).unwrap().root, Some(root));

            // The published tree resolves back through the same store.
            let reader = atomio_meta::TreeReader::new(&meta);
            let pieces = reader.resolve(p, Some(root), &extents).unwrap();
            assert_eq!(pieces.len(), 2);
        });
    }

    #[test]
    fn wrong_role_requests_fail_without_panicking() {
        let provider: Arc<dyn Transport> =
            Arc::new(Loopback::new(Arc::new(ProviderService::new(1))));
        let (response, _) = provider.call(&Request::MetaNodeCount, &[]).unwrap();
        assert!(matches!(response, Response::Fail { .. }));

        let meta: Arc<dyn Transport> = Arc::new(Loopback::new(Arc::new(MetaService::new(1, 64))));
        let (response, _) = meta
            .call(
                &Request::ProviderChunkCount {
                    provider: ProviderId::new(0),
                },
                &[],
            )
            .unwrap();
        assert!(matches!(response, Response::Fail { .. }));
    }

    #[test]
    fn tcp_transport_round_trips_and_counts() {
        let mut server =
            RpcServer::start("127.0.0.1:0", Arc::new(ProviderService::new(1))).unwrap();
        let metrics = atomio_simgrid::Metrics::new();
        let transport: Arc<dyn Transport> =
            Arc::new(TcpTransport::new(server.local_addr()).with_metrics(metrics.clone()));
        let provider = RemoteProvider::new(ProviderId::new(0), Arc::clone(&transport));

        let chunk = ChunkId::new(1);
        provider
            .put_chunk_at(0, chunk, Bytes::from_static(b"over the wire"))
            .unwrap();
        let (data, _) = provider
            .get_chunk_range_at(0, chunk, ByteRange::new(5, 3))
            .unwrap();
        assert_eq!(data.as_ref(), b"the");

        let counters: std::collections::HashMap<_, _> =
            metrics.counter_snapshot().into_iter().collect();
        assert_eq!(counters["rpc.messages"], 2);
        assert!(counters["rpc.bytes_tx"] > 0);
        assert!(counters["rpc.bytes_rx"] > 0);

        server.stop();
        // A severed server surfaces a typed transport error, not a hang.
        let err = provider
            .put_chunk_at(0, ChunkId::new(2), Bytes::from_static(b"x"))
            .unwrap_err();
        match err {
            Error::Transport { kind, .. } => assert!(matches!(
                kind,
                TransportErrorKind::ConnectionReset
                    | TransportErrorKind::ConnectionRefused
                    | TransportErrorKind::Timeout
            )),
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn connect_refused_is_typed_and_counts_retries() {
        // Bind-then-drop guarantees a dead port.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let metrics = atomio_simgrid::Metrics::new();
        let cfg = RpcConfig {
            connect_retries: 2,
            backoff: std::time::Duration::from_millis(1),
            ..RpcConfig::default()
        };
        let transport = TcpTransport::with_config(dead, cfg).with_metrics(metrics.clone());
        let err = transport.call(&Request::Ping, &[]).unwrap_err();
        assert!(matches!(
            err,
            Error::Transport {
                kind: TransportErrorKind::ConnectionRefused,
                ..
            }
        ));
        let counters: std::collections::HashMap<_, _> =
            metrics.counter_snapshot().into_iter().collect();
        assert_eq!(counters["rpc.retries"], 2);
    }

    #[test]
    fn mux_transport_round_trips_and_counts() {
        let mut server =
            RpcServer::start("127.0.0.1:0", Arc::new(ProviderService::new(1))).unwrap();
        let metrics = atomio_simgrid::Metrics::new();
        let mux = MuxTransport::new(server.local_addr()).with_metrics(metrics.clone());
        assert_eq!(mux.pool_size(), RpcConfig::default().pool_conns);
        let transport: Arc<dyn Transport> = Arc::new(mux);
        let provider = RemoteProvider::new(ProviderId::new(0), Arc::clone(&transport));

        let chunk = ChunkId::new(1);
        provider
            .put_chunk_at(0, chunk, Bytes::from_static(b"over the mux"))
            .unwrap();
        let (data, _) = provider
            .get_chunk_range_at(0, chunk, ByteRange::new(9, 3))
            .unwrap();
        assert_eq!(data.as_ref(), b"mux");

        let counters: std::collections::HashMap<_, _> =
            metrics.counter_snapshot().into_iter().collect();
        assert_eq!(counters["rpc.messages"], 2);
        assert!(counters["rpc.bytes_tx"] > 0);
        assert!(counters["rpc.bytes_rx"] > 0);
        // First-fit keeps sequential calls on one pool member: one dial.
        assert_eq!(counters["rpc.pool_conns"], 1);
        assert!(counters["rpc.inflight_peak"] >= 1);

        server.stop();
    }

    #[test]
    fn mux_concurrent_callers_share_one_transport() {
        let mut server =
            RpcServer::start("127.0.0.1:0", Arc::new(ProviderService::new(1))).unwrap();
        let metrics = atomio_simgrid::Metrics::new();
        let transport: Arc<dyn Transport> =
            Arc::new(MuxTransport::new(server.local_addr()).with_metrics(metrics.clone()));

        std::thread::scope(|s| {
            for t in 0u64..16 {
                let transport = Arc::clone(&transport);
                s.spawn(move || {
                    let provider = RemoteProvider::new(ProviderId::new(0), transport);
                    for i in 0..8 {
                        let chunk = ChunkId::new(t * 100 + i);
                        let body = format!("thread {t} chunk {i}");
                        provider
                            .put_chunk_at(0, chunk, Bytes::from(body.clone().into_bytes()))
                            .unwrap();
                        let (data, _) = provider
                            .get_chunk_range_at(0, chunk, ByteRange::new(0, body.len() as u64))
                            .unwrap();
                        assert_eq!(data.as_ref(), body.as_bytes());
                    }
                });
            }
        });

        let counters: std::collections::HashMap<_, _> =
            metrics.counter_snapshot().into_iter().collect();
        assert_eq!(counters["rpc.messages"], 16 * 8 * 2);
        // First-fit engages pool members as concurrency demands (how
        // many depends on scheduling) and never dials past the pool.
        let dialed = counters["rpc.pool_conns"];
        assert!(
            (1..=4).contains(&dialed),
            "expected 1..=4 pool members dialed, got {dialed}"
        );
        server.stop();
    }

    #[test]
    fn mux_version_mismatch_is_typed() {
        use std::io::{Read as _, Write as _};
        // A fake peer that answers any frame with a v9 prefix.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Consume the whole request frame (prefix declares the rest)
            // so the client's write completes before the bogus reply.
            let mut prefix = [0u8; 17];
            s.read_exact(&mut prefix).unwrap();
            let head = u32::from_be_bytes(prefix[9..13].try_into().unwrap()) as usize;
            let body = u32::from_be_bytes(prefix[13..17].try_into().unwrap()) as usize;
            let mut rest = vec![0u8; head + body];
            s.read_exact(&mut rest).unwrap();
            let mut junk = [0u8; 17];
            junk[0] = 9;
            s.write_all(&junk).unwrap();
            // Hold the socket open until the client has seen the frame.
            std::thread::sleep(std::time::Duration::from_millis(200));
        });

        let transport = MuxTransport::new(addr);
        let err = transport.call(&Request::Ping, &[]).unwrap_err();
        assert!(
            matches!(
                err,
                Error::Transport {
                    kind: TransportErrorKind::VersionMismatch,
                    ..
                }
            ),
            "got {err:?}"
        );
        peer.join().unwrap();
    }

    #[test]
    fn server_args_parse_rpc_config_flags() {
        let args = ServerArgs::parse(
            [
                "127.0.0.1:7420",
                "--providers",
                "4",
                "--workers",
                "8",
                "--pool-conns",
                "2",
                "--read-timeout-ms",
                "500",
                "--write-timeout-ms",
                "250",
                "--connect-timeout-ms",
                "100",
                "--connect-retries",
                "5",
                "--backoff-ms",
                "7",
                "--data-dir",
                "/tmp/atomio-data",
                "--fsync",
                "group:8",
            ]
            .map(String::from),
            "--providers",
            1,
            false,
        )
        .unwrap();
        assert_eq!(args.count, 4);
        assert_eq!(
            args.data_dir.as_deref(),
            Some(std::path::Path::new("/tmp/atomio-data"))
        );
        assert_eq!(args.fsync, atomio_types::FsyncPolicy::Group(8));
        assert_eq!(
            args.backend(),
            atomio_types::BackendConfig::disk("/tmp/atomio-data")
                .with_fsync(atomio_types::FsyncPolicy::Group(8))
        );
        assert_eq!(args.cfg.server_workers, 8);
        assert_eq!(args.cfg.pool_conns, 2);
        assert_eq!(args.cfg.read_timeout, std::time::Duration::from_millis(500));
        assert_eq!(
            args.cfg.write_timeout,
            std::time::Duration::from_millis(250)
        );
        assert_eq!(
            args.cfg.connect_timeout,
            std::time::Duration::from_millis(100)
        );
        assert_eq!(args.cfg.connect_retries, 5);
        assert_eq!(args.cfg.backoff, std::time::Duration::from_millis(7));
        assert!(ServerArgs::parse(
            ["127.0.0.1:7420", "--bogus", "1"].map(String::from),
            "--providers",
            1,
            false,
        )
        .is_err());
    }

    #[test]
    fn server_args_parse_shard_flag() {
        let version_role = |shard: &str| {
            ServerArgs::parse(
                ["127.0.0.1:0", "--shard", shard].map(String::from),
                "",
                0,
                true,
            )
        };
        assert_eq!(version_role("2/4").unwrap().shard, Some((2, 4)));
        assert_eq!(version_role("0/1").unwrap().shard, Some((0, 1)));
        // Index must be in range, and the spelling is strictly I/N.
        assert!(version_role("4/4").is_err());
        assert!(version_role("2").is_err());
        assert!(version_role("a/b").is_err());
        // The provider role hosts no version managers.
        assert!(ServerArgs::parse(
            ["127.0.0.1:0", "--shard", "0/4"].map(String::from),
            "--providers",
            1,
            false,
        )
        .is_err());
    }

    #[test]
    fn usage_strings_cannot_drift_from_the_parser() {
        // The three deployed roles, exactly as their binaries configure
        // them. For every flag the codebase has ever known, the parser
        // accepts it if and only if the role's usage line advertises it
        // — so a flag added to one without the other fails here.
        let roles: [(&str, Option<(&str, usize)>, bool); 3] = [
            ("atomio-provider-server", Some(("--providers", 1)), false),
            ("atomio-meta-server", Some(("--shards", 1)), true),
            ("atomio-version-server", None, true),
        ];
        // Each flag with a value its parser accepts — "1" fits the
        // numeric flags, but `--fsync` needs a policy spelling and
        // `--data-dir` takes a path.
        let all_flags = [
            ("--providers", "1"),
            ("--shards", "1"),
            ("--chunk-size", "1"),
            ("--data-dir", "/tmp/atomio-data"),
            ("--fsync", "per-publish"),
            ("--retention", "keep-last:2"),
            ("--lease-ttl-ms", "60000"),
            ("--shard", "0/4"),
            ("--workers", "1"),
            ("--pool-conns", "1"),
            ("--mux-streams-per-conn", "1"),
            ("--connect-retries", "1"),
            ("--connect-timeout-ms", "1"),
            ("--read-timeout-ms", "1"),
            ("--write-timeout-ms", "1"),
            ("--backoff-ms", "1"),
            ("--server-mode", "reactor"),
            ("--max-conns", "1"),
            ("--max-inflight-per-conn", "1"),
        ];
        for (name, count_flag, chunk) in roles {
            let usage = server_usage(name, count_flag.map(|(f, _)| f), chunk);
            let (cf, dc) = count_flag.unwrap_or(("", 0));
            for (flag, sample) in all_flags {
                let accepted = ServerArgs::parse(
                    ["127.0.0.1:0", flag, sample].map(String::from),
                    cf,
                    dc,
                    chunk,
                )
                .is_ok();
                let advertised = usage.contains(&format!("[{flag} "));
                assert_eq!(
                    accepted, advertised,
                    "{name}: {flag} accepted={accepted} but advertised={advertised}\n{usage}"
                );
            }
        }
        // The drift this test was written for: the provider server has
        // no chunk geometry, so it must reject --chunk-size instead of
        // silently ignoring it.
        assert!(ServerArgs::parse(
            ["127.0.0.1:0", "--chunk-size", "4096"].map(String::from),
            "--providers",
            1,
            false,
        )
        .is_err());
    }

    #[test]
    fn rpc_config_roundtrips_through_serde() {
        use serde::{Deserialize as _, Serialize as _};
        let cfg = RpcConfig {
            pool_conns: 7,
            server_workers: 3,
            server_mode: ServerMode::Reactor,
            max_conns: 2048,
            max_inflight_per_conn: 17,
            ..RpcConfig::default()
        };
        let back = RpcConfig::from_value(&cfg.to_value()).unwrap();
        assert_eq!(back, cfg);
    }

    /// Both front-end modes, for tests that must hold on each.
    const BOTH_MODES: [ServerMode; 2] = [ServerMode::Threads, ServerMode::Reactor];

    fn cfg_for(mode: ServerMode) -> RpcConfig {
        RpcConfig {
            server_mode: mode,
            ..RpcConfig::default()
        }
    }

    #[test]
    fn reactor_round_trips_and_reports_parity_byte_counters() {
        // The same two-op workload over both front-ends: identical
        // responses and identical client-side wire totals.
        let mut totals = Vec::new();
        for mode in BOTH_MODES {
            let mut server = RpcServer::start_with_config(
                "127.0.0.1:0",
                Arc::new(ProviderService::new(1)),
                cfg_for(mode),
            )
            .unwrap();
            let metrics = atomio_simgrid::Metrics::new();
            let transport: Arc<dyn Transport> =
                Arc::new(TcpTransport::new(server.local_addr()).with_metrics(metrics.clone()));
            let provider = RemoteProvider::new(ProviderId::new(0), Arc::clone(&transport));

            let chunk = ChunkId::new(1);
            provider
                .put_chunk_at(0, chunk, Bytes::from_static(b"mode parity"))
                .unwrap();
            let (data, _) = provider
                .get_chunk_range_at(0, chunk, ByteRange::new(5, 6))
                .unwrap();
            assert_eq!(data.as_ref(), b"parity", "{mode}: payload bytes");

            let counters: std::collections::HashMap<_, _> =
                metrics.counter_snapshot().into_iter().collect();
            totals.push((counters["rpc.bytes_tx"], counters["rpc.bytes_rx"]));
            server.stop();
        }
        assert_eq!(
            totals[0], totals[1],
            "threads and reactor front-ends must move identical bytes"
        );
    }

    #[test]
    fn reactor_serves_concurrent_mux_callers() {
        let mut server = RpcServer::start_with_config(
            "127.0.0.1:0",
            Arc::new(ProviderService::new(1)),
            cfg_for(ServerMode::Reactor),
        )
        .unwrap();
        let transport: Arc<dyn Transport> = Arc::new(MuxTransport::new(server.local_addr()));
        std::thread::scope(|s| {
            for t in 0u64..8 {
                let transport = Arc::clone(&transport);
                s.spawn(move || {
                    let provider = RemoteProvider::new(ProviderId::new(0), transport);
                    for i in 0..8 {
                        let chunk = ChunkId::new(t * 100 + i);
                        let body = format!("reactor thread {t} chunk {i}");
                        provider
                            .put_chunk_at(0, chunk, Bytes::from(body.clone().into_bytes()))
                            .unwrap();
                        let (data, _) = provider
                            .get_chunk_range_at(0, chunk, ByteRange::new(0, body.len() as u64))
                            .unwrap();
                        assert_eq!(data.as_ref(), body.as_bytes());
                    }
                });
            }
        });
        server.stop();
    }

    #[test]
    fn over_max_conns_clients_get_a_typed_busy_in_both_modes() {
        for mode in BOTH_MODES {
            // max_conns = 0: every connection is over the cap.
            let cfg = RpcConfig {
                max_conns: 0,
                ..cfg_for(mode)
            };
            let mut server =
                RpcServer::start_with_config("127.0.0.1:0", Arc::new(ProviderService::new(1)), cfg)
                    .unwrap();

            // The proxies funnel the Busy response into the typed
            // admission error — for per-call and mux clients alike.
            for transport in [
                Arc::new(TcpTransport::new(server.local_addr())) as Arc<dyn Transport>,
                Arc::new(MuxTransport::new(server.local_addr())) as Arc<dyn Transport>,
            ] {
                let provider = RemoteProvider::new(ProviderId::new(0), transport);
                let err = provider
                    .put_chunk_at(0, ChunkId::new(1), Bytes::from_static(b"x"))
                    .unwrap_err();
                assert!(
                    matches!(err, Error::AdmissionRejected { max_conns: 0, .. }),
                    "{mode}: client got {err:?}"
                );
            }
            server.stop();
        }
    }

    #[test]
    fn admitted_conns_survive_a_rejected_newcomer() {
        for mode in BOTH_MODES {
            let cfg = RpcConfig {
                max_conns: 1,
                ..cfg_for(mode)
            };
            let mut server =
                RpcServer::start_with_config("127.0.0.1:0", Arc::new(ProviderService::new(1)), cfg)
                    .unwrap();

            // One admitted long-lived connection…
            let admitted = MuxTransport::with_config(
                server.local_addr(),
                RpcConfig {
                    pool_conns: 1,
                    ..RpcConfig::default()
                },
            );
            let (r, _) = admitted.call(&Request::Ping, &[]).unwrap();
            assert!(matches!(r, Response::Pong));

            // …pushes the newcomer over the cap: typed Busy for it,
            // uninterrupted service for the admitted one.
            let newcomer = TcpTransport::new(server.local_addr());
            let (r, _) = newcomer.call(&Request::Ping, &[]).unwrap();
            assert!(
                matches!(r, Response::Busy { max_conns: 1, .. }),
                "{mode}: got {r:?}"
            );
            let (r, _) = admitted.call(&Request::Ping, &[]).unwrap();
            assert!(matches!(r, Response::Pong), "{mode}: admitted conn died");
            server.stop();
        }
    }

    /// A service whose handlers block on a shared gate, counting how
    /// many requests ever reached dispatch — the observable for the
    /// reactor's in-flight parking.
    #[derive(Debug)]
    struct GatedService {
        entered: std::sync::atomic::AtomicUsize,
        gate: std::sync::Mutex<bool>,
        cv: std::sync::Condvar,
    }

    impl GatedService {
        fn new() -> Arc<Self> {
            Arc::new(GatedService {
                entered: std::sync::atomic::AtomicUsize::new(0),
                gate: std::sync::Mutex::new(false),
                cv: std::sync::Condvar::new(),
            })
        }

        fn open(&self) {
            *self.gate.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    impl Service for GatedService {
        fn handle(&self, _request: Request, _payload: bytes::Bytes) -> (Response, bytes::Bytes) {
            self.entered
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
            (Response::Pong, bytes::Bytes::new())
        }
    }

    #[test]
    fn reactor_parks_a_conn_at_its_inflight_cap() {
        let service = GatedService::new();
        let cap = 2;
        let cfg = RpcConfig {
            max_inflight_per_conn: cap,
            server_workers: 8,
            read_timeout: std::time::Duration::from_secs(10),
            ..cfg_for(ServerMode::Reactor)
        };
        let mut server = RpcServer::start_with_config(
            "127.0.0.1:0",
            Arc::clone(&service) as Arc<dyn Service>,
            cfg,
        )
        .unwrap();

        // 8 concurrent callers multiplexed over ONE connection; only
        // `cap` of their requests may reach dispatch while the gate is
        // shut — the rest sit parked in the reactor's read buffer.
        let transport: Arc<dyn Transport> = Arc::new(MuxTransport::with_config(
            server.local_addr(),
            RpcConfig {
                pool_conns: 1,
                mux_streams_per_conn: 64,
                read_timeout: std::time::Duration::from_secs(10),
                ..RpcConfig::default()
            },
        ));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let transport = Arc::clone(&transport);
                s.spawn(move || {
                    let (r, _) = transport.call(&Request::Ping, &[]).unwrap();
                    assert!(matches!(r, Response::Pong));
                });
            }
            // Wait for the cap to fill, then give stragglers every
            // chance to (incorrectly) slip past it.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while service.entered.load(std::sync::atomic::Ordering::SeqCst) < cap
                && std::time::Instant::now() < deadline
            {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
            let while_gated = service.entered.load(std::sync::atomic::Ordering::SeqCst);
            assert_eq!(
                while_gated, cap,
                "parking must cap dispatched requests at max_inflight_per_conn"
            );
            service.open();
        });
        assert_eq!(service.entered.load(std::sync::atomic::Ordering::SeqCst), 8);
        server.stop();
    }

    #[test]
    fn finished_conns_are_reaped_not_pinned_until_stop() {
        fn open_fds() -> usize {
            std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count())
        }
        for mode in BOTH_MODES {
            let mut server = RpcServer::start_with_config(
                "127.0.0.1:0",
                Arc::new(ProviderService::new(1)),
                cfg_for(mode),
            )
            .unwrap();
            let baseline = open_fds();
            // 200 connect/dispatch/disconnect churn cycles: the per-call
            // transport dials a fresh connection for every request.
            for _ in 0..200 {
                let t = TcpTransport::new(server.local_addr());
                let (r, _) = t.call(&Request::Ping, &[]).unwrap();
                assert!(matches!(r, Response::Pong));
            }
            // Reaping is asynchronous (connection-thread exit / EPOLLHUP
            // handling); poll the gauge down to zero.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while server.open_conns() > 0 && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            assert_eq!(server.open_conns(), 0, "{mode}: conns not reaped");
            let after = open_fds();
            assert!(
                after <= baseline + 20,
                "{mode}: fd usage grew from {baseline} to {after} over 200 churn cycles"
            );
            server.stop();
        }
    }

    #[test]
    fn server_metrics_report_connection_counters() {
        for mode in BOTH_MODES {
            let metrics = atomio_simgrid::Metrics::new();
            let mut server = RpcServer::start_with_metrics(
                "127.0.0.1:0",
                Arc::new(ProviderService::new(1)),
                RpcConfig {
                    max_conns: 1,
                    ..cfg_for(mode)
                },
                Some(metrics.clone()),
            )
            .unwrap();
            // One admitted pooled connection fills the cap…
            let admitted = MuxTransport::with_config(
                server.local_addr(),
                RpcConfig {
                    pool_conns: 1,
                    ..RpcConfig::default()
                },
            );
            admitted.call(&Request::Ping, &[]).unwrap();
            // …so the per-call newcomer is admission-rejected.
            let newcomer = TcpTransport::new(server.local_addr());
            let _ = newcomer.call(&Request::Ping, &[]);
            drop(admitted);
            // Reaping (and its gauge update) is asynchronous: poll.
            let gauge = metrics.counter(counters::CONNS_OPEN);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while gauge.get() > 0 && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            server.stop();
            let snapshot: std::collections::HashMap<_, _> =
                metrics.counter_snapshot().into_iter().collect();
            assert!(snapshot["rpc.accepts"] >= 2, "{mode}");
            assert!(snapshot["rpc.admission_rejects"] >= 1, "{mode}");
            assert!(snapshot["rpc.conns_peak"] >= 1, "{mode}");
            assert_eq!(snapshot["rpc.conns_open"], 0, "{mode}");
            if mode == ServerMode::Reactor {
                assert!(snapshot["rpc.reactor_wakeups"] >= 1, "{mode}");
            }
        }
    }
}
