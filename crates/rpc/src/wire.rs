//! Frame format and the binary [`Value`] codec.
//!
//! Every RPC message is one frame (protocol v2):
//!
//! ```text
//! +---------+-------------+-------------+--------------+------------------+------------------+
//! | version | request_id  | header_len  | payload_len  | header bytes     | payload bytes    |
//! | u8      | u64 BE      | u32 BE      | u32 BE       | (Value, binary)  | (raw, untyped)   |
//! +---------+-------------+-------------+--------------+------------------+------------------+
//! ```
//!
//! The leading byte is [`crate::proto::PROTOCOL_VERSION`]; a frame
//! carrying any other value is rejected before a single header byte is
//! decoded, so mismatched peers fail with a typed version error instead
//! of garbage. The `request_id` tags the call so responses can be
//! demultiplexed out of order on a shared connection: a server answers
//! with the id of the request it is answering, and ordering is
//! guaranteed **per id**, never per connection.
//!
//! The header is a [`Value`] tree (the request or response, see
//! [`crate::proto`]) in the binary encoding below. Chunk payloads travel
//! **out of band** in the payload section: the value model has no bytes
//! variant, and copying megabytes through a structured tree would be
//! wasteful anyway.
//!
//! ## Binary `Value` encoding
//!
//! One tag byte per node, little-endian fixed-width scalars,
//! `u32`-length-prefixed strings and containers:
//!
//! | tag | variant | body                                     |
//! |-----|---------|------------------------------------------|
//! | 0   | Null    | —                                        |
//! | 1   | Bool    | u8 (0/1)                                 |
//! | 2   | UInt    | u64 LE                                   |
//! | 3   | Int     | i64 LE                                   |
//! | 4   | Float   | f64 LE bits                              |
//! | 5   | Str     | u32 LE len + UTF-8 bytes                 |
//! | 6   | Array   | u32 LE count + encoded items             |
//! | 7   | Object  | u32 LE count + (Str key, value) pairs    |

use crate::proto::PROTOCOL_VERSION;
use bytes::Bytes;
use serde::Value;
use std::io::{self, Read, Write};

/// Upper bound on an encoded header (a request/response tree).
pub const MAX_HEADER_BYTES: u32 = 16 << 20;
/// Upper bound on a frame payload (chunk data).
pub const MAX_PAYLOAD_BYTES: u32 = 256 << 20;
/// Fixed frame prefix: version (1) + request id (8) + two lengths (4+4).
pub const FRAME_PREFIX_BYTES: u64 = 17;

/// Encodes a value tree into `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::UInt(n) => {
            out.push(2);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Int(n) => {
            out.push(3);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(4);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(5);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(6);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(fields) => {
            out.push(7);
            out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
            for (key, val) in fields {
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

/// Decodes one value tree from `buf` (must consume it exactly).
pub fn decode_value(buf: &[u8]) -> io::Result<Value> {
    let mut cursor = Cursor { buf, pos: 0 };
    let v = cursor.value()?;
    if cursor.pos != buf.len() {
        return Err(malformed("trailing bytes after value"));
    }
    Ok(v)
}

fn malformed(detail: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed frame: {detail}"),
    )
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| malformed("truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("invalid utf-8"))
    }

    fn value(&mut self) -> io::Result<Value> {
        match self.take(1)?[0] {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.take(1)?[0] != 0)),
            2 => Ok(Value::UInt(self.u64()?)),
            3 => Ok(Value::Int(self.u64()? as i64)),
            4 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            5 => Ok(Value::Str(self.string()?)),
            6 => {
                let count = self.u32()? as usize;
                if count > self.buf.len() - self.pos {
                    return Err(malformed("array count exceeds frame"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value()?);
                }
                Ok(Value::Array(items))
            }
            7 => {
                let count = self.u32()? as usize;
                if count > self.buf.len() - self.pos {
                    return Err(malformed("object count exceeds frame"));
                }
                let mut fields = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = self.string()?;
                    let val = self.value()?;
                    fields.push((key, val));
                }
                Ok(Value::Object(fields))
            }
            tag => Err(malformed(&format!("unknown value tag {tag}"))),
        }
    }
}

/// The error a frame from a peer speaking a different protocol version
/// produces. Mapped to `TransportErrorKind::VersionMismatch` by the
/// transports ([`io::ErrorKind::Unsupported`] marks it).
fn version_mismatch(peer: u8) -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        format!(
            "protocol version mismatch: peer speaks v{peer}, this build speaks v{PROTOCOL_VERSION}"
        ),
    )
}

/// Payloads up to this size are coalesced into the prefix+header buffer
/// so the whole frame leaves in ONE `write` call — with `TCP_NODELAY`
/// every write is a packet, and per-syscall cost dominates small frames.
/// Larger payloads are written separately to avoid the copy.
const COALESCE_PAYLOAD_BYTES: usize = 256 * 1024;

/// Writes one frame tagged with `request_id`. Returns the number of
/// bytes put on the wire. Small frames are emitted in a single `write`
/// call (see [`COALESCE_PAYLOAD_BYTES`]).
pub fn write_frame(
    w: &mut impl Write,
    request_id: u64,
    header: &Value,
    payload: &[u8],
) -> io::Result<u64> {
    if payload.len() as u64 > MAX_PAYLOAD_BYTES as u64 {
        return Err(malformed("payload too large"));
    }
    let coalesce = payload.len() <= COALESCE_PAYLOAD_BYTES;
    let mut buf = Vec::with_capacity(
        FRAME_PREFIX_BYTES as usize + 128 + if coalesce { payload.len() } else { 0 },
    );
    buf.push(PROTOCOL_VERSION);
    buf.extend_from_slice(&request_id.to_be_bytes());
    buf.extend_from_slice(&[0u8; 8]); // head_len + payload_len, patched below
    encode_value(header, &mut buf);
    let head_len = buf.len() - FRAME_PREFIX_BYTES as usize;
    if head_len as u64 > MAX_HEADER_BYTES as u64 {
        return Err(malformed("header too large"));
    }
    buf[9..13].copy_from_slice(&(head_len as u32).to_be_bytes());
    buf[13..17].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    if coalesce {
        buf.extend_from_slice(payload);
        w.write_all(&buf)?;
    } else {
        w.write_all(&buf)?;
        w.write_all(payload)?;
    }
    w.flush()?;
    Ok(FRAME_PREFIX_BYTES + head_len as u64 + payload.len() as u64)
}

/// Reads one frame. Returns `(request_id, header, payload, bytes_read)`.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u64, Value, Bytes, u64)> {
    let mut prefix = [0u8; FRAME_PREFIX_BYTES as usize];
    r.read_exact(&mut prefix)?;
    if prefix[0] != PROTOCOL_VERSION {
        return Err(version_mismatch(prefix[0]));
    }
    let request_id = u64::from_be_bytes(prefix[1..9].try_into().unwrap());
    let head_len = u32::from_be_bytes(prefix[9..13].try_into().unwrap());
    let payload_len = u32::from_be_bytes(prefix[13..].try_into().unwrap());
    if head_len > MAX_HEADER_BYTES {
        return Err(malformed("header length exceeds limit"));
    }
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(malformed("payload length exceeds limit"));
    }
    let mut head = vec![0u8; head_len as usize];
    r.read_exact(&mut head)?;
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload)?;
    let header = decode_value(&head)?;
    Ok((
        request_id,
        header,
        Bytes::from(payload),
        FRAME_PREFIX_BYTES + head_len as u64 + payload_len as u64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let mut buf = Vec::new();
        encode_value(v, &mut buf);
        assert_eq!(&decode_value(&buf).unwrap(), v);
    }

    #[test]
    fn values_roundtrip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::UInt(0));
        roundtrip(&Value::UInt(u64::MAX));
        roundtrip(&Value::Int(-42));
        roundtrip(&Value::Float(3.5));
        roundtrip(&Value::Str(String::new()));
        roundtrip(&Value::Str("héllo".into()));
        roundtrip(&Value::Array(vec![Value::UInt(1), Value::Null]));
        roundtrip(&Value::Object(vec![
            ("a".into(), Value::UInt(7)),
            (
                "nested".into(),
                Value::Object(vec![("b".into(), Value::Array(vec![]))]),
            ),
        ]));
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let header = Value::Object(vec![("t".into(), Value::Str("Ping".into()))]);
        let payload = b"raw chunk bytes";
        let mut wire = Vec::new();
        let wrote = write_frame(&mut wire, 0xDEAD_BEEF, &header, payload).unwrap();
        assert_eq!(wrote as usize, wire.len());
        assert_eq!(wire[0], PROTOCOL_VERSION);
        let (id, back, body, read) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(id, 0xDEAD_BEEF);
        assert_eq!(back, header);
        assert_eq!(body.as_ref(), payload);
        assert_eq!(read, wrote);
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        // Truncated value.
        assert!(decode_value(&[5, 10, 0, 0, 0, b'a']).is_err());
        // Unknown tag.
        assert!(decode_value(&[9]).is_err());
        // Trailing garbage.
        assert!(decode_value(&[0, 0]).is_err());
        // Absurd container count.
        assert!(decode_value(&[6, 255, 255, 255, 255]).is_err());
        // Oversized declared header length.
        let mut wire = vec![PROTOCOL_VERSION];
        wire.extend_from_slice(&0u64.to_be_bytes());
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(&0u32.to_be_bytes());
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }

    #[test]
    fn version_mismatch_is_rejected_before_decoding() {
        // A v1-era frame (no version byte: the first byte is the high
        // byte of a big-endian header length, i.e. not the version tag).
        let mut old = vec![0u8; FRAME_PREFIX_BYTES as usize];
        old[0] = 1; // pretend peer speaks protocol v1
        let err = read_frame(&mut old.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
        assert!(err.to_string().contains("protocol version mismatch"));
    }
}
