//! Pluggable client-side transports.
//!
//! A [`Transport`] moves one encoded request to a service and brings the
//! response back. Three implementations:
//!
//! * [`Loopback`] — in-process: the frame is encoded and decoded through
//!   the full wire codec, then handed to the [`Service`] directly. No
//!   sockets, no real latency — the default deployment, and the one every
//!   committed benchmark result was produced on.
//! * [`TcpTransport`] — real `std::net` sockets with strict per-call
//!   framing: one connection, one request in flight, guarded by a mutex.
//!   Kept as the [`RpcMode::PerCall`] ablation arm — it is exactly the
//!   head-of-line blocking the mux transport removes.
//! * [`MuxTransport`] — a pool of persistent connections per endpoint
//!   ([`RpcConfig::pool_conns`], default 4). Writers enqueue encoded
//!   frames on a pool member; one reader thread per connection
//!   demultiplexes responses by request id into per-call wakeups, so
//!   any number of concurrent callers share the pool with no
//!   head-of-line blocking. The default for socket deployments
//!   ([`RpcMode::Mux`]).
//!
//! Mid-call failures are **not** silently retried (the ops are not all
//! idempotent); they surface as typed [`Error::Transport`] values so the
//! provider manager's failover policy decides. On the mux transport a
//! connection failure fails only the calls in flight on that connection;
//! the surviving pool members are unaffected and the dead slot redials
//! on next use.

use crate::proto::{Request, Response};
use crate::server::Service;
use crate::wire;
use atomio_simgrid::Metrics;
use atomio_types::{Error, Result, TransportErrorKind};
use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Moves one request/payload pair to a service, returns its response.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Performs one RPC round trip.
    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)>;
}

/// Counter names the transports publish into a [`Metrics`] registry.
pub mod counters {
    /// Round trips performed.
    pub const MESSAGES: &str = "rpc.messages";
    /// Bytes put on the wire (request frames, payloads included).
    pub const BYTES_TX: &str = "rpc.bytes_tx";
    /// Bytes read off the wire (response frames, payloads included).
    pub const BYTES_RX: &str = "rpc.bytes_rx";
    /// Connect attempts beyond the first.
    pub const RETRIES: &str = "rpc.retries";
    /// Peak concurrent in-flight calls on one mux transport
    /// (high-watermark, not a running sum).
    pub const INFLIGHT_PEAK: &str = "rpc.inflight_peak";
    /// Pool connections dialed by mux transports (redials after a
    /// severed connection count again).
    pub const POOL_CONNS: &str = "rpc.pool_conns";
    /// Nanoseconds callers spent queued behind a mux pool writer before
    /// their frame hit the socket.
    pub const MUX_QUEUE_TIME: &str = "rpc.mux_queue_time";
    /// Connections the server currently holds open (a gauge: rises on
    /// accept, falls on reap).
    pub const CONNS_OPEN: &str = "rpc.conns_open";
    /// Most connections the server ever held open at once
    /// (high-watermark).
    pub const CONNS_PEAK: &str = "rpc.conns_peak";
    /// Connections the server accepted (admission-rejected ones
    /// included).
    pub const ACCEPTS: &str = "rpc.accepts";
    /// Connections refused at admission with a typed
    /// [`Busy`](crate::proto::Response::Busy) because `max_conns` were
    /// already open.
    pub const ADMISSION_REJECTS: &str = "rpc.admission_rejects";
    /// Times the reactor thread returned from `epoll_wait`.
    pub const REACTOR_WAKEUPS: &str = "rpc.reactor_wakeups";
}

/// Counts one round trip. Every transport funnels through this with the
/// byte totals returned by the frame codec — request and response frames
/// both include their out-of-band payload bytes — so [`Loopback`],
/// [`TcpTransport`], and [`MuxTransport`] report identical totals for
/// identical workloads (pinned by `tests/transport_equivalence.rs`).
fn record(metrics: &Option<Metrics>, tx: u64, rx: u64) {
    if let Some(m) = metrics {
        m.counter(counters::MESSAGES).inc();
        m.counter(counters::BYTES_TX).add(tx);
        m.counter(counters::BYTES_RX).add(rx);
    }
}

/// How the server front-end turns sockets into dispatch jobs (the E11
/// ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerMode {
    /// One OS reader thread per accepted connection plus a polling
    /// accept loop — simple, but at N connections it costs N mostly-idle
    /// threads. The historical default; every committed `results/` file
    /// was produced on it.
    #[default]
    Threads,
    /// One epoll-driven reactor thread owns the listener and every
    /// accepted socket, feeding the same shared dispatch pool
    /// ([`RpcConfig::server_workers`]); server thread count stays
    /// constant regardless of connection count.
    Reactor,
}

impl ServerMode {
    fn as_str(self) -> &'static str {
        match self {
            ServerMode::Threads => "threads",
            ServerMode::Reactor => "reactor",
        }
    }

    /// Parses the `--server-mode` flag spelling.
    ///
    /// # Errors
    /// A message naming the accepted spellings.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s {
            "threads" => Ok(ServerMode::Threads),
            "reactor" => Ok(ServerMode::Reactor),
            other => Err(format!("unknown server mode {other:?} (threads|reactor)")),
        }
    }

    /// The deployment default, honoring the `ATOMIO_REACTOR=1`
    /// environment switch (same pattern as `ATOMIO_DISK=1` for storage
    /// backends): the equivalence suites rerun their full workloads on
    /// the reactor front-end without editing any `RpcServer::start`
    /// call site.
    pub fn from_env() -> Self {
        match std::env::var("ATOMIO_REACTOR") {
            Ok(v) if v == "1" => ServerMode::Reactor,
            _ => ServerMode::Threads,
        }
    }
}

impl std::fmt::Display for ServerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// The vendored derive handles only named-field structs, so the enum's
// wire form (its flag spelling) is hand-written.
impl Serialize for ServerMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for ServerMode {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Self::parse(s).map_err(serde::DeError::new),
            // Configs serialized before the reactor existed carry no
            // mode field; they keep the historical front-end.
            serde::Value::Null => Ok(ServerMode::Threads),
            other => Err(serde::DeError::expected("server mode string", other)),
        }
    }
}

/// Tuning knobs for the socket transports and the server-side
/// dispatcher, shared by [`TcpTransport`] and [`MuxTransport`] and
/// plumbed through the server binaries' CLI flags. Serde-able so a
/// deployment can ship it inside a config file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RpcConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Per-call response deadline: the socket read timeout for the
    /// per-call transport, the completion-wait deadline for mux calls.
    pub read_timeout: Duration,
    /// Socket write timeout (clients and server response writers).
    pub write_timeout: Duration,
    /// Connect attempts beyond the first before giving up.
    pub connect_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff: Duration,
    /// Mux pool size: persistent connections per endpoint.
    pub pool_conns: usize,
    /// Concurrent streams a mux pool member carries before the next
    /// call engages the next pool slot. First-fit with this cap keeps
    /// traffic concentrated (big write/dispatch bursts) at low
    /// concurrency and spreads across the pool as callers grow.
    pub mux_streams_per_conn: usize,
    /// Size of the server's shared dispatch worker pool.
    pub server_workers: usize,
    /// Socket front-end strategy ([`ServerMode::Threads`] per-connection
    /// reader threads, or one [`ServerMode::Reactor`] epoll thread).
    pub server_mode: ServerMode,
    /// Admission cap: connections beyond this are accepted, answered
    /// with a typed [`crate::proto::Response::Busy`], and closed —
    /// instead of hanging in the backlog or resetting.
    pub max_conns: usize,
    /// Backpressure cap: requests one connection may have in dispatch
    /// at once. A connection at the cap has its reads parked (reactor:
    /// `EPOLLIN` unregistered; threads: the reader blocks on the
    /// bounded dispatch channel) until responses drain.
    pub max_inflight_per_conn: usize,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            connect_retries: 3,
            backoff: Duration::from_millis(10),
            pool_conns: 4,
            mux_streams_per_conn: 8,
            server_workers: 4,
            server_mode: ServerMode::from_env(),
            max_conns: 1024,
            max_inflight_per_conn: 64,
        }
    }
}

/// Which socket transport strategy a deployment uses (the E7g ablation
/// knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RpcMode {
    /// One connection per transport handle, strict one-call-per-round-trip
    /// framing: concurrent calls on a shared handle serialize behind a
    /// mutex. The pre-mux behavior, kept as the ablation baseline.
    PerCall,
    /// Multiplexed pool: [`RpcConfig::pool_conns`] persistent
    /// connections, request-id demultiplexing, concurrent callers share
    /// the pool with no head-of-line blocking. The default for socket
    /// deployments.
    #[default]
    Mux,
}

/// Builds the socket transport for `addr` in the given mode, publishing
/// per-RPC counters into `metrics` when provided.
pub fn dial(
    addr: SocketAddr,
    mode: RpcMode,
    cfg: RpcConfig,
    metrics: Option<Metrics>,
) -> Arc<dyn Transport> {
    match mode {
        RpcMode::PerCall => {
            let t = TcpTransport::with_config(addr, cfg);
            Arc::new(match metrics {
                Some(m) => t.with_metrics(m),
                None => t,
            })
        }
        RpcMode::Mux => {
            let t = MuxTransport::with_config(addr, cfg);
            Arc::new(match metrics {
                Some(m) => t.with_metrics(m),
                None => t,
            })
        }
    }
}

/// In-process transport that still exercises the full wire codec: every
/// call encodes the request to bytes, decodes it back, dispatches to the
/// service, and round-trips the response the same way. Anything that
/// works over [`Loopback`] is wire-representable by construction, and
/// the byte counters it publishes match the socket transports exactly
/// (request ids are fixed-width, so the totals are id-independent).
#[derive(Debug)]
pub struct Loopback {
    service: Arc<dyn Service>,
    metrics: Option<Metrics>,
    next_id: AtomicU64,
}

impl Clone for Loopback {
    fn clone(&self) -> Self {
        Loopback {
            service: Arc::clone(&self.service),
            metrics: self.metrics.clone(),
            next_id: AtomicU64::new(self.next_id.load(Ordering::Relaxed)),
        }
    }
}

impl Loopback {
    /// Wraps a service.
    pub fn new(service: Arc<dyn Service>) -> Self {
        Loopback {
            service,
            metrics: None,
            next_id: AtomicU64::new(0),
        }
    }

    /// Publishes per-RPC counters into `metrics`.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

impl Transport for Loopback {
    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        // Encode → decode the request through the real codec.
        let mut frame = Vec::new();
        let tx = wire::write_frame(&mut frame, id, &request.to_value(), payload)
            .map_err(|e| protocol_error("encode request", &e))?;
        let (id_back, header, body, _) = wire::read_frame(&mut frame.as_slice())
            .map_err(|e| protocol_error("decode request", &e))?;
        let request = Request::from_value(&header)
            .map_err(|e| protocol_error("parse request", &io::Error::other(e.to_string())))?;

        let (response, out) = self.service.handle(request, body);

        // And the response back out the same way, tagged with the same id.
        let mut frame = Vec::new();
        let rx = wire::write_frame(&mut frame, id_back, &response.to_value(), &out)
            .map_err(|e| protocol_error("encode response", &e))?;
        let (_, header, body, _) = wire::read_frame(&mut frame.as_slice())
            .map_err(|e| protocol_error("decode response", &e))?;
        let response = Response::from_value(&header)
            .map_err(|e| protocol_error("parse response", &io::Error::other(e.to_string())))?;
        record(&self.metrics, tx, rx);
        Ok((response, body))
    }
}

/// Dials `addr` with bounded retry and doubling backoff; on success the
/// stream has `TCP_NODELAY` set. Connect attempts beyond the first are
/// counted on [`counters::RETRIES`].
fn dial_socket(addr: SocketAddr, cfg: &RpcConfig, metrics: &Option<Metrics>) -> Result<TcpStream> {
    let mut backoff = cfg.backoff;
    let mut last = None;
    for attempt in 0..=cfg.connect_retries {
        if attempt > 0 {
            if let Some(m) = metrics {
                m.counter(counters::RETRIES).inc();
            }
            std::thread::sleep(backoff);
            backoff *= 2;
        }
        match TcpStream::connect_timeout(&addr, cfg.connect_timeout) {
            Ok(stream) => {
                stream
                    .set_nodelay(true)
                    .map_err(|e| transport_error("configure socket", &e))?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    let e = last.expect("at least one connect attempt");
    Err(transport_error(
        &format!(
            "connect to {addr} failed after {} attempts",
            cfg.connect_retries + 1
        ),
        &e,
    ))
}

/// A framed RPC connection to one server over real TCP with strict
/// per-call framing.
///
/// One stream per transport, guarded by a mutex: calls on the same handle
/// serialize — exactly the head-of-line blocking [`MuxTransport`]
/// removes, kept as the [`RpcMode::PerCall`] ablation arm. A failed call
/// drops the connection; the next call redials.
#[derive(Debug)]
pub struct TcpTransport {
    addr: SocketAddr,
    cfg: RpcConfig,
    conn: Mutex<Option<TcpStream>>,
    next_id: AtomicU64,
    metrics: Option<Metrics>,
}

impl TcpTransport {
    /// Creates a lazy connection to `addr` (dialed on first call).
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_config(addr, RpcConfig::default())
    }

    /// Creates a lazy connection with explicit tuning.
    pub fn with_config(addr: SocketAddr, cfg: RpcConfig) -> Self {
        TcpTransport {
            addr,
            cfg,
            conn: Mutex::new(None),
            next_id: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Publishes per-RPC counters into `metrics`.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The server address this transport dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn connect(&self) -> Result<TcpStream> {
        let stream = dial_socket(self.addr, &self.cfg, &self.metrics)?;
        stream
            .set_read_timeout(Some(self.cfg.read_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.cfg.write_timeout)))
            .map_err(|e| transport_error("configure socket", &e))?;
        Ok(stream)
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(self.connect()?);
        }
        let stream = guard.as_mut().expect("connection established above");

        let round_trip = (|| -> io::Result<(Response, Bytes, u64, u64)> {
            let tx = wire::write_frame(stream, id, &request.to_value(), payload)?;
            let (id_back, header, body, rx) = wire::read_frame(stream)?;
            if id_back != id {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response for request {id_back} on a call awaiting {id}"),
                ));
            }
            let response = Response::from_value(&header)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            Ok((response, body, tx, rx))
        })();

        match round_trip {
            Ok((response, body, tx, rx)) => {
                record(&self.metrics, tx, rx);
                Ok((response, body))
            }
            Err(e) => {
                // Drop the stream: a half-consumed frame poisons framing.
                *guard = None;
                Err(transport_error(&format!("rpc to {}", self.addr), &e))
            }
        }
    }
}

/// The slot one in-flight mux call waits on. `std` primitives rather
/// than `parking_lot` because the waiter needs a timed wait.
#[derive(Debug, Default)]
struct CallSlot {
    /// `(response, body, response frame bytes)` or the typed failure.
    outcome: std::sync::Mutex<Option<Result<(Response, Bytes, u64)>>>,
    ready: std::sync::Condvar,
}

impl CallSlot {
    fn fill(&self, outcome: Result<(Response, Bytes, u64)>) {
        let mut guard = self.outcome.lock().expect("call slot poisoned");
        *guard = Some(outcome);
        self.ready.notify_all();
    }
}

/// One pool member: a socket with a group-commit write queue and a
/// reader thread that routes response frames to [`CallSlot`]s by id.
#[derive(Debug)]
struct MuxConn {
    /// Shutdown handle (severs both halves; reader and writers wake).
    stream: TcpStream,
    /// Write half, held by the current flush leader.
    writer: Mutex<TcpStream>,
    /// Encoded frames awaiting flush (each append is one whole frame).
    wqueue: Mutex<Vec<u8>>,
    /// In-flight calls by request id.
    pending: Mutex<HashMap<u64, Arc<CallSlot>>>,
    /// Set once the connection failed; the pool slot redials on next use.
    dead: AtomicBool,
}

impl MuxConn {
    /// Marks the connection dead and fails every in-flight call with
    /// `error`. Calls on other pool members are unaffected.
    fn poison(&self, error: &Error) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        for (_, slot) in self.pending.lock().drain() {
            slot.fill(Err(error.clone()));
        }
    }

    /// Group-commit transmit: appends one encoded frame to the queue,
    /// then whoever wins the writer lock flushes the whole queue in a
    /// single write. Under concurrency most callers only enqueue —
    /// one leader's syscall carries a burst of frames.
    ///
    /// `Ok(())` means the frame is flushed or a current leader is
    /// obligated to flush it: a leader drains until the queue is empty,
    /// and after bouncing off `try_lock` the releaser re-checks, so a
    /// frame enqueued in the race window is never stranded.
    fn enqueue_and_flush(&self, frame: &[u8]) -> io::Result<()> {
        self.wqueue.lock().extend_from_slice(frame);
        loop {
            let Some(mut w) = self.writer.try_lock() else {
                return Ok(());
            };
            let batch = std::mem::take(&mut *self.wqueue.lock());
            if batch.is_empty() {
                return Ok(());
            }
            let result = io::Write::write_all(&mut *w, &batch);
            drop(w);
            result?;
            // Loop: a frame may have been enqueued while we held the
            // lock, and its caller bounced off try_lock relying on us.
        }
    }
}

/// Demultiplexes response frames into the pending calls' slots until the
/// connection dies; a connection failure fails exactly the calls in
/// flight on this socket.
fn mux_reader_loop(stream: TcpStream, conn: Arc<MuxConn>, addr: SocketAddr) {
    // Buffered: with several calls in flight, response frames arrive
    // back-to-back and one read syscall drains many of them.
    let mut stream = std::io::BufReader::with_capacity(128 * 1024, stream);
    loop {
        match wire::read_frame(&mut stream) {
            Ok((id, header, body, rx)) => {
                // A missing entry is a call that timed out and left; the
                // late response is dropped on the floor.
                if let Some(slot) = conn.pending.lock().remove(&id) {
                    let outcome = match Response::from_value(&header) {
                        Ok(response) => Ok((response, body, rx)),
                        // The frame was well-formed, only the header did
                        // not parse as a response: fail this call, keep
                        // the connection (framing is intact).
                        Err(e) => Err(Error::Transport {
                            kind: TransportErrorKind::Protocol,
                            detail: format!("rpc to {addr}: undecodable response: {e}"),
                        }),
                    };
                    slot.fill(outcome);
                }
            }
            Err(e) => {
                conn.poison(&transport_error(&format!("rpc to {addr}"), &e));
                return;
            }
        }
    }
}

/// A multiplexed transport: a pool of persistent connections to one
/// endpoint, shared by any number of concurrent callers.
///
/// Each call reserves a pool member — first-fit under a per-member
/// stream cap ([`RpcConfig::mux_streams_per_conn`]), so traffic stays
/// concentrated in large bursts until concurrency actually needs more
/// sockets — registers a wakeup slot under a fresh request id, enqueues
/// its frame on that member's write queue, and sleeps until the
/// member's reader thread delivers the response matching its id: M
/// callers keep up to M requests in flight over at most N sockets with
/// no head-of-line blocking. Responses are matched by id, never by
/// arrival order: ordering is guaranteed **per id only**.
///
/// A connection failure fails exactly the calls in flight on that
/// socket (typed [`Error::Transport`], feeding the provider manager's
/// failover); the slot redials on next use and the surviving pool
/// members never notice.
#[derive(Debug)]
pub struct MuxTransport {
    addr: SocketAddr,
    cfg: RpcConfig,
    metrics: Option<Metrics>,
    /// Pool slots, each lazily holding a live connection.
    slots: Vec<Mutex<Option<Arc<MuxConn>>>>,
    /// Calls currently in flight per slot (drives first-fit selection).
    slot_inflight: Vec<AtomicU64>,
    next_slot: AtomicUsize,
    next_id: AtomicU64,
    inflight: AtomicU64,
}

impl MuxTransport {
    /// Creates a lazy pool for `addr` (members dial on first use).
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_config(addr, RpcConfig::default())
    }

    /// Creates a lazy pool with explicit tuning.
    pub fn with_config(addr: SocketAddr, cfg: RpcConfig) -> Self {
        let pool = cfg.pool_conns.max(1);
        MuxTransport {
            addr,
            cfg,
            metrics: None,
            slots: (0..pool).map(|_| Mutex::new(None)).collect(),
            slot_inflight: (0..pool).map(|_| AtomicU64::new(0)).collect(),
            next_slot: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
        }
    }

    /// Publishes per-RPC counters into `metrics`.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The server address this transport dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of pool slots.
    pub fn pool_size(&self) -> usize {
        self.slots.len()
    }

    /// Test hook: severs pool connection `i`'s socket if it is dialed.
    /// In-flight calls on that member fail with a typed transport error;
    /// the slot redials on next use.
    pub fn sever_conn(&self, i: usize) {
        if let Some(conn) = self.slots[i].lock().as_ref() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Reserves a pool slot for one call: first-fit over the slots,
    /// skipping members already carrying
    /// [`RpcConfig::mux_streams_per_conn`] streams. Concentrating calls
    /// on the lowest busy slot keeps write/dispatch bursts large (one
    /// syscall carries many frames) while extra members soak up higher
    /// concurrency. Reservation is a `fetch_add` so two racing callers
    /// can never both squeeze under a slot's cap. When every member is
    /// saturated, calls overflow round-robin across the whole pool.
    fn reserve_slot(&self) -> usize {
        let cap = self.cfg.mux_streams_per_conn.max(1) as u64;
        for (i, streams) in self.slot_inflight.iter().enumerate() {
            if streams.fetch_add(1, Ordering::AcqRel) < cap {
                return i;
            }
            streams.fetch_sub(1, Ordering::AcqRel);
        }
        let i = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        self.slot_inflight[i].fetch_add(1, Ordering::AcqRel);
        i
    }

    /// Returns the live connection in slot `i`, dialing if the slot is
    /// empty or its previous tenant died.
    fn conn_at(&self, i: usize) -> Result<Arc<MuxConn>> {
        let mut slot = self.slots[i].lock();
        if let Some(conn) = slot.as_ref() {
            if !conn.dead.load(Ordering::Acquire) {
                return Ok(Arc::clone(conn));
            }
        }
        let stream = dial_socket(self.addr, &self.cfg, &self.metrics)?;
        // No socket read timeout: the reader blocks on the shared stream
        // indefinitely (per-call deadlines live in the waiters), but
        // writes must not wedge the whole pool member.
        stream
            .set_write_timeout(Some(self.cfg.write_timeout))
            .map_err(|e| transport_error("configure socket", &e))?;
        let writer = stream
            .try_clone()
            .map_err(|e| transport_error("clone socket", &e))?;
        let reader = stream
            .try_clone()
            .map_err(|e| transport_error("clone socket", &e))?;
        let conn = Arc::new(MuxConn {
            stream,
            writer: Mutex::new(writer),
            wqueue: Mutex::new(Vec::new()),
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
        });
        let addr = self.addr;
        let reader_conn = Arc::clone(&conn);
        std::thread::spawn(move || mux_reader_loop(reader, reader_conn, addr));
        if let Some(m) = &self.metrics {
            m.counter(counters::POOL_CONNS).inc();
        }
        *slot = Some(Arc::clone(&conn));
        Ok(conn)
    }
}

impl Transport for MuxTransport {
    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let slot_idx = self.reserve_slot();
        let conn = match self.conn_at(slot_idx) {
            Ok(conn) => conn,
            Err(e) => {
                self.slot_inflight[slot_idx].fetch_sub(1, Ordering::AcqRel);
                return Err(e);
            }
        };

        let call = Arc::new(CallSlot::default());
        conn.pending.lock().insert(id, Arc::clone(&call));
        let depth = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(m) = &self.metrics {
            m.counter(counters::INFLIGHT_PEAK).record_peak(depth);
        }
        // Every exit below must release the in-flight slot exactly once.
        let release = |this: &Self| {
            this.inflight.fetch_sub(1, Ordering::Relaxed);
            this.slot_inflight[slot_idx].fetch_sub(1, Ordering::AcqRel);
        };

        // Encode off-lock, then enqueue on the pool member's write queue
        // (the flush leader puts a whole burst on the wire at once).
        let enqueued = Instant::now();
        let mut frame = Vec::with_capacity(64 + payload.len());
        let wrote = wire::write_frame(&mut frame, id, &request.to_value(), payload)
            .and_then(|tx| conn.enqueue_and_flush(&frame).map(|()| tx));
        if let Some(m) = &self.metrics {
            m.counter(counters::MUX_QUEUE_TIME)
                .add(enqueued.elapsed().as_nanos() as u64);
        }
        let tx = match wrote {
            Ok(tx) => tx,
            Err(e) => {
                // The reader may have poisoned the connection first (its
                // shutdown is what interrupted this write) and already
                // failed this call with the root cause — e.g. a version
                // mismatch. Prefer that over the secondary write error.
                if let Some(result) = call.outcome.lock().expect("call slot poisoned").take() {
                    release(self);
                    return result.map(|(response, body, _)| (response, body));
                }
                conn.pending.lock().remove(&id);
                let error = transport_error(&format!("rpc to {}", self.addr), &e);
                // A half-written frame poisons the stream for everyone
                // behind it: fail the whole connection, not just us.
                conn.poison(&error);
                release(self);
                return Err(error);
            }
        };

        // Sleep until the reader delivers our id (or the deadline hits).
        let deadline = Instant::now() + self.cfg.read_timeout;
        let mut outcome = call.outcome.lock().expect("call slot poisoned");
        loop {
            if let Some(result) = outcome.take() {
                release(self);
                return result.map(|(response, body, rx)| {
                    record(&self.metrics, tx, rx);
                    (response, body)
                });
            }
            let now = Instant::now();
            if now >= deadline {
                conn.pending.lock().remove(&id);
                release(self);
                return Err(Error::Transport {
                    kind: TransportErrorKind::Timeout,
                    detail: format!(
                        "rpc to {} timed out after {:?} (request {id})",
                        self.addr, self.cfg.read_timeout
                    ),
                });
            }
            let (guard, _) = call
                .ready
                .wait_timeout(outcome, deadline - now)
                .expect("call slot poisoned");
            outcome = guard;
        }
    }
}

fn kind_of(e: &io::Error) -> TransportErrorKind {
    use io::ErrorKind::*;
    match e.kind() {
        TimedOut | WouldBlock => TransportErrorKind::Timeout,
        ConnectionRefused => TransportErrorKind::ConnectionRefused,
        ConnectionReset | ConnectionAborted | BrokenPipe | UnexpectedEof | NotConnected => {
            TransportErrorKind::ConnectionReset
        }
        // The frame reader flags a peer speaking another protocol
        // version with Unsupported (see `wire`).
        Unsupported => TransportErrorKind::VersionMismatch,
        _ => TransportErrorKind::Protocol,
    }
}

fn transport_error(context: &str, e: &io::Error) -> Error {
    Error::Transport {
        kind: kind_of(e),
        detail: format!("{context}: {e}"),
    }
}

fn protocol_error(context: &str, e: &io::Error) -> Error {
    Error::Transport {
        kind: TransportErrorKind::Protocol,
        detail: format!("{context}: {e}"),
    }
}

/// Unwraps a [`Response::Fail`] into the carried error; a
/// [`Response::Busy`] becomes the typed admission error; any other
/// unexpected variant becomes a protocol error naming `wanted`.
pub(crate) fn unexpected(wanted: &str, response: Response) -> Error {
    match response {
        Response::Fail { error } => error,
        Response::Busy { active, max_conns } => Error::AdmissionRejected { active, max_conns },
        other => Error::Transport {
            kind: TransportErrorKind::Protocol,
            detail: format!("expected {wanted}, got {other:?}"),
        },
    }
}
