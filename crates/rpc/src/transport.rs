//! Pluggable client-side transports.
//!
//! A [`Transport`] moves one encoded request to a service and brings the
//! response back. Two implementations:
//!
//! * [`Loopback`] — in-process: the frame is encoded and decoded through
//!   the full wire codec, then handed to the [`Service`] directly. No
//!   sockets, no real latency — the default deployment, and the one every
//!   committed benchmark result was produced on.
//! * [`TcpTransport`] — real `std::net` sockets with per-call framing,
//!   read/write timeouts, and bounded connect retry with doubling
//!   backoff. Mid-call failures are **not** silently retried (the ops are
//!   not all idempotent); they surface as typed [`Error::Transport`]
//!   values so the provider manager's failover policy decides.

use crate::proto::{Request, Response};
use crate::server::Service;
use crate::wire;
use atomio_simgrid::Metrics;
use atomio_types::{Error, Result, TransportErrorKind};
use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Moves one request/payload pair to a service, returns its response.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Performs one RPC round trip.
    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)>;
}

/// Counter names the transports publish into a [`Metrics`] registry.
pub mod counters {
    /// Round trips performed.
    pub const MESSAGES: &str = "rpc.messages";
    /// Bytes put on the wire (requests).
    pub const BYTES_TX: &str = "rpc.bytes_tx";
    /// Bytes read off the wire (responses).
    pub const BYTES_RX: &str = "rpc.bytes_rx";
    /// Connect attempts beyond the first.
    pub const RETRIES: &str = "rpc.retries";
}

fn record(metrics: &Option<Metrics>, tx: u64, rx: u64) {
    if let Some(m) = metrics {
        m.counter(counters::MESSAGES).inc();
        m.counter(counters::BYTES_TX).add(tx);
        m.counter(counters::BYTES_RX).add(rx);
    }
}

/// In-process transport that still exercises the full wire codec: every
/// call encodes the request to bytes, decodes it back, dispatches to the
/// service, and round-trips the response the same way. Anything that
/// works over [`Loopback`] is wire-representable by construction.
#[derive(Debug, Clone)]
pub struct Loopback {
    service: Arc<dyn Service>,
    metrics: Option<Metrics>,
}

impl Loopback {
    /// Wraps a service.
    pub fn new(service: Arc<dyn Service>) -> Self {
        Loopback {
            service,
            metrics: None,
        }
    }

    /// Publishes per-RPC counters into `metrics`.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

impl Transport for Loopback {
    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)> {
        // Encode → decode the request through the real codec.
        let mut frame = Vec::new();
        let tx = wire::write_frame(&mut frame, &request.to_value(), payload)
            .map_err(|e| protocol_error("encode request", &e))?;
        let (header, body, _) = wire::read_frame(&mut frame.as_slice())
            .map_err(|e| protocol_error("decode request", &e))?;
        let request = Request::from_value(&header)
            .map_err(|e| protocol_error("parse request", &io::Error::other(e.to_string())))?;

        let (response, out) = self.service.handle(request, body);

        // And the response back out the same way.
        let mut frame = Vec::new();
        let rx = wire::write_frame(&mut frame, &response.to_value(), &out)
            .map_err(|e| protocol_error("encode response", &e))?;
        let (header, body, _) = wire::read_frame(&mut frame.as_slice())
            .map_err(|e| protocol_error("decode response", &e))?;
        let response = Response::from_value(&header)
            .map_err(|e| protocol_error("parse response", &io::Error::other(e.to_string())))?;
        record(&self.metrics, tx, rx);
        Ok((response, body))
    }
}

/// Tuning knobs for [`TcpTransport`].
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout (one frame must arrive within this).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Connect attempts beyond the first before giving up.
    pub connect_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            connect_retries: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

/// A framed RPC connection to one server over real TCP.
///
/// One stream per transport, guarded by a mutex: calls on the same handle
/// serialize (clients that want parallelism hold one transport per
/// actor). A failed call drops the connection; the next call redials.
#[derive(Debug)]
pub struct TcpTransport {
    addr: SocketAddr,
    cfg: TcpConfig,
    conn: Mutex<Option<TcpStream>>,
    metrics: Option<Metrics>,
}

impl TcpTransport {
    /// Creates a lazy connection to `addr` (dialed on first call).
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_config(addr, TcpConfig::default())
    }

    /// Creates a lazy connection with explicit tuning.
    pub fn with_config(addr: SocketAddr, cfg: TcpConfig) -> Self {
        TcpTransport {
            addr,
            cfg,
            conn: Mutex::new(None),
            metrics: None,
        }
    }

    /// Publishes per-RPC counters into `metrics`.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The server address this transport dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn connect(&self) -> Result<TcpStream> {
        let mut backoff = self.cfg.backoff;
        let mut last = None;
        for attempt in 0..=self.cfg.connect_retries {
            if attempt > 0 {
                if let Some(m) = &self.metrics {
                    m.counter(counters::RETRIES).inc();
                }
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            match TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout) {
                Ok(stream) => {
                    stream
                        .set_nodelay(true)
                        .and_then(|()| stream.set_read_timeout(Some(self.cfg.read_timeout)))
                        .and_then(|()| stream.set_write_timeout(Some(self.cfg.write_timeout)))
                        .map_err(|e| transport_error("configure socket", &e))?;
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        let e = last.expect("at least one connect attempt");
        Err(transport_error(
            &format!(
                "connect to {} failed after {} attempts",
                self.addr,
                self.cfg.connect_retries + 1
            ),
            &e,
        ))
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &Request, payload: &[u8]) -> Result<(Response, Bytes)> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(self.connect()?);
        }
        let stream = guard.as_mut().expect("connection established above");

        let round_trip = (|| -> io::Result<(Response, Bytes, u64, u64)> {
            let tx = wire::write_frame(stream, &request.to_value(), payload)?;
            let (header, body, rx) = wire::read_frame(stream)?;
            let response = Response::from_value(&header)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            Ok((response, body, tx, rx))
        })();

        match round_trip {
            Ok((response, body, tx, rx)) => {
                record(&self.metrics, tx, rx);
                Ok((response, body))
            }
            Err(e) => {
                // Drop the stream: a half-consumed frame poisons framing.
                *guard = None;
                Err(transport_error(&format!("rpc to {}", self.addr), &e))
            }
        }
    }
}

fn kind_of(e: &io::Error) -> TransportErrorKind {
    use io::ErrorKind::*;
    match e.kind() {
        TimedOut | WouldBlock => TransportErrorKind::Timeout,
        ConnectionRefused => TransportErrorKind::ConnectionRefused,
        ConnectionReset | ConnectionAborted | BrokenPipe | UnexpectedEof | NotConnected => {
            TransportErrorKind::ConnectionReset
        }
        _ => TransportErrorKind::Protocol,
    }
}

fn transport_error(context: &str, e: &io::Error) -> Error {
    Error::Transport {
        kind: kind_of(e),
        detail: format!("{context}: {e}"),
    }
}

fn protocol_error(context: &str, e: &io::Error) -> Error {
    Error::Transport {
        kind: TransportErrorKind::Protocol,
        detail: format!("{context}: {e}"),
    }
}

/// Unwraps a [`Response::Fail`] into the carried error; any other
/// unexpected variant becomes a protocol error naming `wanted`.
pub(crate) fn unexpected(wanted: &str, response: Response) -> Error {
    match response {
        Response::Fail { error } => error,
        other => Error::Transport {
            kind: TransportErrorKind::Protocol,
            detail: format!("expected {wanted}, got {other:?}"),
        },
    }
}
