//! The wire protocol: request and response headers.
//!
//! Every message is encoded as a tagged object — `{"t": "VariantName",
//! ...fields}` — in the frame header; chunk payloads ride the frame's
//! out-of-band payload section (see [`crate::wire`]). The vendored serde
//! derive cannot express enums, so both enums carry hand-written
//! [`Serialize`]/[`Deserialize`] impls; unknown tags decode to an error
//! instead of panicking, so protocol skew fails a single call, not the
//! process.

use atomio_core::SlotMap;
use atomio_meta::{Node, NodeKey, WriteSummary};
use atomio_types::{ByteRange, ChunkId, Error, ProviderId, Result, RetentionPolicy, VersionId};
use atomio_version::{GcFloor, LeaseGrant, SnapshotRecord, Ticket, VersionExport};
use serde::{DeError, Deserialize, Serialize, Value};

/// Version tag carried by every frame (see [`crate::wire`]).
///
/// * **v1** — length-prefixed frames with strict one-call-per-round-trip
///   framing; no frame could be attributed to a call, so connections
///   were single-flight by construction.
/// * **v2** — adds a `request_id` to the frame prefix so responses can
///   be demultiplexed out of order on a shared connection (the mux
///   transport and the concurrent server dispatcher need it), and this
///   leading version byte so skewed peers are rejected with a typed
///   `TransportErrorKind::VersionMismatch` error instead of decoding
///   garbage.
///
/// Peers must match exactly: the frame reader rejects any other value
/// before decoding a single header byte.
pub const PROTOCOL_VERSION: u8 = 2;

/// One RPC request. Data-provider ops carry the target provider id so a
/// single server process can host a whole fleet; `arrival` carries the
/// client's virtual-time booking instant through to the server's
/// reservation API (servers run a zero-cost model, so it echoes back
/// unchanged and real sockets supply the real latency).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Store one chunk; frame payload = the chunk bytes.
    PutChunk {
        /// Target provider.
        provider: ProviderId,
        /// Virtual-time instant the first payload byte arrives.
        arrival: u64,
        /// The chunk id to store under.
        chunk: ChunkId,
    },
    /// Store a batch of chunks in one frame (the wire form of List-I/O
    /// aggregation); frame payload = concatenated chunk bytes, split by
    /// the `items` lengths in order.
    PutChunkBatch {
        /// Target provider.
        provider: ProviderId,
        /// Virtual-time arrival of the batch.
        arrival: u64,
        /// `(chunk id, payload length)` per item, in payload order.
        items: Vec<(ChunkId, u64)>,
    },
    /// Fetch a whole chunk.
    GetChunk {
        /// Target provider.
        provider: ProviderId,
        /// Virtual-time arrival.
        arrival: u64,
        /// The chunk to fetch.
        chunk: ChunkId,
    },
    /// Fetch a sub-range of a chunk.
    GetChunkRange {
        /// Target provider.
        provider: ProviderId,
        /// Virtual-time arrival.
        arrival: u64,
        /// The chunk to read.
        chunk: ChunkId,
        /// The sub-range to read.
        range: ByteRange,
    },
    /// Fetch a batch of chunk ranges in one frame.
    GetChunkRangeBatch {
        /// Target provider.
        provider: ProviderId,
        /// Virtual-time arrival of the batch.
        arrival: u64,
        /// `(chunk, range)` per item.
        items: Vec<(ChunkId, ByteRange)>,
    },
    /// Presence probe (no cost charged).
    ProviderHasChunk {
        /// Target provider.
        provider: ProviderId,
        /// The chunk to probe.
        chunk: ChunkId,
    },
    /// Number of chunks held.
    ProviderChunkCount {
        /// Target provider.
        provider: ProviderId,
    },
    /// Total payload bytes held.
    ProviderBytesStored {
        /// Target provider.
        provider: ProviderId,
    },
    /// Delete a chunk (GC), returning bytes reclaimed.
    ProviderEvictChunk {
        /// Target provider.
        provider: ProviderId,
        /// The chunk to delete.
        chunk: ChunkId,
    },
    /// Ingest-time checksum lookup.
    ProviderChecksumOf {
        /// Target provider.
        provider: ProviderId,
        /// The chunk to look up.
        chunk: ChunkId,
    },
    /// Delete a batch of chunks in one frame (the GC sweep's wire
    /// form), returning total bytes reclaimed.
    ProviderEvictBatch {
        /// Target provider.
        provider: ProviderId,
        /// The chunks to delete.
        chunks: Vec<ChunkId>,
    },
    /// Bit-rot injection hook (integrity tests).
    ProviderCorruptChunk {
        /// Target provider.
        provider: ProviderId,
        /// The chunk to corrupt.
        chunk: ChunkId,
        /// Byte offset to flip.
        byte: u64,
    },
    /// Install a batch of tree nodes.
    MetaPutBatch {
        /// The nodes to install.
        nodes: Vec<Node>,
    },
    /// Fetch a batch of tree nodes.
    MetaGetBatch {
        /// The keys to fetch.
        keys: Vec<NodeKey>,
    },
    /// Presence probe for one node.
    MetaContains {
        /// The key to probe.
        key: NodeKey,
    },
    /// Total nodes stored across shards.
    MetaNodeCount,
    /// Delete one node (GC).
    MetaEvict {
        /// The key to delete.
        key: NodeKey,
    },
    /// Delete a batch of nodes in one frame (GC sweep), returning the
    /// number actually evicted.
    MetaEvictBatch {
        /// The keys to delete.
        keys: Vec<NodeKey>,
    },
    /// Every stored key (test/GC support).
    MetaListKeys,
    /// Issue a write ticket for an explicit extent list. `known` is the
    /// client's mirrored history length; the grant carries the summary
    /// delta since then.
    VmTicket {
        /// The blob the ticket is for.
        blob: u64,
        /// The extents the write covers (encoded inline).
        extents: atomio_types::ExtentList,
        /// Client's known history row count.
        known: u64,
    },
    /// Issue an append ticket for `len` bytes at end-of-blob.
    VmTicketAppend {
        /// The blob the ticket is for.
        blob: u64,
        /// Appended byte count.
        len: u64,
        /// Client's known history row count.
        known: u64,
    },
    /// Publish a built snapshot.
    VmPublish {
        /// The blob being published.
        blob: u64,
        /// The ticket being redeemed.
        ticket: Ticket,
        /// Root node of the built tree.
        root: NodeKey,
    },
    /// Non-blocking publication probe.
    VmIsPublished {
        /// The blob to probe.
        blob: u64,
        /// The version to probe.
        version: VersionId,
    },
    /// The latest published snapshot record.
    VmLatest {
        /// The blob to query.
        blob: u64,
    },
    /// A specific published snapshot record.
    VmSnapshot {
        /// The blob to query.
        blob: u64,
        /// The version to query.
        version: VersionId,
    },
    /// Set the blob's retention policy.
    VmSetRetention {
        /// The blob to configure.
        blob: u64,
        /// How much history collection must preserve.
        policy: RetentionPolicy,
    },
    /// Acquire a time-bounded snapshot lease.
    VmLeaseAcquire {
        /// The blob to lease on.
        blob: u64,
        /// The published version to pin.
        version: VersionId,
        /// Lease TTL in server-clock milliseconds.
        ttl_ms: u64,
    },
    /// Extend a live lease.
    VmLeaseRenew {
        /// The blob the lease is on.
        blob: u64,
        /// The lease to extend.
        lease: u64,
        /// New TTL from now, in milliseconds.
        ttl_ms: u64,
    },
    /// Release a lease (idempotent).
    VmLeaseRelease {
        /// The blob the lease is on.
        blob: u64,
        /// The lease to release.
        lease: u64,
    },
    /// The manager-side reclamation floor plus lease gauges.
    VmGcFloor {
        /// The blob to query.
        blob: u64,
    },
    /// The server's current slot map (clients refetch on
    /// [`Error::WrongShard`]).
    SlotMapGet,
    /// Install a new slot map (epoch must not regress).
    SlotMapInstall {
        /// The map to install.
        map: SlotMap,
    },
    /// Freeze `slots` ahead of a handoff at `epoch`: new tickets in the
    /// frozen slots are refused with [`Error::WrongShard`] carrying
    /// `epoch`, publishes of already-granted tickets still land. The
    /// response is the number of grants still outstanding across the
    /// frozen slots; the coordinator polls until it reaches zero.
    VmFreezeSlots {
        /// The slots being handed off.
        slots: Vec<u16>,
        /// The epoch the reassigned map will carry.
        epoch: u64,
    },
    /// Escalate a freeze to a **seal** ahead of the handoff export:
    /// publishes in the sealed slots are now refused too (typed, at
    /// `epoch`), and the server answers only after every in-flight
    /// publish has landed — so once this RPC returns, the slots' state
    /// is immutable and [`Request::VmExportSlots`] cannot miss a
    /// late-landing version. Seals a slot even if it was never frozen.
    /// The response is the number of grants still outstanding: those
    /// tickets are abandoned, their eventual publishes refused.
    VmSealSlots {
        /// The slots being handed off.
        slots: Vec<u16>,
        /// The epoch the reassigned map will carry.
        epoch: u64,
    },
    /// Export every hosted blob in `slots` (published prefixes plus
    /// retention) for replay on the slots' new owner.
    VmExportSlots {
        /// The slots being handed off.
        slots: Vec<u16>,
    },
    /// Install exported blobs verbatim (the receiving half of a slot
    /// handoff). Idempotent; bypasses the ownership check, because the
    /// importing server does not own the slots until the reassigned map
    /// is installed.
    VmImportBlobs {
        /// The blobs to install.
        blobs: Vec<BlobExport>,
    },
}

/// One blob's state in a slot-handoff export: its published prefix and
/// retention policy, replayed verbatim on the new owner. Leases do not
/// migrate — they lapse by TTL and readers re-acquire on the new shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlobExport {
    /// The blob's raw id.
    pub blob: u64,
    /// The published prefix, dense from version 1.
    pub versions: Vec<VersionExport>,
    /// The blob's retention policy.
    pub retention: RetentionPolicy,
}

impl Request {
    /// The blob a per-blob version-service request targets, if any.
    /// This is the routing key: a slot-routed transport hashes it to a
    /// slot and dials the owning shard; requests without one (provider,
    /// meta, control-plane) are not per-blob and route elsewhere.
    pub fn vm_blob(&self) -> Option<u64> {
        use Request::*;
        match self {
            VmTicket { blob, .. }
            | VmTicketAppend { blob, .. }
            | VmPublish { blob, .. }
            | VmIsPublished { blob, .. }
            | VmLatest { blob }
            | VmSnapshot { blob, .. }
            | VmSetRetention { blob, .. }
            | VmLeaseAcquire { blob, .. }
            | VmLeaseRenew { blob, .. }
            | VmLeaseRelease { blob, .. }
            | VmGcFloor { blob } => Some(*blob),
            _ => None,
        }
    }
}

/// One RPC response. `Fail` carries a full [`Error`] so the remote and
/// in-process call sites surface identical error values.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness ack.
    Pong,
    /// Success with no result value.
    Unit,
    /// A reservation completion instant (puts).
    Done {
        /// Virtual-time completion of the booked transfer.
        done: u64,
    },
    /// Per-item outcomes of a chunk batch put.
    PutBatch {
        /// Completion instant per item, in request order.
        results: Vec<Result<u64>>,
    },
    /// Chunk data; frame payload = the bytes.
    ChunkData {
        /// Virtual-time instant the last byte left the provider.
        sent: u64,
    },
    /// Per-item outcomes of a chunk batch get; frame payload = the
    /// successful items' bytes concatenated in request order.
    ChunkBatch {
        /// `(payload length, sent instant)` per successful item.
        results: Vec<Result<(u64, u64)>>,
    },
    /// A boolean result.
    Flag {
        /// The value.
        value: bool,
    },
    /// A numeric result.
    Count {
        /// The value.
        value: u64,
    },
    /// An optional checksum.
    Checksum {
        /// The stored checksum, if the chunk exists.
        value: Option<u64>,
    },
    /// Per-node outcomes of a metadata batch put.
    NodePuts {
        /// One outcome per node, in request order.
        results: Vec<Result<()>>,
    },
    /// Per-key outcomes of a metadata batch get.
    NodeGets {
        /// One outcome per key, in request order.
        results: Vec<Result<Node>>,
    },
    /// A key listing.
    Keys {
        /// Every stored key.
        keys: Vec<NodeKey>,
    },
    /// A granted write ticket plus the history delta the client is
    /// missing (its mirror absorbs the delta before building metadata).
    TicketGrant {
        /// The issued ticket.
        ticket: Ticket,
        /// The extents assigned to the write.
        extents: atomio_types::ExtentList,
        /// Write summaries the client has not seen yet.
        delta: Vec<WriteSummary>,
    },
    /// A snapshot record.
    Snapshot {
        /// The record.
        record: SnapshotRecord,
    },
    /// A granted (or renewed) snapshot lease.
    Lease {
        /// The grant: id, pinned version, absolute expiry.
        grant: LeaseGrant,
    },
    /// The reclamation floor plus lease gauges.
    GcFloor {
        /// The floor record.
        info: GcFloor,
    },
    /// A slot map (reply to [`Request::SlotMapGet`]).
    SlotMapInfo {
        /// The server's current map.
        map: SlotMap,
    },
    /// The blobs exported from a set of slots (reply to
    /// [`Request::VmExportSlots`]).
    SlotExport {
        /// One record per hosted blob in the requested slots.
        blobs: Vec<BlobExport>,
    },
    /// Admission-control rejection: the server is at its connection cap
    /// (`max_conns`) and answered the connection's first request with
    /// this instead of executing it, then closed the connection.
    /// Clients surface it as [`Error::AdmissionRejected`].
    Busy {
        /// Connections active when the server refused this one.
        active: u64,
        /// The server's connection cap.
        max_conns: u64,
    },
    /// Operation-level failure.
    Fail {
        /// The error, round-tripped losslessly.
        error: Error,
    },
}

fn tagged(tag: &str, mut fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("t".to_string(), Value::Str(tag.to_string()))];
    all.append(&mut fields);
    Value::Object(all)
}

fn field<T: Serialize>(name: &str, v: &T) -> (String, Value) {
    (name.to_string(), v.to_value())
}

fn get<T: Deserialize>(v: &Value, name: &str) -> std::result::Result<T, DeError> {
    T::from_value(v.get_or_null(name))
}

fn result_to_value<T: Serialize>(r: &Result<T>) -> Value {
    match r {
        Ok(v) => tagged("Ok", vec![field("v", v)]),
        Err(e) => tagged("Err", vec![field("e", e)]),
    }
}

fn result_from_value<T: Deserialize>(v: &Value) -> std::result::Result<Result<T>, DeError> {
    match get::<String>(v, "t")?.as_str() {
        "Ok" => Ok(Ok(get(v, "v")?)),
        "Err" => Ok(Err(get(v, "e")?)),
        other => Err(DeError::new(format!("unknown result tag {other:?}"))),
    }
}

fn results_to_value<T: Serialize>(rs: &[Result<T>]) -> Value {
    Value::Array(rs.iter().map(result_to_value).collect())
}

fn results_from_value<T: Deserialize>(v: &Value) -> std::result::Result<Vec<Result<T>>, DeError> {
    match v {
        Value::Array(items) => items.iter().map(result_from_value).collect(),
        other => Err(DeError::expected("array of results", other)),
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        use Request::*;
        match self {
            Ping => tagged("Ping", vec![]),
            PutChunk {
                provider,
                arrival,
                chunk,
            } => tagged(
                "PutChunk",
                vec![
                    field("provider", provider),
                    field("arrival", arrival),
                    field("chunk", chunk),
                ],
            ),
            PutChunkBatch {
                provider,
                arrival,
                items,
            } => tagged(
                "PutChunkBatch",
                vec![
                    field("provider", provider),
                    field("arrival", arrival),
                    field("items", items),
                ],
            ),
            GetChunk {
                provider,
                arrival,
                chunk,
            } => tagged(
                "GetChunk",
                vec![
                    field("provider", provider),
                    field("arrival", arrival),
                    field("chunk", chunk),
                ],
            ),
            GetChunkRange {
                provider,
                arrival,
                chunk,
                range,
            } => tagged(
                "GetChunkRange",
                vec![
                    field("provider", provider),
                    field("arrival", arrival),
                    field("chunk", chunk),
                    field("range", range),
                ],
            ),
            GetChunkRangeBatch {
                provider,
                arrival,
                items,
            } => tagged(
                "GetChunkRangeBatch",
                vec![
                    field("provider", provider),
                    field("arrival", arrival),
                    field("items", items),
                ],
            ),
            ProviderHasChunk { provider, chunk } => tagged(
                "ProviderHasChunk",
                vec![field("provider", provider), field("chunk", chunk)],
            ),
            ProviderChunkCount { provider } => {
                tagged("ProviderChunkCount", vec![field("provider", provider)])
            }
            ProviderBytesStored { provider } => {
                tagged("ProviderBytesStored", vec![field("provider", provider)])
            }
            ProviderEvictChunk { provider, chunk } => tagged(
                "ProviderEvictChunk",
                vec![field("provider", provider), field("chunk", chunk)],
            ),
            ProviderEvictBatch { provider, chunks } => tagged(
                "ProviderEvictBatch",
                vec![field("provider", provider), field("chunks", chunks)],
            ),
            ProviderChecksumOf { provider, chunk } => tagged(
                "ProviderChecksumOf",
                vec![field("provider", provider), field("chunk", chunk)],
            ),
            ProviderCorruptChunk {
                provider,
                chunk,
                byte,
            } => tagged(
                "ProviderCorruptChunk",
                vec![
                    field("provider", provider),
                    field("chunk", chunk),
                    field("byte", byte),
                ],
            ),
            MetaPutBatch { nodes } => tagged("MetaPutBatch", vec![field("nodes", nodes)]),
            MetaGetBatch { keys } => tagged("MetaGetBatch", vec![field("keys", keys)]),
            MetaContains { key } => tagged("MetaContains", vec![field("key", key)]),
            MetaNodeCount => tagged("MetaNodeCount", vec![]),
            MetaEvict { key } => tagged("MetaEvict", vec![field("key", key)]),
            MetaEvictBatch { keys } => tagged("MetaEvictBatch", vec![field("keys", keys)]),
            MetaListKeys => tagged("MetaListKeys", vec![]),
            VmTicket {
                blob,
                extents,
                known,
            } => tagged(
                "VmTicket",
                vec![
                    field("blob", blob),
                    field("extents", extents),
                    field("known", known),
                ],
            ),
            VmTicketAppend { blob, len, known } => tagged(
                "VmTicketAppend",
                vec![
                    field("blob", blob),
                    field("len", len),
                    field("known", known),
                ],
            ),
            VmPublish { blob, ticket, root } => tagged(
                "VmPublish",
                vec![
                    field("blob", blob),
                    field("ticket", ticket),
                    field("root", root),
                ],
            ),
            VmIsPublished { blob, version } => tagged(
                "VmIsPublished",
                vec![field("blob", blob), field("version", version)],
            ),
            VmLatest { blob } => tagged("VmLatest", vec![field("blob", blob)]),
            VmSnapshot { blob, version } => tagged(
                "VmSnapshot",
                vec![field("blob", blob), field("version", version)],
            ),
            VmSetRetention { blob, policy } => tagged(
                "VmSetRetention",
                vec![field("blob", blob), field("policy", policy)],
            ),
            VmLeaseAcquire {
                blob,
                version,
                ttl_ms,
            } => tagged(
                "VmLeaseAcquire",
                vec![
                    field("blob", blob),
                    field("version", version),
                    field("ttl_ms", ttl_ms),
                ],
            ),
            VmLeaseRenew {
                blob,
                lease,
                ttl_ms,
            } => tagged(
                "VmLeaseRenew",
                vec![
                    field("blob", blob),
                    field("lease", lease),
                    field("ttl_ms", ttl_ms),
                ],
            ),
            VmLeaseRelease { blob, lease } => tagged(
                "VmLeaseRelease",
                vec![field("blob", blob), field("lease", lease)],
            ),
            VmGcFloor { blob } => tagged("VmGcFloor", vec![field("blob", blob)]),
            SlotMapGet => tagged("SlotMapGet", vec![]),
            SlotMapInstall { map } => tagged("SlotMapInstall", vec![field("map", map)]),
            VmFreezeSlots { slots, epoch } => tagged(
                "VmFreezeSlots",
                vec![field("slots", slots), field("epoch", epoch)],
            ),
            VmSealSlots { slots, epoch } => tagged(
                "VmSealSlots",
                vec![field("slots", slots), field("epoch", epoch)],
            ),
            VmExportSlots { slots } => tagged("VmExportSlots", vec![field("slots", slots)]),
            VmImportBlobs { blobs } => tagged("VmImportBlobs", vec![field("blobs", blobs)]),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        use Request::*;
        Ok(match get::<String>(v, "t")?.as_str() {
            "Ping" => Ping,
            "PutChunk" => PutChunk {
                provider: get(v, "provider")?,
                arrival: get(v, "arrival")?,
                chunk: get(v, "chunk")?,
            },
            "PutChunkBatch" => PutChunkBatch {
                provider: get(v, "provider")?,
                arrival: get(v, "arrival")?,
                items: get(v, "items")?,
            },
            "GetChunk" => GetChunk {
                provider: get(v, "provider")?,
                arrival: get(v, "arrival")?,
                chunk: get(v, "chunk")?,
            },
            "GetChunkRange" => GetChunkRange {
                provider: get(v, "provider")?,
                arrival: get(v, "arrival")?,
                chunk: get(v, "chunk")?,
                range: get(v, "range")?,
            },
            "GetChunkRangeBatch" => GetChunkRangeBatch {
                provider: get(v, "provider")?,
                arrival: get(v, "arrival")?,
                items: get(v, "items")?,
            },
            "ProviderHasChunk" => ProviderHasChunk {
                provider: get(v, "provider")?,
                chunk: get(v, "chunk")?,
            },
            "ProviderChunkCount" => ProviderChunkCount {
                provider: get(v, "provider")?,
            },
            "ProviderBytesStored" => ProviderBytesStored {
                provider: get(v, "provider")?,
            },
            "ProviderEvictChunk" => ProviderEvictChunk {
                provider: get(v, "provider")?,
                chunk: get(v, "chunk")?,
            },
            "ProviderEvictBatch" => ProviderEvictBatch {
                provider: get(v, "provider")?,
                chunks: get(v, "chunks")?,
            },
            "ProviderChecksumOf" => ProviderChecksumOf {
                provider: get(v, "provider")?,
                chunk: get(v, "chunk")?,
            },
            "ProviderCorruptChunk" => ProviderCorruptChunk {
                provider: get(v, "provider")?,
                chunk: get(v, "chunk")?,
                byte: get(v, "byte")?,
            },
            "MetaPutBatch" => MetaPutBatch {
                nodes: get(v, "nodes")?,
            },
            "MetaGetBatch" => MetaGetBatch {
                keys: get(v, "keys")?,
            },
            "MetaContains" => MetaContains {
                key: get(v, "key")?,
            },
            "MetaNodeCount" => MetaNodeCount,
            "MetaEvict" => MetaEvict {
                key: get(v, "key")?,
            },
            "MetaEvictBatch" => MetaEvictBatch {
                keys: get(v, "keys")?,
            },
            "MetaListKeys" => MetaListKeys,
            "VmTicket" => VmTicket {
                blob: get(v, "blob")?,
                extents: get(v, "extents")?,
                known: get(v, "known")?,
            },
            "VmTicketAppend" => VmTicketAppend {
                blob: get(v, "blob")?,
                len: get(v, "len")?,
                known: get(v, "known")?,
            },
            "VmPublish" => VmPublish {
                blob: get(v, "blob")?,
                ticket: get(v, "ticket")?,
                root: get(v, "root")?,
            },
            "VmIsPublished" => VmIsPublished {
                blob: get(v, "blob")?,
                version: get(v, "version")?,
            },
            "VmLatest" => VmLatest {
                blob: get(v, "blob")?,
            },
            "VmSnapshot" => VmSnapshot {
                blob: get(v, "blob")?,
                version: get(v, "version")?,
            },
            "VmSetRetention" => VmSetRetention {
                blob: get(v, "blob")?,
                policy: get(v, "policy")?,
            },
            "VmLeaseAcquire" => VmLeaseAcquire {
                blob: get(v, "blob")?,
                version: get(v, "version")?,
                ttl_ms: get(v, "ttl_ms")?,
            },
            "VmLeaseRenew" => VmLeaseRenew {
                blob: get(v, "blob")?,
                lease: get(v, "lease")?,
                ttl_ms: get(v, "ttl_ms")?,
            },
            "VmLeaseRelease" => VmLeaseRelease {
                blob: get(v, "blob")?,
                lease: get(v, "lease")?,
            },
            "VmGcFloor" => VmGcFloor {
                blob: get(v, "blob")?,
            },
            "SlotMapGet" => SlotMapGet,
            "SlotMapInstall" => SlotMapInstall {
                map: get(v, "map")?,
            },
            "VmFreezeSlots" => VmFreezeSlots {
                slots: get(v, "slots")?,
                epoch: get(v, "epoch")?,
            },
            "VmSealSlots" => VmSealSlots {
                slots: get(v, "slots")?,
                epoch: get(v, "epoch")?,
            },
            "VmExportSlots" => VmExportSlots {
                slots: get(v, "slots")?,
            },
            "VmImportBlobs" => VmImportBlobs {
                blobs: get(v, "blobs")?,
            },
            other => return Err(DeError::new(format!("unknown request tag {other:?}"))),
        })
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        use Response::*;
        match self {
            Pong => tagged("Pong", vec![]),
            Unit => tagged("Unit", vec![]),
            Done { done } => tagged("Done", vec![field("done", done)]),
            PutBatch { results } => tagged(
                "PutBatch",
                vec![("results".to_string(), results_to_value(results))],
            ),
            ChunkData { sent } => tagged("ChunkData", vec![field("sent", sent)]),
            ChunkBatch { results } => tagged(
                "ChunkBatch",
                vec![("results".to_string(), results_to_value(results))],
            ),
            Flag { value } => tagged("Flag", vec![field("value", value)]),
            Count { value } => tagged("Count", vec![field("value", value)]),
            Checksum { value } => tagged("Checksum", vec![field("value", value)]),
            NodePuts { results } => tagged(
                "NodePuts",
                vec![("results".to_string(), results_to_value(results))],
            ),
            NodeGets { results } => tagged(
                "NodeGets",
                vec![("results".to_string(), results_to_value(results))],
            ),
            Keys { keys } => tagged("Keys", vec![field("keys", keys)]),
            TicketGrant {
                ticket,
                extents,
                delta,
            } => tagged(
                "TicketGrant",
                vec![
                    field("ticket", ticket),
                    field("extents", extents),
                    field("delta", delta),
                ],
            ),
            Snapshot { record } => tagged("Snapshot", vec![field("record", record)]),
            Lease { grant } => tagged("Lease", vec![field("grant", grant)]),
            GcFloor { info } => tagged("GcFloor", vec![field("info", info)]),
            SlotMapInfo { map } => tagged("SlotMapInfo", vec![field("map", map)]),
            SlotExport { blobs } => tagged("SlotExport", vec![field("blobs", blobs)]),
            Busy { active, max_conns } => tagged(
                "Busy",
                vec![field("active", active), field("max_conns", max_conns)],
            ),
            Fail { error } => tagged("Fail", vec![field("error", error)]),
        }
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        use Response::*;
        Ok(match get::<String>(v, "t")?.as_str() {
            "Pong" => Pong,
            "Unit" => Unit,
            "Done" => Done {
                done: get(v, "done")?,
            },
            "PutBatch" => PutBatch {
                results: results_from_value(v.get_or_null("results"))?,
            },
            "ChunkData" => ChunkData {
                sent: get(v, "sent")?,
            },
            "ChunkBatch" => ChunkBatch {
                results: results_from_value(v.get_or_null("results"))?,
            },
            "Flag" => Flag {
                value: get(v, "value")?,
            },
            "Count" => Count {
                value: get(v, "value")?,
            },
            "Checksum" => Checksum {
                value: get(v, "value")?,
            },
            "NodePuts" => NodePuts {
                results: results_from_value(v.get_or_null("results"))?,
            },
            "NodeGets" => NodeGets {
                results: results_from_value(v.get_or_null("results"))?,
            },
            "Keys" => Keys {
                keys: get(v, "keys")?,
            },
            "TicketGrant" => TicketGrant {
                ticket: get(v, "ticket")?,
                extents: get(v, "extents")?,
                delta: get(v, "delta")?,
            },
            "Snapshot" => Snapshot {
                record: get(v, "record")?,
            },
            "Lease" => Lease {
                grant: get(v, "grant")?,
            },
            "GcFloor" => GcFloor {
                info: get(v, "info")?,
            },
            "SlotMapInfo" => SlotMapInfo {
                map: get(v, "map")?,
            },
            "SlotExport" => SlotExport {
                blobs: get(v, "blobs")?,
            },
            "Busy" => Busy {
                active: get(v, "active")?,
                max_conns: get(v, "max_conns")?,
            },
            "Fail" => Fail {
                error: get(v, "error")?,
            },
            other => return Err(DeError::new(format!("unknown response tag {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_types::ExtentList;

    fn roundtrip_req(r: &Request) {
        assert_eq!(&Request::from_value(&r.to_value()).unwrap(), r);
    }

    fn roundtrip_resp(r: &Response) {
        assert_eq!(&Response::from_value(&r.to_value()).unwrap(), r);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(&Request::Ping);
        roundtrip_req(&Request::PutChunk {
            provider: ProviderId::new(3),
            arrival: 42,
            chunk: ChunkId::new(9),
        });
        roundtrip_req(&Request::PutChunkBatch {
            provider: ProviderId::new(0),
            arrival: 7,
            items: vec![(ChunkId::new(1), 16), (ChunkId::new(2), 64)],
        });
        roundtrip_req(&Request::GetChunkRange {
            provider: ProviderId::new(1),
            arrival: 0,
            chunk: ChunkId::new(5),
            range: ByteRange::new(8, 24),
        });
        roundtrip_req(&Request::GetChunkRangeBatch {
            provider: ProviderId::new(1),
            arrival: 0,
            items: vec![(ChunkId::new(5), ByteRange::new(0, 8))],
        });
        roundtrip_req(&Request::MetaNodeCount);
        roundtrip_req(&Request::ProviderEvictBatch {
            provider: ProviderId::new(2),
            chunks: vec![ChunkId::new(3), ChunkId::new(8)],
        });
        roundtrip_req(&Request::MetaEvictBatch {
            keys: vec![NodeKey {
                blob: atomio_types::BlobId::new(1),
                version: VersionId::new(2),
                range: ByteRange::new(0, 64),
            }],
        });
        roundtrip_req(&Request::VmSetRetention {
            blob: 1,
            policy: RetentionPolicy::KeepLast(2),
        });
        roundtrip_req(&Request::VmLeaseAcquire {
            blob: 1,
            version: VersionId::new(4),
            ttl_ms: 5_000,
        });
        roundtrip_req(&Request::VmLeaseRenew {
            blob: 1,
            lease: 9,
            ttl_ms: 5_000,
        });
        roundtrip_req(&Request::VmLeaseRelease { blob: 1, lease: 9 });
        roundtrip_req(&Request::VmGcFloor { blob: 1 });
        roundtrip_req(&Request::VmTicket {
            blob: 4,
            extents: ExtentList::from_pairs([(0u64, 64u64), (128, 64)]),
            known: 2,
        });
        roundtrip_req(&Request::VmPublish {
            blob: 4,
            ticket: Ticket {
                version: VersionId::new(3),
                capacity: 256,
                size: 192,
            },
            root: NodeKey {
                blob: atomio_types::BlobId::new(4),
                version: VersionId::new(3),
                range: ByteRange::new(0, 256),
            },
        });
        roundtrip_req(&Request::SlotMapGet);
        roundtrip_req(&Request::SlotMapInstall {
            map: SlotMap::uniform(4),
        });
        roundtrip_req(&Request::VmFreezeSlots {
            slots: vec![0, 7, 1023],
            epoch: 2,
        });
        roundtrip_req(&Request::VmSealSlots {
            slots: vec![0, 7],
            epoch: 2,
        });
        roundtrip_req(&Request::VmExportSlots { slots: vec![5, 6] });
        roundtrip_req(&Request::VmImportBlobs {
            blobs: vec![BlobExport {
                blob: 9,
                versions: vec![VersionExport {
                    version: VersionId::new(1),
                    root: Some(NodeKey {
                        blob: atomio_types::BlobId::new(9),
                        version: VersionId::new(1),
                        range: ByteRange::new(0, 64),
                    }),
                    size: 64,
                    capacity: 64,
                    extents: ExtentList::from_pairs([(0u64, 64u64)]),
                }],
                retention: RetentionPolicy::KeepLast(3),
            }],
        });
    }

    #[test]
    fn vm_blob_extracts_the_routing_key() {
        assert_eq!(Request::VmLatest { blob: 17 }.vm_blob(), Some(17));
        assert_eq!(
            Request::VmTicketAppend {
                blob: 3,
                len: 8,
                known: 0
            }
            .vm_blob(),
            Some(3)
        );
        assert_eq!(Request::Ping.vm_blob(), None);
        assert_eq!(Request::MetaNodeCount.vm_blob(), None);
        assert_eq!(Request::SlotMapGet.vm_blob(), None);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(&Response::Pong);
        roundtrip_resp(&Response::Done { done: 77 });
        roundtrip_resp(&Response::PutBatch {
            results: vec![Ok(5), Err(Error::ProviderFailed(ProviderId::new(1)))],
        });
        roundtrip_resp(&Response::ChunkBatch {
            results: vec![
                Ok((16, 99)),
                Err(Error::ChunkNotFound {
                    provider: ProviderId::new(0),
                    chunk: ChunkId::new(2),
                }),
            ],
        });
        roundtrip_resp(&Response::Checksum { value: None });
        roundtrip_resp(&Response::Lease {
            grant: LeaseGrant {
                lease: 7,
                version: VersionId::new(3),
                expires_at_ms: 12_345,
            },
        });
        roundtrip_resp(&Response::GcFloor {
            info: GcFloor {
                floor: VersionId::new(5),
                leases_active: 2,
                lease_expirations: 1,
            },
        });
        roundtrip_resp(&Response::Checksum {
            value: Some(0xDEAD),
        });
        roundtrip_resp(&Response::NodePuts {
            results: vec![Ok(()), Err(Error::MetadataNodeMissing(3))],
        });
        roundtrip_resp(&Response::Busy {
            active: 1024,
            max_conns: 1024,
        });
        roundtrip_resp(&Response::SlotMapInfo {
            map: SlotMap::uniform(4).reassign(&[1, 2, 900], 3),
        });
        roundtrip_resp(&Response::SlotExport { blobs: vec![] });
        roundtrip_resp(&Response::Fail {
            error: Error::WrongShard { epoch: 3, slot: 77 },
        });
        roundtrip_resp(&Response::Fail {
            error: Error::Transport {
                kind: atomio_types::TransportErrorKind::Timeout,
                detail: "read timed out".into(),
            },
        });
    }

    #[test]
    fn unknown_tags_fail_cleanly() {
        let v = Value::Object(vec![("t".into(), Value::Str("Nonsense".into()))]);
        assert!(Request::from_value(&v).is_err());
        assert!(Response::from_value(&v).is_err());
    }
}
