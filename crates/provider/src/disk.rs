//! The on-disk data provider: slot-sharded append-only part files.
//!
//! `DiskProvider` implements the same [`ChunkStore`] surface as the
//! in-memory [`DataProvider`] — **identical virtual-time cost booking**,
//! so the simulation's timing is backend-invariant — but keeps every
//! chunk payload on disk:
//!
//! ```text
//! <dir>/superblock            one framed record: format version,
//!                             slot count, provider id
//! <dir>/slots/000/000.part    append-only record log of slot 0
//! <dir>/slots/001/000.part    …
//! ```
//!
//! Chunks are hash-routed to a slot (`mix64(chunk) % slots`, the
//! AmberBlob pre-sharded layout) and appended to that slot's part file
//! as a framed `PUT` record (chunk id, ingest checksum, payload length)
//! followed by the raw payload bytes **outside** the record frame;
//! [`ChunkStore::evict_chunk`] appends a `TOMBSTONE` record — payloads
//! are immutable and never rewritten, so crash atomicity needs no
//! in-place updates at all. A RAM index (chunk → slot, offset, length,
//! checksum) makes lookups O(1); reads seek straight to the payload.
//!
//! On open the provider replays every slot log to rebuild the index. A
//! torn tail — the crash landed mid-append, leaving a broken record or
//! a short payload — is truncated away instead of failing the open,
//! which is the whole recovery story: everything before the tear is
//! whole, everything after was never acknowledged durable. Keeping the
//! payload out of the record frame keeps the two integrity layers
//! separate: frame checksums catch *torn appends* at recovery time,
//! while payload *bit-rot* is deliberately left to [`scrub`]'s ingest
//! checksums — mid-file rot must not masquerade as a torn tail and
//! truncate away good chunks logged after it.
//!
//! [`scrub`]: DiskProvider::scrub

use crate::integrity::{chunk_checksum, ScrubReport};
use crate::store::ChunkStore;
use atomio_simgrid::{CostModel, FaultInjector, Participant, Resource, SimTime};
use atomio_types::record::{
    append_record, load_or_init_superblock, read_record_at, ByteReader, RECORD_HEADER_BYTES,
};
use atomio_types::stamp::mix64;
use atomio_types::{BackendConfig, ByteRange, ChunkId, Error, FsyncPolicy, ProviderId, Result};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default slot (shard directory) count for new provider directories;
/// reopened directories always use the count in their superblock.
pub const DEFAULT_SLOTS: u32 = 8;

/// Part-file record: a stored chunk (`chunk id | checksum |
/// payload_len`), with the payload bytes following the record raw.
const REC_PUT: u8 = 1;
/// Part-file record: an eviction tombstone (`chunk id`).
const REC_TOMBSTONE: u8 = 2;

/// Framed bytes of a PUT record excluding its payload: header plus the
/// 24-byte body (chunk id, checksum, payload length).
const PUT_FRAME_BYTES: u64 = (RECORD_HEADER_BYTES + 24) as u64;

/// Dead fraction at which [`DiskProvider::evict_chunk_batch`] compacts
/// a slot's part file (see [`DiskProvider::compact`]).
pub const COMPACT_DEAD_FRACTION: f64 = 0.5;

/// Live-record bytes vs total file bytes of one slot — the accounting
/// compaction decisions are made from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotUsage {
    /// Total part-file bytes.
    pub file_bytes: u64,
    /// Bytes belonging to live PUT records (frame + payload).
    pub live_bytes: u64,
}

impl SlotUsage {
    /// Bytes occupied by dead records: tombstoned puts, the tombstones
    /// themselves, and superseded duplicates.
    pub fn dead_bytes(&self) -> u64 {
        self.file_bytes - self.live_bytes
    }
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    slot: u32,
    /// Absolute offset of the payload bytes inside the slot's part file.
    payload_offset: u64,
    len: u64,
    checksum: u64,
}

/// Per-slot eviction batch: concatenated tombstone frames plus the
/// removed index entries (kept for resurrection if the append fails).
type SlotEvictBatch = (Vec<u8>, Vec<(ChunkId, IndexEntry)>);

#[derive(Debug)]
struct Slot {
    file: File,
    /// Current end of the part file (all appends land here).
    len: u64,
    /// Appends since the last fsync (the group-commit counter).
    unsynced: u32,
    /// File bytes occupied by live PUT records (frame + payload); the
    /// rest of `len` is dead weight reclaimable by compaction.
    live_bytes: u64,
}

impl Slot {
    fn append(&mut self, bytes: &[u8], policy: FsyncPolicy, context: &str) -> Result<u64> {
        let at = self.len;
        self.file
            .seek(SeekFrom::Start(at))
            .and_then(|_| self.file.write_all(bytes))
            .map_err(|e| Error::io(context, e))?;
        self.len += bytes.len() as u64;
        self.unsynced += 1;
        if policy.due(self.unsynced) {
            self.file.sync_data().map_err(|e| Error::io(context, e))?;
            self.unsynced = 0;
        }
        Ok(at)
    }

    fn read_exact_at(&mut self, offset: u64, buf: &mut [u8], context: &str) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(buf))
            .map_err(|e| Error::io(context, e))
    }
}

/// One durable storage server: same cost model and request semantics as
/// [`DataProvider`], payloads in slot-sharded append-only part files.
///
/// [`DataProvider`]: crate::store::DataProvider
#[derive(Debug)]
pub struct DiskProvider {
    id: ProviderId,
    dir: PathBuf,
    cost: CostModel,
    nic: Resource,
    disk: Resource,
    faults: Arc<FaultInjector>,
    fsync: FsyncPolicy,
    slots: Vec<Mutex<Slot>>,
    index: RwLock<HashMap<ChunkId, IndexEntry>>,
    bytes_stored: AtomicU64,
    /// `raw + 1` of the highest chunk id ever logged (0 = none), counting
    /// tombstoned chunks too: ids are never reused, even across restarts.
    max_chunk_seen: AtomicU64,
}

impl DiskProvider {
    /// Opens (creating or recovering) a provider rooted at `dir` with the
    /// default slot count.
    ///
    /// # Errors
    /// [`Error::Internal`] on I/O failure or when `dir` holds another
    /// provider's (or another format version's) state.
    pub fn open(
        dir: impl Into<PathBuf>,
        id: ProviderId,
        cost: CostModel,
        faults: Arc<FaultInjector>,
        fsync: FsyncPolicy,
    ) -> Result<Self> {
        Self::open_with_slots(dir, id, cost, faults, fsync, DEFAULT_SLOTS)
    }

    /// [`Self::open`] with an explicit slot count for new directories.
    /// Reopened directories keep the slot count in their superblock —
    /// routing must not change under existing part files.
    pub fn open_with_slots(
        dir: impl Into<PathBuf>,
        id: ProviderId,
        cost: CostModel,
        faults: Arc<FaultInjector>,
        fsync: FsyncPolicy,
        slot_count: u32,
    ) -> Result<Self> {
        assert!(slot_count > 0, "need at least one slot");
        let dir = dir.into();
        let shown = dir.display().to_string();
        let ctx = move |what: &str| format!("provider {id} {what} under {shown}");
        std::fs::create_dir_all(&dir).map_err(|e| Error::io(ctx("create dir"), e))?;
        let slot_count = load_or_init_superblock(
            &dir.join("superblock"),
            slot_count,
            id.raw(),
            &format!("provider {id}"),
        )?;

        let mut provider = DiskProvider {
            id,
            cost,
            nic: Resource::new(format!("{id}/nic")),
            disk: Resource::new(format!("{id}/disk")),
            faults,
            fsync,
            slots: Vec::with_capacity(slot_count as usize),
            index: RwLock::new(HashMap::new()),
            bytes_stored: AtomicU64::new(0),
            max_chunk_seen: AtomicU64::new(0),
            dir,
        };

        let mut index = HashMap::new();
        let mut bytes = 0u64;
        let mut max_seen = 0u64;
        for s in 0..slot_count {
            let slot_dir = provider.dir.join("slots").join(format!("{s:03}"));
            std::fs::create_dir_all(&slot_dir).map_err(|e| Error::io(ctx("create slot"), e))?;
            let path = slot_dir.join("000.part");
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)
                .map_err(|e| Error::io(ctx("open part file"), e))?;
            let mut contents = Vec::new();
            file.read_to_end(&mut contents)
                .map_err(|e| Error::io(ctx("scan part file"), e))?;

            // Walk records by hand: PUT records are followed by their
            // out-of-frame payload, which a generic record scan cannot
            // step over.
            let mut pos = 0usize;
            let mut valid = 0u64;
            let mut live = 0u64;
            let mut torn = false;
            while pos < contents.len() {
                let Some((rec, next)) = read_record_at(&contents, pos) else {
                    torn = true;
                    break;
                };
                let mut r = ByteReader::new(&rec.body);
                match rec.kind {
                    REC_PUT => {
                        let (Some(raw), Some(checksum), Some(len)) = (r.u64(), r.u64(), r.u64())
                        else {
                            return Err(Error::Internal(ctx("malformed put record")));
                        };
                        if contents.len() < next + len as usize {
                            // Crash landed inside the payload bytes.
                            torn = true;
                            break;
                        }
                        let chunk = ChunkId::new(raw);
                        max_seen = max_seen.max(raw + 1);
                        // First write wins, matching the live path's
                        // duplicate-id rejection.
                        if let std::collections::hash_map::Entry::Vacant(e) = index.entry(chunk) {
                            e.insert(IndexEntry {
                                slot: s,
                                payload_offset: next as u64,
                                len,
                                checksum,
                            });
                            bytes += len;
                            live += (next - pos) as u64 + len;
                        }
                        pos = next + len as usize;
                    }
                    REC_TOMBSTONE => {
                        let Some(raw) = r.u64() else {
                            return Err(Error::Internal(ctx("malformed tombstone")));
                        };
                        max_seen = max_seen.max(raw + 1);
                        if let Some(old) = index.remove(&ChunkId::new(raw)) {
                            bytes -= old.len;
                            live -= PUT_FRAME_BYTES + old.len;
                        }
                        pos = next;
                    }
                    other => {
                        return Err(Error::Internal(ctx(&format!(
                            "unknown record kind {other}"
                        ))));
                    }
                }
                valid = pos as u64;
            }
            if torn {
                file.set_len(valid)
                    .map_err(|e| Error::io(ctx("truncate torn tail"), e))?;
                file.sync_data()
                    .map_err(|e| Error::io(ctx("sync truncation"), e))?;
            }
            provider.slots.push(Mutex::new(Slot {
                file,
                len: valid,
                unsynced: 0,
                live_bytes: live,
            }));
        }
        provider.index = RwLock::new(index);
        provider.bytes_stored = AtomicU64::new(bytes);
        provider.max_chunk_seen = AtomicU64::new(max_seen);
        Ok(provider)
    }

    /// This provider's id.
    pub fn id(&self) -> ProviderId {
        self.id
    }

    /// Root directory of this provider's state.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn check_alive(&self) -> Result<()> {
        if self.faults.is_failed(self.id) {
            Err(Error::ProviderFailed(self.id))
        } else {
            Ok(())
        }
    }

    fn slot_of(&self, chunk: ChunkId) -> usize {
        (mix64(chunk.raw() ^ 0xD15C_51A7) % self.slots.len() as u64) as usize
    }

    /// Appends the chunk's PUT record and indexes it. Shared zero-time
    /// half of both put paths (cost is booked by the callers).
    fn install(&self, chunk: ChunkId, data: &Bytes) -> Result<()> {
        let checksum = chunk_checksum(data);
        let s = self.slot_of(chunk);
        let mut body = Vec::with_capacity(24);
        body.extend_from_slice(&chunk.raw().to_be_bytes());
        body.extend_from_slice(&checksum.to_be_bytes());
        body.extend_from_slice(&(data.len() as u64).to_be_bytes());
        // One buffer, one write: framed metadata record, then the raw
        // payload out-of-frame (see the module docs for why).
        let mut framed = Vec::with_capacity(RECORD_HEADER_BYTES + 24 + data.len());
        append_record(&mut framed, REC_PUT, &body);
        framed.extend_from_slice(data);

        let mut index = self.index.write();
        if index.contains_key(&chunk) {
            return Err(Error::Internal(format!(
                "chunk id {chunk} reused on {}",
                self.id
            )));
        }
        let record_offset = {
            let mut slot = self.slots[s].lock();
            let at = slot.append(&framed, self.fsync, "part append")?;
            slot.live_bytes += framed.len() as u64;
            at
        };
        index.insert(
            chunk,
            IndexEntry {
                slot: s as u32,
                payload_offset: record_offset + PUT_FRAME_BYTES,
                len: data.len() as u64,
                checksum,
            },
        );
        drop(index);
        self.bytes_stored
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.max_chunk_seen
            .fetch_max(chunk.raw() + 1, Ordering::Relaxed);
        Ok(())
    }

    fn lookup(&self, chunk: ChunkId) -> Result<IndexEntry> {
        self.index
            .read()
            .get(&chunk)
            .copied()
            .ok_or(Error::ChunkNotFound {
                provider: self.id,
                chunk,
            })
    }

    /// Reads `range` of the chunk's payload straight off the part file.
    fn read_payload(&self, entry: IndexEntry, range: ByteRange) -> Result<Bytes> {
        let mut buf = vec![0u8; range.len as usize];
        self.slots[entry.slot as usize].lock().read_exact_at(
            entry.payload_offset + range.offset,
            &mut buf,
            "part read",
        )?;
        Ok(Bytes::from(buf))
    }

    /// Stores an immutable chunk. Cost booking is byte-for-byte the
    /// in-memory provider's: RPC round trip, NIC transfer, disk transfer.
    ///
    /// # Errors
    /// As `DataProvider::put_chunk`, plus [`Error::Internal`] on I/O
    /// failure.
    pub fn put_chunk(&self, p: &Participant, chunk: ChunkId, data: Bytes) -> Result<()> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let len = data.len() as u64;
        self.nic.serve(p, self.cost.net_transfer(len));
        self.disk.serve(p, self.cost.disk_transfer(len));
        self.check_alive()?; // may have failed during the transfer
        self.install(chunk, &data)
    }

    /// Reservation-based put (see `DataProvider::put_chunk_at`).
    pub fn put_chunk_at(&self, arrival: SimTime, chunk: ChunkId, data: Bytes) -> Result<SimTime> {
        self.check_alive()?;
        let len = data.len() as u64;
        let nic_done = self.nic.reserve(arrival, self.cost.net_transfer(len));
        let disk_done = self.disk.reserve(nic_done, self.cost.disk_transfer(len));
        self.install(chunk, &data)?;
        Ok(disk_done)
    }

    /// Reservation-based ranged get (see
    /// `DataProvider::get_chunk_range_at`). Error paths book nothing.
    pub fn get_chunk_range_at(
        &self,
        arrival: SimTime,
        chunk: ChunkId,
        range: ByteRange,
    ) -> Result<(Bytes, SimTime)> {
        self.check_alive()?;
        let entry = self.lookup(chunk)?;
        if range.end() > entry.len {
            return Err(Error::OutOfBounds {
                requested_end: range.end(),
                snapshot_size: entry.len,
            });
        }
        let disk_done = self
            .disk
            .reserve(arrival, self.cost.disk_transfer(range.len));
        let nic_done = self
            .nic
            .reserve(disk_done, self.cost.net_transfer(range.len));
        Ok((self.read_payload(entry, range)?, nic_done))
    }

    /// Fetches a whole chunk.
    pub fn get_chunk(&self, p: &Participant, chunk: ChunkId) -> Result<Bytes> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let entry = self.lookup(chunk)?;
        self.disk.serve(p, self.cost.disk_transfer(entry.len));
        self.nic.serve(p, self.cost.net_transfer(entry.len));
        self.read_payload(entry, ByteRange::new(0, entry.len))
    }

    /// Fetches a sub-range of a chunk.
    pub fn get_chunk_range(
        &self,
        p: &Participant,
        chunk: ChunkId,
        range: ByteRange,
    ) -> Result<Bytes> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let entry = self.lookup(chunk)?;
        if range.end() > entry.len {
            return Err(Error::OutOfBounds {
                requested_end: range.end(),
                snapshot_size: entry.len,
            });
        }
        self.disk.serve(p, self.cost.disk_transfer(range.len));
        self.nic.serve(p, self.cost.net_transfer(range.len));
        self.read_payload(entry, range)
    }

    /// True if the chunk is live (present and not tombstoned).
    pub fn has_chunk(&self, chunk: ChunkId) -> bool {
        self.index.read().contains_key(&chunk)
    }

    /// Number of live chunks.
    pub fn chunk_count(&self) -> usize {
        self.index.read().len()
    }

    /// Total live payload bytes.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored.load(Ordering::Relaxed)
    }

    /// The stored payload length of a live chunk.
    pub fn chunk_len(&self, chunk: ChunkId) -> Option<u64> {
        self.index.read().get(&chunk).map(|e| e.len)
    }

    /// The ingest-time checksum of a live chunk.
    pub fn checksum_of(&self, chunk: ChunkId) -> Option<u64> {
        self.index.read().get(&chunk).map(|e| e.checksum)
    }

    /// Appends a tombstone and drops the chunk from the index, returning
    /// the payload bytes logically reclaimed. The part-file bytes stay
    /// behind as *dead* (recovery replays the tombstone too) until
    /// [`DiskProvider::compact`] — or a batch eviction — rewrites the
    /// slot.
    pub fn evict_chunk(&self, chunk: ChunkId) -> u64 {
        let mut index = self.index.write();
        let Some(entry) = index.remove(&chunk) else {
            return 0;
        };
        let mut framed = Vec::with_capacity(32 + 8);
        append_record(&mut framed, REC_TOMBSTONE, &chunk.raw().to_be_bytes());
        // An eviction that cannot reach disk must not pretend the chunk
        // is gone — put it back and report nothing reclaimed.
        {
            let mut slot = self.slots[entry.slot as usize].lock();
            if slot
                .append(&framed, self.fsync, "tombstone append")
                .is_err()
            {
                index.insert(chunk, entry);
                return 0;
            }
            slot.live_bytes -= PUT_FRAME_BYTES + entry.len;
        }
        drop(index);
        self.bytes_stored.fetch_sub(entry.len, Ordering::Relaxed);
        entry.len
    }

    /// Batched eviction — the collector's sweep path. Tombstones are
    /// grouped per slot, so the whole batch costs one append (and at
    /// most one fsync) per touched slot instead of one per chunk; any
    /// slot the batch leaves more than [`COMPACT_DEAD_FRACTION`] dead is
    /// then compacted. Returns the payload bytes logically reclaimed.
    pub fn evict_chunk_batch(&self, chunks: &[ChunkId]) -> u64 {
        let mut reclaimed = 0u64;
        {
            let mut index = self.index.write();
            let mut per_slot: HashMap<usize, SlotEvictBatch> = HashMap::new();
            for &chunk in chunks {
                let Some(entry) = index.remove(&chunk) else {
                    continue;
                };
                let (framed, removed) = per_slot.entry(entry.slot as usize).or_default();
                append_record(framed, REC_TOMBSTONE, &chunk.raw().to_be_bytes());
                removed.push((chunk, entry));
            }
            for (s, (framed, removed)) in per_slot {
                let mut slot = self.slots[s].lock();
                if slot
                    .append(&framed, self.fsync, "tombstone append")
                    .is_err()
                {
                    // Media unreachable: resurrect this slot's entries
                    // and report nothing reclaimed for them.
                    for (chunk, entry) in removed {
                        index.insert(chunk, entry);
                    }
                    continue;
                }
                for (_, entry) in &removed {
                    slot.live_bytes -= PUT_FRAME_BYTES + entry.len;
                    reclaimed += entry.len;
                    self.bytes_stored.fetch_sub(entry.len, Ordering::Relaxed);
                }
            }
        }
        // Shed the newly dead part-file bytes where it pays off. A
        // compaction failure leaves the slot valid, just uncompacted.
        let _ = self.compact(COMPACT_DEAD_FRACTION);
        reclaimed
    }

    /// Per-slot live-vs-file byte accounting.
    pub fn slot_usage(&self) -> Vec<SlotUsage> {
        self.slots
            .iter()
            .map(|s| {
                let s = s.lock();
                SlotUsage {
                    file_bytes: s.len,
                    live_bytes: s.live_bytes,
                }
            })
            .collect()
    }

    /// Total dead part-file bytes across all slots (reclaimable by
    /// [`DiskProvider::compact`]).
    pub fn dead_bytes(&self) -> u64 {
        self.slot_usage().iter().map(|u| u.dead_bytes()).sum()
    }

    /// Rewrites every slot whose dead fraction is at least `threshold`
    /// (`0.0..=1.0`), dropping tombstoned and superseded records from
    /// the part file. The replacement is written aside, synced, and
    /// atomically renamed over the old file, so a crash at any point
    /// leaves one complete, replayable log. Returns file bytes shed.
    pub fn compact(&self, threshold: f64) -> Result<u64> {
        let mut shed = 0u64;
        for s in 0..self.slots.len() {
            shed += self.compact_slot(s, threshold)?;
        }
        Ok(shed)
    }

    fn compact_slot(&self, s: usize, threshold: f64) -> Result<u64> {
        let mut index = self.index.write();
        let mut slot = self.slots[s].lock();
        let dead = slot.len - slot.live_bytes;
        if dead == 0 || (dead as f64) < threshold * (slot.len as f64) {
            return Ok(0);
        }
        // Rebuild the slot's log from its live chunks, in file order.
        let mut live: Vec<(ChunkId, IndexEntry)> = index
            .iter()
            .filter(|(_, e)| e.slot as usize == s)
            .map(|(&c, &e)| (c, e))
            .collect();
        live.sort_unstable_by_key(|(_, e)| e.payload_offset);
        let mut contents = Vec::with_capacity(slot.live_bytes as usize);
        let mut moved: Vec<(ChunkId, u64)> = Vec::with_capacity(live.len());
        for (chunk, entry) in &live {
            let mut payload = vec![0u8; entry.len as usize];
            slot.read_exact_at(entry.payload_offset, &mut payload, "compact read")?;
            let mut body = Vec::with_capacity(24);
            body.extend_from_slice(&chunk.raw().to_be_bytes());
            body.extend_from_slice(&entry.checksum.to_be_bytes());
            body.extend_from_slice(&entry.len.to_be_bytes());
            append_record(&mut contents, REC_PUT, &body);
            moved.push((*chunk, contents.len() as u64));
            contents.extend_from_slice(&payload);
        }
        let slot_dir = self.dir.join("slots").join(format!("{s:03}"));
        let part = slot_dir.join("000.part");
        let staged = slot_dir.join("000.part.compact");
        let mut f = File::create(&staged).map_err(|e| Error::io("compact create", e))?;
        f.write_all(&contents)
            .and_then(|_| f.sync_data())
            .map_err(|e| Error::io("compact write", e))?;
        std::fs::rename(&staged, &part).map_err(|e| Error::io("compact rename", e))?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&part)
            .map_err(|e| Error::io("compact reopen", e))?;
        let old_len = slot.len;
        slot.file = file;
        slot.len = contents.len() as u64;
        slot.live_bytes = contents.len() as u64;
        slot.unsynced = 0;
        for (chunk, offset) in moved {
            if let Some(e) = index.get_mut(&chunk) {
                e.payload_offset = offset;
            }
        }
        Ok(old_len - contents.len() as u64)
    }

    /// Flips one payload byte **on disk**, leaving the logged checksum
    /// stale — the bit-rot injection hook, now exercising real media
    /// instead of a `HashMap`.
    pub fn corrupt_chunk(&self, chunk: ChunkId, byte: usize) {
        let Some(entry) = self.index.read().get(&chunk).copied() else {
            return;
        };
        if byte as u64 >= entry.len {
            return;
        }
        let mut slot = self.slots[entry.slot as usize].lock();
        let mut b = [0u8; 1];
        if slot
            .read_exact_at(entry.payload_offset + byte as u64, &mut b, "corrupt read")
            .is_err()
        {
            return;
        }
        b[0] ^= 0xFF;
        let _ = slot
            .file
            .seek(SeekFrom::Start(entry.payload_offset + byte as u64))
            .and_then(|_| slot.file.write_all(&b));
    }

    /// Re-reads every live chunk **from its part file** and verifies the
    /// ingest checksums, charging disk time for the full scan — the real
    /// bit-rot detector the in-memory provider only models.
    pub fn scrub(&self, p: &Participant) -> ScrubReport {
        let mut entries: Vec<(ChunkId, IndexEntry)> =
            self.index.read().iter().map(|(&c, &e)| (c, e)).collect();
        entries.sort_unstable_by_key(|(c, _)| *c);
        let mut report = ScrubReport::default();
        for (chunk, entry) in entries {
            self.disk.serve(p, self.cost.disk_transfer(entry.len));
            let healthy = self
                .read_payload(entry, ByteRange::new(0, entry.len))
                .map(|data| chunk_checksum(&data) == entry.checksum)
                .unwrap_or(false);
            if healthy {
                report.healthy += 1;
            } else {
                report.corrupted.push(chunk);
            }
        }
        report.corrupted.sort_unstable();
        report
    }

    /// Forces every slot's outstanding appends to stable storage
    /// (graceful shutdown under `Group`/`Deferred` fsync policies).
    pub fn flush(&self) -> Result<()> {
        for slot in &self.slots {
            let mut slot = slot.lock();
            if slot.unsynced > 0 {
                slot.file
                    .sync_data()
                    .map_err(|e| Error::io("part flush", e))?;
                slot.unsynced = 0;
            }
        }
        Ok(())
    }

    /// Highest chunk id ever logged here (live or tombstoned). A
    /// reopening deployment resumes its id allocator past this so ids
    /// are never reused across restarts.
    pub fn max_chunk_id(&self) -> Option<ChunkId> {
        match self.max_chunk_seen.load(Ordering::Relaxed) {
            0 => None,
            n => Some(ChunkId::new(n - 1)),
        }
    }

    /// The provider's disk resource.
    pub fn disk(&self) -> &Resource {
        &self.disk
    }

    /// The provider's NIC resource.
    pub fn nic(&self) -> &Resource {
        &self.nic
    }

    /// The cost model this provider charges.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }
}

impl ChunkStore for DiskProvider {
    fn id(&self) -> ProviderId {
        DiskProvider::id(self)
    }

    fn put_chunk(&self, p: &Participant, chunk: ChunkId, data: Bytes) -> Result<()> {
        DiskProvider::put_chunk(self, p, chunk, data)
    }

    fn put_chunk_at(&self, arrival: SimTime, chunk: ChunkId, data: Bytes) -> Result<SimTime> {
        DiskProvider::put_chunk_at(self, arrival, chunk, data)
    }

    fn get_chunk(&self, p: &Participant, chunk: ChunkId) -> Result<Bytes> {
        DiskProvider::get_chunk(self, p, chunk)
    }

    fn get_chunk_range(&self, p: &Participant, chunk: ChunkId, range: ByteRange) -> Result<Bytes> {
        DiskProvider::get_chunk_range(self, p, chunk, range)
    }

    fn get_chunk_range_at(
        &self,
        arrival: SimTime,
        chunk: ChunkId,
        range: ByteRange,
    ) -> Result<(Bytes, SimTime)> {
        DiskProvider::get_chunk_range_at(self, arrival, chunk, range)
    }

    fn has_chunk(&self, chunk: ChunkId) -> bool {
        DiskProvider::has_chunk(self, chunk)
    }

    fn chunk_count(&self) -> usize {
        DiskProvider::chunk_count(self)
    }

    fn bytes_stored(&self) -> u64 {
        DiskProvider::bytes_stored(self)
    }

    fn evict_chunk(&self, chunk: ChunkId) -> u64 {
        DiskProvider::evict_chunk(self, chunk)
    }

    fn evict_chunk_batch(&self, chunks: &[ChunkId]) -> u64 {
        DiskProvider::evict_chunk_batch(self, chunks)
    }

    fn checksum_of(&self, chunk: ChunkId) -> Option<u64> {
        DiskProvider::checksum_of(self, chunk)
    }

    fn corrupt_chunk(&self, chunk: ChunkId, byte: usize) {
        DiskProvider::corrupt_chunk(self, chunk, byte)
    }

    fn scrub(&self, p: &Participant) -> ScrubReport {
        DiskProvider::scrub(self, p)
    }

    fn chunk_len(&self, chunk: ChunkId) -> Option<u64> {
        DiskProvider::chunk_len(self, chunk)
    }

    fn max_chunk_id(&self) -> Option<ChunkId> {
        DiskProvider::max_chunk_id(self)
    }

    fn disk(&self) -> &Resource {
        DiskProvider::disk(self)
    }

    fn nic(&self) -> &Resource {
        DiskProvider::nic(self)
    }

    fn cost(&self) -> &CostModel {
        DiskProvider::cost(self)
    }
}

/// Builds one chunk store for `backend`: the in-memory [`DataProvider`]
/// for [`BackendConfig::Memory`], a recovered [`DiskProvider`] under
/// `<dir>/provider-<id>` for [`BackendConfig::Disk`] — **the** factory
/// harnesses and server binaries select backends through, replacing
/// scattered direct `DataProvider::new` calls.
///
/// [`DataProvider`]: crate::store::DataProvider
pub fn chunk_store_for(
    backend: &BackendConfig,
    id: ProviderId,
    cost: CostModel,
    faults: &Arc<FaultInjector>,
) -> Result<Arc<dyn ChunkStore>> {
    Ok(match backend {
        BackendConfig::Memory => Arc::new(crate::store::DataProvider::new(
            id,
            cost,
            Arc::clone(faults),
        )),
        BackendConfig::Disk { dir, fsync } => Arc::new(DiskProvider::open(
            dir.join(format!("provider-{}", id.raw())),
            id,
            cost,
            Arc::clone(faults),
            *fsync,
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;
    use atomio_types::tempdir::TempDir;

    fn open(dir: &Path) -> Arc<DiskProvider> {
        Arc::new(
            DiskProvider::open(
                dir,
                ProviderId::new(0),
                CostModel::zero(),
                Arc::new(FaultInjector::default()),
                FsyncPolicy::PerPublish,
            )
            .unwrap(),
        )
    }

    #[test]
    fn put_get_roundtrip_on_disk() {
        let tmp = TempDir::new("atomio-diskprov");
        let prov = open(tmp.path());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1, 2, 3]))?;
            prov.get_chunk(p, ChunkId::new(1))
        });
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(prov.chunk_count(), 1);
        assert_eq!(prov.bytes_stored(), 3);
        let (range, _) = run_actors(1, |_, p| {
            prov.get_chunk_range(p, ChunkId::new(1), ByteRange::new(1, 2))
        });
        assert_eq!(range[0].as_ref().unwrap().as_ref(), &[2, 3]);
    }

    #[test]
    fn duplicate_chunk_id_rejected() {
        let tmp = TempDir::new("atomio-diskprov");
        let prov = open(tmp.path());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1]))?;
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![2]))
        });
        assert!(matches!(res[0], Err(Error::Internal(_))));
    }

    #[test]
    fn reopen_recovers_index_and_bytes() {
        let tmp = TempDir::new("atomio-diskprov");
        {
            let prov = open(tmp.path());
            run_actors(1, |_, p| {
                for i in 0..20u64 {
                    prov.put_chunk(p, ChunkId::new(i), Bytes::from(vec![i as u8; 100]))
                        .unwrap();
                }
            });
            prov.evict_chunk(ChunkId::new(3));
            // Hard drop: no flush, no close protocol.
        }
        let prov = open(tmp.path());
        assert_eq!(prov.chunk_count(), 19);
        assert_eq!(prov.bytes_stored(), 1900);
        assert!(!prov.has_chunk(ChunkId::new(3)));
        assert_eq!(prov.max_chunk_id(), Some(ChunkId::new(19)));
        let (res, _) = run_actors(1, |_, p| prov.get_chunk(p, ChunkId::new(7)));
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[7u8; 100][..]);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let tmp = TempDir::new("atomio-diskprov");
        let chunk_slot_path = {
            let prov = open(tmp.path());
            run_actors(1, |_, p| {
                prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![9u8; 64]))
                    .unwrap();
            });
            let s = prov.slot_of(ChunkId::new(2));
            tmp.path()
                .join("slots")
                .join(format!("{s:03}"))
                .join("000.part")
        };
        // Simulate a crash mid-append: garbage tail on chunk 2's slot.
        use std::io::Write as _;
        let mut f = OpenOptions::new()
            .append(true)
            .open(&chunk_slot_path)
            .unwrap();
        f.write_all(&atomio_types::record::RECORD_MAGIC.to_be_bytes())
            .unwrap();
        f.write_all(&[REC_PUT, 0, 0, 1, 0]).unwrap(); // truncated header/body
        drop(f);

        let prov = open(tmp.path());
        assert_eq!(prov.chunk_count(), 1);
        let (res, _) = run_actors(1, |_, p| prov.get_chunk(p, ChunkId::new(1)));
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[9u8; 64][..]);
        // The tail is gone: a fresh append lands cleanly and survives
        // another reopen.
        run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(2), Bytes::from(vec![5u8; 32]))
                .unwrap();
        });
        drop(prov);
        let prov = open(tmp.path());
        assert_eq!(prov.chunk_count(), 2);
    }

    #[test]
    fn scrub_detects_on_disk_corruption() {
        let tmp = TempDir::new("atomio-diskprov");
        let prov = open(tmp.path());
        run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1u8; 256]))
                .unwrap();
            prov.put_chunk(p, ChunkId::new(2), Bytes::from(vec![2u8; 256]))
                .unwrap();
        });
        prov.corrupt_chunk(ChunkId::new(2), 17);
        let (reports, _) = run_actors(1, |_, p| prov.scrub(p));
        assert_eq!(reports[0].healthy, 1);
        assert_eq!(reports[0].corrupted, vec![ChunkId::new(2)]);
        // Corruption is on media: a reopen sees it too.
        drop(prov);
        let prov = open(tmp.path());
        let (reports, _) = run_actors(1, |_, p| prov.scrub(p));
        assert_eq!(reports[0].corrupted, vec![ChunkId::new(2)]);
    }

    #[test]
    fn wrong_instance_directory_rejected() {
        let tmp = TempDir::new("atomio-diskprov");
        drop(open(tmp.path())); // provider 0 claims the dir
        let err = DiskProvider::open(
            tmp.path(),
            ProviderId::new(5),
            CostModel::zero(),
            Arc::new(FaultInjector::default()),
            FsyncPolicy::PerPublish,
        );
        assert!(matches!(err, Err(Error::Internal(_))));
    }

    #[test]
    fn timing_matches_memory_provider() {
        // The whole point of mirroring the cost booking: identical
        // virtual-time totals and device busy-times for the same ops.
        let cost = CostModel::grid5000();
        let tmp = TempDir::new("atomio-diskprov");
        let disk = Arc::new(
            DiskProvider::open(
                tmp.path(),
                ProviderId::new(0),
                cost,
                Arc::new(FaultInjector::default()),
                FsyncPolicy::PerPublish,
            )
            .unwrap(),
        );
        let mem = Arc::new(crate::store::DataProvider::new(
            ProviderId::new(0),
            cost,
            Arc::new(FaultInjector::default()),
        ));
        let drive = |prov: Arc<dyn ChunkStore>| {
            let (_, total) = run_actors(2, move |i, p| {
                let c = ChunkId::new(i as u64);
                prov.put_chunk(p, c, Bytes::from(vec![0u8; 4096])).unwrap();
                prov.get_chunk_range(p, c, ByteRange::new(64, 512)).unwrap();
                let arrival = p.now_ns() + prov.cost().rpc_round_trip().as_nanos() as u64;
                let (_, done) = prov
                    .get_chunk_range_at(arrival, c, ByteRange::new(0, 1024))
                    .unwrap();
                p.sleep_until_ns(done);
            });
            total
        };
        assert_eq!(drive(disk), drive(mem));
    }

    #[test]
    fn chunk_store_factory_selects_backend() {
        let faults = Arc::new(FaultInjector::default());
        let mem = chunk_store_for(
            &BackendConfig::Memory,
            ProviderId::new(0),
            CostModel::zero(),
            &faults,
        )
        .unwrap();
        assert_eq!(mem.max_chunk_id(), None);
        let tmp = TempDir::new("atomio-diskprov");
        let disk = chunk_store_for(
            &BackendConfig::disk(tmp.path()),
            ProviderId::new(3),
            CostModel::zero(),
            &faults,
        )
        .unwrap();
        assert_eq!(disk.id(), ProviderId::new(3));
        assert!(tmp.path().join("provider-3").join("superblock").exists());
    }

    #[test]
    fn batch_evict_reclaims_and_survives_reopen() {
        let tmp = TempDir::new("atomio-diskprov");
        {
            let prov = open(tmp.path());
            run_actors(1, |_, p| {
                for i in 0..12u64 {
                    prov.put_chunk(p, ChunkId::new(i), Bytes::from(vec![i as u8; 128]))
                        .unwrap();
                }
            });
            let victims: Vec<ChunkId> = (0..8).map(ChunkId::new).collect();
            assert_eq!(prov.evict_chunk_batch(&victims), 8 * 128);
            // Unknown ids are ignored, not double-counted.
            assert_eq!(prov.evict_chunk_batch(&victims), 0);
            assert_eq!(prov.chunk_count(), 4);
            assert_eq!(prov.bytes_stored(), 4 * 128);
        }
        let prov = open(tmp.path());
        assert_eq!(prov.chunk_count(), 4);
        assert_eq!(prov.bytes_stored(), 4 * 128);
        for i in 0..8u64 {
            assert!(!prov.has_chunk(ChunkId::new(i)));
        }
        let (res, _) = run_actors(1, |_, p| prov.get_chunk(p, ChunkId::new(10)));
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[10u8; 128][..]);
    }

    #[test]
    fn compaction_sheds_dead_bytes_and_preserves_reads() {
        let tmp = TempDir::new("atomio-diskprov");
        {
            let prov = open(tmp.path());
            run_actors(1, |_, p| {
                for i in 0..16u64 {
                    prov.put_chunk(p, ChunkId::new(i), Bytes::from(vec![i as u8; 256]))
                        .unwrap();
                }
            });
            let before: u64 = prov.slot_usage().iter().map(|u| u.file_bytes).sum();
            let victims: Vec<ChunkId> = (0..12).map(ChunkId::new).collect();
            // The batch path auto-compacts slots past the dead-fraction
            // threshold; force the rest with an explicit full pass.
            prov.evict_chunk_batch(&victims);
            prov.compact(0.0).unwrap();
            assert_eq!(prov.dead_bytes(), 0);
            let after: u64 = prov.slot_usage().iter().map(|u| u.file_bytes).sum();
            assert!(
                after < before,
                "compaction must shrink part files ({before} -> {after})"
            );
            let (res, _) = run_actors(1, |_, p| prov.get_chunk(p, ChunkId::new(14)));
            assert_eq!(res[0].as_ref().unwrap().as_ref(), &[14u8; 256][..]);
        }
        // The compacted layout is itself a valid, replayable log.
        let prov = open(tmp.path());
        assert_eq!(prov.chunk_count(), 4);
        assert_eq!(prov.dead_bytes(), 0);
        let (res, _) = run_actors(1, |_, p| prov.get_chunk(p, ChunkId::new(15)));
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[15u8; 256][..]);
    }

    #[test]
    fn live_byte_accounting_matches_across_install_evict_recovery() {
        let tmp = TempDir::new("atomio-diskprov");
        let expect_live = |prov: &DiskProvider, chunks: u64, payload: u64| {
            let live: u64 = prov.slot_usage().iter().map(|u| u.live_bytes).sum();
            assert_eq!(live, chunks * PUT_FRAME_BYTES + payload);
        };
        {
            let prov = open(tmp.path());
            run_actors(1, |_, p| {
                for i in 0..10u64 {
                    prov.put_chunk(p, ChunkId::new(i), Bytes::from(vec![i as u8; 64]))
                        .unwrap();
                }
            });
            expect_live(&prov, 10, 10 * 64);
            prov.evict_chunk(ChunkId::new(0));
            expect_live(&prov, 9, 9 * 64);
        }
        let prov = open(tmp.path());
        expect_live(&prov, 9, 9 * 64);
        assert_eq!(
            prov.dead_bytes(),
            PUT_FRAME_BYTES + 64 + (RECORD_HEADER_BYTES as u64 + 8),
            "one dead PUT frame+payload plus its tombstone record"
        );
    }
}
