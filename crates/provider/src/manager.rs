//! The provider manager: chunk placement and replication.
//!
//! BlobSeer's provider manager tracks participating data providers and
//! assigns each new chunk a home according to an allocation strategy. The
//! paper's striping principle ("a load-balancing allocation strategy that
//! redirects write operations to different storage elements in a round
//! robin fashion") corresponds to [`AllocationStrategy::RoundRobin`];
//! [`AllocationStrategy::LeastLoaded`] and [`AllocationStrategy::Random`]
//! are the obvious alternatives and are compared in the E7 ablation.

use crate::store::{ChunkStore, DataProvider};
use atomio_simgrid::{ClientNics, CostModel, DetRng, FaultInjector, Participant, Resource};
use atomio_types::{ByteRange, ChunkId, Error, ProviderId, Result};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How new chunks are spread over providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Strict rotation over providers (the paper's default).
    RoundRobin,
    /// Place on the provider currently storing the fewest bytes.
    LeastLoaded,
    /// Uniform random placement (seeded, deterministic).
    Random,
}

/// One chunk read in a [`ProviderManager::get_batch_with_failover`]
/// batch: the replica homes are tried in order.
#[derive(Debug, Clone)]
pub struct GetRequest {
    /// The chunk to read.
    pub chunk: ChunkId,
    /// Replica homes in failover order (primary first).
    pub homes: Vec<ProviderId>,
    /// The sub-range of the chunk to fetch.
    pub range: ByteRange,
}

/// Routes chunk operations to a fleet of data providers.
#[derive(Debug)]
pub struct ProviderManager {
    providers: Vec<Arc<dyn ChunkStore>>,
    strategy: AllocationStrategy,
    rr_cursor: AtomicU64,
    rng: DetRng,
    faults: Arc<FaultInjector>,
    /// Per-client injection/reception NICs. Shared with the metadata
    /// store (see `Store::new_heterogeneous`) so a client's data and
    /// metadata traffic contend for the same link. See
    /// [`Self::client_nic`].
    client_nics: Arc<ClientNics>,
}

impl ProviderManager {
    /// Builds a fleet of `n` providers sharing one cost model and fault
    /// plane.
    pub fn new(
        n: usize,
        cost: CostModel,
        strategy: AllocationStrategy,
        faults: Arc<FaultInjector>,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one data provider");
        Self::heterogeneous(vec![cost; n], strategy, faults, seed)
    }

    /// Builds a fleet with **per-provider hardware** (straggler studies,
    /// mixed HDD/SSD deployments): provider `i` gets `costs[i]`.
    pub fn heterogeneous(
        costs: Vec<CostModel>,
        strategy: AllocationStrategy,
        faults: Arc<FaultInjector>,
        seed: u64,
    ) -> Self {
        assert!(!costs.is_empty(), "need at least one data provider");
        let stores = costs
            .into_iter()
            .enumerate()
            .map(|(i, cost)| {
                Arc::new(DataProvider::new(
                    ProviderId::new(i as u64),
                    cost,
                    Arc::clone(&faults),
                )) as Arc<dyn ChunkStore>
            })
            .collect();
        Self::from_stores(stores, strategy, faults, seed)
    }

    /// Builds a fleet whose storage substrate is chosen by `backend`:
    /// in-memory [`DataProvider`]s for `Memory`, recovered
    /// [`DiskProvider`](crate::disk::DiskProvider)s under
    /// `<dir>/provider-<i>` for `Disk` — one `with_backend` call per
    /// deployment replaces per-provider constructor scatter.
    ///
    /// # Errors
    /// [`Error::Internal`] when a disk backend cannot open its
    /// directories (I/O failure, foreign superblock, format mismatch).
    pub fn with_backend(
        backend: &atomio_types::BackendConfig,
        costs: Vec<CostModel>,
        strategy: AllocationStrategy,
        faults: Arc<FaultInjector>,
        seed: u64,
    ) -> Result<Self> {
        assert!(!costs.is_empty(), "need at least one data provider");
        let stores = costs
            .into_iter()
            .enumerate()
            .map(|(i, cost)| {
                crate::disk::chunk_store_for(backend, ProviderId::new(i as u64), cost, &faults)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self::from_stores(stores, strategy, faults, seed))
    }

    /// Builds a manager over an arbitrary fleet of chunk stores — the
    /// seam the TCP transport plugs into: pass `RemoteProvider` handles
    /// here and every placement, replication, and failover decision runs
    /// unchanged over the wire.
    ///
    /// # Panics
    /// Panics when `stores` is empty or when store `i` does not report
    /// id `i` (the manager addresses the fleet by vector slot).
    pub fn from_stores(
        stores: Vec<Arc<dyn ChunkStore>>,
        strategy: AllocationStrategy,
        faults: Arc<FaultInjector>,
        seed: u64,
    ) -> Self {
        assert!(!stores.is_empty(), "need at least one data provider");
        for (i, store) in stores.iter().enumerate() {
            assert_eq!(
                store.id().raw(),
                i as u64,
                "store {i} must report id {i} (the fleet is slot-addressed)"
            );
        }
        ProviderManager {
            providers: stores,
            strategy,
            rr_cursor: AtomicU64::new(0),
            rng: DetRng::new(seed),
            faults,
            client_nics: Arc::new(ClientNics::new()),
        }
    }

    /// Number of providers in the fleet.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Looks up a provider by id.
    pub fn provider(&self, id: ProviderId) -> Result<&Arc<dyn ChunkStore>> {
        self.providers
            .get(id.raw() as usize)
            .ok_or(Error::ProviderNotFound(id))
    }

    /// All providers (for accounting).
    pub fn providers(&self) -> &[Arc<dyn ChunkStore>] {
        &self.providers
    }

    /// Chooses a home provider for one new chunk.
    pub fn allocate_one(&self) -> ProviderId {
        match self.strategy {
            AllocationStrategy::RoundRobin => {
                let i = self.rr_cursor.fetch_add(1, Ordering::Relaxed);
                ProviderId::new(i % self.providers.len() as u64)
            }
            AllocationStrategy::LeastLoaded => self
                .providers
                .iter()
                .min_by_key(|p| p.bytes_stored())
                .map(|p| p.id())
                .expect("fleet is non-empty"),
            AllocationStrategy::Random => {
                ProviderId::new(self.rng.next_below(self.providers.len() as u64))
            }
        }
    }

    /// Chooses `replicas` distinct providers for one new chunk, primary
    /// first. Falls back to fewer when the fleet is smaller than the
    /// requested replication factor.
    pub fn allocate_replicas(&self, replicas: usize) -> Vec<ProviderId> {
        let n = self.providers.len();
        let want = replicas.max(1).min(n);
        let primary = self.allocate_one();
        let mut out = Vec::with_capacity(want);
        out.push(primary);
        let mut next = primary.raw();
        while out.len() < want {
            next = (next + 1) % n as u64;
            out.push(ProviderId::new(next));
        }
        out
    }

    /// Stores a chunk on `replicas` providers, attempting every allocated
    /// home (primary first). The write succeeds when at least
    /// `max(min_ok, 1)` placements survived fault injection — the primary
    /// is not special: a write whose primary is down but whose secondary
    /// took the data still meets a quorum of 1. Reports
    /// [`Error::InsufficientReplicas`] when fewer than the quorum
    /// survived.
    pub fn put_replicated(
        &self,
        p: &Participant,
        chunk: ChunkId,
        data: &Bytes,
        replicas: usize,
        min_ok: usize,
    ) -> Result<Vec<ProviderId>> {
        let homes = self.allocate_replicas(replicas);
        let mut placed = Vec::new();
        for &home in &homes {
            let prov = self.provider(home)?;
            match prov.put_chunk(p, chunk, data.clone()) {
                Ok(()) => placed.push(home),
                // A dead home or an unreachable one (transport failure on
                // the remote path) costs this copy only — the next home
                // may still make quorum.
                Err(Error::ProviderFailed(_) | Error::Transport { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        if placed.len() < min_ok.max(1) {
            return Err(Error::InsufficientReplicas {
                wanted: min_ok.max(1),
                placed: placed.len(),
            });
        }
        Ok(placed)
    }

    /// Reads a chunk range, failing over across the replica homes in
    /// order.
    pub fn get_with_failover(
        &self,
        p: &Participant,
        chunk: ChunkId,
        homes: &[ProviderId],
        range: atomio_types::ByteRange,
    ) -> Result<Bytes> {
        let mut last_err = Error::Internal(format!("no homes recorded for {chunk}"));
        for &home in homes {
            match self
                .provider(home)
                .and_then(|prov| prov.get_chunk_range(p, chunk, range))
            {
                Ok(data) => return Ok(data),
                // Retriable per-home outcomes: the replica is down, lost
                // the chunk, or is unreachable over the transport (the
                // typed kind — timeout vs refused vs injected loss — is
                // preserved in `last_err` for the caller's retry policy).
                Err(
                    e @ (Error::ProviderFailed(_)
                    | Error::ChunkNotFound { .. }
                    | Error::Transport { .. }),
                ) => {
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// The injection/reception NIC of the calling client, created on
    /// first use.
    ///
    /// Giving each client its own serialized NIC keeps the pipelined
    /// path honest: a client cannot start injecting chunk `i + 1` before
    /// chunk `i`'s bytes have left its NIC, so per-client bandwidth caps
    /// at the client link while provider disks drain in parallel —
    /// exactly the striping behavior the paper measures.
    pub fn client_nic(&self, p: &Participant) -> Arc<Resource> {
        self.client_nics.nic_for(p)
    }

    /// Snapshot of every client NIC created so far, in client-id order
    /// (for utilization accounting).
    pub fn client_nics(&self) -> Vec<Arc<Resource>> {
        self.client_nics.all()
    }

    /// The per-client NIC registry, for sharing with other services
    /// (the metadata store wires into this so one client's data and
    /// metadata streams serialize through the same link).
    pub fn client_nic_registry(&self) -> &Arc<ClientNics> {
        &self.client_nics
    }

    /// Stores a batch of chunks with replication, pipelined.
    ///
    /// Every replica copy of every chunk is *booked* up front through the
    /// reservation API and the calling client sleeps exactly once, to the
    /// latest completion in the batch. The cost model: the RPC round
    /// trips of the whole batch overlap (the List-I/O effect — requests
    /// are issued back to back, so one round-trip latency offsets them
    /// all); each copy then serializes through the client's own NIC
    /// (injection order = batch order) and cuts through to the target
    /// provider's NIC and disk. Placement and quorum semantics are those
    /// of [`Self::put_replicated`], evaluated independently per chunk.
    ///
    /// Returns one outcome per input chunk, in order: the surviving homes
    /// on success, [`Error::InsufficientReplicas`] when fault injection
    /// left a chunk under quorum. Homes that are already failed when the
    /// batch is issued cost nothing, as in the serial path.
    pub fn put_batch_replicated(
        &self,
        p: &Participant,
        items: &[(ChunkId, Bytes)],
        replicas: usize,
        min_ok: usize,
    ) -> Vec<Result<Vec<ProviderId>>> {
        let client_nic = self.client_nic(p);
        let now = p.now_ns();
        let mut latest = now;
        let mut outcomes = Vec::with_capacity(items.len());
        for (chunk, data) in items {
            let homes = self.allocate_replicas(replicas);
            let mut placed = Vec::new();
            let mut fatal = None;
            for &home in &homes {
                let prov = match self.provider(home) {
                    Ok(prov) => prov,
                    Err(e) => {
                        fatal = Some(e);
                        break;
                    }
                };
                // A home that is already down books nothing, mirroring
                // the serial path's up-front liveness check.
                if self.faults.is_failed(home) {
                    continue;
                }
                let net_ns = prov.cost().net_transfer(data.len() as u64).as_nanos() as u64;
                let arrival = now + prov.cost().rpc_round_trip().as_nanos() as u64;
                let inj_done = client_nic.reserve_ns(arrival, net_ns);
                // Cut-through: the provider starts receiving when the
                // first byte leaves the client, not when the last does.
                let inj_start = inj_done - net_ns;
                match prov.put_chunk_at(inj_start, *chunk, data.clone()) {
                    Ok(done) => {
                        placed.push(home);
                        latest = latest.max(done).max(inj_done);
                    }
                    Err(Error::ProviderFailed(_) | Error::Transport { .. }) => continue,
                    Err(e) => {
                        fatal = Some(e);
                        break;
                    }
                }
            }
            outcomes.push(match fatal {
                Some(e) => Err(e),
                None if placed.len() < min_ok.max(1) => Err(Error::InsufficientReplicas {
                    wanted: min_ok.max(1),
                    placed: placed.len(),
                }),
                None => Ok(placed),
            });
        }
        p.sleep_until_ns(latest);
        outcomes
    }

    /// Reads a batch of chunk ranges, pipelined, failing over across each
    /// request's replica homes in order.
    ///
    /// The mirror image of [`Self::put_batch_replicated`]: all requests
    /// share one overlapped RPC offset, each provider books its disk and
    /// NIC through the reservation API, and the payload cuts through to
    /// the client's reception NIC, which serializes arrivals. The caller
    /// sleeps once, to the latest reception. Returns one outcome per
    /// request, in order; per-request errors are those of
    /// [`Self::get_with_failover`], and failed lookups book nothing.
    pub fn get_batch_with_failover(
        &self,
        p: &Participant,
        requests: &[GetRequest],
    ) -> Vec<Result<Bytes>> {
        let client_nic = self.client_nic(p);
        let now = p.now_ns();
        let mut latest = now;
        let mut outcomes = Vec::with_capacity(requests.len());
        for req in requests {
            let mut verdict = None;
            let mut last_err = Error::Internal(format!("no homes recorded for {}", req.chunk));
            for &home in &req.homes {
                let prov = match self.provider(home) {
                    Ok(prov) => prov,
                    Err(e) => {
                        verdict = Some(Err(e));
                        break;
                    }
                };
                let arrival = now + prov.cost().rpc_round_trip().as_nanos() as u64;
                match prov.get_chunk_range_at(arrival, req.chunk, req.range) {
                    Ok((data, sent)) => {
                        let net_ns = prov.cost().net_transfer(req.range.len).as_nanos() as u64;
                        // Reception occupies the client NIC for the
                        // transfer time, ending no earlier than the last
                        // byte leaves the provider.
                        let recv_done = client_nic.reserve_ns(sent.saturating_sub(net_ns), net_ns);
                        latest = latest.max(recv_done);
                        verdict = Some(Ok(data));
                        break;
                    }
                    Err(
                        e @ (Error::ProviderFailed(_)
                        | Error::ChunkNotFound { .. }
                        | Error::Transport { .. }),
                    ) => {
                        last_err = e;
                    }
                    Err(e) => {
                        verdict = Some(Err(e));
                        break;
                    }
                }
            }
            outcomes.push(verdict.unwrap_or(Err(last_err)));
        }
        p.sleep_until_ns(latest);
        outcomes
    }

    /// The shared fault plane.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;
    use atomio_types::ByteRange;

    fn mgr(n: usize, strategy: AllocationStrategy) -> ProviderManager {
        ProviderManager::new(
            n,
            CostModel::zero(),
            strategy,
            Arc::new(FaultInjector::default()),
            42,
        )
    }

    #[test]
    fn round_robin_rotates() {
        let m = mgr(4, AllocationStrategy::RoundRobin);
        let homes: Vec<u64> = (0..8).map(|_| m.allocate_one().raw()).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_loaded_prefers_empty() {
        let m = mgr(3, AllocationStrategy::LeastLoaded);
        let (_, _) = run_actors(1, |_, p| {
            // Load provider 0 with data.
            m.provider(ProviderId::new(0))
                .unwrap()
                .put_chunk(p, ChunkId::new(100), Bytes::from(vec![0; 100]))
                .unwrap();
        });
        let home = m.allocate_one();
        assert_ne!(home, ProviderId::new(0));
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let a = mgr(5, AllocationStrategy::Random);
        let b = mgr(5, AllocationStrategy::Random);
        let ha: Vec<u64> = (0..16).map(|_| a.allocate_one().raw()).collect();
        let hb: Vec<u64> = (0..16).map(|_| b.allocate_one().raw()).collect();
        assert_eq!(ha, hb, "same seed, same placement");
        assert!(ha.iter().all(|&h| h < 5));
    }

    #[test]
    fn replicas_are_distinct() {
        let m = mgr(4, AllocationStrategy::RoundRobin);
        let homes = m.allocate_replicas(3);
        assert_eq!(homes.len(), 3);
        let mut dedup = homes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn replication_clamps_to_fleet_size() {
        let m = mgr(2, AllocationStrategy::RoundRobin);
        assert_eq!(m.allocate_replicas(5).len(), 2);
        assert_eq!(m.allocate_replicas(0).len(), 1);
    }

    #[test]
    fn put_replicated_places_copies() {
        let m = mgr(3, AllocationStrategy::RoundRobin);
        let (res, _) = run_actors(1, |_, p| {
            m.put_replicated(p, ChunkId::new(1), &Bytes::from(vec![7; 16]), 2, 2)
        });
        let homes = res[0].clone().unwrap();
        assert_eq!(homes.len(), 2);
        for h in &homes {
            assert!(m.provider(*h).unwrap().has_chunk(ChunkId::new(1)));
        }
    }

    #[test]
    fn replicated_read_fails_over() {
        let faults = Arc::new(FaultInjector::default());
        let m = ProviderManager::new(
            3,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::clone(&faults),
            1,
        );
        let (res, _) = run_actors(1, |_, p| {
            let homes = m
                .put_replicated(p, ChunkId::new(1), &Bytes::from(vec![9; 8]), 2, 2)
                .unwrap();
            // Kill the primary; the read must come from the secondary.
            faults.fail_provider(homes[0]);
            m.get_with_failover(p, ChunkId::new(1), &homes, ByteRange::new(0, 8))
        });
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[9u8; 8]);
    }

    #[test]
    fn unreplicated_read_fails_when_home_dies() {
        let faults = Arc::new(FaultInjector::default());
        let m = ProviderManager::new(
            2,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::clone(&faults),
            1,
        );
        let (res, _) = run_actors(1, |_, p| {
            let homes = m
                .put_replicated(p, ChunkId::new(1), &Bytes::from(vec![9; 8]), 1, 1)
                .unwrap();
            faults.fail_provider(homes[0]);
            m.get_with_failover(p, ChunkId::new(1), &homes, ByteRange::new(0, 8))
        });
        assert!(matches!(res[0], Err(Error::ProviderFailed(_))));
    }

    #[test]
    fn insufficient_replicas_detected() {
        let faults = Arc::new(FaultInjector::default());
        let m = ProviderManager::new(
            2,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::clone(&faults),
            1,
        );
        faults.fail_provider(ProviderId::new(0));
        faults.fail_provider(ProviderId::new(1));
        let (res, _) = run_actors(1, |_, p| {
            m.put_replicated(p, ChunkId::new(1), &Bytes::from(vec![1]), 2, 1)
        });
        assert_eq!(
            res[0],
            Err(Error::InsufficientReplicas {
                wanted: 1,
                placed: 0
            })
        );
    }

    #[test]
    fn put_replicated_succeeds_without_primary_when_quorum_met() {
        // Pins the documented quorum rule: the primary is not special. A
        // dead primary with a live secondary still satisfies min_ok = 1.
        let faults = Arc::new(FaultInjector::default());
        let m = ProviderManager::new(
            2,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::clone(&faults),
            1,
        );
        // RoundRobin allocates provider 0 as the first primary.
        faults.fail_provider(ProviderId::new(0));
        let (res, _) = run_actors(1, |_, p| {
            m.put_replicated(p, ChunkId::new(1), &Bytes::from(vec![3; 4]), 2, 1)
        });
        assert_eq!(res[0], Ok(vec![ProviderId::new(1)]));
        assert!(m
            .provider(ProviderId::new(1))
            .unwrap()
            .has_chunk(ChunkId::new(1)));
        // The same write under min_ok = 2 is under quorum.
        let (res, _) = run_actors(1, |_, p| {
            m.put_replicated(p, ChunkId::new(2), &Bytes::from(vec![3; 4]), 2, 2)
        });
        assert_eq!(
            res[0],
            Err(Error::InsufficientReplicas {
                wanted: 2,
                placed: 1
            })
        );
    }

    #[test]
    fn batch_put_places_and_reports_per_chunk() {
        let m = mgr(4, AllocationStrategy::RoundRobin);
        let items: Vec<(ChunkId, Bytes)> = (0..8)
            .map(|i| (ChunkId::new(i), Bytes::from(vec![i as u8; 16])))
            .collect();
        let (res, _) = run_actors(1, |_, p| m.put_batch_replicated(p, &items, 2, 2));
        let outcomes = &res[0];
        assert_eq!(outcomes.len(), 8);
        for (i, outcome) in outcomes.iter().enumerate() {
            let homes = outcome.as_ref().unwrap();
            assert_eq!(homes.len(), 2);
            for h in homes {
                assert!(m.provider(*h).unwrap().has_chunk(ChunkId::new(i as u64)));
            }
        }
    }

    #[test]
    fn batch_put_quorum_failures_are_per_chunk() {
        let faults = Arc::new(FaultInjector::default());
        let m = ProviderManager::new(
            2,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::clone(&faults),
            1,
        );
        // Provider 1 down: chunks whose only home is 1 fail, others land.
        faults.fail_provider(ProviderId::new(1));
        let items: Vec<(ChunkId, Bytes)> = (0..4)
            .map(|i| (ChunkId::new(i), Bytes::from(vec![0u8; 8])))
            .collect();
        let (res, _) = run_actors(1, |_, p| m.put_batch_replicated(p, &items, 1, 1));
        let outcomes = &res[0];
        // RoundRobin: chunks 0 and 2 land on provider 0; 1 and 3 on 1.
        assert_eq!(outcomes[0], Ok(vec![ProviderId::new(0)]));
        assert!(matches!(
            outcomes[1],
            Err(Error::InsufficientReplicas { .. })
        ));
        assert_eq!(outcomes[2], Ok(vec![ProviderId::new(0)]));
        assert!(matches!(
            outcomes[3],
            Err(Error::InsufficientReplicas { .. })
        ));
    }

    #[test]
    fn batch_get_fails_over_per_request() {
        let faults = Arc::new(FaultInjector::default());
        let m = ProviderManager::new(
            3,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::clone(&faults),
            1,
        );
        let (res, _) = run_actors(1, |_, p| {
            let items: Vec<(ChunkId, Bytes)> = (0..3)
                .map(|i| (ChunkId::new(i), Bytes::from(vec![i as u8 + 1; 8])))
                .collect();
            let homes: Vec<Vec<ProviderId>> = m
                .put_batch_replicated(p, &items, 2, 2)
                .into_iter()
                .map(|o| o.unwrap())
                .collect();
            // Kill chunk 0's primary: its read must come from the
            // secondary while the other chunks read from their primaries.
            faults.fail_provider(homes[0][0]);
            let requests: Vec<GetRequest> = homes
                .iter()
                .enumerate()
                .map(|(i, h)| GetRequest {
                    chunk: ChunkId::new(i as u64),
                    homes: h.clone(),
                    range: ByteRange::new(0, 8),
                })
                .collect();
            m.get_batch_with_failover(p, &requests)
        });
        for (i, outcome) in res[0].iter().enumerate() {
            assert_eq!(outcome.as_ref().unwrap().as_ref(), &[i as u8 + 1; 8][..]);
        }
    }

    #[test]
    fn batch_put_timing_is_pipelined() {
        // One client, 8 chunks striped over 8 providers, grid5000 costs.
        // Serial: 8 * (rpc + net + disk). Pipelined: injections serialize
        // on the client NIC while disks drain in parallel, so the batch
        // finishes at rpc + 8*net + disk exactly (no provider queues).
        let cost = CostModel::grid5000();
        const LEN: u64 = 64 * 1024;
        let m = Arc::new(ProviderManager::new(
            8,
            cost,
            AllocationStrategy::RoundRobin,
            Arc::new(FaultInjector::default()),
            7,
        ));
        let items: Vec<(ChunkId, Bytes)> = (0..8)
            .map(|i| (ChunkId::new(i), Bytes::from(vec![0u8; LEN as usize])))
            .collect();
        let mc = Arc::clone(&m);
        let (_, total) = run_actors(1, move |_, p| {
            let outcomes = mc.put_batch_replicated(p, &items, 1, 1);
            assert!(outcomes.iter().all(|o| o.is_ok()));
        });
        let expected = cost.rpc_round_trip() + cost.net_transfer(LEN) * 8 + cost.disk_transfer(LEN);
        assert_eq!(total, expected);
        let serial = (cost.rpc_round_trip() + cost.net_transfer(LEN) + cost.disk_transfer(LEN)) * 8;
        assert!(
            total.as_secs_f64() * 2.0 < serial.as_secs_f64(),
            "pipelined {total:?} not ahead of serial {serial:?}"
        );
    }

    #[test]
    fn batch_of_one_matches_serial_timing() {
        let cost = CostModel::grid5000();
        const LEN: u64 = 64 * 1024;
        let serial = Arc::new(ProviderManager::new(
            4,
            cost,
            AllocationStrategy::RoundRobin,
            Arc::new(FaultInjector::default()),
            7,
        ));
        let sm = Arc::clone(&serial);
        let (_, t_serial) = run_actors(1, move |_, p| {
            let homes = sm
                .put_replicated(
                    p,
                    ChunkId::new(0),
                    &Bytes::from(vec![0u8; LEN as usize]),
                    1,
                    1,
                )
                .unwrap();
            sm.get_with_failover(p, ChunkId::new(0), &homes, ByteRange::new(0, LEN))
                .unwrap();
        });
        let batched = Arc::new(ProviderManager::new(
            4,
            cost,
            AllocationStrategy::RoundRobin,
            Arc::new(FaultInjector::default()),
            7,
        ));
        let bm = Arc::clone(&batched);
        let (_, t_batched) = run_actors(1, move |_, p| {
            let items = vec![(ChunkId::new(0), Bytes::from(vec![0u8; LEN as usize]))];
            let homes = bm.put_batch_replicated(p, &items, 1, 1)[0].clone().unwrap();
            let requests = vec![GetRequest {
                chunk: ChunkId::new(0),
                homes,
                range: ByteRange::new(0, LEN),
            }];
            bm.get_batch_with_failover(p, &requests)[0].clone().unwrap();
        });
        assert_eq!(
            t_serial, t_batched,
            "a batch of one must cost the serial price"
        );
    }

    #[test]
    fn heterogeneous_fleet_uses_per_provider_costs() {
        use std::time::Duration;
        // Provider 0 is 10x slower than provider 1; one put to each.
        let slow = CostModel {
            disk_bandwidth: 7 * 1024 * 1024,
            ..CostModel::grid5000()
        };
        let fast = CostModel::grid5000();
        let m = ProviderManager::heterogeneous(
            vec![slow, fast],
            AllocationStrategy::RoundRobin,
            Arc::new(FaultInjector::default()),
            1,
        );
        let durations: Vec<Duration> = atomio_simgrid::clock::run_actors(1, |_, p| {
            let mut out = Vec::new();
            for i in 0..2u64 {
                let t0 = p.now();
                m.provider(ProviderId::new(i))
                    .unwrap()
                    .put_chunk(p, ChunkId::new(i), Bytes::from(vec![0u8; 1 << 20]))
                    .unwrap();
                out.push(p.now() - t0);
            }
            out
        })
        .0
        .pop()
        .unwrap();
        assert!(
            durations[0].as_secs_f64() > durations[1].as_secs_f64() * 5.0,
            "slow {:?} vs fast {:?}",
            durations[0],
            durations[1]
        );
    }

    #[test]
    fn striping_scales_aggregate_bandwidth() {
        // 8 clients each writing 1 MiB: with 8 providers round-robin the
        // transfers overlap; with 1 provider they serialize. The ratio of
        // total times must be close to 8.
        let cost = CostModel::grid5000();
        let time_for = |nprov: usize| {
            let m = Arc::new(ProviderManager::new(
                nprov,
                cost,
                AllocationStrategy::RoundRobin,
                Arc::new(FaultInjector::default()),
                7,
            ));
            let mc = Arc::clone(&m);
            let (_, total) = run_actors(8, move |i, p| {
                mc.put_replicated(
                    p,
                    ChunkId::new(i as u64),
                    &Bytes::from(vec![0u8; 1 << 20]),
                    1,
                    1,
                )
                .unwrap();
            });
            total
        };
        let t1 = time_for(1);
        let t8 = time_for(8);
        let ratio = t1.as_secs_f64() / t8.as_secs_f64();
        assert!(ratio > 5.0, "striping speedup only {ratio:.2}x");
    }
}
