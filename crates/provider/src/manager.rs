//! The provider manager: chunk placement and replication.
//!
//! BlobSeer's provider manager tracks participating data providers and
//! assigns each new chunk a home according to an allocation strategy. The
//! paper's striping principle ("a load-balancing allocation strategy that
//! redirects write operations to different storage elements in a round
//! robin fashion") corresponds to [`AllocationStrategy::RoundRobin`];
//! [`AllocationStrategy::LeastLoaded`] and [`AllocationStrategy::Random`]
//! are the obvious alternatives and are compared in the E7 ablation.

use crate::store::DataProvider;
use atomio_simgrid::{CostModel, DetRng, FaultInjector, Participant};
use atomio_types::{ChunkId, Error, ProviderId, Result};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How new chunks are spread over providers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Strict rotation over providers (the paper's default).
    RoundRobin,
    /// Place on the provider currently storing the fewest bytes.
    LeastLoaded,
    /// Uniform random placement (seeded, deterministic).
    Random,
}

/// Routes chunk operations to a fleet of data providers.
#[derive(Debug)]
pub struct ProviderManager {
    providers: Vec<Arc<DataProvider>>,
    strategy: AllocationStrategy,
    rr_cursor: AtomicU64,
    rng: DetRng,
    faults: Arc<FaultInjector>,
}

impl ProviderManager {
    /// Builds a fleet of `n` providers sharing one cost model and fault
    /// plane.
    pub fn new(
        n: usize,
        cost: CostModel,
        strategy: AllocationStrategy,
        faults: Arc<FaultInjector>,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one data provider");
        Self::heterogeneous(vec![cost; n], strategy, faults, seed)
    }

    /// Builds a fleet with **per-provider hardware** (straggler studies,
    /// mixed HDD/SSD deployments): provider `i` gets `costs[i]`.
    pub fn heterogeneous(
        costs: Vec<CostModel>,
        strategy: AllocationStrategy,
        faults: Arc<FaultInjector>,
        seed: u64,
    ) -> Self {
        assert!(!costs.is_empty(), "need at least one data provider");
        ProviderManager {
            providers: costs
                .into_iter()
                .enumerate()
                .map(|(i, cost)| {
                    Arc::new(DataProvider::new(
                        ProviderId::new(i as u64),
                        cost,
                        Arc::clone(&faults),
                    ))
                })
                .collect(),
            strategy,
            rr_cursor: AtomicU64::new(0),
            rng: DetRng::new(seed),
            faults,
        }
    }

    /// Number of providers in the fleet.
    pub fn provider_count(&self) -> usize {
        self.providers.len()
    }

    /// Looks up a provider by id.
    pub fn provider(&self, id: ProviderId) -> Result<&Arc<DataProvider>> {
        self.providers
            .get(id.raw() as usize)
            .ok_or(Error::ProviderNotFound(id))
    }

    /// All providers (for accounting).
    pub fn providers(&self) -> &[Arc<DataProvider>] {
        &self.providers
    }

    /// Chooses a home provider for one new chunk.
    pub fn allocate_one(&self) -> ProviderId {
        match self.strategy {
            AllocationStrategy::RoundRobin => {
                let i = self.rr_cursor.fetch_add(1, Ordering::Relaxed);
                ProviderId::new(i % self.providers.len() as u64)
            }
            AllocationStrategy::LeastLoaded => self
                .providers
                .iter()
                .min_by_key(|p| p.bytes_stored())
                .map(|p| p.id())
                .expect("fleet is non-empty"),
            AllocationStrategy::Random => {
                ProviderId::new(self.rng.next_below(self.providers.len() as u64))
            }
        }
    }

    /// Chooses `replicas` distinct providers for one new chunk, primary
    /// first. Falls back to fewer when the fleet is smaller than the
    /// requested replication factor.
    pub fn allocate_replicas(&self, replicas: usize) -> Vec<ProviderId> {
        let n = self.providers.len();
        let want = replicas.max(1).min(n);
        let primary = self.allocate_one();
        let mut out = Vec::with_capacity(want);
        out.push(primary);
        let mut next = primary.raw();
        while out.len() < want {
            next = (next + 1) % n as u64;
            out.push(ProviderId::new(next));
        }
        out
    }

    /// Stores a chunk on `replicas` providers; succeeds when the primary
    /// and at least `replicas - 1` secondaries took the data, and reports
    /// [`Error::InsufficientReplicas`] when fewer than `min_ok` placements
    /// survived fault injection.
    pub fn put_replicated(
        &self,
        p: &Participant,
        chunk: ChunkId,
        data: &Bytes,
        replicas: usize,
        min_ok: usize,
    ) -> Result<Vec<ProviderId>> {
        let homes = self.allocate_replicas(replicas);
        let mut placed = Vec::new();
        for &home in &homes {
            let prov = self.provider(home)?;
            match prov.put_chunk(p, chunk, data.clone()) {
                Ok(()) => placed.push(home),
                Err(Error::ProviderFailed(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        if placed.len() < min_ok.max(1) {
            return Err(Error::InsufficientReplicas {
                wanted: min_ok.max(1),
                placed: placed.len(),
            });
        }
        Ok(placed)
    }

    /// Reads a chunk range, failing over across the replica homes in
    /// order.
    pub fn get_with_failover(
        &self,
        p: &Participant,
        chunk: ChunkId,
        homes: &[ProviderId],
        range: atomio_types::ByteRange,
    ) -> Result<Bytes> {
        let mut last_err = Error::Internal(format!("no homes recorded for {chunk}"));
        for &home in homes {
            match self
                .provider(home)
                .and_then(|prov| prov.get_chunk_range(p, chunk, range))
            {
                Ok(data) => return Ok(data),
                Err(e @ (Error::ProviderFailed(_) | Error::ChunkNotFound { .. })) => {
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// The shared fault plane.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;
    use atomio_types::ByteRange;

    fn mgr(n: usize, strategy: AllocationStrategy) -> ProviderManager {
        ProviderManager::new(
            n,
            CostModel::zero(),
            strategy,
            Arc::new(FaultInjector::default()),
            42,
        )
    }

    #[test]
    fn round_robin_rotates() {
        let m = mgr(4, AllocationStrategy::RoundRobin);
        let homes: Vec<u64> = (0..8).map(|_| m.allocate_one().raw()).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn least_loaded_prefers_empty() {
        let m = mgr(3, AllocationStrategy::LeastLoaded);
        let (_, _) = run_actors(1, |_, p| {
            // Load provider 0 with data.
            m.provider(ProviderId::new(0))
                .unwrap()
                .put_chunk(p, ChunkId::new(100), Bytes::from(vec![0; 100]))
                .unwrap();
        });
        let home = m.allocate_one();
        assert_ne!(home, ProviderId::new(0));
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let a = mgr(5, AllocationStrategy::Random);
        let b = mgr(5, AllocationStrategy::Random);
        let ha: Vec<u64> = (0..16).map(|_| a.allocate_one().raw()).collect();
        let hb: Vec<u64> = (0..16).map(|_| b.allocate_one().raw()).collect();
        assert_eq!(ha, hb, "same seed, same placement");
        assert!(ha.iter().all(|&h| h < 5));
    }

    #[test]
    fn replicas_are_distinct() {
        let m = mgr(4, AllocationStrategy::RoundRobin);
        let homes = m.allocate_replicas(3);
        assert_eq!(homes.len(), 3);
        let mut dedup = homes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn replication_clamps_to_fleet_size() {
        let m = mgr(2, AllocationStrategy::RoundRobin);
        assert_eq!(m.allocate_replicas(5).len(), 2);
        assert_eq!(m.allocate_replicas(0).len(), 1);
    }

    #[test]
    fn put_replicated_places_copies() {
        let m = mgr(3, AllocationStrategy::RoundRobin);
        let (res, _) = run_actors(1, |_, p| {
            m.put_replicated(p, ChunkId::new(1), &Bytes::from(vec![7; 16]), 2, 2)
        });
        let homes = res[0].clone().unwrap();
        assert_eq!(homes.len(), 2);
        for h in &homes {
            assert!(m.provider(*h).unwrap().has_chunk(ChunkId::new(1)));
        }
    }

    #[test]
    fn replicated_read_fails_over() {
        let faults = Arc::new(FaultInjector::default());
        let m = ProviderManager::new(
            3,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::clone(&faults),
            1,
        );
        let (res, _) = run_actors(1, |_, p| {
            let homes = m
                .put_replicated(p, ChunkId::new(1), &Bytes::from(vec![9; 8]), 2, 2)
                .unwrap();
            // Kill the primary; the read must come from the secondary.
            faults.fail_provider(homes[0]);
            m.get_with_failover(p, ChunkId::new(1), &homes, ByteRange::new(0, 8))
        });
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[9u8; 8]);
    }

    #[test]
    fn unreplicated_read_fails_when_home_dies() {
        let faults = Arc::new(FaultInjector::default());
        let m = ProviderManager::new(
            2,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::clone(&faults),
            1,
        );
        let (res, _) = run_actors(1, |_, p| {
            let homes = m
                .put_replicated(p, ChunkId::new(1), &Bytes::from(vec![9; 8]), 1, 1)
                .unwrap();
            faults.fail_provider(homes[0]);
            m.get_with_failover(p, ChunkId::new(1), &homes, ByteRange::new(0, 8))
        });
        assert!(matches!(res[0], Err(Error::ProviderFailed(_))));
    }

    #[test]
    fn insufficient_replicas_detected() {
        let faults = Arc::new(FaultInjector::default());
        let m = ProviderManager::new(
            2,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::clone(&faults),
            1,
        );
        faults.fail_provider(ProviderId::new(0));
        faults.fail_provider(ProviderId::new(1));
        let (res, _) = run_actors(1, |_, p| {
            m.put_replicated(p, ChunkId::new(1), &Bytes::from(vec![1]), 2, 1)
        });
        assert_eq!(
            res[0],
            Err(Error::InsufficientReplicas {
                wanted: 1,
                placed: 0
            })
        );
    }

    #[test]
    fn heterogeneous_fleet_uses_per_provider_costs() {
        use std::time::Duration;
        // Provider 0 is 10x slower than provider 1; one put to each.
        let slow = CostModel {
            disk_bandwidth: 7 * 1024 * 1024,
            ..CostModel::grid5000()
        };
        let fast = CostModel::grid5000();
        let m = ProviderManager::heterogeneous(
            vec![slow, fast],
            AllocationStrategy::RoundRobin,
            Arc::new(FaultInjector::default()),
            1,
        );
        let durations: Vec<Duration> = atomio_simgrid::clock::run_actors(1, |_, p| {
            let mut out = Vec::new();
            for i in 0..2u64 {
                let t0 = p.now();
                m.provider(ProviderId::new(i))
                    .unwrap()
                    .put_chunk(p, ChunkId::new(i), Bytes::from(vec![0u8; 1 << 20]))
                    .unwrap();
                out.push(p.now() - t0);
            }
            out
        })
        .0
        .pop()
        .unwrap();
        assert!(
            durations[0].as_secs_f64() > durations[1].as_secs_f64() * 5.0,
            "slow {:?} vs fast {:?}",
            durations[0],
            durations[1]
        );
    }

    #[test]
    fn striping_scales_aggregate_bandwidth() {
        // 8 clients each writing 1 MiB: with 8 providers round-robin the
        // transfers overlap; with 1 provider they serialize. The ratio of
        // total times must be close to 8.
        let cost = CostModel::grid5000();
        let time_for = |nprov: usize| {
            let m = Arc::new(ProviderManager::new(
                nprov,
                cost,
                AllocationStrategy::RoundRobin,
                Arc::new(FaultInjector::default()),
                7,
            ));
            let mc = Arc::clone(&m);
            let (_, total) = run_actors(8, move |i, p| {
                mc.put_replicated(p, ChunkId::new(i as u64), &Bytes::from(vec![0u8; 1 << 20]), 1, 1)
                    .unwrap();
            });
            total
        };
        let t1 = time_for(1);
        let t8 = time_for(8);
        let ratio = t1.as_secs_f64() / t8.as_secs_f64();
        assert!(ratio > 5.0, "striping speedup only {ratio:.2}x");
    }
}
