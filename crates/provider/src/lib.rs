//! # atomio-provider
//!
//! Data providers: the storage servers that hold immutable chunks of blob
//! data, plus the provider manager that implements the paper's **data
//! striping** principle (chunks spread over many providers so aggregate
//! bandwidth scales with provider count).
//!
//! Key property: chunks are **immutable**. A write never modifies a stored
//! chunk; it allocates fresh chunk ids and adds new chunk objects. That is
//! the data half of the versioning design — readers of old snapshots can
//! never observe a torn write, because the bytes they reference are never
//! touched again.
//!
//! [`DataProvider`] models one storage server: a NIC and a disk (both
//! serialized virtual-time resources from `atomio-simgrid`) in front of an
//! in-memory chunk table; [`DiskProvider`] is its durable twin, keeping
//! payloads in slot-sharded append-only part files with crash recovery.
//! Pick between them with [`chunk_store_for`] and a
//! [`BackendConfig`](atomio_types::BackendConfig). [`ProviderManager`]
//! routes chunk placements using a pluggable [`AllocationStrategy`] and
//! handles replication.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod disk;
pub mod integrity;
pub mod manager;
pub mod store;

pub use disk::{chunk_store_for, DiskProvider};
pub use integrity::{chunk_checksum, ScrubReport};
pub use manager::{AllocationStrategy, GetRequest, ProviderManager};
pub use store::{ChunkStore, DataProvider};
