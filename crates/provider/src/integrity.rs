//! Chunk integrity: checksums, scrubbing, and replica repair.
//!
//! Every stored chunk carries a checksum computed at ingest. A *scrub*
//! pass re-reads a provider's chunks and reports mismatches (bit rot,
//! torn media writes — injected in tests via
//! [`DataProvider::corrupt_chunk`]). Because chunks are immutable and
//! replicated, repair is trivial: fetch any healthy replica and
//! re-ingest — no quiescence, no locks, no version bumps. Another quiet
//! payoff of the immutable-data design.

use crate::manager::ProviderManager;
use crate::store::DataProvider;
use atomio_simgrid::Participant;
use atomio_types::stamp::mix64;
use atomio_types::{ByteRange, ChunkId, Error, ProviderId, Result};

/// Checksum of a chunk payload: four interleaved 64-bit mix lanes,
/// folded at the end (not crypto; this models CRC-grade integrity
/// checking). A single rolling lane is a serial multiply chain that
/// caps ingest at a few hundred MB/s per core; four independent lanes
/// keep the multipliers pipelined. Each lane is a bijective chain, so
/// any single-bit flip still avalanches into the fold.
pub fn chunk_checksum(data: &[u8]) -> u64 {
    const SEED: u64 = 0xC0FF_EE00_D15C_0B0E;
    let mut lanes = [
        SEED ^ (data.len() as u64),
        SEED.rotate_left(16),
        SEED.rotate_left(32),
        SEED.rotate_left(48),
    ];
    let mut blocks = data.chunks_exact(32);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane = mix64(*lane ^ u64::from_le_bytes(word.try_into().unwrap()));
        }
    }
    for (i, block) in blocks.remainder().chunks(8).enumerate() {
        let mut word = [0u8; 8];
        word[..block.len()].copy_from_slice(block);
        lanes[i] = mix64(lanes[i] ^ u64::from_le_bytes(word));
    }
    mix64(lanes[0] ^ mix64(lanes[1] ^ mix64(lanes[2] ^ lanes[3])))
}

/// Result of scrubbing one provider.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Chunks whose payload matched their checksum.
    pub healthy: u64,
    /// Chunks whose payload did not match (with ids).
    pub corrupted: Vec<ChunkId>,
}

impl DataProvider {
    /// Re-reads every chunk on this provider and verifies checksums.
    /// Charges disk time for the full scan (scrubbing is not free).
    pub fn scrub(&self, p: &Participant) -> ScrubReport {
        let mut report = ScrubReport::default();
        for (chunk, data, stored_sum) in self.chunk_snapshot() {
            self.charge_disk_scan(p, data.len() as u64);
            if chunk_checksum(&data) == stored_sum {
                report.healthy += 1;
            } else {
                report.corrupted.push(chunk);
            }
        }
        report.corrupted.sort_unstable();
        report
    }
}

impl ProviderManager {
    /// Repairs a corrupted chunk on `victim` by fetching a healthy
    /// replica from the other `homes` and re-ingesting it.
    ///
    /// # Errors
    /// [`Error::ChunkNotFound`] when no healthy replica exists anywhere.
    pub fn repair_chunk(
        &self,
        p: &Participant,
        chunk: ChunkId,
        victim: ProviderId,
        homes: &[ProviderId],
    ) -> Result<()> {
        for &home in homes {
            if home == victim {
                continue;
            }
            let Ok(provider) = self.provider(home) else {
                continue;
            };
            let Ok(data) = provider.get_chunk(p, chunk) else {
                continue;
            };
            if chunk_checksum(&data) != provider.checksum_of(chunk).unwrap_or(0) {
                continue; // that replica is rotten too
            }
            let target = self.provider(victim)?;
            target.evict_chunk(chunk);
            target.put_chunk(p, chunk, data)?;
            return Ok(());
        }
        Err(Error::ChunkNotFound {
            provider: victim,
            chunk,
        })
    }

    /// Scrubs every provider and repairs every corrupted chunk that has
    /// a healthy replica. Returns `(corruptions_found, repaired)`.
    pub fn scrub_and_repair(
        &self,
        p: &Participant,
        homes_of: impl Fn(ChunkId) -> Vec<ProviderId>,
    ) -> (u64, u64) {
        let mut found = 0;
        let mut repaired = 0;
        for provider in self.providers() {
            let report = provider.scrub(p);
            for chunk in report.corrupted {
                found += 1;
                if self
                    .repair_chunk(p, chunk, provider.id(), &homes_of(chunk))
                    .is_ok()
                {
                    repaired += 1;
                }
            }
        }
        (found, repaired)
    }
}

/// A blob-absolute range and the checksum of the data within; used by
/// end-to-end integrity tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeChecksum {
    /// The checked range.
    pub range: ByteRange,
    /// Its checksum.
    pub sum: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::AllocationStrategy;
    use atomio_simgrid::clock::run_actors;
    use atomio_simgrid::{CostModel, FaultInjector};
    use bytes::Bytes;
    use std::sync::Arc;

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let data = (0u8..=255).collect::<Vec<_>>();
        let sum = chunk_checksum(&data);
        for byte in [0usize, 1, 100, 255] {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(chunk_checksum(&mutated), sum, "byte {byte} bit {bit}");
            }
        }
        // Length extension also changes the sum.
        let mut longer = data.clone();
        longer.push(0);
        assert_ne!(chunk_checksum(&longer), sum);
        assert_ne!(chunk_checksum(&[]), sum);
    }

    fn mgr(n: usize) -> ProviderManager {
        ProviderManager::new(
            n,
            CostModel::zero(),
            AllocationStrategy::RoundRobin,
            Arc::new(FaultInjector::default()),
            7,
        )
    }

    #[test]
    fn scrub_reports_corruption() {
        let m = mgr(1);
        run_actors(1, |_, p| {
            let prov = m.provider(ProviderId::new(0)).unwrap();
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1u8; 64]))
                .unwrap();
            prov.put_chunk(p, ChunkId::new(2), Bytes::from(vec![2u8; 64]))
                .unwrap();
            let clean = prov.scrub(p);
            assert_eq!(clean.healthy, 2);
            assert!(clean.corrupted.is_empty());

            prov.corrupt_chunk(ChunkId::new(2), 10);
            let dirty = prov.scrub(p);
            assert_eq!(dirty.healthy, 1);
            assert_eq!(dirty.corrupted, vec![ChunkId::new(2)]);
        });
    }

    #[test]
    fn repair_restores_from_replica() {
        let m = mgr(3);
        run_actors(1, |_, p| {
            let homes = m
                .put_replicated(p, ChunkId::new(9), &Bytes::from(vec![7u8; 128]), 2, 2)
                .unwrap();
            let victim = homes[0];
            m.provider(victim)
                .unwrap()
                .corrupt_chunk(ChunkId::new(9), 5);
            assert_eq!(m.provider(victim).unwrap().scrub(p).corrupted.len(), 1);

            m.repair_chunk(p, ChunkId::new(9), victim, &homes).unwrap();
            let healed = m.provider(victim).unwrap().scrub(p);
            assert_eq!(healed.corrupted.len(), 0);
            let data = m
                .provider(victim)
                .unwrap()
                .get_chunk(p, ChunkId::new(9))
                .unwrap();
            assert_eq!(data.as_ref(), &[7u8; 128][..]);
        });
    }

    #[test]
    fn repair_fails_without_healthy_replica() {
        let m = mgr(2);
        run_actors(1, |_, p| {
            let homes = m
                .put_replicated(p, ChunkId::new(1), &Bytes::from(vec![3u8; 32]), 1, 1)
                .unwrap();
            assert_eq!(homes.len(), 1, "unreplicated");
            m.provider(homes[0])
                .unwrap()
                .corrupt_chunk(ChunkId::new(1), 0);
            assert!(matches!(
                m.repair_chunk(p, ChunkId::new(1), homes[0], &homes),
                Err(Error::ChunkNotFound { .. })
            ));
        });
    }

    #[test]
    fn scrub_and_repair_sweeps_the_fleet() {
        let m = mgr(4);
        run_actors(1, |_, p| {
            let mut homes_map = std::collections::HashMap::new();
            for i in 0..8u64 {
                let homes = m
                    .put_replicated(p, ChunkId::new(i), &Bytes::from(vec![i as u8; 64]), 2, 2)
                    .unwrap();
                homes_map.insert(ChunkId::new(i), homes);
            }
            // Corrupt three chunks (one replica each).
            for i in [1u64, 4, 6] {
                let victim = homes_map[&ChunkId::new(i)][0];
                m.provider(victim)
                    .unwrap()
                    .corrupt_chunk(ChunkId::new(i), 3);
            }
            let (found, repaired) =
                m.scrub_and_repair(p, |c| homes_map.get(&c).cloned().unwrap_or_default());
            assert_eq!((found, repaired), (3, 3));
            // A second sweep is clean.
            let (found2, _) =
                m.scrub_and_repair(p, |c| homes_map.get(&c).cloned().unwrap_or_default());
            assert_eq!(found2, 0);
        });
    }

    #[test]
    fn scrub_charges_disk_time() {
        let cost = CostModel::grid5000();
        let m = ProviderManager::new(
            1,
            cost,
            AllocationStrategy::RoundRobin,
            Arc::new(FaultInjector::default()),
            7,
        );
        let (_, total) = run_actors(1, |_, p| {
            let prov = m.provider(ProviderId::new(0)).unwrap();
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![0u8; 1 << 20]))
                .unwrap();
            let before = p.now();
            prov.scrub(p);
            p.now() - before
        });
        let _ = total;
    }
}
