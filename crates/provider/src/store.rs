//! A single data provider: one storage server holding immutable chunks.

use atomio_simgrid::{CostModel, FaultInjector, Participant, Resource};
use atomio_types::{ByteRange, ChunkId, Error, ProviderId, Result};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One simulated storage server.
///
/// Every request pays: one RPC round trip, the NIC transfer of the bytes
/// moved, and the disk transfer of the bytes moved. NIC and disk are
/// serialized virtual-time resources, so a provider saturates under load —
/// which is exactly why striping across providers raises aggregate
/// throughput.
#[derive(Debug)]
pub struct DataProvider {
    id: ProviderId,
    cost: CostModel,
    nic: Resource,
    disk: Resource,
    /// Chunk payloads with their ingest-time checksums.
    chunks: RwLock<HashMap<ChunkId, (Bytes, u64)>>,
    bytes_stored: AtomicU64,
    faults: Arc<FaultInjector>,
}

impl DataProvider {
    /// Creates a provider with the given id, cost model, and fault plane.
    pub fn new(id: ProviderId, cost: CostModel, faults: Arc<FaultInjector>) -> Self {
        DataProvider {
            id,
            cost,
            nic: Resource::new(format!("{id}/nic")),
            disk: Resource::new(format!("{id}/disk")),
            chunks: RwLock::new(HashMap::new()),
            bytes_stored: AtomicU64::new(0),
            faults: Arc::clone(&faults),
        }
    }

    /// This provider's id.
    pub fn id(&self) -> ProviderId {
        self.id
    }

    fn check_alive(&self) -> Result<()> {
        if self.faults.is_failed(self.id) {
            Err(Error::ProviderFailed(self.id))
        } else {
            Ok(())
        }
    }

    /// Stores an immutable chunk.
    ///
    /// # Errors
    /// * [`Error::ProviderFailed`] if the provider is failed.
    /// * [`Error::Internal`] if the chunk id already exists — chunk ids
    ///   are never reused, so a duplicate indicates a caller bug.
    pub fn put_chunk(&self, p: &Participant, chunk: ChunkId, data: Bytes) -> Result<()> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let len = data.len() as u64;
        self.nic.serve(p, self.cost.net_transfer(len));
        self.disk.serve(p, self.cost.disk_transfer(len));
        self.check_alive()?; // may have failed during the transfer
        let checksum = crate::integrity::chunk_checksum(&data);
        let mut chunks = self.chunks.write();
        if chunks.contains_key(&chunk) {
            return Err(Error::Internal(format!(
                "chunk id {chunk} reused on {}",
                self.id
            )));
        }
        chunks.insert(chunk, (data, checksum));
        self.bytes_stored.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    /// Fetches a whole chunk.
    pub fn get_chunk(&self, p: &Participant, chunk: ChunkId) -> Result<Bytes> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let data = self
            .chunks
            .read()
            .get(&chunk)
            .map(|(d, _)| d.clone())
            .ok_or(Error::ChunkNotFound {
                provider: self.id,
                chunk,
            })?;
        let len = data.len() as u64;
        self.disk.serve(p, self.cost.disk_transfer(len));
        self.nic.serve(p, self.cost.net_transfer(len));
        Ok(data)
    }

    /// Fetches a sub-range of a chunk (fine-grain access: only the
    /// requested bytes cross the disk and network).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] if the range exceeds the stored chunk.
    pub fn get_chunk_range(
        &self,
        p: &Participant,
        chunk: ChunkId,
        range: ByteRange,
    ) -> Result<Bytes> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let data = self
            .chunks
            .read()
            .get(&chunk)
            .map(|(d, _)| d.clone())
            .ok_or(Error::ChunkNotFound {
                provider: self.id,
                chunk,
            })?;
        if range.end() > data.len() as u64 {
            return Err(Error::OutOfBounds {
                requested_end: range.end(),
                snapshot_size: data.len() as u64,
            });
        }
        self.disk.serve(p, self.cost.disk_transfer(range.len));
        self.nic.serve(p, self.cost.net_transfer(range.len));
        Ok(data.slice(range.offset as usize..range.end() as usize))
    }

    /// True if the chunk is present (no cost charged; used by tests and
    /// repair logic).
    pub fn has_chunk(&self, chunk: ChunkId) -> bool {
        self.chunks.read().contains_key(&chunk)
    }

    /// Number of chunks held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.read().len()
    }

    /// Total payload bytes held.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored.load(Ordering::Relaxed)
    }

    /// Deletes a chunk (used by version garbage collection), returning
    /// the number of payload bytes reclaimed. Missing chunks are ignored.
    pub fn evict_chunk(&self, chunk: ChunkId) -> u64 {
        match self.chunks.write().remove(&chunk) {
            Some((data, _)) => {
                self.bytes_stored
                    .fetch_sub(data.len() as u64, Ordering::Relaxed);
                data.len() as u64
            }
            None => 0,
        }
    }

    /// The ingest-time checksum of a chunk, if present.
    pub fn checksum_of(&self, chunk: ChunkId) -> Option<u64> {
        self.chunks.read().get(&chunk).map(|&(_, sum)| sum)
    }

    /// Flips one byte of a stored chunk in place — the bit-rot injection
    /// hook for integrity tests. No-op when the chunk or offset is
    /// missing. (Stored checksum is deliberately left stale.)
    pub fn corrupt_chunk(&self, chunk: ChunkId, byte: usize) {
        let mut chunks = self.chunks.write();
        if let Some((data, _)) = chunks.get_mut(&chunk) {
            if byte < data.len() {
                let mut owned = data.to_vec();
                owned[byte] ^= 0xFF;
                *data = Bytes::from(owned);
            }
        }
    }

    /// Snapshot of `(chunk, payload, stored checksum)` for scrubbing.
    pub(crate) fn chunk_snapshot(&self) -> Vec<(ChunkId, Bytes, u64)> {
        self.chunks
            .read()
            .iter()
            .map(|(&id, (data, sum))| (id, data.clone(), *sum))
            .collect()
    }

    /// Charges disk time for scanning `len` bytes (scrub accounting).
    pub(crate) fn charge_disk_scan(&self, p: &Participant, len: u64) {
        self.disk.serve(p, self.cost.disk_transfer(len));
    }

    /// The provider's disk resource (for utilization accounting).
    pub fn disk(&self) -> &Resource {
        &self.disk
    }

    /// The provider's NIC resource (for utilization accounting).
    pub fn nic(&self) -> &Resource {
        &self.nic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;

    fn provider(cost: CostModel) -> Arc<DataProvider> {
        Arc::new(DataProvider::new(
            ProviderId::new(0),
            cost,
            Arc::new(FaultInjector::default()),
        ))
    }

    #[test]
    fn put_get_roundtrip() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1, 2, 3]))?;
            prov.get_chunk(p, ChunkId::new(1))
        });
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(prov.chunk_count(), 1);
        assert_eq!(prov.bytes_stored(), 3);
    }

    #[test]
    fn get_range_slices() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from((0u8..100).collect::<Vec<_>>()))?;
            prov.get_chunk_range(p, ChunkId::new(1), ByteRange::new(10, 5))
        });
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[10, 11, 12, 13, 14]);
    }

    #[test]
    fn get_range_out_of_bounds() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![0; 8]))?;
            prov.get_chunk_range(p, ChunkId::new(1), ByteRange::new(4, 8))
        });
        assert!(matches!(res[0], Err(Error::OutOfBounds { .. })));
    }

    #[test]
    fn missing_chunk_reports_provider() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| prov.get_chunk(p, ChunkId::new(9)));
        assert_eq!(
            res[0],
            Err(Error::ChunkNotFound {
                provider: ProviderId::new(0),
                chunk: ChunkId::new(9)
            })
        );
    }

    #[test]
    fn duplicate_chunk_id_rejected() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1]))?;
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![2]))
        });
        assert!(matches!(res[0], Err(Error::Internal(_))));
    }

    #[test]
    fn failed_provider_refuses() {
        let faults = Arc::new(FaultInjector::default());
        let prov = Arc::new(DataProvider::new(
            ProviderId::new(3),
            CostModel::zero(),
            Arc::clone(&faults),
        ));
        faults.fail_provider(ProviderId::new(3));
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1]))
        });
        assert_eq!(res[0], Err(Error::ProviderFailed(ProviderId::new(3))));
        faults.heal_provider(ProviderId::new(3));
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1]))
        });
        assert!(res[0].is_ok());
    }

    #[test]
    fn concurrent_puts_to_one_provider_serialize_on_disk() {
        // With the grid5000 cost model, 4 concurrent 1 MiB puts to one
        // provider must take ~4× the single-put disk time (disk is the
        // bottleneck): the provider serializes.
        let cost = CostModel::grid5000();
        let prov = provider(cost);
        let pr = Arc::clone(&prov);
        let (_, total) = run_actors(4, move |i, p| {
            pr.put_chunk(p, ChunkId::new(i as u64), Bytes::from(vec![0u8; 1 << 20]))
                .unwrap();
        });
        let disk_time = cost.disk_transfer(1 << 20);
        assert!(
            total >= disk_time * 4,
            "total {total:?} vs 4x disk {:?}",
            disk_time * 4
        );
        // ... but not pathologically more (NIC overlaps with disk).
        assert!(total < disk_time * 6, "total {total:?}");
    }

    #[test]
    fn eviction_reclaims_bytes() {
        let prov = provider(CostModel::zero());
        let (_, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![0; 10]))
                .unwrap();
            prov.put_chunk(p, ChunkId::new(2), Bytes::from(vec![0; 20]))
                .unwrap();
        });
        assert_eq!(prov.bytes_stored(), 30);
        assert_eq!(prov.evict_chunk(ChunkId::new(1)), 10);
        assert_eq!(prov.bytes_stored(), 20);
        assert!(!prov.has_chunk(ChunkId::new(1)));
        assert_eq!(prov.evict_chunk(ChunkId::new(99)), 0); // no-op
        assert_eq!(prov.bytes_stored(), 20);
    }
}
