//! A single data provider: one storage server holding immutable chunks.

use crate::integrity::ScrubReport;
use atomio_simgrid::{CostModel, FaultInjector, Participant, Resource, SimTime};
use atomio_types::{ByteRange, ChunkId, Error, ProviderId, Result};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The chunk-storage surface the provider manager routes against.
///
/// [`DataProvider`] is the in-process implementation (the `Loopback`
/// transport); `atomio-rpc`'s `RemoteProvider` speaks the same interface
/// over a socket. Keeping the manager generic over this trait is what
/// lets one placement/replication/failover policy drive both deployments.
pub trait ChunkStore: Send + Sync + std::fmt::Debug {
    /// This store's provider id (its slot in the manager's fleet).
    fn id(&self) -> ProviderId;

    /// Stores an immutable chunk, blocking the participant for the
    /// transfer. See [`DataProvider::put_chunk`].
    fn put_chunk(&self, p: &Participant, chunk: ChunkId, data: Bytes) -> Result<()>;

    /// Reservation-based put for the pipelined transfer engine. See
    /// [`DataProvider::put_chunk_at`].
    fn put_chunk_at(&self, arrival: SimTime, chunk: ChunkId, data: Bytes) -> Result<SimTime>;

    /// Fetches a whole chunk. See [`DataProvider::get_chunk`].
    fn get_chunk(&self, p: &Participant, chunk: ChunkId) -> Result<Bytes>;

    /// Fetches a sub-range of a chunk. See
    /// [`DataProvider::get_chunk_range`].
    fn get_chunk_range(&self, p: &Participant, chunk: ChunkId, range: ByteRange) -> Result<Bytes>;

    /// Reservation-based ranged get. See
    /// [`DataProvider::get_chunk_range_at`].
    fn get_chunk_range_at(
        &self,
        arrival: SimTime,
        chunk: ChunkId,
        range: ByteRange,
    ) -> Result<(Bytes, SimTime)>;

    /// True if the chunk is present (no cost charged).
    fn has_chunk(&self, chunk: ChunkId) -> bool;

    /// Number of chunks held.
    fn chunk_count(&self) -> usize;

    /// Total payload bytes held (drives the `LeastLoaded` strategy).
    fn bytes_stored(&self) -> u64;

    /// Deletes a chunk, returning the payload bytes reclaimed.
    fn evict_chunk(&self, chunk: ChunkId) -> u64;

    /// Deletes a batch of chunks, returning the total payload bytes
    /// reclaimed — the GC sweep's unit of work. The default loops over
    /// [`Self::evict_chunk`]; remote proxies override it with a single
    /// batched RPC.
    fn evict_chunk_batch(&self, chunks: &[ChunkId]) -> u64 {
        chunks.iter().map(|&c| self.evict_chunk(c)).sum()
    }

    /// The ingest-time checksum of a chunk, if present.
    fn checksum_of(&self, chunk: ChunkId) -> Option<u64>;

    /// Bit-rot injection hook for integrity tests.
    fn corrupt_chunk(&self, chunk: ChunkId, byte: usize);

    /// Re-reads every chunk and verifies checksums. Backends that cannot
    /// scan in place (e.g. remote proxies) may report an empty pass.
    fn scrub(&self, _p: &Participant) -> ScrubReport {
        ScrubReport::default()
    }

    /// Stored payload length of a chunk, if this store can answer
    /// locally (no cost charged). Remote proxies return `None`.
    fn chunk_len(&self, _chunk: ChunkId) -> Option<u64> {
        None
    }

    /// Highest chunk id this store has ever held, if it tracks one.
    /// Durable backends answer from their recovery scan so a reopening
    /// deployment can resume its id allocator past every id already on
    /// disk; ephemeral and proxy stores return `None`.
    fn max_chunk_id(&self) -> Option<ChunkId> {
        None
    }

    /// The store's disk resource, for utilization accounting. Proxy
    /// stores expose an idle resource (zero requests) so reports skip it.
    fn disk(&self) -> &Resource;

    /// The store's NIC resource, for utilization accounting.
    fn nic(&self) -> &Resource;

    /// The cost model callers of the reservation API book their own side
    /// of a transfer against.
    fn cost(&self) -> &CostModel;
}

/// One simulated storage server.
///
/// Every request pays: one RPC round trip, the NIC transfer of the bytes
/// moved, and the disk transfer of the bytes moved. NIC and disk are
/// serialized virtual-time resources, so a provider saturates under load —
/// which is exactly why striping across providers raises aggregate
/// throughput.
#[derive(Debug)]
pub struct DataProvider {
    id: ProviderId,
    cost: CostModel,
    nic: Resource,
    disk: Resource,
    /// Chunk payloads with their ingest-time checksums.
    chunks: RwLock<HashMap<ChunkId, (Bytes, u64)>>,
    bytes_stored: AtomicU64,
    faults: Arc<FaultInjector>,
}

impl DataProvider {
    /// Creates a provider with the given id, cost model, and fault plane.
    pub fn new(id: ProviderId, cost: CostModel, faults: Arc<FaultInjector>) -> Self {
        DataProvider {
            id,
            cost,
            nic: Resource::new(format!("{id}/nic")),
            disk: Resource::new(format!("{id}/disk")),
            chunks: RwLock::new(HashMap::new()),
            bytes_stored: AtomicU64::new(0),
            faults: Arc::clone(&faults),
        }
    }

    /// This provider's id.
    pub fn id(&self) -> ProviderId {
        self.id
    }

    fn check_alive(&self) -> Result<()> {
        if self.faults.is_failed(self.id) {
            Err(Error::ProviderFailed(self.id))
        } else {
            Ok(())
        }
    }

    /// Stores an immutable chunk.
    ///
    /// # Errors
    /// * [`Error::ProviderFailed`] if the provider is failed.
    /// * [`Error::Internal`] if the chunk id already exists — chunk ids
    ///   are never reused, so a duplicate indicates a caller bug.
    pub fn put_chunk(&self, p: &Participant, chunk: ChunkId, data: Bytes) -> Result<()> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let len = data.len() as u64;
        self.nic.serve(p, self.cost.net_transfer(len));
        self.disk.serve(p, self.cost.disk_transfer(len));
        self.check_alive()?; // may have failed during the transfer
        let checksum = crate::integrity::chunk_checksum(&data);
        let mut chunks = self.chunks.write();
        if chunks.contains_key(&chunk) {
            return Err(Error::Internal(format!(
                "chunk id {chunk} reused on {}",
                self.id
            )));
        }
        chunks.insert(chunk, (data, checksum));
        self.bytes_stored.fetch_add(len, Ordering::Relaxed);
        Ok(())
    }

    /// Reservation-based variant of [`Self::put_chunk`] for the pipelined
    /// transfer engine.
    ///
    /// `arrival` is the absolute virtual instant the first payload byte
    /// reaches this provider (the caller has already accounted the RPC
    /// offset and its own injection NIC). The provider books its NIC and
    /// then its disk from there and returns the completion instant
    /// **without blocking** — the caller sleeps once, to the max
    /// completion over its whole batch. Booked this way, replica copies
    /// on distinct providers overlap while each provider's own devices
    /// still serialize.
    ///
    /// The chunk is recorded at booking time: a provider that fails
    /// mid-transfer keeps the payload but refuses all subsequent access,
    /// which is indistinguishable to clients from the serial path's
    /// abort-on-failure.
    ///
    /// # Errors
    /// Same as [`Self::put_chunk`].
    pub fn put_chunk_at(&self, arrival: SimTime, chunk: ChunkId, data: Bytes) -> Result<SimTime> {
        self.check_alive()?;
        let len = data.len() as u64;
        let nic_done = self.nic.reserve(arrival, self.cost.net_transfer(len));
        let disk_done = self.disk.reserve(nic_done, self.cost.disk_transfer(len));
        let checksum = crate::integrity::chunk_checksum(&data);
        let mut chunks = self.chunks.write();
        if chunks.contains_key(&chunk) {
            return Err(Error::Internal(format!(
                "chunk id {chunk} reused on {}",
                self.id
            )));
        }
        chunks.insert(chunk, (data, checksum));
        self.bytes_stored.fetch_add(len, Ordering::Relaxed);
        Ok(disk_done)
    }

    /// Reservation-based variant of [`Self::get_chunk_range`]: books the
    /// disk read and then the NIC send-out starting at `arrival` and
    /// returns `(payload, instant the last byte leaves this provider's
    /// NIC)` without blocking. The caller books its own reception NIC
    /// against that instant and sleeps to the batch max.
    ///
    /// # Errors
    /// Same as [`Self::get_chunk_range`]. All error paths cost nothing:
    /// nothing is booked before the payload is known to be servable.
    pub fn get_chunk_range_at(
        &self,
        arrival: SimTime,
        chunk: ChunkId,
        range: ByteRange,
    ) -> Result<(Bytes, SimTime)> {
        self.check_alive()?;
        let data = self
            .chunks
            .read()
            .get(&chunk)
            .map(|(d, _)| d.clone())
            .ok_or(Error::ChunkNotFound {
                provider: self.id,
                chunk,
            })?;
        if range.end() > data.len() as u64 {
            return Err(Error::OutOfBounds {
                requested_end: range.end(),
                snapshot_size: data.len() as u64,
            });
        }
        let disk_done = self
            .disk
            .reserve(arrival, self.cost.disk_transfer(range.len));
        let nic_done = self
            .nic
            .reserve(disk_done, self.cost.net_transfer(range.len));
        Ok((
            data.slice(range.offset as usize..range.end() as usize),
            nic_done,
        ))
    }

    /// Fetches a whole chunk.
    pub fn get_chunk(&self, p: &Participant, chunk: ChunkId) -> Result<Bytes> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let data = self
            .chunks
            .read()
            .get(&chunk)
            .map(|(d, _)| d.clone())
            .ok_or(Error::ChunkNotFound {
                provider: self.id,
                chunk,
            })?;
        let len = data.len() as u64;
        self.disk.serve(p, self.cost.disk_transfer(len));
        self.nic.serve(p, self.cost.net_transfer(len));
        Ok(data)
    }

    /// Fetches a sub-range of a chunk (fine-grain access: only the
    /// requested bytes cross the disk and network).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] if the range exceeds the stored chunk.
    pub fn get_chunk_range(
        &self,
        p: &Participant,
        chunk: ChunkId,
        range: ByteRange,
    ) -> Result<Bytes> {
        self.check_alive()?;
        p.sleep(self.cost.rpc_round_trip());
        let data = self
            .chunks
            .read()
            .get(&chunk)
            .map(|(d, _)| d.clone())
            .ok_or(Error::ChunkNotFound {
                provider: self.id,
                chunk,
            })?;
        if range.end() > data.len() as u64 {
            return Err(Error::OutOfBounds {
                requested_end: range.end(),
                snapshot_size: data.len() as u64,
            });
        }
        self.disk.serve(p, self.cost.disk_transfer(range.len));
        self.nic.serve(p, self.cost.net_transfer(range.len));
        Ok(data.slice(range.offset as usize..range.end() as usize))
    }

    /// True if the chunk is present (no cost charged; used by tests and
    /// repair logic).
    pub fn has_chunk(&self, chunk: ChunkId) -> bool {
        self.chunks.read().contains_key(&chunk)
    }

    /// Number of chunks held.
    pub fn chunk_count(&self) -> usize {
        self.chunks.read().len()
    }

    /// Total payload bytes held.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored.load(Ordering::Relaxed)
    }

    /// Deletes a chunk (used by version garbage collection), returning
    /// the number of payload bytes reclaimed. Missing chunks are ignored.
    pub fn evict_chunk(&self, chunk: ChunkId) -> u64 {
        match self.chunks.write().remove(&chunk) {
            Some((data, _)) => {
                self.bytes_stored
                    .fetch_sub(data.len() as u64, Ordering::Relaxed);
                data.len() as u64
            }
            None => 0,
        }
    }

    /// The stored payload length of a chunk, if present (no cost
    /// charged; lets whole-chunk reads go through the range-read path).
    pub fn chunk_len(&self, chunk: ChunkId) -> Option<u64> {
        self.chunks.read().get(&chunk).map(|(d, _)| d.len() as u64)
    }

    /// The ingest-time checksum of a chunk, if present.
    pub fn checksum_of(&self, chunk: ChunkId) -> Option<u64> {
        self.chunks.read().get(&chunk).map(|&(_, sum)| sum)
    }

    /// Flips one byte of a stored chunk in place — the bit-rot injection
    /// hook for integrity tests. No-op when the chunk or offset is
    /// missing. (Stored checksum is deliberately left stale.)
    pub fn corrupt_chunk(&self, chunk: ChunkId, byte: usize) {
        let mut chunks = self.chunks.write();
        if let Some((data, _)) = chunks.get_mut(&chunk) {
            if byte < data.len() {
                let mut owned = data.to_vec();
                owned[byte] ^= 0xFF;
                *data = Bytes::from(owned);
            }
        }
    }

    /// Snapshot of `(chunk, payload, stored checksum)` for scrubbing.
    pub(crate) fn chunk_snapshot(&self) -> Vec<(ChunkId, Bytes, u64)> {
        self.chunks
            .read()
            .iter()
            .map(|(&id, (data, sum))| (id, data.clone(), *sum))
            .collect()
    }

    /// Charges disk time for scanning `len` bytes (scrub accounting).
    pub(crate) fn charge_disk_scan(&self, p: &Participant, len: u64) {
        self.disk.serve(p, self.cost.disk_transfer(len));
    }

    /// The provider's disk resource (for utilization accounting).
    pub fn disk(&self) -> &Resource {
        &self.disk
    }

    /// The provider's NIC resource (for utilization accounting).
    pub fn nic(&self) -> &Resource {
        &self.nic
    }

    /// The cost model this provider charges (callers of the reservation
    /// API need it to book their own side of a transfer).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }
}

impl ChunkStore for DataProvider {
    fn id(&self) -> ProviderId {
        DataProvider::id(self)
    }

    fn put_chunk(&self, p: &Participant, chunk: ChunkId, data: Bytes) -> Result<()> {
        DataProvider::put_chunk(self, p, chunk, data)
    }

    fn put_chunk_at(&self, arrival: SimTime, chunk: ChunkId, data: Bytes) -> Result<SimTime> {
        DataProvider::put_chunk_at(self, arrival, chunk, data)
    }

    fn get_chunk(&self, p: &Participant, chunk: ChunkId) -> Result<Bytes> {
        DataProvider::get_chunk(self, p, chunk)
    }

    fn get_chunk_range(&self, p: &Participant, chunk: ChunkId, range: ByteRange) -> Result<Bytes> {
        DataProvider::get_chunk_range(self, p, chunk, range)
    }

    fn get_chunk_range_at(
        &self,
        arrival: SimTime,
        chunk: ChunkId,
        range: ByteRange,
    ) -> Result<(Bytes, SimTime)> {
        DataProvider::get_chunk_range_at(self, arrival, chunk, range)
    }

    fn has_chunk(&self, chunk: ChunkId) -> bool {
        DataProvider::has_chunk(self, chunk)
    }

    fn chunk_count(&self) -> usize {
        DataProvider::chunk_count(self)
    }

    fn bytes_stored(&self) -> u64 {
        DataProvider::bytes_stored(self)
    }

    fn evict_chunk(&self, chunk: ChunkId) -> u64 {
        DataProvider::evict_chunk(self, chunk)
    }

    fn checksum_of(&self, chunk: ChunkId) -> Option<u64> {
        DataProvider::checksum_of(self, chunk)
    }

    fn corrupt_chunk(&self, chunk: ChunkId, byte: usize) {
        DataProvider::corrupt_chunk(self, chunk, byte)
    }

    fn scrub(&self, p: &Participant) -> ScrubReport {
        DataProvider::scrub(self, p)
    }

    fn chunk_len(&self, chunk: ChunkId) -> Option<u64> {
        DataProvider::chunk_len(self, chunk)
    }

    fn max_chunk_id(&self) -> Option<ChunkId> {
        self.chunks.read().keys().max().copied()
    }

    fn disk(&self) -> &Resource {
        DataProvider::disk(self)
    }

    fn nic(&self) -> &Resource {
        DataProvider::nic(self)
    }

    fn cost(&self) -> &CostModel {
        DataProvider::cost(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomio_simgrid::clock::run_actors;

    fn provider(cost: CostModel) -> Arc<DataProvider> {
        Arc::new(DataProvider::new(
            ProviderId::new(0),
            cost,
            Arc::new(FaultInjector::default()),
        ))
    }

    #[test]
    fn put_get_roundtrip() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1, 2, 3]))?;
            prov.get_chunk(p, ChunkId::new(1))
        });
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(prov.chunk_count(), 1);
        assert_eq!(prov.bytes_stored(), 3);
    }

    #[test]
    fn get_range_slices() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(
                p,
                ChunkId::new(1),
                Bytes::from((0u8..100).collect::<Vec<_>>()),
            )?;
            prov.get_chunk_range(p, ChunkId::new(1), ByteRange::new(10, 5))
        });
        assert_eq!(res[0].as_ref().unwrap().as_ref(), &[10, 11, 12, 13, 14]);
    }

    #[test]
    fn get_range_out_of_bounds() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![0; 8]))?;
            prov.get_chunk_range(p, ChunkId::new(1), ByteRange::new(4, 8))
        });
        assert!(matches!(res[0], Err(Error::OutOfBounds { .. })));
    }

    #[test]
    fn missing_chunk_reports_provider() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| prov.get_chunk(p, ChunkId::new(9)));
        assert_eq!(
            res[0],
            Err(Error::ChunkNotFound {
                provider: ProviderId::new(0),
                chunk: ChunkId::new(9)
            })
        );
    }

    #[test]
    fn duplicate_chunk_id_rejected() {
        let prov = provider(CostModel::zero());
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1]))?;
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![2]))
        });
        assert!(matches!(res[0], Err(Error::Internal(_))));
    }

    #[test]
    fn failed_provider_refuses() {
        let faults = Arc::new(FaultInjector::default());
        let prov = Arc::new(DataProvider::new(
            ProviderId::new(3),
            CostModel::zero(),
            Arc::clone(&faults),
        ));
        faults.fail_provider(ProviderId::new(3));
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1]))
        });
        assert_eq!(res[0], Err(Error::ProviderFailed(ProviderId::new(3))));
        faults.heal_provider(ProviderId::new(3));
        let (res, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![1]))
        });
        assert!(res[0].is_ok());
    }

    #[test]
    fn concurrent_puts_to_one_provider_serialize_on_disk() {
        // With the grid5000 cost model, 4 concurrent 1 MiB puts to one
        // provider must take ~4× the single-put disk time (disk is the
        // bottleneck): the provider serializes.
        let cost = CostModel::grid5000();
        let prov = provider(cost);
        let pr = Arc::clone(&prov);
        let (_, total) = run_actors(4, move |i, p| {
            pr.put_chunk(p, ChunkId::new(i as u64), Bytes::from(vec![0u8; 1 << 20]))
                .unwrap();
        });
        let disk_time = cost.disk_transfer(1 << 20);
        assert!(
            total >= disk_time * 4,
            "total {total:?} vs 4x disk {:?}",
            disk_time * 4
        );
        // ... but not pathologically more (NIC overlaps with disk).
        assert!(total < disk_time * 6, "total {total:?}");
    }

    #[test]
    fn reserved_put_matches_serial_timing() {
        // A single reserved put, slept to completion, costs exactly what
        // the blocking path does: rpc + net + disk.
        let cost = CostModel::grid5000();
        let serial = provider(cost);
        let (_, t_serial) = run_actors(1, |_, p| {
            serial
                .put_chunk(p, ChunkId::new(1), Bytes::from(vec![0u8; 4096]))
                .unwrap();
        });
        let reserved = provider(cost);
        let (_, t_reserved) = run_actors(1, |_, p| {
            let arrival = p.now_ns() + cost.rpc_round_trip().as_nanos() as u64;
            let done = reserved
                .put_chunk_at(arrival, ChunkId::new(1), Bytes::from(vec![0u8; 4096]))
                .unwrap();
            p.sleep_until_ns(done);
        });
        assert_eq!(t_serial, t_reserved);
        assert_eq!(serial.disk().busy_time(), reserved.disk().busy_time());
        assert_eq!(serial.nic().busy_time(), reserved.nic().busy_time());
    }

    #[test]
    fn reserved_get_matches_serial_timing() {
        let cost = CostModel::grid5000();
        let setup = |prov: &Arc<DataProvider>| {
            let pr = Arc::clone(prov);
            run_actors(1, move |_, p| {
                pr.put_chunk(p, ChunkId::new(1), Bytes::from(vec![7u8; 4096]))
                    .unwrap();
            });
        };
        let serial = provider(cost);
        setup(&serial);
        let (_, t_serial) = run_actors(1, |_, p| {
            serial
                .get_chunk_range(p, ChunkId::new(1), ByteRange::new(0, 4096))
                .unwrap();
        });
        let reserved = provider(cost);
        setup(&reserved);
        let (res, t_reserved) = run_actors(1, |_, p| {
            let arrival = p.now_ns() + cost.rpc_round_trip().as_nanos() as u64;
            let (data, done) = reserved
                .get_chunk_range_at(arrival, ChunkId::new(1), ByteRange::new(0, 4096))
                .unwrap();
            p.sleep_until_ns(done);
            data
        });
        assert_eq!(t_serial, t_reserved);
        assert_eq!(res[0].as_ref(), &[7u8; 4096][..]);
    }

    #[test]
    fn reserved_get_error_paths_book_nothing() {
        let prov = provider(CostModel::grid5000());
        let missing = prov.get_chunk_range_at(0, ChunkId::new(9), ByteRange::new(0, 4));
        assert!(matches!(missing, Err(Error::ChunkNotFound { .. })));
        assert_eq!(prov.disk().request_count(), 0);
        assert_eq!(prov.nic().request_count(), 0);
    }

    #[test]
    fn eviction_reclaims_bytes() {
        let prov = provider(CostModel::zero());
        let (_, _) = run_actors(1, |_, p| {
            prov.put_chunk(p, ChunkId::new(1), Bytes::from(vec![0; 10]))
                .unwrap();
            prov.put_chunk(p, ChunkId::new(2), Bytes::from(vec![0; 20]))
                .unwrap();
        });
        assert_eq!(prov.bytes_stored(), 30);
        assert_eq!(prov.evict_chunk(ChunkId::new(1)), 10);
        assert_eq!(prov.bytes_stored(), 20);
        assert!(!prov.has_chunk(ChunkId::new(1)));
        assert_eq!(prov.evict_chunk(ChunkId::new(99)), 0); // no-op
        assert_eq!(prov.bytes_stored(), 20);
    }
}
