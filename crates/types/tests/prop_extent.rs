//! Property-based tests for the byte-range / extent-list algebra.
//!
//! The extent algebra underpins every atomicity argument in the workspace,
//! so we check its set-theoretic laws against a naive bitmap model.

use atomio_types::{ByteRange, ChunkGeometry, ExtentList};
use proptest::prelude::*;

const UNIVERSE: u64 = 512;

/// Arbitrary range within a small universe so overlaps are common.
fn arb_range() -> impl Strategy<Value = ByteRange> {
    (0..UNIVERSE, 0..64u64).prop_map(|(off, len)| ByteRange::new(off, len.min(UNIVERSE - off)))
}

fn arb_extents() -> impl Strategy<Value = ExtentList> {
    proptest::collection::vec(arb_range(), 0..12).prop_map(ExtentList::from_ranges)
}

/// Reference model: a byte-presence bitmap.
fn to_bitmap(e: &ExtentList) -> Vec<bool> {
    let mut bits = vec![false; UNIVERSE as usize];
    for r in e {
        for p in r.offset..r.end() {
            bits[p as usize] = true;
        }
    }
    bits
}

fn from_bitmap(bits: &[bool]) -> ExtentList {
    let ranges = bits
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| ByteRange::new(i as u64, 1));
    ExtentList::from_ranges(ranges)
}

proptest! {
    #[test]
    fn normalization_invariants(e in arb_extents()) {
        let ranges = e.ranges();
        for w in ranges.windows(2) {
            // Sorted, disjoint, non-adjacent.
            prop_assert!(w[0].end() < w[1].offset, "{:?} then {:?}", w[0], w[1]);
        }
        for r in ranges {
            prop_assert!(!r.is_empty());
        }
    }

    #[test]
    fn roundtrip_through_bitmap(e in arb_extents()) {
        prop_assert_eq!(from_bitmap(&to_bitmap(&e)), e);
    }

    #[test]
    fn union_matches_model(a in arb_extents(), b in arb_extents()) {
        let got = a.union(&b);
        let want: Vec<bool> = to_bitmap(&a)
            .iter()
            .zip(to_bitmap(&b).iter())
            .map(|(&x, &y)| x || y)
            .collect();
        prop_assert_eq!(got, from_bitmap(&want));
    }

    #[test]
    fn intersection_matches_model(a in arb_extents(), b in arb_extents()) {
        let got = a.intersection(&b);
        let want: Vec<bool> = to_bitmap(&a)
            .iter()
            .zip(to_bitmap(&b).iter())
            .map(|(&x, &y)| x && y)
            .collect();
        prop_assert_eq!(got, from_bitmap(&want));
    }

    #[test]
    fn subtract_matches_model(a in arb_extents(), b in arb_extents()) {
        let got = a.subtract(&b);
        let want: Vec<bool> = to_bitmap(&a)
            .iter()
            .zip(to_bitmap(&b).iter())
            .map(|(&x, &y)| x && !y)
            .collect();
        prop_assert_eq!(got, from_bitmap(&want));
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in arb_extents(), b in arb_extents()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn demorgan_style_identity(a in arb_extents(), b in arb_extents()) {
        // a = (a \ b) ∪ (a ∩ b), and the two parts are disjoint.
        let diff = a.subtract(&b);
        let inter = a.intersection(&b);
        prop_assert!(diff.intersection(&inter).is_empty());
        prop_assert_eq!(diff.union(&inter), a);
    }

    #[test]
    fn overlaps_agrees_with_intersection(a in arb_extents(), b in arb_extents()) {
        prop_assert_eq!(a.overlaps(&b), !a.intersection(&b).is_empty());
    }

    #[test]
    fn contains_agrees_with_bitmap(e in arb_extents(), p in 0..UNIVERSE) {
        prop_assert_eq!(e.contains(p), to_bitmap(&e)[p as usize]);
    }

    #[test]
    fn insert_equals_union_with_single(e in arb_extents(), r in arb_range()) {
        let mut inserted = e.clone();
        inserted.insert(r);
        prop_assert_eq!(inserted, e.union(&ExtentList::single(r)));
    }

    #[test]
    fn clip_is_intersection_with_window(e in arb_extents(), w in arb_range()) {
        prop_assert_eq!(e.clip(w), e.intersection(&ExtentList::single(w)));
    }

    #[test]
    fn covering_range_contains_everything(e in arb_extents()) {
        let cover = e.covering_range();
        for r in &e {
            prop_assert!(cover.contains_range(*r));
        }
        prop_assert_eq!(cover.len, e.total_len() + e.gap_len());
    }

    #[test]
    fn partition_tiles_set(e in arb_extents(), n in 1usize..6) {
        let parts = e.partition(n);
        prop_assert!(parts.len() <= n);
        let mut acc = ExtentList::new();
        for p in &parts {
            prop_assert!(acc.intersection(p).is_empty());
            acc = acc.union(p);
        }
        prop_assert_eq!(acc, e);
    }

    #[test]
    fn chunk_spans_tile_extents(e in arb_extents(), chunk_size in 1u64..128) {
        let geo = ChunkGeometry::new(chunk_size);
        let spans = geo.split_extents(&e);
        // Spans reassemble exactly to the extent list.
        let reassembled = ExtentList::from_ranges(spans.iter().map(|s| s.absolute));
        prop_assert_eq!(reassembled, e.clone());
        for s in &spans {
            // Each span stays within its chunk.
            prop_assert!(geo.chunk_range(s.index).contains_range(s.absolute));
            prop_assert_eq!(s.relative.len, s.absolute.len);
            prop_assert!(s.relative.end() <= chunk_size);
        }
        let total: u64 = spans.iter().map(|s| s.absolute.len).sum();
        prop_assert_eq!(total, e.total_len());
    }

    #[test]
    fn buffer_offsets_cover_payload(e in arb_extents()) {
        let mut expected = 0u64;
        for (r, off) in e.with_buffer_offsets() {
            prop_assert_eq!(off, expected);
            expected += r.len;
        }
        prop_assert_eq!(expected, e.total_len());
    }
}
