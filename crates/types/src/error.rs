//! Workspace-wide error type.
//!
//! Hand-rolled (no `thiserror`) to keep the dependency set inside the
//! approved list; the variants cover every failure surfaced by the storage
//! services, the baseline file system, and the MPI-I/O layer.

use crate::ids::{BlobId, ChunkId, ProviderId, VersionId};
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Any failure produced by the atomio stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum Error {
    /// A blob id was not found in the namespace.
    BlobNotFound(BlobId),
    /// The requested snapshot version has not been published (yet).
    VersionNotFound { blob: BlobId, version: VersionId },
    /// A data provider did not hold the requested chunk.
    ChunkNotFound {
        provider: ProviderId,
        chunk: ChunkId,
    },
    /// A provider id was unknown to the provider manager.
    ProviderNotFound(ProviderId),
    /// A provider is marked failed (fault injection) and refused service.
    ProviderFailed(ProviderId),
    /// A read touched bytes beyond the snapshot's size.
    OutOfBounds {
        /// What the caller asked for.
        requested_end: u64,
        /// Size of the snapshot that was read.
        snapshot_size: u64,
    },
    /// Caller-supplied buffer length does not match the extent list.
    BufferSizeMismatch { expected: u64, actual: u64 },
    /// An empty extent list was passed where data is required.
    EmptyAccess,
    /// The lock manager rejected or timed out a lock request.
    LockTimeout { holder_hint: Option<ClientHint> },
    /// Metadata store is missing a tree node — indicates corruption or a
    /// read of an unpublished version.
    MetadataNodeMissing(u64),
    /// A file handle was used in a mode it was not opened for.
    InvalidMode(&'static str),
    /// An MPI datatype construction was invalid (e.g. zero-size element).
    InvalidDatatype(String),
    /// A collective operation observed mismatched participation.
    CollectiveMismatch(String),
    /// The operation is unsupported by this backend/driver.
    Unsupported(&'static str),
    /// Replication could not reach the requested number of replicas.
    InsufficientReplicas { wanted: usize, placed: usize },
    /// Generic internal invariant violation; carries a description.
    Internal(String),
}

/// A small hint identifying which client held a contended resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientHint(pub u64);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BlobNotFound(b) => write!(f, "blob not found: {b}"),
            Error::VersionNotFound { blob, version } => {
                write!(f, "version {version} of {blob} is not published")
            }
            Error::ChunkNotFound { provider, chunk } => {
                write!(f, "{chunk} not present on {provider}")
            }
            Error::ProviderNotFound(p) => write!(f, "unknown provider {p}"),
            Error::ProviderFailed(p) => write!(f, "provider {p} is failed"),
            Error::OutOfBounds {
                requested_end,
                snapshot_size,
            } => write!(
                f,
                "access ends at byte {requested_end} but snapshot has {snapshot_size} bytes"
            ),
            Error::BufferSizeMismatch { expected, actual } => write!(
                f,
                "buffer holds {actual} bytes but extent list covers {expected}"
            ),
            Error::EmptyAccess => write!(f, "empty extent list"),
            Error::LockTimeout { holder_hint } => match holder_hint {
                Some(h) => write!(f, "lock wait timed out (held by client {})", h.0),
                None => write!(f, "lock wait timed out"),
            },
            Error::MetadataNodeMissing(id) => write!(f, "metadata node {id} missing"),
            Error::InvalidMode(m) => write!(f, "file handle not opened for {m}"),
            Error::InvalidDatatype(msg) => write!(f, "invalid datatype: {msg}"),
            Error::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
            Error::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            Error::InsufficientReplicas { wanted, placed } => {
                write!(f, "placed {placed} of {wanted} replicas")
            }
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::VersionNotFound {
            blob: BlobId::new(1),
            version: VersionId::new(5),
        };
        assert_eq!(e.to_string(), "version v5 of blob-1 is not published");

        let e = Error::OutOfBounds {
            requested_end: 100,
            snapshot_size: 64,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("64"));

        let e = Error::LockTimeout {
            holder_hint: Some(ClientHint(3)),
        };
        assert!(e.to_string().contains("client 3"));
        let e = Error::LockTimeout { holder_hint: None };
        assert!(!e.to_string().contains("client"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::EmptyAccess);
    }

    #[test]
    fn errors_compare() {
        assert_eq!(
            Error::BlobNotFound(BlobId::new(2)),
            Error::BlobNotFound(BlobId::new(2))
        );
        assert_ne!(
            Error::BlobNotFound(BlobId::new(2)),
            Error::BlobNotFound(BlobId::new(3))
        );
    }
}
