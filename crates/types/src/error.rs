//! Workspace-wide error type.
//!
//! Hand-rolled (no `thiserror`) to keep the dependency set inside the
//! approved list; the variants cover every failure surfaced by the storage
//! services, the baseline file system, and the MPI-I/O layer.

use crate::ids::{BlobId, ChunkId, ProviderId, VersionId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Any failure produced by the atomio stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[allow(missing_docs)] // variant payload fields are self-describing
pub enum Error {
    /// A blob id was not found in the namespace.
    BlobNotFound(BlobId),
    /// The requested snapshot version has not been published (yet).
    VersionNotFound { blob: BlobId, version: VersionId },
    /// A data provider did not hold the requested chunk.
    ChunkNotFound {
        provider: ProviderId,
        chunk: ChunkId,
    },
    /// A provider id was unknown to the provider manager.
    ProviderNotFound(ProviderId),
    /// A provider is marked failed (fault injection) and refused service.
    ProviderFailed(ProviderId),
    /// A read touched bytes beyond the snapshot's size.
    OutOfBounds {
        /// What the caller asked for.
        requested_end: u64,
        /// Size of the snapshot that was read.
        snapshot_size: u64,
    },
    /// Caller-supplied buffer length does not match the extent list.
    BufferSizeMismatch { expected: u64, actual: u64 },
    /// An empty extent list was passed where data is required.
    EmptyAccess,
    /// The lock manager rejected or timed out a lock request.
    LockTimeout { holder_hint: Option<ClientHint> },
    /// Metadata store is missing a tree node — indicates corruption or a
    /// read of an unpublished version.
    MetadataNodeMissing(u64),
    /// A file handle was used in a mode it was not opened for.
    InvalidMode(&'static str),
    /// An MPI datatype construction was invalid (e.g. zero-size element).
    InvalidDatatype(String),
    /// A collective operation observed mismatched participation.
    CollectiveMismatch(String),
    /// The operation is unsupported by this backend/driver.
    Unsupported(&'static str),
    /// Replication could not reach the requested number of replicas.
    InsufficientReplicas { wanted: usize, placed: usize },
    /// A bounded host-side resource (e.g. the write-ahead log) is at
    /// capacity and rejected the request; retrying after the backlog
    /// drains below its low-water mark will succeed.
    Busy {
        resource: String,
        pending_bytes: u64,
        capacity: u64,
    },
    /// A server at its connection cap (`max_conns`) refused this
    /// connection at admission: the request was answered with a typed
    /// busy response and the connection closed, instead of queueing
    /// unboundedly or resetting. Retrying against another endpoint (or
    /// after backoff) is safe — nothing was executed.
    AdmissionRejected { active: u64, max_conns: u64 },
    /// A snapshot lease expired (or was never granted): the version it
    /// pinned may have been reclaimed, so the read is refused with a
    /// typed error instead of risking torn bytes. Re-acquire a lease on
    /// a retained snapshot to continue.
    LeaseExpired { lease: u64, version: VersionId },
    /// A slot-routed request landed on a shard that does not own the
    /// blob's slot (the client's `SlotMap` is stale, or the slot is
    /// mid-handoff). The payload carries the server's map epoch and the
    /// rejected slot so the client can refetch the map and re-route;
    /// nothing was executed, so the retry is safe.
    WrongShard { epoch: u64, slot: u16 },
    /// A transport-level failure talking to a remote service. The kind
    /// distinguishes causes so retry policy can branch (a timeout is worth
    /// retrying on the same endpoint; connection-refused is not).
    Transport {
        kind: TransportErrorKind,
        detail: String,
    },
    /// Generic internal invariant violation; carries a description.
    Internal(String),
}

impl Error {
    /// Wraps an I/O failure from a durable backend as an
    /// [`Error::Internal`] with context. The error enum deliberately has
    /// no dedicated I/O variant: disk failures are deployment faults,
    /// not protocol states, so nothing in the wire codec needs to change
    /// to carry them.
    pub fn io(context: impl std::fmt::Display, err: std::io::Error) -> Error {
        Error::Internal(format!("{context}: {err}"))
    }
}

/// Why a transport operation failed (see [`Error::Transport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportErrorKind {
    /// A read or write deadline elapsed with the peer still silent.
    Timeout,
    /// The peer actively refused the connection (nothing listening).
    ConnectionRefused,
    /// The connection dropped mid-exchange (peer died or link lost).
    ConnectionReset,
    /// The peer spoke, but the bytes did not decode as a valid frame.
    Protocol,
    /// The peer speaks a different protocol version; the frame was
    /// rejected before decoding. Retrying cannot help until one side is
    /// upgraded, so failover should drop the endpoint entirely.
    VersionMismatch,
}

impl TransportErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            TransportErrorKind::Timeout => "timeout",
            TransportErrorKind::ConnectionRefused => "connection-refused",
            TransportErrorKind::ConnectionReset => "connection-reset",
            TransportErrorKind::Protocol => "protocol",
            TransportErrorKind::VersionMismatch => "version-mismatch",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "timeout" => TransportErrorKind::Timeout,
            "connection-refused" => TransportErrorKind::ConnectionRefused,
            "connection-reset" => TransportErrorKind::ConnectionReset,
            "protocol" => TransportErrorKind::Protocol,
            "version-mismatch" => TransportErrorKind::VersionMismatch,
            _ => return None,
        })
    }
}

impl fmt::Display for TransportErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A small hint identifying which client held a contended resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientHint(pub u64);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BlobNotFound(b) => write!(f, "blob not found: {b}"),
            Error::VersionNotFound { blob, version } => {
                write!(f, "version {version} of {blob} is not published")
            }
            Error::ChunkNotFound { provider, chunk } => {
                write!(f, "{chunk} not present on {provider}")
            }
            Error::ProviderNotFound(p) => write!(f, "unknown provider {p}"),
            Error::ProviderFailed(p) => write!(f, "provider {p} is failed"),
            Error::OutOfBounds {
                requested_end,
                snapshot_size,
            } => write!(
                f,
                "access ends at byte {requested_end} but snapshot has {snapshot_size} bytes"
            ),
            Error::BufferSizeMismatch { expected, actual } => write!(
                f,
                "buffer holds {actual} bytes but extent list covers {expected}"
            ),
            Error::EmptyAccess => write!(f, "empty extent list"),
            Error::LockTimeout { holder_hint } => match holder_hint {
                Some(h) => write!(f, "lock wait timed out (held by client {})", h.0),
                None => write!(f, "lock wait timed out"),
            },
            Error::MetadataNodeMissing(id) => write!(f, "metadata node {id} missing"),
            Error::InvalidMode(m) => write!(f, "file handle not opened for {m}"),
            Error::InvalidDatatype(msg) => write!(f, "invalid datatype: {msg}"),
            Error::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
            Error::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            Error::InsufficientReplicas { wanted, placed } => {
                write!(f, "placed {placed} of {wanted} replicas")
            }
            Error::Busy {
                resource,
                pending_bytes,
                capacity,
            } => write!(
                f,
                "{resource} is busy: {pending_bytes} of {capacity} bytes pending"
            ),
            Error::AdmissionRejected { active, max_conns } => write!(
                f,
                "server refused the connection: {active} of {max_conns} connections active"
            ),
            Error::LeaseExpired { lease, version } => {
                write!(f, "lease {lease} on snapshot {version} has expired")
            }
            Error::WrongShard { epoch, slot } => {
                write!(f, "slot {slot} is not served here (map epoch {epoch})")
            }
            Error::Transport { kind, detail } => {
                write!(f, "transport failure ({kind}): {detail}")
            }
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------
// Wire encoding. Errors cross the RPC boundary, so the whole enum gets a
// tagged-object encoding by hand (the vendored derive handles only
// named-field structs).
// ---------------------------------------------------------------------

fn tagged(tag: &str, mut fields: Vec<(String, Value)>) -> Value {
    let mut obj = vec![("t".to_string(), Value::Str(tag.to_string()))];
    obj.append(&mut fields);
    Value::Object(obj)
}

impl Serialize for Error {
    fn to_value(&self) -> Value {
        match self {
            Error::BlobNotFound(b) => tagged("BlobNotFound", vec![("blob".into(), b.to_value())]),
            Error::VersionNotFound { blob, version } => tagged(
                "VersionNotFound",
                vec![
                    ("blob".into(), blob.to_value()),
                    ("version".into(), version.to_value()),
                ],
            ),
            Error::ChunkNotFound { provider, chunk } => tagged(
                "ChunkNotFound",
                vec![
                    ("provider".into(), provider.to_value()),
                    ("chunk".into(), chunk.to_value()),
                ],
            ),
            Error::ProviderNotFound(p) => {
                tagged("ProviderNotFound", vec![("provider".into(), p.to_value())])
            }
            Error::ProviderFailed(p) => {
                tagged("ProviderFailed", vec![("provider".into(), p.to_value())])
            }
            Error::OutOfBounds {
                requested_end,
                snapshot_size,
            } => tagged(
                "OutOfBounds",
                vec![
                    ("requested_end".into(), requested_end.to_value()),
                    ("snapshot_size".into(), snapshot_size.to_value()),
                ],
            ),
            Error::BufferSizeMismatch { expected, actual } => tagged(
                "BufferSizeMismatch",
                vec![
                    ("expected".into(), expected.to_value()),
                    ("actual".into(), actual.to_value()),
                ],
            ),
            Error::EmptyAccess => tagged("EmptyAccess", vec![]),
            Error::LockTimeout { holder_hint } => tagged(
                "LockTimeout",
                vec![("holder".into(), holder_hint.map(|h| h.0).to_value())],
            ),
            Error::MetadataNodeMissing(id) => {
                tagged("MetadataNodeMissing", vec![("id".into(), id.to_value())])
            }
            Error::InvalidMode(m) => tagged(
                "InvalidMode",
                vec![("mode".into(), Value::Str((*m).to_string()))],
            ),
            Error::InvalidDatatype(msg) => {
                tagged("InvalidDatatype", vec![("msg".into(), msg.to_value())])
            }
            Error::CollectiveMismatch(msg) => {
                tagged("CollectiveMismatch", vec![("msg".into(), msg.to_value())])
            }
            Error::Unsupported(what) => tagged(
                "Unsupported",
                vec![("what".into(), Value::Str((*what).to_string()))],
            ),
            Error::InsufficientReplicas { wanted, placed } => tagged(
                "InsufficientReplicas",
                vec![
                    ("wanted".into(), wanted.to_value()),
                    ("placed".into(), placed.to_value()),
                ],
            ),
            Error::Busy {
                resource,
                pending_bytes,
                capacity,
            } => tagged(
                "Busy",
                vec![
                    ("resource".into(), resource.to_value()),
                    ("pending_bytes".into(), pending_bytes.to_value()),
                    ("capacity".into(), capacity.to_value()),
                ],
            ),
            Error::AdmissionRejected { active, max_conns } => tagged(
                "AdmissionRejected",
                vec![
                    ("active".into(), active.to_value()),
                    ("max_conns".into(), max_conns.to_value()),
                ],
            ),
            Error::LeaseExpired { lease, version } => tagged(
                "LeaseExpired",
                vec![
                    ("lease".into(), lease.to_value()),
                    ("version".into(), version.to_value()),
                ],
            ),
            Error::WrongShard { epoch, slot } => tagged(
                "WrongShard",
                vec![
                    ("epoch".into(), epoch.to_value()),
                    ("slot".into(), slot.to_value()),
                ],
            ),
            Error::Transport { kind, detail } => tagged(
                "Transport",
                vec![
                    ("kind".into(), Value::Str(kind.as_str().to_string())),
                    ("detail".into(), detail.to_value()),
                ],
            ),
            Error::Internal(msg) => tagged("Internal", vec![("msg".into(), msg.to_value())]),
        }
    }
}

impl Deserialize for Error {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let tag = match v.get("t") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return Err(DeError::expected("tagged error object", v)),
        };
        let field = |name: &str| v.get_or_null(name);
        Ok(match tag {
            "BlobNotFound" => Error::BlobNotFound(BlobId::from_value(field("blob"))?),
            "VersionNotFound" => Error::VersionNotFound {
                blob: BlobId::from_value(field("blob"))?,
                version: VersionId::from_value(field("version"))?,
            },
            "ChunkNotFound" => Error::ChunkNotFound {
                provider: ProviderId::from_value(field("provider"))?,
                chunk: ChunkId::from_value(field("chunk"))?,
            },
            "ProviderNotFound" => {
                Error::ProviderNotFound(ProviderId::from_value(field("provider"))?)
            }
            "ProviderFailed" => Error::ProviderFailed(ProviderId::from_value(field("provider"))?),
            "OutOfBounds" => Error::OutOfBounds {
                requested_end: u64::from_value(field("requested_end"))?,
                snapshot_size: u64::from_value(field("snapshot_size"))?,
            },
            "BufferSizeMismatch" => Error::BufferSizeMismatch {
                expected: u64::from_value(field("expected"))?,
                actual: u64::from_value(field("actual"))?,
            },
            "EmptyAccess" => Error::EmptyAccess,
            "LockTimeout" => Error::LockTimeout {
                holder_hint: Option::<u64>::from_value(field("holder"))?.map(ClientHint),
            },
            "MetadataNodeMissing" => Error::MetadataNodeMissing(u64::from_value(field("id"))?),
            // `&'static str` payloads cannot round-trip through the wire;
            // decode them into the closest owning variant.
            "InvalidMode" => Error::Internal(format!(
                "remote InvalidMode: {}",
                String::from_value(field("mode"))?
            )),
            "InvalidDatatype" => Error::InvalidDatatype(String::from_value(field("msg"))?),
            "CollectiveMismatch" => Error::CollectiveMismatch(String::from_value(field("msg"))?),
            "Unsupported" => Error::Internal(format!(
                "remote Unsupported: {}",
                String::from_value(field("what"))?
            )),
            "InsufficientReplicas" => Error::InsufficientReplicas {
                wanted: usize::from_value(field("wanted"))?,
                placed: usize::from_value(field("placed"))?,
            },
            "Busy" => Error::Busy {
                resource: String::from_value(field("resource"))?,
                pending_bytes: u64::from_value(field("pending_bytes"))?,
                capacity: u64::from_value(field("capacity"))?,
            },
            "AdmissionRejected" => Error::AdmissionRejected {
                active: u64::from_value(field("active"))?,
                max_conns: u64::from_value(field("max_conns"))?,
            },
            "LeaseExpired" => Error::LeaseExpired {
                lease: u64::from_value(field("lease"))?,
                version: VersionId::from_value(field("version"))?,
            },
            "WrongShard" => Error::WrongShard {
                epoch: u64::from_value(field("epoch"))?,
                slot: u16::from_value(field("slot"))?,
            },
            "Transport" => Error::Transport {
                kind: {
                    let s = String::from_value(field("kind"))?;
                    TransportErrorKind::from_str(&s)
                        .ok_or_else(|| DeError::new(format!("unknown transport kind {s:?}")))?
                },
                detail: String::from_value(field("detail"))?,
            },
            "Internal" => Error::Internal(String::from_value(field("msg"))?),
            other => return Err(DeError::new(format!("unknown error tag {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::VersionNotFound {
            blob: BlobId::new(1),
            version: VersionId::new(5),
        };
        assert_eq!(e.to_string(), "version v5 of blob-1 is not published");

        let e = Error::OutOfBounds {
            requested_end: 100,
            snapshot_size: 64,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("64"));

        let e = Error::LockTimeout {
            holder_hint: Some(ClientHint(3)),
        };
        assert!(e.to_string().contains("client 3"));
        let e = Error::LockTimeout { holder_hint: None };
        assert!(!e.to_string().contains("client"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::EmptyAccess);
    }

    #[test]
    fn errors_roundtrip_through_wire_encoding() {
        let samples = vec![
            Error::BlobNotFound(BlobId::new(7)),
            Error::VersionNotFound {
                blob: BlobId::new(1),
                version: VersionId::new(5),
            },
            Error::ChunkNotFound {
                provider: ProviderId::new(2),
                chunk: ChunkId::new(9),
            },
            Error::ProviderNotFound(ProviderId::new(3)),
            Error::ProviderFailed(ProviderId::new(4)),
            Error::OutOfBounds {
                requested_end: 10,
                snapshot_size: 4,
            },
            Error::BufferSizeMismatch {
                expected: 8,
                actual: 6,
            },
            Error::EmptyAccess,
            Error::LockTimeout {
                holder_hint: Some(ClientHint(3)),
            },
            Error::LockTimeout { holder_hint: None },
            Error::MetadataNodeMissing(0xDEAD),
            Error::InvalidDatatype("bad".into()),
            Error::CollectiveMismatch("skew".into()),
            Error::InsufficientReplicas {
                wanted: 3,
                placed: 1,
            },
            Error::Busy {
                resource: "wal".into(),
                pending_bytes: 4096,
                capacity: 1024,
            },
            Error::AdmissionRejected {
                active: 1024,
                max_conns: 1024,
            },
            Error::LeaseExpired {
                lease: 11,
                version: VersionId::new(3),
            },
            Error::WrongShard { epoch: 7, slot: 42 },
            Error::Transport {
                kind: TransportErrorKind::Timeout,
                detail: "read deadline".into(),
            },
            Error::Internal("boom".into()),
        ];
        for e in samples {
            let back = Error::from_value(&e.to_value()).unwrap();
            assert_eq!(back, e, "roundtrip of {e:?}");
        }
        // `&'static str` variants decode into owning stand-ins.
        let e = Error::Unsupported("resize");
        let back = Error::from_value(&e.to_value()).unwrap();
        assert!(matches!(back, Error::Internal(ref m) if m.contains("resize")));
    }

    #[test]
    fn transport_kind_display_and_parse() {
        for kind in [
            TransportErrorKind::Timeout,
            TransportErrorKind::ConnectionRefused,
            TransportErrorKind::ConnectionReset,
            TransportErrorKind::Protocol,
            TransportErrorKind::VersionMismatch,
        ] {
            assert_eq!(TransportErrorKind::from_str(&kind.to_string()), Some(kind));
        }
        assert_eq!(TransportErrorKind::from_str("gremlins"), None);
    }

    #[test]
    fn errors_compare() {
        assert_eq!(
            Error::BlobNotFound(BlobId::new(2)),
            Error::BlobNotFound(BlobId::new(2))
        );
        assert_ne!(
            Error::BlobNotFound(BlobId::new(2)),
            Error::BlobNotFound(BlobId::new(3))
        );
    }
}
